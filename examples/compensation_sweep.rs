//! Corner/parameter sweep (paper §4.2 "in-tool sweeps"): how the main loop's
//! damping and phase margin move as the compensation network and load of the
//! 2 MHz buffer are varied — the workflow a designer uses to pick `rzero`,
//! `C1` and to check the worst-case load.
//!
//! Run with `cargo run --release --example compensation_sweep`.

use loopscope::prelude::*;
use loopscope_core::sweep::sweep_node;

fn main() -> Result<(), StabilityError> {
    let options = StabilityOptions {
        f_start: 1.0e3,
        f_stop: 1.0e8,
        points_per_decade: 80,
        ..Default::default()
    };

    // Sweep 1: load capacitance (the paper's `cload` knob).
    let cload_variants = [100.0e-12, 250.0e-12, 400.0e-12, 600.0e-12, 1.0e-9]
        .into_iter()
        .map(|cload| {
            let params = OpAmpParams {
                cload,
                ..Default::default()
            };
            (
                format!("cload={:.0}pF", cload * 1.0e12),
                two_stage_buffer(&params).0,
            )
        });
    let cload_sweep = sweep_node(cload_variants, "out", options)?;
    println!("{}", cload_sweep.to_text());
    if let Some(worst) = cload_sweep.worst_case() {
        println!(
            "worst case: {} (ζ = {:.3})\nmeets 45° phase margin at every corner: {}\n",
            worst.label,
            worst.estimate.map(|e| e.damping_ratio).unwrap_or(f64::NAN),
            cload_sweep.meets_phase_margin(45.0)
        );
    }

    // Sweep 2: Miller capacitor C1 (stronger compensation).
    let c1_variants = [1.5e-12, 2.3e-12, 4.7e-12, 10.0e-12].into_iter().map(|c1| {
        let params = OpAmpParams {
            c1,
            ..Default::default()
        };
        (
            format!("C1={:.1}pF", c1 * 1.0e12),
            two_stage_buffer(&params).0,
        )
    });
    let c1_sweep = sweep_node(c1_variants, "out", options)?;
    println!("{}", c1_sweep.to_text());
    println!(
        "increasing the Miller capacitor monotonically improves the margin: {}",
        c1_sweep
            .points
            .windows(2)
            .all(|w| match (w[0].estimate, w[1].estimate) {
                (Some(a), Some(b)) => b.damping_ratio >= a.damping_ratio,
                (Some(_), None) => true, // became fully damped
                _ => true,
            })
    );
    Ok(())
}
