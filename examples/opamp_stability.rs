//! Full comparison on the 2 MHz op-amp buffer: the stability-plot method
//! versus the two traditional baselines (paper Figs. 2, 3 and 4).
//!
//! 1. Transient step response → percent overshoot (Fig. 2).
//! 2. Open-loop Bode plot (loop broken by hand) → phase margin (Fig. 3).
//! 3. Stability plot at the output node (loop left closed) → performance
//!    index, natural frequency and estimated phase margin (Fig. 4).
//!
//! Run with `cargo run --release --example opamp_stability`.

use loopscope::prelude::*;
use loopscope_circuits::opamp::two_stage_open_loop;
use loopscope_core::baseline::{open_loop_margins, transient_overshoot};

fn main() -> Result<(), StabilityError> {
    let params = OpAmpParams::default();

    // --- Baseline 1: transient overshoot (Fig. 2) --------------------------
    let (closed_loop, nodes) = two_stage_buffer(&params);
    let overshoot = transient_overshoot(&closed_loop, nodes.output, 2.0e-9, 8.0e-6)?;
    println!("baseline 1 — transient step response (Fig. 2):");
    println!(
        "  overshoot            : {:.1} %",
        overshoot.percent_overshoot
    );
    println!(
        "  equivalent ζ         : {:.3}",
        overshoot.equivalent_damping
    );

    // --- Baseline 2: open-loop Bode margins (Fig. 3) ------------------------
    let (open_loop, ol_nodes) = two_stage_open_loop(&params);
    let grid = FrequencyGrid::log_decade(1.0, 100.0e6, 40);
    let margins = open_loop_margins(&open_loop, ol_nodes.output, &grid)?;
    println!("\nbaseline 2 — open-loop gain/phase plot (Fig. 3, loop broken):");
    if let (Some(fc), Some(pm)) = (margins.gain_crossover_hz, margins.phase_margin_deg) {
        println!("  0 dB crossover       : {:.2} MHz", fc / 1.0e6);
        println!("  phase margin         : {:.1}°", pm);
    }
    if let Some(fp) = margins.phase_crossover_hz {
        println!("  −180° phase crossing : {:.2} MHz", fp / 1.0e6);
    }

    // --- The paper's method: stability plot, loop left closed (Fig. 4) ------
    let analyzer = StabilityAnalyzer::new(closed_loop, StabilityOptions::default())?;
    let result = analyzer.single_node(nodes.output)?;
    let peak = result.peak.expect("under-compensated buffer must peak");
    let est = result.estimate.expect("estimate follows from the peak");
    println!("\nstability plot at the output node (Fig. 4, loop closed):");
    println!("  peak value           : {:.1}", peak.y);
    println!(
        "  natural frequency    : {:.2} MHz",
        est.natural_freq_hz / 1.0e6
    );
    println!("  damping ratio ζ      : {:.3}", est.damping_ratio);
    println!("  estimated PM         : {:.1}°", est.phase_margin_deg);
    println!("  equivalent overshoot : {:.0} %", est.percent_overshoot);

    println!("\nconsistency checks (the three views must agree):");
    println!(
        "  ζ from overshoot = {:.3}   ζ from stability plot = {:.3}",
        overshoot.equivalent_damping, est.damping_ratio
    );
    if let Some(pm) = margins.phase_margin_deg {
        println!(
            "  PM from Bode = {:.1}°        PM from stability plot = {:.1}°",
            pm, est.phase_margin_deg
        );
    }
    if let (Some(fc), Some(fp)) = (margins.gain_crossover_hz, margins.phase_crossover_hz) {
        println!(
            "  stability-plot natural frequency {:.2} MHz lies between the 0 dB crossover ({:.2} MHz) and the −180° crossing ({:.2} MHz): {}",
            est.natural_freq_hz / 1.0e6,
            fc / 1.0e6,
            fp / 1.0e6,
            est.natural_freq_hz >= fc && est.natural_freq_hz <= fp
        );
    }
    Ok(())
}
