//! Methodology sanity check: real poles versus complex poles.
//!
//! The stability plot is designed so that real poles and zeros are filtered
//! out by the double differentiation (paper §2) while complex pole pairs
//! produce a peak of exactly −1/ζ². This example demonstrates both halves of
//! that claim on circuits with exactly known pole structure:
//!
//! * an RC ladder (all poles real) — no node reports a loop;
//! * a series RLC divider swept over ζ — the reported peak matches −1/ζ².
//!
//! Run with `cargo run --release --example rc_ladder_sweep`.

use loopscope::prelude::*;
use loopscope_circuits::blocks::{
    rc_ladder, series_rlc, series_rlc_damping, series_rlc_natural_freq,
};

fn main() -> Result<(), StabilityError> {
    // --- Part 1: RC ladder, real poles only ---------------------------------
    let (ladder, nodes) = rc_ladder(6, 1.0e3, 1.0e-9);
    let options = StabilityOptions {
        f_start: 1.0e2,
        f_stop: 1.0e8,
        points_per_decade: 80,
        ..Default::default()
    };
    let analyzer = StabilityAnalyzer::new(ladder, options)?;
    println!("6-section RC ladder (all real poles):");
    for node in nodes {
        let r = analyzer.single_node(node)?;
        let min = r
            .plot
            .values()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        println!(
            "  node {:<4} deepest curvature {:>7.3}   loop detected: {}",
            r.node_name,
            min,
            r.estimate.is_some()
        );
    }

    // --- Part 2: series RLC with known damping ------------------------------
    println!("\nseries RLC divider, ζ swept (peak must equal −1/ζ²):");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "ζ", "expected peak", "measured peak", "expected fn", "measured fn"
    );
    let l: f64 = 1.0e-3;
    let cap: f64 = 1.0e-9;
    for zeta_target in [0.1, 0.2, 0.3, 0.5, 0.7] {
        let r = 2.0 * zeta_target * (l / cap).sqrt();
        let (circuit, out) = series_rlc(r, l, cap);
        let zeta = series_rlc_damping(r, l, cap);
        let fn_hz = series_rlc_natural_freq(l, cap);
        let opts = StabilityOptions {
            f_start: 1.0e3,
            f_stop: 1.0e7,
            points_per_decade: 120,
            ..Default::default()
        };
        let analyzer = StabilityAnalyzer::new(circuit, opts)?;
        let result = analyzer.single_node(out)?;
        match result.peak {
            Some(peak) => println!(
                "{:>6.2} {:>14.2} {:>14.2} {:>14.3e} {:>14.3e}",
                zeta,
                -1.0 / (zeta * zeta),
                peak.y,
                fn_hz,
                peak.x
            ),
            None => println!("{zeta:>6.2} (no peak below the threshold)"),
        }
    }
    Ok(())
}
