//! Local-loop discovery and compensation on the zero-TC bias cell (paper
//! Fig. 5): run the all-nodes scan on the standalone bias circuit, identify
//! the local loop and its equivalent overshoot/phase margin, then apply the
//! paper's fix (≈ 1 pF at the collector of the degenerated transistor) and
//! show the improvement.
//!
//! Run with `cargo run --release --example bias_local_loop`.

use loopscope::prelude::*;

fn scan(params: &BiasParams, label: &str) -> Result<Option<LoopEstimate>, StabilityError> {
    let (circuit, nodes) = zero_tc_bias(params);
    let options = StabilityOptions {
        f_start: 1.0e5,
        f_stop: 1.0e10,
        points_per_decade: 100,
        ..Default::default()
    };
    let analyzer = StabilityAnalyzer::new(circuit, options)?;
    let report = analyzer.all_nodes()?;

    println!("--- {label} ---");
    for (name, peak, freq) in report.annotations() {
        println!(
            "  node {name:<14} stability peak {peak:>8.2}   natural frequency {:>8.1} MHz",
            freq / 1.0e6
        );
    }
    let q3c_entry = report
        .entries()
        .iter()
        .find(|e| e.node == nodes.q3_collector)
        .cloned();
    let est = q3c_entry.and_then(|e| e.estimate);
    match est {
        Some(e) => println!(
            "  Q3-collector loop: fn = {:.1} MHz, ζ = {:.2}, est. PM = {:.0}°, equiv. overshoot = {:.0} %\n",
            e.natural_freq_hz / 1.0e6,
            e.damping_ratio,
            e.phase_margin_deg,
            e.percent_overshoot
        ),
        None => println!("  Q3 collector shows no under-damped loop\n"),
    }
    Ok(est)
}

fn main() -> Result<(), StabilityError> {
    // Uncompensated cell: the local loop should show up in the tens of MHz
    // with a modest phase margin — invisible to a black-box check of the
    // overall circuit.
    let uncompensated = scan(&BiasParams::default(), "uncompensated bias cell")?;

    // The paper's fix: add ~1 pF at the collector of the degenerated device.
    let fixed_params = BiasParams {
        c_comp: 1.0e-12,
        ..Default::default()
    };
    let compensated = scan(&fixed_params, "compensated bias cell (+1 pF)")?;

    match (uncompensated, compensated) {
        (Some(before), Some(after)) => {
            println!(
                "compensation raised the local loop's damping ratio from {:.2} to {:.2}",
                before.damping_ratio, after.damping_ratio
            );
        }
        (Some(before), None) => {
            println!(
                "compensation removed the under-damped local loop entirely (was ζ = {:.2} at {:.1} MHz)",
                before.damping_ratio,
                before.natural_freq_hz / 1.0e6
            );
        }
        _ => println!("no local loop detected before compensation — check the sweep range"),
    }
    Ok(())
}
