//! Quickstart: single-node stability analysis of the 2 MHz op-amp buffer.
//!
//! Reproduces the paper's headline workflow: attach an AC current probe to
//! the output node of a closed-loop amplifier, compute the stability plot,
//! and read the loop's natural frequency, damping ratio and estimated phase
//! margin — all without breaking the feedback loop.
//!
//! Run with `cargo run --example quickstart`.

use loopscope::prelude::*;
use loopscope_core::table1;

fn main() -> Result<(), StabilityError> {
    // The paper's evaluation vehicle: a simple 2 MHz op-amp connected as a
    // unity-gain buffer, with the nominal (under-compensated) rzero / cload /
    // C1 values.
    let (circuit, nodes) = two_stage_buffer(&OpAmpParams::default());

    let analyzer = StabilityAnalyzer::new(circuit, StabilityOptions::default())?;
    println!(
        "operating point converged in {} Newton iterations; {} AC source(s) auto-zeroed\n",
        analyzer.operating_point().iterations(),
        analyzer.zeroed_sources()
    );

    // "Single Node" run mode at the amplifier output.
    let result = analyzer.single_node(nodes.output)?;
    println!("stability analysis of node `{}`:", result.node_name);
    match (&result.peak, &result.estimate) {
        (Some(peak), Some(est)) => {
            println!("  stability peak      : {:.1}", -peak.y);
            println!(
                "  natural frequency   : {:.3} MHz",
                est.natural_freq_hz / 1.0e6
            );
            println!("  damping ratio ζ     : {:.3}", est.damping_ratio);
            println!(
                "  est. phase margin   : {:.1}°  (exact 2nd-order: {:.1}°)",
                est.phase_margin_deg, est.phase_margin_exact_deg
            );
            println!("  equiv. overshoot    : {:.0} %", est.percent_overshoot);
        }
        _ => println!("  no under-damped loop detected at this node"),
    }

    // The paper's Table 1: the analytic second-order lookup the estimate uses.
    println!("\nTable 1 — second-order system characteristics:");
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>12}",
        "ζ", "overshoot %", "PM (deg)", "Mp", "perf. index"
    );
    for row in table1() {
        println!(
            "{:>5.1} {:>12.1} {:>12.1} {:>10.2} {:>12.1}",
            row.zeta,
            row.percent_overshoot,
            row.phase_margin_deg,
            row.max_magnitude,
            row.performance_index
        );
    }
    Ok(())
}
