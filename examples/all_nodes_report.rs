//! "All Nodes" run mode on the combined op-amp + bias circuit: regenerates a
//! report in the format of the paper's Table 2 — every node's stability peak
//! and natural frequency, grouped into loops and sorted by frequency.
//!
//! The scan's frequency points are chunked across worker threads (set
//! `LOOPSCOPE_THREADS` to pin the count; the default uses every hardware
//! core) and the per-node injections are batched into panels of
//! `LOOPSCOPE_PANEL` right-hand sides per L/U traversal — the report is
//! bitwise identical at any worker count and any panel width.
//!
//! Run with `cargo run --release --example all_nodes_report`.

use loopscope::prelude::*;
use loopscope_circuits::opamp_with_bias;
use loopscope_spice::ac::AcAnalysis;
use loopscope_spice::par;

fn main() -> Result<(), StabilityError> {
    let (circuit, opamp_nodes, bias_nodes) =
        opamp_with_bias(&OpAmpParams::default(), &BiasParams::default());
    println!(
        "circuit `{}`: {} nodes, {} elements — scanning with {} sweep worker(s) \
         (set {} to override), solve panels of {} RHS (set {} to override)",
        circuit.title(),
        circuit.node_count(),
        circuit.elements().len(),
        par::configured_workers(),
        par::THREADS_ENV,
        par::configured_panel_width(),
        par::PANEL_ENV,
    );

    let options = StabilityOptions {
        f_start: 1.0e4,
        f_stop: 1.0e9,
        points_per_decade: 100,
        ..Default::default()
    };
    let analyzer = StabilityAnalyzer::new(circuit, options)?;

    // Solver structure of the admittance system the scan factors at every
    // frequency: the BTF block partition and the factor fill.
    let ac = AcAnalysis::new(analyzer.circuit(), analyzer.operating_point())?;
    let structure = ac.solver_structure(analyzer.options().f_start)?;
    println!(
        "solver structure: {} unknowns, {} BTF diagonal block(s), {} factor entries, \
         `{}` kernel backend (set {} to override), κ₁ ≥ {:.3e} at {:.0} Hz",
        structure.dim,
        structure.block_count,
        structure.fill_nnz,
        structure.kernel,
        loopscope_sparse::kernels::KERNEL_ENV,
        structure.condition_estimate,
        analyzer.options().f_start,
    );
    drop(ac);

    let report = analyzer.all_nodes()?;

    println!("\n{}", report.to_text());

    println!("detected loops:");
    for (i, group) in report.loops().iter().enumerate() {
        println!(
            "  loop {}: natural frequency {:.2} MHz, {} node(s), worst performance index {:.1}",
            i + 1,
            group.natural_freq_hz / 1.0e6,
            group.members.len(),
            group.worst_performance_index
        );
    }

    if let Some(worst) = report.worst() {
        let est = worst.estimate.expect("worst node carries an estimate");
        println!(
            "\nmost oscillation-prone node: `{}` (ζ = {:.3}, estimated PM {:.1}°)",
            worst.node_name, est.damping_ratio, est.phase_margin_deg
        );
    }

    // Confirm that the scan sees both the op-amp main loop and the bias cell's
    // local loop without any loop having been broken.
    let main = report
        .entries()
        .iter()
        .find(|e| e.node == opamp_nodes.output)
        .and_then(|e| e.natural_freq_hz());
    let local = report
        .entries()
        .iter()
        .find(|e| e.node == bias_nodes.q3_collector)
        .and_then(|e| e.natural_freq_hz());
    println!(
        "\nmain loop seen at the op-amp output      : {:?} Hz\nlocal loop seen at the bias Q3 collector : {:?} Hz",
        main, local
    );
    Ok(())
}
