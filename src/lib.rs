//! `loopscope` — AC-stability analysis of continuous-time closed-loop
//! circuits without breaking the loop.
//!
//! This is the umbrella crate of the workspace: it re-exports the public API
//! of the individual crates so applications can depend on a single crate.
//! See the [`core`] module (the `loopscope-core` crate) for the methodology
//! entry points, [`spice`] for the underlying simulator and [`circuits`] for
//! the ready-made evaluation circuits from the paper.
//!
//! ```
//! use loopscope::prelude::*;
//!
//! let (circuit, nodes) = two_stage_buffer(&OpAmpParams::default());
//! let analyzer = StabilityAnalyzer::new(circuit, StabilityOptions::default())?;
//! let result = analyzer.single_node(nodes.output)?;
//! assert!(result.estimate.is_some());
//! # Ok::<(), loopscope::core::StabilityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use loopscope_circuits as circuits;
pub use loopscope_core as core;
pub use loopscope_math as math;
pub use loopscope_netlist as netlist;
pub use loopscope_sparse as sparse;
pub use loopscope_spice as spice;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use loopscope_circuits::{
        two_stage_buffer, zero_tc_bias, BiasParams, OpAmpNodes, OpAmpParams,
    };
    pub use loopscope_core::{
        AllNodesReport, LoopEstimate, NodeStabilityResult, StabilityAnalyzer, StabilityError,
        StabilityOptions, StabilityPlot,
    };
    pub use loopscope_math::{FrequencyGrid, SecondOrder};
    pub use loopscope_netlist::{parse_netlist, Circuit, NodeId, SourceSpec};
    pub use loopscope_spice::{solve_dc, AcAnalysis, TransientAnalysis, TransientOptions};
}
