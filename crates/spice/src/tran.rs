//! Transient (time-domain) analysis.
//!
//! Transient analysis is the substrate for the *traditional* stability check
//! the paper compares against — "node pulsing": apply a small step to the
//! closed-loop circuit and read the overshoot of the response. Integration
//! uses backward Euler or trapezoidal companion models; nonlinear devices
//! are resolved with Newton iteration at every time point.
//!
//! # Fixed grid vs. adaptive stepping
//!
//! Two stepping modes share one options struct:
//!
//! * **Fixed grid** ([`TransientOptions::new`], `dt_min == dt_max`): the
//!   legacy uniform-`dt` grid with the final step shortened to land exactly
//!   on `t_stop`.
//! * **Adaptive** ([`TransientOptions::adaptive`], `dt_max > dt_min`): each
//!   step runs a per-step *accept-or-escalate ladder* mirroring the solver's
//!   verified-solve retry ladder on the time axis. A step is solved, its
//!   local truncation error (LTE) estimated from a predictor–corrector
//!   difference against `reltol`/`abstol`, and then either **accepted**
//!   (growing the next step, capped at `dt_max` and the next breakpoint) or
//!   **rejected** — halve the width and retry. Newton non-convergence is
//!   just another rejection rung (halve; at `dt_min` switch the step to
//!   backward Euler) before the run surfaces
//!   [`SpiceError::TransientNoConvergence`] enriched with the recorded
//!   [`rejection history`](crate::error::StepRejection).
//!
//! A **breakpoint schedule** harvested from source discontinuities
//! ([`loopscope_netlist::Waveform::breakpoints`]) forces exact landings:
//! the step *ending* on a breakpoint evaluates sources by their left limit
//! and the step *starting* there restarts with one backward-Euler step at
//! `dt_min` (the same start-up treatment `t = 0` gets), so a discontinuity
//! is never integrated across.
//!
//! The step sequence is a pure deterministic function of (circuit, options):
//! every accept/reject decision is computed from residual-verified solutions
//! that are themselves bitwise identical across the `LOOPSCOPE_THREADS`/
//! `LOOPSCOPE_KERNEL`/`LOOPSCOPE_PANEL` knobs, so the produced grid — and
//! every counter in [`TransientStats`] — is bit-identical across those
//! configurations.

use crate::assembly::{AssembleMna, CachedMna, SolveStats};
use crate::dc::OperatingPoint;
use crate::devices;
use crate::error::{SpiceError, StepRejectReason, StepRejection};
use crate::mna::{MatrixSink, MnaLayout, Stamper};
use crate::GMIN;
use loopscope_math::interp;
use loopscope_netlist::{Circuit, Element, NodeId};

/// Step-growth threshold: the next step doubles only when the worst LTE
/// ratio of the accepted step is at or below this fraction of the tolerance.
/// With the trapezoidal rule's ~`h³` local error, doubling multiplies the
/// estimate by ~8x, so growing at ≤ 0.1 keeps the post-growth ratio below 1
/// and avoids accept/reject limit cycles.
const LTE_GROW_THRESHOLD: f64 = 0.1;

/// Time-integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integration {
    /// Backward Euler: L-stable, slightly lossy; good default for stiff
    /// circuits and start-up transients.
    BackwardEuler,
    /// Trapezoidal rule: second-order accurate, preserves oscillation
    /// amplitude much better — preferred for ringing/overshoot measurements.
    ///
    /// The very first time point integrates with one Backward Euler step:
    /// the trapezoidal companion models reference the previous capacitor
    /// current / inductor voltage, and at `t = 0` those come from the DC
    /// operating point, which is inconsistent with a source that steps at
    /// `t = 0⁺` (SPICE's classic trapezoidal start-up problem — without the
    /// BE step the whole waveform lags the analytic response by `dt/2`,
    /// a first-order error that golden-data validation flags immediately).
    /// Backward Euler's companions only need the previous *state*, and the
    /// reactive currents they produce are consistent start-up values for
    /// the trapezoidal steps that follow, restoring second-order accuracy.
    Trapezoidal,
}

/// Options controlling a transient run.
///
/// `dt_min == dt_max` selects the legacy **fixed grid** (and `reltol`/
/// `abstol` are unused); `dt_max > dt_min` selects the **adaptive** stepper
/// described in the [module docs](crate::tran).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Smallest step the adaptive ladder may take, in seconds. On the fixed
    /// grid this *is* the step. (Breakpoint landings may still produce a
    /// shorter step when two breakpoints lie closer than `dt_min`.)
    pub dt_min: f64,
    /// Largest step the adaptive controller may grow to, in seconds. Must
    /// equal `dt_min` for a fixed-grid run.
    pub dt_max: f64,
    /// Stop time in seconds (the run covers `0..=t_stop`).
    pub t_stop: f64,
    /// Integration method.
    pub method: Integration,
    /// Maximum Newton iterations per time point.
    pub max_newton: usize,
    /// Newton convergence tolerance on node voltages, volts.
    pub vntol: f64,
    /// Relative LTE tolerance of the adaptive step control (dimensionless).
    pub reltol: f64,
    /// Absolute LTE tolerance of the adaptive step control, volts.
    pub abstol: f64,
}

impl TransientOptions {
    /// Creates **fixed-grid** options with the given step and stop time,
    /// trapezoidal integration and default Newton settings.
    pub fn new(dt: f64, t_stop: f64) -> Self {
        Self {
            dt_min: dt,
            dt_max: dt,
            t_stop,
            method: Integration::Trapezoidal,
            max_newton: 50,
            vntol: 1.0e-9,
            reltol: 1.0e-3,
            abstol: 1.0e-6,
        }
    }

    /// Creates **adaptive** options stepping between `dt_min` and `dt_max`,
    /// with trapezoidal integration, default Newton settings and the default
    /// LTE tolerances (`reltol = 1e-3`, `abstol = 1e-6`).
    pub fn adaptive(dt_min: f64, dt_max: f64, t_stop: f64) -> Self {
        Self {
            dt_min,
            dt_max,
            ..Self::new(dt_min, t_stop)
        }
    }

    /// Whether these options select the adaptive stepper
    /// (`dt_max > dt_min`).
    pub fn is_adaptive(&self) -> bool {
        self.dt_max > self.dt_min
    }
}

/// Counters describing how a transient run stepped — the time-axis analogue
/// of [`SolveStats`], which makes the adaptive ladder's behaviour assertable
/// in tests and benchmarks.
///
/// Like the step sequence itself, every counter is a pure deterministic
/// function of (circuit, options) and bit-identical across the
/// `LOOPSCOPE_THREADS`/`LOOPSCOPE_KERNEL`/`LOOPSCOPE_PANEL` knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientStats {
    /// Steps accepted into the result (`times().len() - 1`).
    pub accepted_steps: usize,
    /// Step attempts rejected by the ladder (LTE over tolerance or Newton
    /// non-convergence) and retried at a smaller width. Always zero on the
    /// fixed grid.
    pub rejected_steps: usize,
    /// Steps accepted *despite* an LTE estimate over tolerance because the
    /// width had already reached `dt_min` — graceful degradation instead of
    /// a hard abort. Always zero on the fixed grid.
    pub forced_accepts: usize,
    /// Total Newton iterations across all attempts (accepted and rejected).
    pub newton_iterations: usize,
    /// Smallest accepted step width, seconds (`+∞` before any step).
    pub min_dt: f64,
    /// Largest accepted step width, seconds (`0` before any step).
    pub max_dt: f64,
    /// Breakpoints the stepper landed on exactly (source discontinuities;
    /// the plain `t_stop` landing is not counted unless a discontinuity
    /// falls there). Always zero on the fixed grid.
    pub breakpoints_hit: usize,
    /// Linear-solver counters accumulated over the whole run.
    pub solve: SolveStats,
}

impl Default for TransientStats {
    fn default() -> Self {
        Self {
            accepted_steps: 0,
            rejected_steps: 0,
            forced_accepts: 0,
            newton_iterations: 0,
            min_dt: f64::INFINITY,
            max_dt: 0.0,
            breakpoints_hit: 0,
            solve: SolveStats::default(),
        }
    }
}

impl TransientStats {
    /// Records an accepted step of width `dt`.
    fn record_accept(&mut self, dt: f64) {
        self.accepted_steps += 1;
        self.min_dt = self.min_dt.min(dt);
        self.max_dt = self.max_dt.max(dt);
    }
}

/// Result of a transient run: node-voltage waveforms on a time grid.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `data[time_index][node_index]`.
    data: Vec<Vec<f64>>,
    stats: TransientStats,
}

impl TransientResult {
    /// The simulation time points in seconds, strictly increasing. The last
    /// point lands **exactly** on the requested `t_stop` (never past it —
    /// overshoot would corrupt overshoot/settling measurements read off the
    /// tail).
    ///
    /// The grid is **not uniform in general**: a fixed-grid run is
    /// `dt`-spaced except for a possibly shortened final step, while an
    /// adaptive run's spacing varies from `dt_min` to `dt_max` (and below
    /// `dt_min` only for breakpoint landings). Consumers must pair each
    /// sample with its entry here rather than assume `i * dt` — or use
    /// [`value_at`](TransientResult::value_at), which interpolates on the
    /// actual grid.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Step-control counters for the run (accepted/rejected steps, Newton
    /// iterations, min/max accepted `dt`, breakpoints hit, solver ladder
    /// counters).
    pub fn stats(&self) -> &TransientStats {
        &self.stats
    }

    /// Number of stored time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` when the result holds no time points.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Bounds-checks `node`'s index against the simulated circuit's node
    /// count and returns its waveform index. (A `NodeId` minted by a
    /// different circuit is only caught when its index is out of range —
    /// node ids carry no circuit identity.)
    fn node_index(&self, node: NodeId) -> Result<usize, SpiceError> {
        let idx = node.index();
        match self.data.first() {
            Some(row) if idx < row.len() => Ok(idx),
            _ => Err(SpiceError::UnknownReference(format!(
                "node index {idx} outside the transient result"
            ))),
        }
    }

    /// The waveform of a node across the whole run.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownReference`] when `node`'s index lies
    /// outside the simulated circuit's nodes (or the result is empty).
    pub fn waveform(&self, node: NodeId) -> Result<Vec<f64>, SpiceError> {
        let idx = self.node_index(node)?;
        Ok(self.data.iter().map(|row| row[idx]).collect())
    }

    /// The node voltage linearly interpolated at time `t` (clamped to the
    /// first/last sample outside the simulated range). Interpolation is over
    /// the **actual, possibly non-uniform** [`times`](TransientResult::times)
    /// grid — each bracketing sample pair is looked up by binary search, so
    /// adaptive runs interpolate correctly across their varying step widths.
    /// Interpolates directly over the stored rows via
    /// [`interp::lerp_at_by`] — the node's waveform vector is **not**
    /// materialized per call.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownReference`] when `node`'s index lies
    /// outside the simulated circuit's nodes (or the result is empty).
    pub fn value_at(&self, node: NodeId, t: f64) -> Result<f64, SpiceError> {
        let idx = self.node_index(node)?;
        Ok(interp::lerp_at_by(&self.times, t, |i| self.data[i][idx]))
    }
}

/// Transient analysis driver.
#[derive(Debug)]
pub struct TransientAnalysis<'c> {
    circuit: &'c Circuit,
    layout: MnaLayout,
    options: TransientOptions,
}

impl<'c> TransientAnalysis<'c> {
    /// Prepares a transient analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidOptions`] for a non-positive `dt_min`, a
    /// `dt_max` below `dt_min`, a `t_stop` shorter than one minimum step, a
    /// zero `max_newton`, non-finite or non-positive `vntol`/`reltol`/
    /// `abstol`, and [`SpiceError::Netlist`] if the circuit fails validation.
    pub fn new(circuit: &'c Circuit, options: TransientOptions) -> Result<Self, SpiceError> {
        circuit.validate().map_err(SpiceError::Netlist)?;
        if !(options.dt_min > 0.0 && options.dt_min.is_finite()) {
            return Err(SpiceError::InvalidOptions(
                "time step must be positive".to_string(),
            ));
        }
        if !(options.dt_max.is_finite() && options.dt_max >= options.dt_min) {
            return Err(SpiceError::InvalidOptions(
                "dt_max must be finite and at least dt_min".to_string(),
            ));
        }
        if options.max_newton == 0 {
            return Err(SpiceError::InvalidOptions(
                "max_newton must be at least 1".to_string(),
            ));
        }
        if !(options.vntol > 0.0 && options.vntol.is_finite()) {
            return Err(SpiceError::InvalidOptions(
                "vntol must be finite and positive".to_string(),
            ));
        }
        if !(options.reltol > 0.0 && options.reltol.is_finite()) {
            return Err(SpiceError::InvalidOptions(
                "reltol must be finite and positive".to_string(),
            ));
        }
        if !(options.abstol > 0.0 && options.abstol.is_finite()) {
            return Err(SpiceError::InvalidOptions(
                "abstol must be finite and positive".to_string(),
            ));
        }
        // `t_stop == dt_min` is a perfectly valid single-step run; only a
        // stop time short of one minimum step is inconsistent.
        let stop_valid = options.t_stop.is_finite() && options.t_stop >= options.dt_min;
        if !stop_valid {
            return Err(SpiceError::InvalidOptions(
                "stop time must be at least one time step".to_string(),
            ));
        }
        Ok(Self {
            circuit,
            layout: MnaLayout::new(circuit),
            options,
        })
    }

    /// Runs the transient analysis starting from the given operating point.
    ///
    /// Dispatches on the options: `dt_max == dt_min` runs the legacy
    /// fixed-grid loop (bitwise identical to its historical output),
    /// `dt_max > dt_min` runs the adaptive accept-or-escalate stepper (see
    /// the [module docs](crate::tran)).
    ///
    /// # Errors
    ///
    /// Returns a hard solver failure ([`SpiceError::SingularSystem`],
    /// [`SpiceError::NonFiniteStamp`], [`SpiceError::ResidualCheckFailed`] or
    /// [`SpiceError::Linear`]) if a time-point system cannot be solved even
    /// through the solver's retry ladder, or
    /// [`SpiceError::TransientNoConvergence`] — naming the time point, step
    /// index, worst-residual node and (on the adaptive path) the rejected
    /// step attempts — once the step ladder is exhausted at `dt_min`.
    pub fn run(&self, op: &OperatingPoint) -> Result<TransientResult, SpiceError> {
        self.run_impl(op, |_, _| {})
    }

    /// Like [`run`](TransientAnalysis::run), but invoking `hook` with the
    /// 0-based solve ordinal and the solver between assembly and the
    /// verified solve of **every** Newton iteration — the seam the
    /// fault-injection suites use to poison stamped values at a
    /// deterministic point of the run. Compiled only for tests and under the
    /// `fault-inject` feature; never part of the production surface.
    ///
    /// # Errors
    ///
    /// As [`run`](TransientAnalysis::run) — including any failure the
    /// injected perturbation provokes.
    #[cfg(any(test, feature = "fault-inject"))]
    pub fn run_with_hook(
        &self,
        op: &OperatingPoint,
        hook: impl FnMut(usize, &mut CachedMna<f64>),
    ) -> Result<TransientResult, SpiceError> {
        self.run_impl(op, hook)
    }

    fn run_impl<F: FnMut(usize, &mut CachedMna<f64>)>(
        &self,
        op: &OperatingPoint,
        hook: F,
    ) -> Result<TransientResult, SpiceError> {
        if self.options.is_adaptive() {
            self.run_adaptive(op, hook)
        } else {
            self.run_fixed(op, hook)
        }
    }

    /// The legacy fixed-grid loop. Every arithmetic operation on the
    /// waveform path is unchanged from before the adaptive stepper existed,
    /// so `dt_max == dt_min` options reproduce historical results bitwise.
    fn run_fixed<F: FnMut(usize, &mut CachedMna<f64>)>(
        &self,
        op: &OperatingPoint,
        mut hook: F,
    ) -> Result<TransientResult, SpiceError> {
        let node_count = self.circuit.node_count();
        let dt = self.options.dt_min;
        let t_stop = self.options.t_stop;
        // Step count covering 0..=t_stop. `ceil` alone is not enough: when
        // t_stop is not an exact multiple of dt the final full step would
        // land PAST t_stop (e.g. dt = 0.4, t_stop = 1.0 → grid 0.4, 0.8,
        // 1.2), and floating-point division rounds exact multiples UP a few
        // ulps (10e-6 / 1e-6 = 10.000…002), which a bare `ceil` turns into
        // a phantom ~1e-21-second step. Shaving a few ulps off the ratio
        // before ceiling collapses those near-exact cases back to the exact
        // grid; genuinely non-multiple stop times keep their extra step,
        // which the loop below shortens to end exactly at t_stop. The
        // `while` guard is a belt-and-suspenders floor so the shortened
        // step's width is strictly positive in every remaining case.
        let ratio = (t_stop / dt) * (1.0 - 8.0 * f64::EPSILON);
        let mut steps = (ratio.ceil() as usize).max(1);
        while steps > 1 && (steps - 1) as f64 * dt >= t_stop {
            steps -= 1;
        }

        // State carried between time points.
        let mut voltages = op.node_voltages().to_vec();
        let mut prev_cap_current: Vec<f64> = vec![0.0; self.circuit.elements().len()];
        let mut prev_ind_voltage: Vec<f64> = vec![0.0; self.circuit.elements().len()];
        let mut branch_currents: Vec<f64> = vec![0.0; self.layout.dim()];
        // Seed inductor currents from the operating point.
        for (ei, el) in self.circuit.elements().iter().enumerate() {
            if let Element::Inductor(l) = el {
                if let Some(i0) = op.branch_current(&l.name) {
                    if let Some(var) = self.layout.branch_var(&l.name) {
                        branch_currents[var] = i0;
                    }
                }
                prev_ind_voltage[ei] = voltages[l.a.index()] - voltages[l.b.index()];
            }
        }

        let mut times = Vec::with_capacity(steps + 1);
        let mut data = Vec::with_capacity(steps + 1);
        times.push(0.0);
        data.push(voltages.clone());

        // Companion-model restamping never changes the sparsity pattern, so
        // one cache serves every Newton iteration of every timestep.
        let mut solver = CachedMna::new();

        // Newton trial state, reused across every iteration of every step
        // (ground stays zero; all other entries are rewritten per iteration).
        // The solution buffer is hoisted too: `solve_verified_into` cycles it
        // through assemble → verified solve (the retry ladder's refinement
        // workspace and rhs backup live inside the solver and are warm after
        // the first step), so the steady-state Newton loop performs zero heap
        // allocations (proven by `tests/alloc_transient.rs`).
        let mut trial = voltages.clone();
        let mut next = vec![0.0; node_count];
        let mut solution = vec![0.0; self.layout.dim()];
        let mut stats = TransientStats::default();
        let mut solve_ordinal = 0usize;

        for step in 1..=steps {
            // The final step ends exactly at t_stop, shortened when t_stop
            // is not a multiple of dt; the companion models integrate over
            // the actual step width.
            let last = step == steps;
            let t = if last { t_stop } else { step as f64 * dt };
            let dt_step = if last {
                t_stop - (step - 1) as f64 * dt
            } else {
                dt
            };
            // Backward Euler start-up step for trapezoidal integration (see
            // [`Integration::Trapezoidal`]): the t = 0 reactive currents from
            // the DC operating point are not valid trapezoidal history when a
            // source is discontinuous at t = 0⁺.
            let method = if step == 1 {
                Integration::BackwardEuler
            } else {
                self.options.method
            };
            trial.copy_from_slice(&voltages);
            let mut converged = false;
            // Node with the largest voltage update at the most recent Newton
            // iteration — named in the non-convergence error so the user
            // knows which unknown refused to settle.
            let mut worst_node = None;

            for _ in 0..self.options.max_newton {
                let job = TimestepSystem {
                    analysis: self,
                    t,
                    dt: dt_step,
                    method,
                    left_limit: false,
                    trial: &trial,
                    prev: &voltages,
                    prev_cap_current: &prev_cap_current,
                    prev_ind_voltage: &prev_ind_voltage,
                    prev_solution: &branch_currents,
                };
                // `solve_verified_into` is exactly assemble + verify; the
                // split lets the (production no-op) hook poison the
                // assembled values in fault-injection runs.
                solver.assemble_into(&self.layout, &job, &mut solution);
                hook(solve_ordinal, &mut solver);
                solve_ordinal += 1;
                solver.verify_assembled(&self.layout, &mut solution)?;
                stats.newton_iterations += 1;

                let mut max_delta: f64 = 0.0;
                for node in self.circuit.signal_nodes_iter() {
                    let var = self.layout.node_var(node).expect("signal node");
                    let v = solution[var];
                    let delta = (v - trial[node.index()]).abs();
                    if delta >= max_delta {
                        max_delta = delta;
                        worst_node = Some(node);
                    }
                    next[node.index()] = v;
                }
                std::mem::swap(&mut trial, &mut next);
                if max_delta < self.options.vntol
                    || !self.circuit.elements().iter().any(Element::is_nonlinear)
                {
                    converged = true;
                    break;
                }
            }
            if !converged {
                let worst = worst_node
                    .map(|n| self.circuit.node_name(n).to_string())
                    .unwrap_or_else(|| "<none>".to_string());
                return Err(SpiceError::TransientNoConvergence {
                    time: t,
                    step,
                    worst_node: worst,
                    rejections: Vec::new(),
                });
            }

            // Update capacitor / inductor state for the next step.
            for (ei, el) in self.circuit.elements().iter().enumerate() {
                match el {
                    Element::Capacitor(c) => {
                        let v_new = trial[c.a.index()] - trial[c.b.index()];
                        let v_old = voltages[c.a.index()] - voltages[c.b.index()];
                        let i_new = match method {
                            Integration::BackwardEuler => c.farads / dt_step * (v_new - v_old),
                            Integration::Trapezoidal => {
                                2.0 * c.farads / dt_step * (v_new - v_old) - prev_cap_current[ei]
                            }
                        };
                        prev_cap_current[ei] = i_new;
                    }
                    Element::Inductor(l) => {
                        prev_ind_voltage[ei] = trial[l.a.index()] - trial[l.b.index()];
                    }
                    _ => {}
                }
            }
            branch_currents.copy_from_slice(&solution);
            std::mem::swap(&mut voltages, &mut trial);
            times.push(t);
            data.push(voltages.clone());
            stats.record_accept(dt_step);
        }

        stats.solve = solver.stats();
        Ok(TransientResult { times, data, stats })
    }

    /// The breakpoint schedule for this run: source discontinuities in
    /// `(0, t_stop]`, sorted and merged. Points within a relative tolerance
    /// of each other collapse to one landing (two ulp-apart edges must not
    /// force a degenerate ulp-wide step), and a point within tolerance of
    /// `t_stop` snaps onto it so the final landing doubles as the breakpoint
    /// landing.
    fn breakpoints(&self) -> Vec<f64> {
        let t_stop = self.options.t_stop;
        let tol = t_stop * 1.0e-12;
        let mut bps = Vec::new();
        for el in self.circuit.elements() {
            let spec = match el {
                Element::Vsource(v) => &v.spec,
                Element::Isource(i) => &i.spec,
                _ => continue,
            };
            spec.waveform.breakpoints(&mut bps);
        }
        for b in &mut bps {
            if (*b - t_stop).abs() <= tol {
                *b = t_stop;
            }
        }
        // `t = 0` needs no landing — the run starts there (and takes the
        // same backward-Euler restart step a breakpoint landing triggers).
        bps.retain(|&b| b > tol && b <= t_stop);
        bps.sort_by(f64::total_cmp);
        bps.dedup_by(|next, kept| *next - *kept <= tol);
        bps
    }

    /// The adaptive accept-or-escalate stepper (see the
    /// [module docs](crate::tran) for the ladder).
    fn run_adaptive<F: FnMut(usize, &mut CachedMna<f64>)>(
        &self,
        op: &OperatingPoint,
        mut hook: F,
    ) -> Result<TransientResult, SpiceError> {
        let node_count = self.circuit.node_count();
        let opts = &self.options;
        let t_stop = opts.t_stop;
        let bps = self.breakpoints();
        let nonlinear = self.circuit.elements().iter().any(Element::is_nonlinear);

        // State carried between time points (identical to the fixed grid).
        let mut voltages = op.node_voltages().to_vec();
        let mut prev_cap_current: Vec<f64> = vec![0.0; self.circuit.elements().len()];
        let mut prev_ind_voltage: Vec<f64> = vec![0.0; self.circuit.elements().len()];
        let mut branch_currents: Vec<f64> = vec![0.0; self.layout.dim()];
        for (ei, el) in self.circuit.elements().iter().enumerate() {
            if let Element::Inductor(l) = el {
                if let Some(i0) = op.branch_current(&l.name) {
                    if let Some(var) = self.layout.branch_var(&l.name) {
                        branch_currents[var] = i0;
                    }
                }
                prev_ind_voltage[ei] = voltages[l.a.index()] - voltages[l.b.index()];
            }
        }

        let mut times = vec![0.0];
        let mut data = vec![voltages.clone()];
        let mut solver = CachedMna::new();
        let mut trial = voltages.clone();
        let mut next = vec![0.0; node_count];
        let mut solution = vec![0.0; self.layout.dim()];
        let mut stats = TransientStats::default();
        let mut solve_ordinal = 0usize;

        // Predictor history: the accepted solution *before* `voltages` and
        // the step width that led from it to `voltages`. Invalidated across
        // discontinuities — linear extrapolation through a jump would be
        // meaningless as an error reference.
        let mut prev2 = vec![0.0; node_count];
        let mut hist_valid = false;
        let mut h_last = 0.0f64;

        let mut t = 0.0f64;
        // The controller's step. Starts (and restarts after every
        // breakpoint) at `dt_min`: right after a discontinuity there is no
        // LTE evidence yet, so the ladder re-earns its width by doubling.
        let mut h = opts.dt_min;
        // The step leaving a discontinuity (t = 0 or a breakpoint) runs
        // backward Euler — the reactive history is not valid trapezoidal
        // start-up state (see [`Integration::Trapezoidal`]).
        let mut post_disc = true;
        let mut bp_idx = 0usize;

        while t < t_stop {
            // ---- one accepted output sample: the attempt ladder ----
            let mut h_try = h;
            let mut force_be = false;
            let mut rejections: Vec<StepRejection> = Vec::new();
            // Skip breakpoints at or before the current time (exact landings
            // make `t` compare equal to a hit breakpoint).
            while bp_idx < bps.len() && bps[bp_idx] <= t {
                bp_idx += 1;
            }

            loop {
                // Candidate step: the controller's width clamped to land
                // exactly on t_stop and on the next breakpoint. Exact
                // targets are assigned (not accumulated) so the grid hits
                // them bit-exactly.
                let remaining = t_stop - t;
                let mut h_c = h_try.min(remaining);
                let mut target = if h_c >= remaining { t_stop } else { t + h_c };
                let mut landing = false;
                if bp_idx < bps.len() {
                    let b = bps[bp_idx];
                    if b - t <= h_c {
                        h_c = b - t;
                        target = b;
                        landing = true;
                    }
                }
                let t_new = target;
                let method = if post_disc || force_be {
                    Integration::BackwardEuler
                } else {
                    opts.method
                };

                // Newton at (t_new, h_c). A landing step evaluates sources
                // by their left limit: the discontinuity belongs to the
                // *next* step, never to the one integrating up to it.
                trial.copy_from_slice(&voltages);
                let mut converged = false;
                let mut worst_node = None;
                for _ in 0..opts.max_newton {
                    let job = TimestepSystem {
                        analysis: self,
                        t: t_new,
                        dt: h_c,
                        method,
                        left_limit: landing,
                        trial: &trial,
                        prev: &voltages,
                        prev_cap_current: &prev_cap_current,
                        prev_ind_voltage: &prev_ind_voltage,
                        prev_solution: &branch_currents,
                    };
                    solver.assemble_into(&self.layout, &job, &mut solution);
                    hook(solve_ordinal, &mut solver);
                    solve_ordinal += 1;
                    solver.verify_assembled(&self.layout, &mut solution)?;
                    stats.newton_iterations += 1;

                    let mut max_delta: f64 = 0.0;
                    for node in self.circuit.signal_nodes_iter() {
                        let var = self.layout.node_var(node).expect("signal node");
                        let v = solution[var];
                        let delta = (v - trial[node.index()]).abs();
                        if delta >= max_delta {
                            max_delta = delta;
                            worst_node = Some(node);
                        }
                        next[node.index()] = v;
                    }
                    std::mem::swap(&mut trial, &mut next);
                    if max_delta < opts.vntol || !nonlinear {
                        converged = true;
                        break;
                    }
                }

                if !converged {
                    // Newton non-convergence is a rejection rung: halve
                    // toward dt_min, then switch the step to backward Euler,
                    // then surface the whole ladder history.
                    stats.rejected_steps += 1;
                    rejections.push(StepRejection {
                        time: t_new,
                        dt: h_c,
                        reason: StepRejectReason::NewtonNoConvergence,
                    });
                    if h_c > opts.dt_min {
                        h_try = (h_c * 0.5).max(opts.dt_min);
                        continue;
                    }
                    if method == Integration::Trapezoidal {
                        force_be = true;
                        continue;
                    }
                    let worst = worst_node
                        .map(|n| self.circuit.node_name(n).to_string())
                        .unwrap_or_else(|| "<none>".to_string());
                    return Err(SpiceError::TransientNoConvergence {
                        time: t_new,
                        step: stats.accepted_steps + 1,
                        worst_node: worst,
                        rejections,
                    });
                }

                // LTE accept test: predictor–corrector difference. The
                // predictor extrapolates linearly through the two previous
                // accepted points; the difference to the corrector (the
                // solved step) estimates the local truncation error. Skipped
                // on restart steps (no valid history across a discontinuity)
                // — those run at dt_min, where the ladder would accept
                // anyway.
                let mut grow = false;
                if hist_valid && !post_disc {
                    let scale = h_c / h_last;
                    let mut ratio: f64 = 0.0;
                    for node in self.circuit.signal_nodes_iter() {
                        let i = node.index();
                        let x_new = trial[i];
                        let x_prev = voltages[i];
                        let predicted = x_prev + (x_prev - prev2[i]) * scale;
                        let err = (x_new - predicted).abs();
                        let tol = opts.reltol * x_new.abs().max(x_prev.abs()) + opts.abstol;
                        ratio = ratio.max(err / tol);
                    }
                    if ratio > 1.0 {
                        if h_c > opts.dt_min {
                            stats.rejected_steps += 1;
                            rejections.push(StepRejection {
                                time: t_new,
                                dt: h_c,
                                reason: StepRejectReason::LteExceeded { ratio },
                            });
                            h_try = (h_c * 0.5).max(opts.dt_min);
                            continue;
                        }
                        // Already at the floor: accept anyway (graceful
                        // degradation — the fixed grid would have silently
                        // taken this step too) and count it.
                        stats.forced_accepts += 1;
                    } else if ratio <= LTE_GROW_THRESHOLD {
                        grow = true;
                    }
                }

                // ---- accept ----
                for (ei, el) in self.circuit.elements().iter().enumerate() {
                    match el {
                        Element::Capacitor(c) => {
                            let v_new = trial[c.a.index()] - trial[c.b.index()];
                            let v_old = voltages[c.a.index()] - voltages[c.b.index()];
                            let i_new = match method {
                                Integration::BackwardEuler => c.farads / h_c * (v_new - v_old),
                                Integration::Trapezoidal => {
                                    2.0 * c.farads / h_c * (v_new - v_old) - prev_cap_current[ei]
                                }
                            };
                            prev_cap_current[ei] = i_new;
                        }
                        Element::Inductor(l) => {
                            prev_ind_voltage[ei] = trial[l.a.index()] - trial[l.b.index()];
                        }
                        _ => {}
                    }
                }
                branch_currents.copy_from_slice(&solution);
                if landing || post_disc {
                    // The point before this step sits across (or on) a
                    // discontinuity — no extrapolation through it.
                    hist_valid = false;
                } else {
                    prev2.copy_from_slice(&voltages);
                    h_last = h_c;
                    hist_valid = true;
                }
                std::mem::swap(&mut voltages, &mut trial);
                t = t_new;
                times.push(t);
                data.push(voltages.clone());
                stats.record_accept(h_c);

                if landing {
                    stats.breakpoints_hit += 1;
                    bp_idx += 1;
                    post_disc = true;
                    h = opts.dt_min;
                } else {
                    post_disc = false;
                    // Grow from the post-rejection width (`h_try`), not the
                    // possibly landing-shortened `h_c`: an exact landing
                    // must not shrink the controller.
                    h = if grow {
                        (h_try * 2.0).min(opts.dt_max)
                    } else {
                        h_try
                    };
                }
                break;
            }
        }

        stats.solve = solver.stats();
        Ok(TransientResult { times, data, stats })
    }

    /// Stamps the MNA system for one Newton iteration of one time point.
    ///
    /// With `left_limit` set (a breakpoint-landing step), independent
    /// sources are evaluated by their left limit at `t` so the step sees
    /// only the pre-discontinuity waveform.
    #[allow(clippy::too_many_arguments)]
    fn stamp_timestep<S: MatrixSink<f64>>(
        &self,
        st: &mut Stamper<'_, f64, S>,
        t: f64,
        dt: f64,
        method: Integration,
        left_limit: bool,
        trial: &[f64],
        prev: &[f64],
        prev_cap_current: &[f64],
        prev_ind_voltage: &[f64],
        prev_solution: &[f64],
    ) {
        let trapezoidal = method == Integration::Trapezoidal;
        let source_value = |spec: &loopscope_netlist::SourceSpec| {
            if left_limit {
                spec.value_at_left(t)
            } else {
                spec.value_at(t)
            }
        };

        for node in self.circuit.signal_nodes_iter() {
            st.add_node_node(node, node, GMIN);
        }

        for (ei, el) in self.circuit.elements().iter().enumerate() {
            match el {
                Element::Resistor(r) => st.stamp_admittance(r.a, r.b, 1.0 / r.ohms),
                Element::Capacitor(c) => {
                    let v_old = prev[c.a.index()] - prev[c.b.index()];
                    if trapezoidal {
                        let geq = 2.0 * c.farads / dt;
                        let ieq = geq * v_old + prev_cap_current[ei];
                        st.stamp_admittance(c.a, c.b, geq);
                        st.add_rhs_node(c.a, ieq);
                        st.add_rhs_node(c.b, -ieq);
                    } else {
                        let geq = c.farads / dt;
                        let ieq = geq * v_old;
                        st.stamp_admittance(c.a, c.b, geq);
                        st.add_rhs_node(c.a, ieq);
                        st.add_rhs_node(c.b, -ieq);
                    }
                }
                Element::Inductor(l) => {
                    let br = self.layout.branch_var(&l.name).expect("branch");
                    let i_old = prev_solution[br];
                    st.add_var_node(br, l.a, 1.0);
                    st.add_var_node(br, l.b, -1.0);
                    st.add_node_var(l.a, br, 1.0);
                    st.add_node_var(l.b, br, -1.0);
                    if trapezoidal {
                        let req = 2.0 * l.henries / dt;
                        st.add_var_var(br, br, -req);
                        st.add_rhs_var(br, -req * i_old - prev_ind_voltage[ei]);
                    } else {
                        let req = l.henries / dt;
                        st.add_var_var(br, br, -req);
                        st.add_rhs_var(br, -req * i_old);
                    }
                }
                Element::Vsource(v) => {
                    let br = self.layout.branch_var(&v.name).expect("branch");
                    st.add_var_node(br, v.plus, 1.0);
                    st.add_var_node(br, v.minus, -1.0);
                    st.add_node_var(v.plus, br, 1.0);
                    st.add_node_var(v.minus, br, -1.0);
                    st.add_rhs_var(br, source_value(&v.spec));
                }
                Element::Isource(i) => {
                    st.stamp_current_injection(i.minus, i.plus, source_value(&i.spec));
                }
                Element::Vcvs(e) => {
                    let br = self.layout.branch_var(&e.name).expect("branch");
                    st.add_var_node(br, e.out_plus, 1.0);
                    st.add_var_node(br, e.out_minus, -1.0);
                    st.add_var_node(br, e.ctrl_plus, -e.gain);
                    st.add_var_node(br, e.ctrl_minus, e.gain);
                    st.add_node_var(e.out_plus, br, 1.0);
                    st.add_node_var(e.out_minus, br, -1.0);
                }
                Element::Vccs(g) => {
                    st.stamp_vccs(g.out_plus, g.out_minus, g.ctrl_plus, g.ctrl_minus, g.gm)
                }
                Element::Cccs(f) => {
                    let ctrl = self
                        .layout
                        .branch_var(&f.ctrl_vsource)
                        .expect("controlling source validated");
                    st.add_node_var(f.out_plus, ctrl, f.gain);
                    st.add_node_var(f.out_minus, ctrl, -f.gain);
                }
                Element::Ccvs(h) => {
                    let br = self.layout.branch_var(&h.name).expect("branch");
                    let ctrl = self
                        .layout
                        .branch_var(&h.ctrl_vsource)
                        .expect("controlling source validated");
                    st.add_var_node(br, h.out_plus, 1.0);
                    st.add_var_node(br, h.out_minus, -1.0);
                    st.add_var_var(br, ctrl, -h.rm);
                    st.add_node_var(h.out_plus, br, 1.0);
                    st.add_node_var(h.out_minus, br, -1.0);
                }
                Element::Diode(d) => {
                    apply_nonlinear(st, devices::stamp_diode(d, trial));
                }
                Element::Bjt(q) => {
                    apply_nonlinear(st, devices::stamp_bjt(q, trial));
                }
                Element::Mosfet(m) => {
                    apply_nonlinear(st, devices::stamp_mosfet(m, trial));
                }
            }
        }
    }
}

/// Assembly job for one Newton iteration of one transient time point.
struct TimestepSystem<'a, 'c> {
    analysis: &'a TransientAnalysis<'c>,
    t: f64,
    dt: f64,
    method: Integration,
    /// Evaluate sources by their left limit at `t` (breakpoint landing).
    left_limit: bool,
    trial: &'a [f64],
    prev: &'a [f64],
    prev_cap_current: &'a [f64],
    prev_ind_voltage: &'a [f64],
    prev_solution: &'a [f64],
}

impl AssembleMna<f64> for TimestepSystem<'_, '_> {
    fn stamp<S: MatrixSink<f64>>(&self, st: &mut Stamper<'_, f64, S>) {
        self.analysis.stamp_timestep(
            st,
            self.t,
            self.dt,
            self.method,
            self.left_limit,
            self.trial,
            self.prev,
            self.prev_cap_current,
            self.prev_ind_voltage,
            self.prev_solution,
        );
    }
}

fn apply_nonlinear<S: MatrixSink<f64>>(
    st: &mut Stamper<'_, f64, S>,
    stamp: devices::NonlinearStamp,
) {
    for (r, c, g) in stamp.conductances {
        st.add_node_node(r, c, g);
    }
    for (n, i) in stamp.rhs_currents {
        st.add_rhs_node(n, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::solve_dc;
    use loopscope_netlist::SourceSpec;

    #[test]
    fn rc_charging_curve() {
        // Step from 0 to 1 V through 1 kΩ into 1 µF: τ = 1 ms.
        let mut c = Circuit::new("rc step");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 1.0, 0.0));
        c.add_resistor("R1", vin, vout, 1.0e3);
        c.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-6);
        let op = solve_dc(&c).unwrap();
        let tran = TransientAnalysis::new(&c, TransientOptions::new(10.0e-6, 5.0e-3)).unwrap();
        let result = tran.run(&op).unwrap();
        // After one time constant: 1 − e^-1 ≈ 0.632.
        let v_tau = result.value_at(vout, 1.0e-3).unwrap();
        assert!((v_tau - 0.632).abs() < 0.01, "v(τ) = {v_tau}");
        // Fully settled by 5τ.
        let v_end = result.value_at(vout, 5.0e-3).unwrap();
        assert!((v_end - 1.0).abs() < 0.01, "v(5τ) = {v_end}");
    }

    #[test]
    fn lc_oscillation_period_with_trapezoidal() {
        // A lightly damped series RLC ringing at f0 = 1/(2π√(LC)).
        let mut c = Circuit::new("rlc ring");
        let vin = c.node("in");
        let mid = c.node("mid");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 1.0, 0.0));
        c.add_resistor("R1", vin, mid, 5.0);
        c.add_inductor("L1", mid, vout, 1.0e-3);
        c.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-9);
        let op = solve_dc(&c).unwrap();
        // f0 ≈ 159 kHz → period ≈ 6.28 µs; run 40 µs at 20 ns.
        let tran = TransientAnalysis::new(&c, TransientOptions::new(20.0e-9, 40.0e-6)).unwrap();
        let result = tran.run(&op).unwrap();
        let wave = result.waveform(vout).unwrap();
        let times = result.times();
        // Find the first two upward crossings of the final value 1.0.
        let mut crossings = Vec::new();
        for i in 1..wave.len() {
            if wave[i - 1] < 1.0 && wave[i] >= 1.0 {
                crossings.push(times[i]);
            }
        }
        assert!(crossings.len() >= 2, "expected ringing");
        let period = (crossings[1] - crossings[0]) * 1.0; // full period between same-direction crossings
        assert!(
            (period - 6.28e-6).abs() / 6.28e-6 < 0.1,
            "period = {period}"
        );
        // Overshoot close to 100 % (very low damping).
        let peak = wave.iter().cloned().fold(0.0, f64::max);
        assert!(peak > 1.7, "peak = {peak}");
    }

    #[test]
    fn backward_euler_damps_more_than_trapezoidal() {
        let build = || {
            let mut c = Circuit::new("ring");
            let vin = c.node("in");
            let mid = c.node("mid");
            let vout = c.node("out");
            c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 1.0, 0.0));
            c.add_resistor("R1", vin, mid, 20.0);
            c.add_inductor("L1", mid, vout, 1.0e-3);
            c.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-9);
            c
        };
        let run = |method: Integration| {
            let c = build();
            let op = solve_dc(&c).unwrap();
            let mut opts = TransientOptions::new(50.0e-9, 30.0e-6);
            opts.method = method;
            let tran = TransientAnalysis::new(&c, opts).unwrap();
            let r = tran.run(&op).unwrap();
            let out = c.find_node("out").unwrap();
            r.waveform(out).unwrap().iter().cloned().fold(0.0, f64::max)
        };
        let peak_trap = run(Integration::Trapezoidal);
        let peak_be = run(Integration::BackwardEuler);
        assert!(peak_trap > peak_be, "trap {peak_trap} vs BE {peak_be}");
    }

    #[test]
    fn diode_rectifier_clamps_negative_half() {
        use loopscope_netlist::DiodeModel;
        let mut c = Circuit::new("rect");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource(
            "V1",
            vin,
            Circuit::GROUND,
            loopscope_netlist::SourceSpec {
                dc: 0.0,
                ac_mag: 0.0,
                ac_phase_deg: 0.0,
                waveform: loopscope_netlist::Waveform::Sine {
                    offset: 0.0,
                    amplitude: 2.0,
                    freq_hz: 1.0e3,
                    delay: 0.0,
                },
            },
        );
        c.add_diode("D1", vin, vout, DiodeModel::default());
        c.add_resistor("RL", vout, Circuit::GROUND, 1.0e3);
        let op = solve_dc(&c).unwrap();
        let tran = TransientAnalysis::new(&c, TransientOptions::new(2.0e-6, 2.0e-3)).unwrap();
        let result = tran.run(&op).unwrap();
        let wave = result.waveform(vout).unwrap();
        let min = wave.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = wave.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Positive peaks pass (minus a diode drop), negative half is clamped.
        assert!(max > 1.0, "max = {max}");
        assert!(min > -0.3, "min = {min}");
    }

    #[test]
    fn invalid_options_rejected() {
        let mut c = Circuit::new("x");
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0);
        c.add_capacitor("C1", a, Circuit::GROUND, 1e-9);
        assert!(TransientAnalysis::new(&c, TransientOptions::new(0.0, 1.0)).is_err());
        assert!(TransientAnalysis::new(&c, TransientOptions::new(1.0, 0.5)).is_err());
        let mut zero_newton = TransientOptions::new(1.0e-6, 1.0e-3);
        zero_newton.max_newton = 0;
        assert!(matches!(
            TransientAnalysis::new(&c, zero_newton),
            Err(SpiceError::InvalidOptions(msg)) if msg.contains("max_newton")
        ));
        let mut bad_vntol = TransientOptions::new(1.0e-6, 1.0e-3);
        bad_vntol.vntol = f64::NAN;
        assert!(matches!(
            TransientAnalysis::new(&c, bad_vntol),
            Err(SpiceError::InvalidOptions(msg)) if msg.contains("vntol")
        ));
    }

    #[test]
    fn no_convergence_error_names_time_step_and_node() {
        use loopscope_netlist::DiodeModel;
        // A hard-driven diode with a single Newton iteration per step cannot
        // settle; the failure must name the time point, step index and the
        // node whose update was largest.
        let mut c = Circuit::new("stiff");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 5.0, 0.0));
        c.add_resistor("R1", vin, vout, 1.0e3);
        c.add_diode("D1", vout, Circuit::GROUND, DiodeModel::default());
        let op = solve_dc(&c).unwrap();
        let mut opts = TransientOptions::new(1.0e-6, 10.0e-6);
        opts.max_newton = 1;
        let tran = TransientAnalysis::new(&c, opts).unwrap();
        match tran.run(&op) {
            Err(SpiceError::TransientNoConvergence {
                time,
                step,
                worst_node,
                rejections,
            }) => {
                assert!(time > 0.0 && time <= 10.0e-6);
                assert!(step >= 1);
                assert!(
                    worst_node == "out" || worst_node == "in",
                    "worst_node = {worst_node}"
                );
                // The fixed grid has no retry ladder — no recorded attempts.
                assert!(rejections.is_empty());
            }
            other => panic!("expected TransientNoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn result_accessors() {
        let mut c = Circuit::new("acc");
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1.0e3);
        let op = solve_dc(&c).unwrap();
        let tran = TransientAnalysis::new(&c, TransientOptions::new(1.0e-6, 10.0e-6)).unwrap();
        let r = tran.run(&op).unwrap();
        // 10 steps of 1 µs plus the initial point — exactly, now that the
        // grid clamps to t_stop instead of letting t_stop/dt ceiling
        // overshoot.
        assert_eq!(r.len(), 11);
        assert!(!r.is_empty());
        assert_eq!(*r.times().last().unwrap(), 10.0e-6);
        assert_eq!(r.times().len(), r.len());
        assert!((r.value_at(a, 5.0e-6).unwrap() - 1.0).abs() < 1e-9);
    }

    /// A circuit whose transient response is trivially flat, for grid tests.
    fn dc_circuit() -> (Circuit, NodeId) {
        let mut c = Circuit::new("grid");
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1.0e3);
        c.add_capacitor("C1", a, Circuit::GROUND, 1.0e-9);
        (c, a)
    }

    #[test]
    fn grid_ends_exactly_at_t_stop_for_non_multiple_dt() {
        let (c, _) = dc_circuit();
        let op = solve_dc(&c).unwrap();
        // 10 µs is NOT a multiple of 3 µs: the old `ceil` grid ended at
        // 12 µs, past the requested stop time.
        let tran = TransientAnalysis::new(&c, TransientOptions::new(3.0e-6, 10.0e-6)).unwrap();
        let r = tran.run(&op).unwrap();
        let times = r.times();
        assert_eq!(*times.last().unwrap(), 10.0e-6, "times = {times:?}");
        assert!(times.windows(2).all(|w| w[0] < w[1]), "times = {times:?}");
        assert!(times.iter().all(|&t| t <= 10.0e-6), "times = {times:?}");
        // 0, 3, 6, 9 µs plus the shortened final step to exactly 10 µs.
        assert_eq!(r.len(), 5, "times = {times:?}");
    }

    #[test]
    fn grid_handles_ratio_that_rounds_up() {
        let (c, _) = dc_circuit();
        let op = solve_dc(&c).unwrap();
        // 0.3/0.1 computes as 2.9999…96 in f64 but other exact-multiple
        // ratios round UP, creating a phantom step whose shortened width
        // would be ≤ 0; either way the grid must end exactly at t_stop with
        // strictly increasing times.
        for (dt, t_stop) in [
            (0.1e-3, 0.3e-3),
            (1.0e-6, 10.0e-6),
            (0.4, 1.0),
            (7.0e-7, 9.1e-6),
        ] {
            let tran = TransientAnalysis::new(&c, TransientOptions::new(dt, t_stop)).unwrap();
            let r = tran.run(&op).unwrap();
            let times = r.times();
            assert_eq!(
                *times.last().unwrap(),
                t_stop,
                "dt={dt}, t_stop={t_stop}: times end at {:?}",
                times.last()
            );
            assert!(
                times.windows(2).all(|w| w[0] < w[1]),
                "dt={dt}, t_stop={t_stop}: non-increasing grid {times:?}"
            );
        }
    }

    #[test]
    fn single_step_run_is_valid() {
        let (c, a) = dc_circuit();
        let op = solve_dc(&c).unwrap();
        // t_stop == dt: exactly one step, previously rejected by validation.
        let tran = TransientAnalysis::new(&c, TransientOptions::new(2.0e-6, 2.0e-6)).unwrap();
        let r = tran.run(&op).unwrap();
        assert_eq!(r.times(), &[0.0, 2.0e-6]);
        assert!((r.value_at(a, 2.0e-6).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn out_of_range_node_is_an_error_not_a_panic() {
        let (c, _) = dc_circuit();
        let op = solve_dc(&c).unwrap();
        let tran = TransientAnalysis::new(&c, TransientOptions::new(1.0e-6, 5.0e-6)).unwrap();
        let r = tran.run(&op).unwrap();
        // A node id minted by a BIGGER circuit does not exist in this result.
        let mut big = Circuit::new("bigger");
        let mut foreign = big.node("n0");
        for i in 1..8 {
            foreign = big.node(&format!("n{i}"));
        }
        assert!(foreign.index() >= c.node_count());
        assert!(matches!(
            r.waveform(foreign),
            Err(SpiceError::UnknownReference(_))
        ));
        assert!(matches!(
            r.value_at(foreign, 1.0e-6),
            Err(SpiceError::UnknownReference(_))
        ));
    }

    #[test]
    fn value_at_lerps_on_non_uniform_grid() {
        // A hand-built result with wildly non-uniform spacing (what an
        // adaptive run produces): interpolation must bracket by the actual
        // times, not assume `i * dt`.
        let (c, a) = dc_circuit();
        assert_eq!(a.index(), 1);
        let r = TransientResult {
            times: vec![0.0, 1.0e-6, 5.0e-6, 6.0e-6],
            data: vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![0.0, 3.0],
                vec![0.0, 10.0],
            ],
            stats: TransientStats::default(),
        };
        drop(c);
        // Exact samples.
        assert_eq!(r.value_at(a, 1.0e-6).unwrap(), 1.0);
        assert_eq!(r.value_at(a, 6.0e-6).unwrap(), 10.0);
        // Midpoints of unequal intervals.
        assert!((r.value_at(a, 3.0e-6).unwrap() - 2.0).abs() < 1e-12);
        assert!((r.value_at(a, 5.5e-6).unwrap() - 6.5).abs() < 1e-12);
        // Clamped outside the range.
        assert_eq!(r.value_at(a, -1.0).unwrap(), 0.0);
        assert_eq!(r.value_at(a, 1.0).unwrap(), 10.0);
    }

    /// Two-time-constant RC: fast branch τ = 1 µs, slow branch τ = 10 ms
    /// (ratio 1e4) off one stepped source.
    fn stiff_rc() -> Circuit {
        let mut c = Circuit::new("stiff rc");
        let vin = c.node("in");
        let fast = c.node("fast");
        let slow = c.node("slow");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 1.0, 0.0));
        c.add_resistor("R1", vin, fast, 1.0e3);
        c.add_capacitor("C1", fast, Circuit::GROUND, 1.0e-9);
        c.add_resistor("R2", vin, slow, 1.0e6);
        c.add_capacitor("C2", slow, Circuit::GROUND, 10.0e-9);
        c
    }

    #[test]
    fn adaptive_resolves_both_time_constants_with_few_steps() {
        let c = stiff_rc();
        let op = solve_dc(&c).unwrap();
        let t_stop = 20.0e-3;
        let opts = TransientOptions::adaptive(10.0e-9, 0.5e-3, t_stop);
        let r = TransientAnalysis::new(&c, opts).unwrap().run(&op).unwrap();
        let fast = c.find_node("fast").unwrap();
        let slow = c.find_node("slow").unwrap();
        // Both exponentials tracked despite the 1e4 τ ratio.
        for (node, tau) in [(fast, 1.0e-6), (slow, 10.0e-3)] {
            for mult in [1.0, 2.0, 5.0] {
                let t = tau * mult;
                if t > t_stop {
                    continue;
                }
                let want = 1.0 - (-t / tau).exp();
                let got = r.value_at(node, t).unwrap();
                assert!(
                    (got - want).abs() < 5.0e-3,
                    "node τ={tau}, t={t}: got {got}, want {want}"
                );
            }
        }
        let stats = r.stats();
        // A fixed grid resolving τ = 1 µs over 20 ms needs tens of
        // thousands of steps; the adaptive ladder does it in a few hundred.
        assert!(
            stats.accepted_steps < 2_000,
            "accepted = {}",
            stats.accepted_steps
        );
        assert_eq!(stats.accepted_steps, r.len() - 1);
        assert!(stats.min_dt <= stats.max_dt);
        assert!(stats.max_dt <= opts.dt_max);
        assert!(stats.newton_iterations >= stats.accepted_steps);
        // The grid actually varied: it grew well beyond dt_min.
        assert!(
            stats.max_dt > 100.0 * opts.dt_min,
            "max_dt = {}",
            stats.max_dt
        );
        assert_eq!(*r.times().last().unwrap(), t_stop);
        assert!(r.times().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn adaptive_lands_exactly_on_source_breakpoints() {
        // STEP delayed to 2.5 µs: the stepper must produce a sample at
        // exactly that time, with the pre-jump (left-limit) value.
        let mut c = Circuit::new("delayed step");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource(
            "V1",
            vin,
            Circuit::GROUND,
            SourceSpec::step(0.0, 1.0, 2.5e-6),
        );
        c.add_resistor("R1", vin, vout, 1.0e3);
        c.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-9);
        let op = solve_dc(&c).unwrap();
        let opts = TransientOptions::adaptive(5.0e-9, 1.0e-6, 10.0e-6);
        let r = TransientAnalysis::new(&c, opts).unwrap().run(&op).unwrap();
        assert_eq!(r.stats().breakpoints_hit, 1);
        assert!(
            r.times().contains(&2.5e-6),
            "no exact landing in {:?}",
            r.times()
        );
        // Left limit at the breakpoint: the jump is not integrated across,
        // so the waveform is still exactly at its pre-step value there.
        let at_bp = r.value_at(vout, 2.5e-6).unwrap();
        assert!(at_bp.abs() < 1e-12, "v(breakpoint) = {at_bp}");
        // And well settled by the end (τ = 1 µs, 7.5 µs after the step).
        let at_end = r.value_at(vout, 10.0e-6).unwrap();
        assert!((at_end - 1.0).abs() < 5e-3, "v(end) = {at_end}");
    }

    #[test]
    fn adaptive_error_carries_rejection_history() {
        use loopscope_netlist::DiodeModel;
        // Same hard-driven diode as the fixed-grid error test, adaptive:
        // with one Newton iteration per attempt the ladder must halve down
        // to dt_min, switch to BE, and then surface every attempt.
        let mut c = Circuit::new("stiff diode");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 5.0, 0.0));
        c.add_resistor("R1", vin, vout, 1.0e3);
        c.add_diode("D1", vout, Circuit::GROUND, DiodeModel::default());
        let op = solve_dc(&c).unwrap();
        let mut opts = TransientOptions::adaptive(0.25e-6, 2.0e-6, 10.0e-6);
        opts.max_newton = 1;
        let tran = TransientAnalysis::new(&c, opts).unwrap();
        match tran.run(&op) {
            Err(SpiceError::TransientNoConvergence {
                time,
                step,
                worst_node,
                rejections,
            }) => {
                assert!(time > 0.0 && time <= 10.0e-6);
                assert!(step >= 1);
                assert!(
                    worst_node == "out" || worst_node == "in",
                    "worst_node = {worst_node}"
                );
                assert!(!rejections.is_empty());
                // The ladder bottomed out at dt_min before giving up.
                let smallest = rejections
                    .iter()
                    .map(|r| r.dt)
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    smallest <= opts.dt_min * (1.0 + 1e-12),
                    "smallest {smallest}"
                );
                assert!(rejections.iter().all(|r| matches!(
                    r.reason,
                    crate::error::StepRejectReason::NewtonNoConvergence
                )));
            }
            other => panic!("expected TransientNoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_adaptive_options_take_the_fixed_grid_path() {
        let (c, a) = dc_circuit();
        let op = solve_dc(&c).unwrap();
        let fixed = TransientOptions::new(1.0e-6, 10.0e-6);
        let degenerate = TransientOptions::adaptive(1.0e-6, 1.0e-6, 10.0e-6);
        assert!(!degenerate.is_adaptive());
        let rf = TransientAnalysis::new(&c, fixed).unwrap().run(&op).unwrap();
        let rd = TransientAnalysis::new(&c, degenerate)
            .unwrap()
            .run(&op)
            .unwrap();
        // Bitwise identical grids and waveforms.
        assert_eq!(rf.times(), rd.times());
        let (wf, wd) = (rf.waveform(a).unwrap(), rd.waveform(a).unwrap());
        assert!(wf.iter().zip(&wd).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(rd.stats().rejected_steps, 0);
        assert_eq!(rd.stats().breakpoints_hit, 0);
        assert_eq!(rd.stats().accepted_steps, 10);
        // The final fixed step's width is computed as `t_stop - 9·dt`, a few
        // ulps off dt — the stats record what was actually integrated.
        assert!((rd.stats().min_dt - 1.0e-6).abs() < 1e-18);
        assert!((rd.stats().max_dt - 1.0e-6).abs() < 1e-18);
    }

    #[test]
    fn invalid_adaptive_options_rejected() {
        let (c, _) = dc_circuit();
        // dt_max below dt_min.
        assert!(matches!(
            TransientAnalysis::new(&c, TransientOptions::adaptive(1.0e-6, 0.5e-6, 1.0e-3)),
            Err(SpiceError::InvalidOptions(msg)) if msg.contains("dt_max")
        ));
        let mut bad_reltol = TransientOptions::adaptive(1.0e-6, 1.0e-4, 1.0e-3);
        bad_reltol.reltol = 0.0;
        assert!(matches!(
            TransientAnalysis::new(&c, bad_reltol),
            Err(SpiceError::InvalidOptions(msg)) if msg.contains("reltol")
        ));
        let mut bad_abstol = TransientOptions::adaptive(1.0e-6, 1.0e-4, 1.0e-3);
        bad_abstol.abstol = f64::NAN;
        assert!(matches!(
            TransientAnalysis::new(&c, bad_abstol),
            Err(SpiceError::InvalidOptions(msg)) if msg.contains("abstol")
        ));
    }

    #[test]
    fn rc_charge_is_accurate_at_clamped_final_point() {
        // τ = 1 ms; stop mid-curve at a non-multiple of dt so the final
        // (shortened) step actually integrates: the value at t_stop must
        // match the analytic exponential, proving the companion models used
        // the shortened width rather than a full dt.
        let mut c = Circuit::new("rc clamp");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 1.0, 0.0));
        c.add_resistor("R1", vin, vout, 1.0e3);
        c.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-6);
        let op = solve_dc(&c).unwrap();
        let t_stop = 0.73e-3; // 73 steps of 10 µs
        let tran = TransientAnalysis::new(&c, TransientOptions::new(10.1e-6, t_stop)).unwrap();
        let r = tran.run(&op).unwrap();
        assert_eq!(*r.times().last().unwrap(), t_stop);
        let expected = 1.0 - (-t_stop / 1.0e-3_f64).exp();
        let got = r.value_at(vout, t_stop).unwrap();
        assert!((got - expected).abs() < 5e-3, "{got} vs {expected}");
    }
}
