//! Transient (time-domain) analysis.
//!
//! Transient analysis is the substrate for the *traditional* stability check
//! the paper compares against — "node pulsing": apply a small step to the
//! closed-loop circuit and read the overshoot of the response. Fixed-step
//! integration with either backward Euler or trapezoidal companion models is
//! used; nonlinear devices are resolved with Newton iteration at every step.

use crate::assembly::{AssembleMna, CachedMna};
use crate::dc::OperatingPoint;
use crate::devices;
use crate::error::SpiceError;
use crate::mna::{MatrixSink, MnaLayout, Stamper};
use crate::GMIN;
use loopscope_math::interp;
use loopscope_netlist::{Circuit, Element, NodeId};

/// Time-integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integration {
    /// Backward Euler: L-stable, slightly lossy; good default for stiff
    /// circuits and start-up transients.
    BackwardEuler,
    /// Trapezoidal rule: second-order accurate, preserves oscillation
    /// amplitude much better — preferred for ringing/overshoot measurements.
    ///
    /// The very first time point integrates with one Backward Euler step:
    /// the trapezoidal companion models reference the previous capacitor
    /// current / inductor voltage, and at `t = 0` those come from the DC
    /// operating point, which is inconsistent with a source that steps at
    /// `t = 0⁺` (SPICE's classic trapezoidal start-up problem — without the
    /// BE step the whole waveform lags the analytic response by `dt/2`,
    /// a first-order error that golden-data validation flags immediately).
    /// Backward Euler's companions only need the previous *state*, and the
    /// reactive currents they produce are consistent start-up values for
    /// the trapezoidal steps that follow, restoring second-order accuracy.
    Trapezoidal,
}

/// Options controlling a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step in seconds.
    pub dt: f64,
    /// Stop time in seconds (the run covers `0..=t_stop`).
    pub t_stop: f64,
    /// Integration method.
    pub method: Integration,
    /// Maximum Newton iterations per time point.
    pub max_newton: usize,
    /// Newton convergence tolerance on node voltages, volts.
    pub vntol: f64,
}

impl TransientOptions {
    /// Creates options with the given step and stop time, trapezoidal
    /// integration and default Newton settings.
    pub fn new(dt: f64, t_stop: f64) -> Self {
        Self {
            dt,
            t_stop,
            method: Integration::Trapezoidal,
            max_newton: 50,
            vntol: 1.0e-9,
        }
    }
}

/// Result of a transient run: node-voltage waveforms on a uniform time grid.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `data[time_index][node_index]`.
    data: Vec<Vec<f64>>,
}

impl TransientResult {
    /// The simulation time points in seconds. The grid is `dt`-spaced with
    /// the final step shortened so the last point lands **exactly** on the
    /// requested `t_stop` (never past it — overshoot would corrupt
    /// overshoot/settling measurements read off the tail).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of stored time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` when the result holds no time points.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Bounds-checks `node`'s index against the simulated circuit's node
    /// count and returns its waveform index. (A `NodeId` minted by a
    /// different circuit is only caught when its index is out of range —
    /// node ids carry no circuit identity.)
    fn node_index(&self, node: NodeId) -> Result<usize, SpiceError> {
        let idx = node.index();
        match self.data.first() {
            Some(row) if idx < row.len() => Ok(idx),
            _ => Err(SpiceError::UnknownReference(format!(
                "node index {idx} outside the transient result"
            ))),
        }
    }

    /// The waveform of a node across the whole run.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownReference`] when `node`'s index lies
    /// outside the simulated circuit's nodes (or the result is empty).
    pub fn waveform(&self, node: NodeId) -> Result<Vec<f64>, SpiceError> {
        let idx = self.node_index(node)?;
        Ok(self.data.iter().map(|row| row[idx]).collect())
    }

    /// The node voltage linearly interpolated at time `t` (clamped to the
    /// first/last sample outside the simulated range). Interpolates
    /// directly over the stored rows via
    /// [`interp::lerp_at_by`] — the node's waveform vector is **not**
    /// materialized per call.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownReference`] when `node`'s index lies
    /// outside the simulated circuit's nodes (or the result is empty).
    pub fn value_at(&self, node: NodeId, t: f64) -> Result<f64, SpiceError> {
        let idx = self.node_index(node)?;
        Ok(interp::lerp_at_by(&self.times, t, |i| self.data[i][idx]))
    }
}

/// Transient analysis driver.
#[derive(Debug)]
pub struct TransientAnalysis<'c> {
    circuit: &'c Circuit,
    layout: MnaLayout,
    options: TransientOptions,
}

impl<'c> TransientAnalysis<'c> {
    /// Prepares a transient analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidOptions`] for non-positive `dt`/`t_stop`,
    /// a zero `max_newton`, a non-finite or non-positive `vntol`, and
    /// [`SpiceError::Netlist`] if the circuit fails validation.
    pub fn new(circuit: &'c Circuit, options: TransientOptions) -> Result<Self, SpiceError> {
        circuit.validate().map_err(SpiceError::Netlist)?;
        if !(options.dt > 0.0 && options.dt.is_finite()) {
            return Err(SpiceError::InvalidOptions(
                "time step must be positive".to_string(),
            ));
        }
        if options.max_newton == 0 {
            return Err(SpiceError::InvalidOptions(
                "max_newton must be at least 1".to_string(),
            ));
        }
        if !(options.vntol > 0.0 && options.vntol.is_finite()) {
            return Err(SpiceError::InvalidOptions(
                "vntol must be finite and positive".to_string(),
            ));
        }
        // `t_stop == dt` is a perfectly valid single-step run; only a stop
        // time short of one full step is inconsistent.
        let stop_valid = options.t_stop.is_finite() && options.t_stop >= options.dt;
        if !stop_valid {
            return Err(SpiceError::InvalidOptions(
                "stop time must be at least one time step".to_string(),
            ));
        }
        Ok(Self {
            circuit,
            layout: MnaLayout::new(circuit),
            options,
        })
    }

    /// Runs the transient analysis starting from the given operating point.
    ///
    /// # Errors
    ///
    /// Returns a hard solver failure ([`SpiceError::SingularSystem`],
    /// [`SpiceError::NonFiniteStamp`], [`SpiceError::ResidualCheckFailed`] or
    /// [`SpiceError::Linear`]) if a time-point system cannot be solved, or
    /// [`SpiceError::TransientNoConvergence`] — naming the time point, step
    /// index and worst-residual node — if the per-step Newton loop fails.
    pub fn run(&self, op: &OperatingPoint) -> Result<TransientResult, SpiceError> {
        let node_count = self.circuit.node_count();
        let dt = self.options.dt;
        let t_stop = self.options.t_stop;
        // Step count covering 0..=t_stop. `ceil` alone is not enough: when
        // t_stop is not an exact multiple of dt the final full step would
        // land PAST t_stop (e.g. dt = 0.4, t_stop = 1.0 → grid 0.4, 0.8,
        // 1.2), and floating-point division rounds exact multiples UP a few
        // ulps (10e-6 / 1e-6 = 10.000…002), which a bare `ceil` turns into
        // a phantom ~1e-21-second step. Shaving a few ulps off the ratio
        // before ceiling collapses those near-exact cases back to the exact
        // grid; genuinely non-multiple stop times keep their extra step,
        // which the loop below shortens to end exactly at t_stop. The
        // `while` guard is a belt-and-suspenders floor so the shortened
        // step's width is strictly positive in every remaining case.
        let ratio = (t_stop / dt) * (1.0 - 8.0 * f64::EPSILON);
        let mut steps = (ratio.ceil() as usize).max(1);
        while steps > 1 && (steps - 1) as f64 * dt >= t_stop {
            steps -= 1;
        }

        // State carried between time points.
        let mut voltages = op.node_voltages().to_vec();
        let mut prev_cap_current: Vec<f64> = vec![0.0; self.circuit.elements().len()];
        let mut prev_ind_voltage: Vec<f64> = vec![0.0; self.circuit.elements().len()];
        let mut branch_currents: Vec<f64> = vec![0.0; self.layout.dim()];
        // Seed inductor currents from the operating point.
        for (ei, el) in self.circuit.elements().iter().enumerate() {
            if let Element::Inductor(l) = el {
                if let Some(i0) = op.branch_current(&l.name) {
                    if let Some(var) = self.layout.branch_var(&l.name) {
                        branch_currents[var] = i0;
                    }
                }
                prev_ind_voltage[ei] = voltages[l.a.index()] - voltages[l.b.index()];
            }
        }

        let mut times = Vec::with_capacity(steps + 1);
        let mut data = Vec::with_capacity(steps + 1);
        times.push(0.0);
        data.push(voltages.clone());

        // Companion-model restamping never changes the sparsity pattern, so
        // one cache serves every Newton iteration of every timestep.
        let mut solver = CachedMna::new();

        // Newton trial state, reused across every iteration of every step
        // (ground stays zero; all other entries are rewritten per iteration).
        // The solution buffer is hoisted too: `solve_verified_into` cycles it
        // through assemble → verified solve (the retry ladder's refinement
        // workspace and rhs backup live inside the solver and are warm after
        // the first step), so the steady-state Newton loop performs zero heap
        // allocations (proven by `tests/alloc_transient.rs`).
        let mut trial = voltages.clone();
        let mut next = vec![0.0; node_count];
        let mut solution = vec![0.0; self.layout.dim()];

        for step in 1..=steps {
            // The final step ends exactly at t_stop, shortened when t_stop
            // is not a multiple of dt; the companion models integrate over
            // the actual step width.
            let last = step == steps;
            let t = if last { t_stop } else { step as f64 * dt };
            let dt_step = if last {
                t_stop - (step - 1) as f64 * dt
            } else {
                dt
            };
            // Backward Euler start-up step for trapezoidal integration (see
            // [`Integration::Trapezoidal`]): the t = 0 reactive currents from
            // the DC operating point are not valid trapezoidal history when a
            // source is discontinuous at t = 0⁺.
            let method = if step == 1 {
                Integration::BackwardEuler
            } else {
                self.options.method
            };
            trial.copy_from_slice(&voltages);
            let mut converged = false;
            // Node with the largest voltage update at the most recent Newton
            // iteration — named in the non-convergence error so the user
            // knows which unknown refused to settle.
            let mut worst_node = None;

            for _ in 0..self.options.max_newton {
                let job = TimestepSystem {
                    analysis: self,
                    t,
                    dt: dt_step,
                    method,
                    trial: &trial,
                    prev: &voltages,
                    prev_cap_current: &prev_cap_current,
                    prev_ind_voltage: &prev_ind_voltage,
                    prev_solution: &branch_currents,
                };
                solver.solve_verified_into(&self.layout, &job, &mut solution)?;

                let mut max_delta: f64 = 0.0;
                for node in self.circuit.signal_nodes_iter() {
                    let var = self.layout.node_var(node).expect("signal node");
                    let v = solution[var];
                    let delta = (v - trial[node.index()]).abs();
                    if delta >= max_delta {
                        max_delta = delta;
                        worst_node = Some(node);
                    }
                    next[node.index()] = v;
                }
                std::mem::swap(&mut trial, &mut next);
                if max_delta < self.options.vntol
                    || !self.circuit.elements().iter().any(Element::is_nonlinear)
                {
                    converged = true;
                    break;
                }
            }
            if !converged {
                let worst = worst_node
                    .map(|n| self.circuit.node_name(n).to_string())
                    .unwrap_or_else(|| "<none>".to_string());
                return Err(SpiceError::TransientNoConvergence {
                    time: t,
                    step,
                    worst_node: worst,
                });
            }

            // Update capacitor / inductor state for the next step.
            for (ei, el) in self.circuit.elements().iter().enumerate() {
                match el {
                    Element::Capacitor(c) => {
                        let v_new = trial[c.a.index()] - trial[c.b.index()];
                        let v_old = voltages[c.a.index()] - voltages[c.b.index()];
                        let i_new = match method {
                            Integration::BackwardEuler => c.farads / dt_step * (v_new - v_old),
                            Integration::Trapezoidal => {
                                2.0 * c.farads / dt_step * (v_new - v_old) - prev_cap_current[ei]
                            }
                        };
                        prev_cap_current[ei] = i_new;
                    }
                    Element::Inductor(l) => {
                        prev_ind_voltage[ei] = trial[l.a.index()] - trial[l.b.index()];
                    }
                    _ => {}
                }
            }
            branch_currents.copy_from_slice(&solution);
            std::mem::swap(&mut voltages, &mut trial);
            times.push(t);
            data.push(voltages.clone());
        }

        Ok(TransientResult { times, data })
    }

    /// Stamps the MNA system for one Newton iteration of one time point.
    #[allow(clippy::too_many_arguments)]
    fn stamp_timestep<S: MatrixSink<f64>>(
        &self,
        st: &mut Stamper<'_, f64, S>,
        t: f64,
        dt: f64,
        method: Integration,
        trial: &[f64],
        prev: &[f64],
        prev_cap_current: &[f64],
        prev_ind_voltage: &[f64],
        prev_solution: &[f64],
    ) {
        let trapezoidal = method == Integration::Trapezoidal;

        for node in self.circuit.signal_nodes_iter() {
            st.add_node_node(node, node, GMIN);
        }

        for (ei, el) in self.circuit.elements().iter().enumerate() {
            match el {
                Element::Resistor(r) => st.stamp_admittance(r.a, r.b, 1.0 / r.ohms),
                Element::Capacitor(c) => {
                    let v_old = prev[c.a.index()] - prev[c.b.index()];
                    if trapezoidal {
                        let geq = 2.0 * c.farads / dt;
                        let ieq = geq * v_old + prev_cap_current[ei];
                        st.stamp_admittance(c.a, c.b, geq);
                        st.add_rhs_node(c.a, ieq);
                        st.add_rhs_node(c.b, -ieq);
                    } else {
                        let geq = c.farads / dt;
                        let ieq = geq * v_old;
                        st.stamp_admittance(c.a, c.b, geq);
                        st.add_rhs_node(c.a, ieq);
                        st.add_rhs_node(c.b, -ieq);
                    }
                }
                Element::Inductor(l) => {
                    let br = self.layout.branch_var(&l.name).expect("branch");
                    let i_old = prev_solution[br];
                    st.add_var_node(br, l.a, 1.0);
                    st.add_var_node(br, l.b, -1.0);
                    st.add_node_var(l.a, br, 1.0);
                    st.add_node_var(l.b, br, -1.0);
                    if trapezoidal {
                        let req = 2.0 * l.henries / dt;
                        st.add_var_var(br, br, -req);
                        st.add_rhs_var(br, -req * i_old - prev_ind_voltage[ei]);
                    } else {
                        let req = l.henries / dt;
                        st.add_var_var(br, br, -req);
                        st.add_rhs_var(br, -req * i_old);
                    }
                }
                Element::Vsource(v) => {
                    let br = self.layout.branch_var(&v.name).expect("branch");
                    st.add_var_node(br, v.plus, 1.0);
                    st.add_var_node(br, v.minus, -1.0);
                    st.add_node_var(v.plus, br, 1.0);
                    st.add_node_var(v.minus, br, -1.0);
                    st.add_rhs_var(br, v.spec.value_at(t));
                }
                Element::Isource(i) => {
                    st.stamp_current_injection(i.minus, i.plus, i.spec.value_at(t));
                }
                Element::Vcvs(e) => {
                    let br = self.layout.branch_var(&e.name).expect("branch");
                    st.add_var_node(br, e.out_plus, 1.0);
                    st.add_var_node(br, e.out_minus, -1.0);
                    st.add_var_node(br, e.ctrl_plus, -e.gain);
                    st.add_var_node(br, e.ctrl_minus, e.gain);
                    st.add_node_var(e.out_plus, br, 1.0);
                    st.add_node_var(e.out_minus, br, -1.0);
                }
                Element::Vccs(g) => {
                    st.stamp_vccs(g.out_plus, g.out_minus, g.ctrl_plus, g.ctrl_minus, g.gm)
                }
                Element::Cccs(f) => {
                    let ctrl = self
                        .layout
                        .branch_var(&f.ctrl_vsource)
                        .expect("controlling source validated");
                    st.add_node_var(f.out_plus, ctrl, f.gain);
                    st.add_node_var(f.out_minus, ctrl, -f.gain);
                }
                Element::Ccvs(h) => {
                    let br = self.layout.branch_var(&h.name).expect("branch");
                    let ctrl = self
                        .layout
                        .branch_var(&h.ctrl_vsource)
                        .expect("controlling source validated");
                    st.add_var_node(br, h.out_plus, 1.0);
                    st.add_var_node(br, h.out_minus, -1.0);
                    st.add_var_var(br, ctrl, -h.rm);
                    st.add_node_var(h.out_plus, br, 1.0);
                    st.add_node_var(h.out_minus, br, -1.0);
                }
                Element::Diode(d) => {
                    apply_nonlinear(st, devices::stamp_diode(d, trial));
                }
                Element::Bjt(q) => {
                    apply_nonlinear(st, devices::stamp_bjt(q, trial));
                }
                Element::Mosfet(m) => {
                    apply_nonlinear(st, devices::stamp_mosfet(m, trial));
                }
            }
        }
    }
}

/// Assembly job for one Newton iteration of one transient time point.
struct TimestepSystem<'a, 'c> {
    analysis: &'a TransientAnalysis<'c>,
    t: f64,
    dt: f64,
    method: Integration,
    trial: &'a [f64],
    prev: &'a [f64],
    prev_cap_current: &'a [f64],
    prev_ind_voltage: &'a [f64],
    prev_solution: &'a [f64],
}

impl AssembleMna<f64> for TimestepSystem<'_, '_> {
    fn stamp<S: MatrixSink<f64>>(&self, st: &mut Stamper<'_, f64, S>) {
        self.analysis.stamp_timestep(
            st,
            self.t,
            self.dt,
            self.method,
            self.trial,
            self.prev,
            self.prev_cap_current,
            self.prev_ind_voltage,
            self.prev_solution,
        );
    }
}

fn apply_nonlinear<S: MatrixSink<f64>>(
    st: &mut Stamper<'_, f64, S>,
    stamp: devices::NonlinearStamp,
) {
    for (r, c, g) in stamp.conductances {
        st.add_node_node(r, c, g);
    }
    for (n, i) in stamp.rhs_currents {
        st.add_rhs_node(n, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::solve_dc;
    use loopscope_netlist::SourceSpec;

    #[test]
    fn rc_charging_curve() {
        // Step from 0 to 1 V through 1 kΩ into 1 µF: τ = 1 ms.
        let mut c = Circuit::new("rc step");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 1.0, 0.0));
        c.add_resistor("R1", vin, vout, 1.0e3);
        c.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-6);
        let op = solve_dc(&c).unwrap();
        let tran = TransientAnalysis::new(&c, TransientOptions::new(10.0e-6, 5.0e-3)).unwrap();
        let result = tran.run(&op).unwrap();
        // After one time constant: 1 − e^-1 ≈ 0.632.
        let v_tau = result.value_at(vout, 1.0e-3).unwrap();
        assert!((v_tau - 0.632).abs() < 0.01, "v(τ) = {v_tau}");
        // Fully settled by 5τ.
        let v_end = result.value_at(vout, 5.0e-3).unwrap();
        assert!((v_end - 1.0).abs() < 0.01, "v(5τ) = {v_end}");
    }

    #[test]
    fn lc_oscillation_period_with_trapezoidal() {
        // A lightly damped series RLC ringing at f0 = 1/(2π√(LC)).
        let mut c = Circuit::new("rlc ring");
        let vin = c.node("in");
        let mid = c.node("mid");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 1.0, 0.0));
        c.add_resistor("R1", vin, mid, 5.0);
        c.add_inductor("L1", mid, vout, 1.0e-3);
        c.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-9);
        let op = solve_dc(&c).unwrap();
        // f0 ≈ 159 kHz → period ≈ 6.28 µs; run 40 µs at 20 ns.
        let tran = TransientAnalysis::new(&c, TransientOptions::new(20.0e-9, 40.0e-6)).unwrap();
        let result = tran.run(&op).unwrap();
        let wave = result.waveform(vout).unwrap();
        let times = result.times();
        // Find the first two upward crossings of the final value 1.0.
        let mut crossings = Vec::new();
        for i in 1..wave.len() {
            if wave[i - 1] < 1.0 && wave[i] >= 1.0 {
                crossings.push(times[i]);
            }
        }
        assert!(crossings.len() >= 2, "expected ringing");
        let period = (crossings[1] - crossings[0]) * 1.0; // full period between same-direction crossings
        assert!(
            (period - 6.28e-6).abs() / 6.28e-6 < 0.1,
            "period = {period}"
        );
        // Overshoot close to 100 % (very low damping).
        let peak = wave.iter().cloned().fold(0.0, f64::max);
        assert!(peak > 1.7, "peak = {peak}");
    }

    #[test]
    fn backward_euler_damps_more_than_trapezoidal() {
        let build = || {
            let mut c = Circuit::new("ring");
            let vin = c.node("in");
            let mid = c.node("mid");
            let vout = c.node("out");
            c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 1.0, 0.0));
            c.add_resistor("R1", vin, mid, 20.0);
            c.add_inductor("L1", mid, vout, 1.0e-3);
            c.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-9);
            c
        };
        let run = |method: Integration| {
            let c = build();
            let op = solve_dc(&c).unwrap();
            let mut opts = TransientOptions::new(50.0e-9, 30.0e-6);
            opts.method = method;
            let tran = TransientAnalysis::new(&c, opts).unwrap();
            let r = tran.run(&op).unwrap();
            let out = c.find_node("out").unwrap();
            r.waveform(out).unwrap().iter().cloned().fold(0.0, f64::max)
        };
        let peak_trap = run(Integration::Trapezoidal);
        let peak_be = run(Integration::BackwardEuler);
        assert!(peak_trap > peak_be, "trap {peak_trap} vs BE {peak_be}");
    }

    #[test]
    fn diode_rectifier_clamps_negative_half() {
        use loopscope_netlist::DiodeModel;
        let mut c = Circuit::new("rect");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource(
            "V1",
            vin,
            Circuit::GROUND,
            loopscope_netlist::SourceSpec {
                dc: 0.0,
                ac_mag: 0.0,
                ac_phase_deg: 0.0,
                waveform: loopscope_netlist::Waveform::Sine {
                    offset: 0.0,
                    amplitude: 2.0,
                    freq_hz: 1.0e3,
                    delay: 0.0,
                },
            },
        );
        c.add_diode("D1", vin, vout, DiodeModel::default());
        c.add_resistor("RL", vout, Circuit::GROUND, 1.0e3);
        let op = solve_dc(&c).unwrap();
        let tran = TransientAnalysis::new(&c, TransientOptions::new(2.0e-6, 2.0e-3)).unwrap();
        let result = tran.run(&op).unwrap();
        let wave = result.waveform(vout).unwrap();
        let min = wave.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = wave.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Positive peaks pass (minus a diode drop), negative half is clamped.
        assert!(max > 1.0, "max = {max}");
        assert!(min > -0.3, "min = {min}");
    }

    #[test]
    fn invalid_options_rejected() {
        let mut c = Circuit::new("x");
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0);
        c.add_capacitor("C1", a, Circuit::GROUND, 1e-9);
        assert!(TransientAnalysis::new(&c, TransientOptions::new(0.0, 1.0)).is_err());
        assert!(TransientAnalysis::new(&c, TransientOptions::new(1.0, 0.5)).is_err());
        let mut zero_newton = TransientOptions::new(1.0e-6, 1.0e-3);
        zero_newton.max_newton = 0;
        assert!(matches!(
            TransientAnalysis::new(&c, zero_newton),
            Err(SpiceError::InvalidOptions(msg)) if msg.contains("max_newton")
        ));
        let mut bad_vntol = TransientOptions::new(1.0e-6, 1.0e-3);
        bad_vntol.vntol = f64::NAN;
        assert!(matches!(
            TransientAnalysis::new(&c, bad_vntol),
            Err(SpiceError::InvalidOptions(msg)) if msg.contains("vntol")
        ));
    }

    #[test]
    fn no_convergence_error_names_time_step_and_node() {
        use loopscope_netlist::DiodeModel;
        // A hard-driven diode with a single Newton iteration per step cannot
        // settle; the failure must name the time point, step index and the
        // node whose update was largest.
        let mut c = Circuit::new("stiff");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 5.0, 0.0));
        c.add_resistor("R1", vin, vout, 1.0e3);
        c.add_diode("D1", vout, Circuit::GROUND, DiodeModel::default());
        let op = solve_dc(&c).unwrap();
        let mut opts = TransientOptions::new(1.0e-6, 10.0e-6);
        opts.max_newton = 1;
        let tran = TransientAnalysis::new(&c, opts).unwrap();
        match tran.run(&op) {
            Err(SpiceError::TransientNoConvergence {
                time,
                step,
                worst_node,
            }) => {
                assert!(time > 0.0 && time <= 10.0e-6);
                assert!(step >= 1);
                assert!(
                    worst_node == "out" || worst_node == "in",
                    "worst_node = {worst_node}"
                );
            }
            other => panic!("expected TransientNoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn result_accessors() {
        let mut c = Circuit::new("acc");
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1.0e3);
        let op = solve_dc(&c).unwrap();
        let tran = TransientAnalysis::new(&c, TransientOptions::new(1.0e-6, 10.0e-6)).unwrap();
        let r = tran.run(&op).unwrap();
        // 10 steps of 1 µs plus the initial point — exactly, now that the
        // grid clamps to t_stop instead of letting t_stop/dt ceiling
        // overshoot.
        assert_eq!(r.len(), 11);
        assert!(!r.is_empty());
        assert_eq!(*r.times().last().unwrap(), 10.0e-6);
        assert_eq!(r.times().len(), r.len());
        assert!((r.value_at(a, 5.0e-6).unwrap() - 1.0).abs() < 1e-9);
    }

    /// A circuit whose transient response is trivially flat, for grid tests.
    fn dc_circuit() -> (Circuit, NodeId) {
        let mut c = Circuit::new("grid");
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1.0e3);
        c.add_capacitor("C1", a, Circuit::GROUND, 1.0e-9);
        (c, a)
    }

    #[test]
    fn grid_ends_exactly_at_t_stop_for_non_multiple_dt() {
        let (c, _) = dc_circuit();
        let op = solve_dc(&c).unwrap();
        // 10 µs is NOT a multiple of 3 µs: the old `ceil` grid ended at
        // 12 µs, past the requested stop time.
        let tran = TransientAnalysis::new(&c, TransientOptions::new(3.0e-6, 10.0e-6)).unwrap();
        let r = tran.run(&op).unwrap();
        let times = r.times();
        assert_eq!(*times.last().unwrap(), 10.0e-6, "times = {times:?}");
        assert!(times.windows(2).all(|w| w[0] < w[1]), "times = {times:?}");
        assert!(times.iter().all(|&t| t <= 10.0e-6), "times = {times:?}");
        // 0, 3, 6, 9 µs plus the shortened final step to exactly 10 µs.
        assert_eq!(r.len(), 5, "times = {times:?}");
    }

    #[test]
    fn grid_handles_ratio_that_rounds_up() {
        let (c, _) = dc_circuit();
        let op = solve_dc(&c).unwrap();
        // 0.3/0.1 computes as 2.9999…96 in f64 but other exact-multiple
        // ratios round UP, creating a phantom step whose shortened width
        // would be ≤ 0; either way the grid must end exactly at t_stop with
        // strictly increasing times.
        for (dt, t_stop) in [
            (0.1e-3, 0.3e-3),
            (1.0e-6, 10.0e-6),
            (0.4, 1.0),
            (7.0e-7, 9.1e-6),
        ] {
            let tran = TransientAnalysis::new(&c, TransientOptions::new(dt, t_stop)).unwrap();
            let r = tran.run(&op).unwrap();
            let times = r.times();
            assert_eq!(
                *times.last().unwrap(),
                t_stop,
                "dt={dt}, t_stop={t_stop}: times end at {:?}",
                times.last()
            );
            assert!(
                times.windows(2).all(|w| w[0] < w[1]),
                "dt={dt}, t_stop={t_stop}: non-increasing grid {times:?}"
            );
        }
    }

    #[test]
    fn single_step_run_is_valid() {
        let (c, a) = dc_circuit();
        let op = solve_dc(&c).unwrap();
        // t_stop == dt: exactly one step, previously rejected by validation.
        let tran = TransientAnalysis::new(&c, TransientOptions::new(2.0e-6, 2.0e-6)).unwrap();
        let r = tran.run(&op).unwrap();
        assert_eq!(r.times(), &[0.0, 2.0e-6]);
        assert!((r.value_at(a, 2.0e-6).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn out_of_range_node_is_an_error_not_a_panic() {
        let (c, _) = dc_circuit();
        let op = solve_dc(&c).unwrap();
        let tran = TransientAnalysis::new(&c, TransientOptions::new(1.0e-6, 5.0e-6)).unwrap();
        let r = tran.run(&op).unwrap();
        // A node id minted by a BIGGER circuit does not exist in this result.
        let mut big = Circuit::new("bigger");
        let mut foreign = big.node("n0");
        for i in 1..8 {
            foreign = big.node(&format!("n{i}"));
        }
        assert!(foreign.index() >= c.node_count());
        assert!(matches!(
            r.waveform(foreign),
            Err(SpiceError::UnknownReference(_))
        ));
        assert!(matches!(
            r.value_at(foreign, 1.0e-6),
            Err(SpiceError::UnknownReference(_))
        ));
    }

    #[test]
    fn rc_charge_is_accurate_at_clamped_final_point() {
        // τ = 1 ms; stop mid-curve at a non-multiple of dt so the final
        // (shortened) step actually integrates: the value at t_stop must
        // match the analytic exponential, proving the companion models used
        // the shortened width rather than a full dt.
        let mut c = Circuit::new("rc clamp");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 1.0, 0.0));
        c.add_resistor("R1", vin, vout, 1.0e3);
        c.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-6);
        let op = solve_dc(&c).unwrap();
        let t_stop = 0.73e-3; // 73 steps of 10 µs
        let tran = TransientAnalysis::new(&c, TransientOptions::new(10.1e-6, t_stop)).unwrap();
        let r = tran.run(&op).unwrap();
        assert_eq!(*r.times().last().unwrap(), t_stop);
        let expected = 1.0 - (-t_stop / 1.0e-3_f64).exp();
        let got = r.value_at(vout, t_stop).unwrap();
        assert!((got - expected).abs() < 5e-3, "{got} vs {expected}");
    }
}
