//! Batched many-variant frequency sweeps: Monte Carlo and corner analysis
//! over **one circuit topology**.
//!
//! The paper's workload — loop-stability sign-off across process and
//! temperature variation — is a *many-variant* problem: thousands of
//! parameter sets over a single topology. Every variant shares the MNA
//! sparsity pattern, so one [`SweepPlan`] (one symbolic analysis: ordering,
//! BTF partition, fill pattern, pivot sequence) serves the entire batch, and
//! the per-variant work collapses to restamp → numeric refactor → solve.
//!
//! This module batches that per-variant work across **variant lanes**:
//!
//! * Variant matrices are cloned from the plan's shared zero pattern and
//!   restamped per frequency; their factor values live lane-interleaved in a
//!   structure-of-arrays store (`vals[slot·W + lane]`) inside
//!   [`loopscope_sparse::BatchedLu`], so one traversal of the
//!   shared index structure drives `W` lanes of `Complex64` arithmetic.
//! * Per lane, every operation runs in exactly the order of the scalar
//!   refactor/solve — no FMA, no reassociation, no cross-lane math — so a
//!   healthy lane's solution is **bitwise identical** to the serial
//!   per-variant path at any lane width; `LOOPSCOPE_BATCH=1` *is* the serial
//!   reference, not an approximation of it.
//! * Lanes fail independently. A variant whose values degrade a pivot, drift
//!   off the shared pattern, or fail validation is carried as a structured
//!   per-variant error in its [`VariantOutcome`] — the batch never aborts.
//!   Accepted fast-path solutions satisfy the exact residual rule of the
//!   verified serial path ([`normwise_backward_error`] ≤
//!   [`loopscope_sparse::REFINE_BACKWARD_TOLERANCE`]);
//!   anything else escalates to a scalar [`SolveContext`] running the full
//!   PR 6 retry ladder, bitwise identical to the serial sweep.
//! * The driver parallelizes over **two axes** — variant groups × frequency
//!   points — through [`par::sweep_chunks`], and is chunking-invariant: the
//!   results and the merged [`SolveStats`] totals are identical at any
//!   `LOOPSCOPE_THREADS`, `LOOPSCOPE_PANEL`, `LOOPSCOPE_KERNEL` and
//!   `LOOPSCOPE_BATCH` setting.
//!
//! Yield semantics: [`BatchedSweep::yield_count`] is the number of variants
//! whose entire sweep converged. A healthy batch performs **exactly one**
//! symbolic analysis total ([`BatchedSweep::solve_stats`]`.symbolic == 1`),
//! which is the entire point.

use crate::ac::{AcAnalysis, AcSystem};
use crate::assembly::{SlotSink, SolveContext, SolveStats, SweepPlan};
use crate::dc::OperatingPoint;
use crate::error::SpiceError;
use crate::mna::Stamper;
use crate::par;
use loopscope_math::{Complex64, FrequencyGrid};
use loopscope_netlist::{Circuit, Element, NodeId};
use loopscope_sparse::{
    normwise_backward_error, BatchLaneStatus, BatchedLu, CsrMatrix, REFINE_BACKWARD_TOLERANCE,
};

/// Environment knob selecting the variant-lane width of batched sweeps.
///
/// Re-read on every batched call (like `LOOPSCOPE_THREADS`), so tests and
/// benches can switch it. `1` runs the serial per-variant reference — which
/// is bitwise identical to every other width, not merely close.
pub const BATCH_ENV: &str = "LOOPSCOPE_BATCH";

/// Default variant-lane width when [`BATCH_ENV`] is unset: wide enough to
/// amortize the shared index traversal, narrow enough that the lane values
/// of a factor slot stay within one cache line pair.
pub const DEFAULT_BATCH_WIDTH: usize = 4;

/// Parses a batch-width override; `None`/garbage/`0` fall back to the
/// default (same policy as `par::configured_workers`).
fn parse_batch_width(raw: Option<&str>) -> usize {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_BATCH_WIDTH)
}

/// The variant-lane width batched sweeps run at: [`BATCH_ENV`] when set to a
/// positive integer, [`DEFAULT_BATCH_WIDTH`] otherwise.
pub fn configured_batch_width() -> usize {
    parse_batch_width(std::env::var(BATCH_ENV).ok().as_deref())
}

// ---------------------------------------------------------------------------
// Parameter variation
// ---------------------------------------------------------------------------

/// Distribution of one element's relative tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Distribution {
    /// Scale factor `1 + rel_sigma · z`, `z ~ N(0, 1)` (Box–Muller).
    Gaussian {
        /// Relative standard deviation (0.05 = 5 %).
        rel_sigma: f64,
    },
    /// Scale factor uniform in `[1 − rel_span, 1 + rel_span]`.
    Uniform {
        /// Relative half-span (0.2 = ±20 %).
        rel_span: f64,
    },
}

/// One per-element tolerance rule of a [`ParameterVariation`].
#[derive(Debug, Clone, PartialEq)]
struct VariationRule {
    element: String,
    dist: Distribution,
}

/// Deterministic per-element parameter variation generator for Monte Carlo
/// sweeps.
///
/// Seeded with SplitMix64 exactly like the fault injector: variant `i`
/// derives its own independent stream from `(seed, i)` alone, so the factors
/// for a variant do not depend on how the batch is chunked across threads or
/// lanes, nor on how many variants were generated before it. The same
/// `(seed, rules, index)` triple always produces the same circuit —
/// replayable in a golden test years later.
///
/// Rules apply **relative** scale factors to element values (resistance,
/// capacitance, inductance, controlled-source gains) in the order the rules
/// were added. Factors are deliberately *not* clamped: a tolerance wide
/// enough to drive a value negative produces a variant that fails
/// validation, which is reported as that variant's structured outcome — the
/// yield story, not a generator error.
///
/// ```
/// use loopscope_spice::batch::ParameterVariation;
///
/// let var = ParameterVariation::new(42)
///     .gaussian("R1", 0.05) // 5 % sigma on R1's resistance
///     .uniform("C1", 0.20); // ±20 % on C1's capacitance
/// let f0 = var.factors(0);
/// assert_eq!(f0.len(), 2);
/// assert_eq!(var.factors(0), f0); // same variant ⇒ same factors, always
/// assert_ne!(var.factors(1), f0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterVariation {
    seed: u64,
    rules: Vec<VariationRule>,
}

impl ParameterVariation {
    /// Creates an empty variation plan over the given seed. With no rules
    /// every variant is an exact copy of the base circuit.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a Gaussian tolerance on `element`'s value: scale factor
    /// `1 + rel_sigma·z` with `z` standard normal.
    #[must_use]
    pub fn gaussian(mut self, element: &str, rel_sigma: f64) -> Self {
        self.rules.push(VariationRule {
            element: element.to_string(),
            dist: Distribution::Gaussian { rel_sigma },
        });
        self
    }

    /// Adds a uniform tolerance on `element`'s value: scale factor drawn
    /// uniformly from `[1 − rel_span, 1 + rel_span]`.
    #[must_use]
    pub fn uniform(mut self, element: &str, rel_span: f64) -> Self {
        self.rules.push(VariationRule {
            element: element.to_string(),
            dist: Distribution::Uniform { rel_span },
        });
        self
    }

    /// Number of tolerance rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The scale factors variant `index` applies, one per rule in insertion
    /// order. Pure function of `(seed, rules, index)`.
    pub fn factors(&self, index: usize) -> Vec<f64> {
        let mut rng = SplitMix64::for_variant(self.seed, index);
        self.rules
            .iter()
            .map(|rule| match rule.dist {
                Distribution::Gaussian { rel_sigma } => 1.0 + rel_sigma * rng.next_gaussian(),
                Distribution::Uniform { rel_span } => {
                    1.0 + rel_span * (2.0 * rng.next_unit() - 1.0)
                }
            })
            .collect()
    }

    /// Applies variant `index`'s scale factors to `circuit` in place.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownReference`] when a rule names an element
    /// the circuit does not contain and [`SpiceError::InvalidOptions`] when
    /// it names an element kind without a scalable value (independent
    /// sources, nonlinear devices). Both are rule errors that would hit
    /// every variant identically, so callers abort the batch on them.
    pub fn apply(&self, index: usize, circuit: &mut Circuit) -> Result<(), SpiceError> {
        let factors = self.factors(index);
        for (rule, &factor) in self.rules.iter().zip(&factors) {
            let el = circuit.element_mut(&rule.element).ok_or_else(|| {
                SpiceError::UnknownReference(format!(
                    "variation rule names unknown element '{}'",
                    rule.element
                ))
            })?;
            scale_element(el, factor)?;
        }
        Ok(())
    }

    /// Variant `index` as element value **overrides** against `circuit`:
    /// `(element position, scaled element)` pairs sorted by position, holding
    /// exactly the values [`apply`](ParameterVariation::apply) would leave in
    /// a materialized variant circuit (rules are applied cumulatively in
    /// insertion order, through the same scaling arithmetic). The batched
    /// Monte Carlo driver stamps these over one shared analysis instead of
    /// cloning the whole circuit per variant.
    ///
    /// # Errors
    ///
    /// The same rule errors as [`apply`](ParameterVariation::apply).
    pub(crate) fn overrides_for(
        &self,
        index: usize,
        circuit: &Circuit,
        positions: &[usize],
    ) -> Result<Vec<(usize, Element)>, SpiceError> {
        debug_assert_eq!(positions.len(), self.rules.len());
        let factors = self.factors(index);
        let mut overrides: Vec<(usize, Element)> = Vec::with_capacity(self.rules.len());
        for (&pos, &factor) in positions.iter().zip(&factors) {
            match overrides.iter_mut().find(|(p, _)| *p == pos) {
                Some((_, el)) => scale_element(el, factor)?,
                None => {
                    let mut el = circuit.elements()[pos].clone();
                    scale_element(&mut el, factor)?;
                    overrides.push((pos, el));
                }
            }
        }
        overrides.sort_by_key(|&(p, _)| p);
        Ok(overrides)
    }

    /// Resolves the rules' element names to positions in `circuit`'s element
    /// order, erroring on names the circuit does not contain.
    pub(crate) fn rule_positions(&self, circuit: &Circuit) -> Result<Vec<usize>, SpiceError> {
        self.rules
            .iter()
            .map(|rule| {
                circuit.element_position(&rule.element).ok_or_else(|| {
                    SpiceError::UnknownReference(format!(
                        "variation rule names unknown element '{}'",
                        rule.element
                    ))
                })
            })
            .collect()
    }
}

/// Scales the single value parameter of `el` by `factor`.
fn scale_element(el: &mut Element, factor: f64) -> Result<(), SpiceError> {
    match el {
        Element::Resistor(r) => r.ohms *= factor,
        Element::Capacitor(c) => c.farads *= factor,
        Element::Inductor(l) => l.henries *= factor,
        Element::Vcvs(e) => e.gain *= factor,
        Element::Vccs(g) => g.gm *= factor,
        Element::Cccs(f) => f.gain *= factor,
        Element::Ccvs(h) => h.rm *= factor,
        other => {
            return Err(SpiceError::InvalidOptions(format!(
                "element '{}' ({:?}) has no scalable value parameter",
                other.name(),
                other.kind()
            )))
        }
    }
    Ok(())
}

/// SplitMix64 — the same generator (same constants) as
/// `loopscope_sparse::faults::FaultInjector`, re-derived here so batched
/// sweeps do not depend on the `fault-inject` feature.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream for variant `index`: the base seed advanced by an
    /// index-proportional golden-ratio offset, so each variant's stream is
    /// addressable without generating its predecessors.
    fn for_variant(seed: u64, index: usize) -> Self {
        Self {
            state: seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in the half-open-above interval `(0, 1]` — never zero, so it
    /// is safe under `ln`.
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal via Box–Muller (cosine branch). Two uniform draws per
    /// sample — deterministic draw count, no rejection loop.
    fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_unit();
        let u2 = self.next_unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

// ---------------------------------------------------------------------------
// Batch input / output types
// ---------------------------------------------------------------------------

/// One variant of a batched sweep: a label plus borrowed circuit and
/// operating point. All variants of a batch must share the base topology
/// (same nodes, same MNA layout); they differ only in element values.
#[derive(Debug, Clone, Copy)]
pub struct BatchVariant<'a> {
    /// Display label carried through to the [`VariantOutcome`].
    pub label: &'a str,
    /// The variant's circuit (same topology as the rest of the batch).
    pub circuit: &'a Circuit,
    /// The variant's DC operating point.
    pub op: &'a OperatingPoint,
}

/// Per-variant result of a batched sweep: either the full complex response
/// over the grid or a structured error — never both, never neither.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantOutcome {
    /// Position of the variant in the batch input.
    pub index: usize,
    /// The variant's label.
    pub label: String,
    /// Driving-point response per grid frequency, when every point
    /// converged.
    pub response: Option<Vec<Complex64>>,
    /// The variant's failure (validation, singularity, residual check …),
    /// carried per-variant so the batch never aborts. For a mid-sweep
    /// failure this is the error at the lowest failing frequency index.
    pub error: Option<SpiceError>,
}

impl VariantOutcome {
    /// `true` when the variant's entire sweep converged.
    pub fn converged(&self) -> bool {
        self.response.is_some()
    }
}

/// Result of a batched many-variant sweep: per-variant outcomes in input
/// order plus the merged solver counters.
///
/// The extraction helpers reduce each converged variant to its **peak
/// driving-point magnitude** `max_f |Z(jf)|` — the quantity the paper's
/// stability metric keys on (a taller impedance peak ⇒ a less damped
/// response), which makes "worst case" the variant with the largest peak.
#[derive(Debug, Clone)]
pub struct BatchedSweep {
    freqs: Vec<f64>,
    outcomes: Vec<VariantOutcome>,
    stats: SolveStats,
}

impl BatchedSweep {
    /// The frequency grid the batch was swept over.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Per-variant outcomes, in batch input order.
    pub fn outcomes(&self) -> &[VariantOutcome] {
        &self.outcomes
    }

    /// Number of variants in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// `true` when the batch held no variants.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Number of variants whose entire sweep converged — the batch yield.
    pub fn yield_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.converged()).count()
    }

    /// Yield as a fraction of the batch size (`1.0` for an empty batch).
    pub fn yield_fraction(&self) -> f64 {
        if self.outcomes.is_empty() {
            1.0
        } else {
            self.yield_count() as f64 / self.outcomes.len() as f64
        }
    }

    /// Merged solver counters: the shared plan build plus every worker.
    /// Chunking-invariant; `symbolic == 1` for a healthy batch of any size.
    pub fn solve_stats(&self) -> SolveStats {
        self.stats
    }

    /// Peak response magnitude per variant (`None` for failed variants).
    pub fn peak_magnitudes(&self) -> Vec<Option<f64>> {
        self.outcomes
            .iter()
            .map(|o| {
                o.response
                    .as_ref()
                    .map(|resp| resp.iter().map(|z| z.abs()).fold(0.0f64, f64::max))
            })
            .collect()
    }

    /// The worst-case variant: `(index, peak)` of the converged variant with
    /// the **largest** peak magnitude (ties keep the lowest index). `None`
    /// when no variant converged.
    pub fn worst_case_peak(&self) -> Option<(usize, f64)> {
        let mut worst: Option<(usize, f64)> = None;
        for (i, peak) in self.peak_magnitudes().into_iter().enumerate() {
            if let Some(p) = peak {
                if worst.is_none_or(|(_, wp)| p > wp) {
                    worst = Some((i, p));
                }
            }
        }
        worst
    }

    /// Nearest-rank quantile of the converged variants' peak magnitudes:
    /// `q = 0` is the smallest peak, `q = 1` the largest (the worst case),
    /// `q = 0.5` the median. `None` when no variant converged.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn peak_quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be within [0, 1]");
        let mut peaks: Vec<f64> = self.peak_magnitudes().into_iter().flatten().collect();
        if peaks.is_empty() {
            return None;
        }
        peaks.sort_by(|a, b| a.partial_cmp(b).expect("finite peaks"));
        let rank = (q * (peaks.len() - 1) as f64).round() as usize;
        Some(peaks[rank])
    }
}

// ---------------------------------------------------------------------------
// The batched driver
// ---------------------------------------------------------------------------

/// Per-lane solve result of one frequency point.
type LanePoint = Result<Complex64, SpiceError>;

/// One lane of a batched drive: the analysis to stamp plus the element value
/// overrides distinguishing this variant from the analysis's own circuit.
/// [`driving_point_batch`] materializes a circuit (and analysis) per variant
/// and leaves the overrides empty; the Monte Carlo driver shares **one**
/// analysis across every lane and carries each variant's scaled values as
/// overrides — the stamped systems are identical either way.
#[derive(Clone, Copy)]
struct Lane<'a, 'c> {
    analysis: &'a AcAnalysis<'c>,
    overrides: &'a [(usize, Element)],
}

/// Mutable per-worker state of the batched frequency sweep: the lane value
/// matrices, the batched factorization, the SoA right-hand sides and the
/// scalar escalation context. Runners are allocated at the full configured
/// lane width, pooled per outer worker and reused across variant groups —
/// a ragged group simply drives fewer lanes (`m ≤ width`), so the per-point
/// loop is allocation-free and the factorization buffers are minted once
/// per worker rather than once per group.
struct GroupRunner<'p> {
    width: usize,
    dim: usize,
    /// The injection unknown — constant for the whole batch.
    var: usize,
    /// One value CSR per lane, cloned from the plan's shared zero pattern.
    lanes: Vec<CsrMatrix<Complex64>>,
    batched: BatchedLu<Complex64>,
    /// Lane-interleaved unit-injection RHS / solution (`dim · width`).
    soa_rhs: Vec<Complex64>,
    soa_work: Vec<Complex64>,
    /// Scalar scratch for the per-lane residual acceptance test.
    lane_x: Vec<Complex64>,
    lane_b: Vec<Complex64>,
    lane_r: Vec<Complex64>,
    /// Scratch RHS recycled through the stampers.
    rhs_scratch: Vec<Complex64>,
    /// Per-point lane statuses and pattern-miss flags.
    statuses: Vec<BatchLaneStatus>,
    missed: Vec<bool>,
    /// Scalar escalation context over the same plan: lanes that fail the
    /// batched fast path rerun through the exact serial verified ladder.
    ctx: SolveContext<'p, Complex64>,
    esc_x: Vec<Complex64>,
    stats: SolveStats,
}

impl<'p> GroupRunner<'p> {
    fn new(plan: &'p SweepPlan<Complex64>, width: usize, var: usize) -> Self {
        let n = plan.dim();
        let mut lane_b = vec![Complex64::ZERO; n];
        lane_b[var] = Complex64::ONE;
        Self {
            width,
            dim: n,
            var,
            lanes: vec![plan.pattern().clone(); width],
            batched: BatchedLu::new(plan.symbolic(), width),
            soa_rhs: vec![Complex64::ZERO; n * width],
            soa_work: vec![Complex64::ZERO; n * width],
            lane_x: vec![Complex64::ZERO; n],
            lane_b,
            lane_r: vec![Complex64::ZERO; n],
            rhs_scratch: Vec::with_capacity(n),
            statuses: Vec::with_capacity(width),
            missed: vec![false; width],
            ctx: plan.context(),
            esc_x: vec![Complex64::ZERO; n],
            stats: SolveStats::default(),
        }
    }

    /// Solves one frequency point for every lane of the group, returning the
    /// driving-point value (or per-variant error) per lane. The group may be
    /// ragged (`group.len() < width`): surplus lanes carry unspecified
    /// values that are never read — every batched operation is elementwise
    /// per lane, so dead lanes cannot disturb live ones.
    fn solve_point(&mut self, group: &[Lane<'_, '_>], freq_hz: f64) -> Vec<LanePoint> {
        let w = self.width;
        let m = group.len();
        debug_assert!(m <= w);
        // Restamp every live lane's values over the shared pattern.
        for (k, lane) in group.iter().enumerate() {
            self.lanes[k].zero_values();
            let rhs = std::mem::take(&mut self.rhs_scratch);
            let mut st = Stamper::with_sink_reusing(
                self.ctx.plan().layout(),
                SlotSink::new(&mut self.lanes[k]),
                rhs,
            );
            lane.analysis
                .stamp_system_overridden(&mut st, freq_hz, false, lane.overrides);
            let (sink, rhs) = st.into_parts();
            self.missed[k] = sink.missed();
            self.rhs_scratch = rhs;
            self.stats.cached_assemblies += 1;
        }
        // One batched numeric refactorization over the live lanes.
        {
            let statuses = self.batched.refactor(&self.lanes[..m]);
            self.statuses.clear();
            self.statuses.extend_from_slice(statuses);
        }
        let any_factored = self.statuses.iter().any(|s| s.is_factored());
        self.stats.numeric_refactor += self.statuses.iter().filter(|s| s.is_factored()).count();
        // One batched solve over lane-interleaved unit injections.
        if any_factored {
            self.soa_rhs.fill(Complex64::ZERO);
            for k in 0..m {
                self.soa_rhs[self.var * w + k] = Complex64::ONE;
            }
            self.batched
                .solve_into(&mut self.soa_rhs, &mut self.soa_work)
                .expect("SoA buffers are sized dim * width");
        }
        // Per lane: accept under the exact serial residual rule, or escalate
        // through the scalar verified ladder.
        (0..m)
            .map(|k| {
                if any_factored && !self.missed[k] && self.statuses[k].is_factored() {
                    for i in 0..self.dim {
                        self.lane_x[i] = self.soa_rhs[i * w + k];
                    }
                    let err = normwise_backward_error(
                        &self.lanes[k],
                        &self.lane_x,
                        &self.lane_b,
                        &mut self.lane_r,
                    );
                    if err <= REFINE_BACKWARD_TOLERANCE {
                        return Ok(self.lane_x[self.var]);
                    }
                }
                self.escalate(group[k], freq_hz)
            })
            .collect()
    }

    /// Reruns one lane's point through the scalar context — assemble, unit
    /// injection, backend seam — the exact procedure of the serial
    /// [`AcAnalysis::driving_point_response`] worker. The runner never
    /// installs a stale preconditioner (each lane's matrix differs by its
    /// variant overrides, so no anchor factorization is shared), so under
    /// the iterative backend the seam deterministically takes the counted
    /// direct fallback — escalated values stay bitwise identical to the
    /// direct serial path at any configuration.
    fn escalate(&mut self, lane: Lane<'_, '_>, freq_hz: f64) -> LanePoint {
        let job = AcSystem {
            analysis: lane.analysis,
            freq_hz,
            use_circuit_sources: false,
            overrides: lane.overrides,
        };
        let _ = self.ctx.assemble(&job);
        self.esc_x.fill(Complex64::ZERO);
        self.esc_x[self.var] = Complex64::ONE;
        self.ctx.solve_backend_in_place(&mut self.esc_x)?;
        Ok(self.esc_x[self.var])
    }

    /// Counters accumulated by this runner (stamps, batched refactors, and
    /// everything the escalation context did).
    fn stats(&self) -> SolveStats {
        let mut total = self.stats;
        total.merge(&self.ctx.stats());
        total
    }
}

/// Sweeps the driving-point response at `node` for a batch of circuit
/// variants sharing one topology, amortizing **one** symbolic analysis over
/// the whole batch.
///
/// Variants are grouped into lanes of [`configured_batch_width`] and run
/// through the batched refactor/solve; groups and frequency points are both
/// chunked across worker threads. Per-variant failures (validation errors,
/// singular systems, residual-check failures) are carried in that variant's
/// [`VariantOutcome`] — the batch itself only errors on inputs that are
/// wrong for *every* variant (injecting at the ground node).
///
/// Results are bitwise identical to the serial per-variant reference at any
/// `LOOPSCOPE_THREADS` × `LOOPSCOPE_PANEL` × `LOOPSCOPE_KERNEL` ×
/// `LOOPSCOPE_BATCH` configuration, and the merged
/// [`BatchedSweep::solve_stats`] totals are identical too.
///
/// # Errors
///
/// Returns [`SpiceError::UnknownReference`] when `node` is the ground node
/// or out of range for the batch topology.
pub fn driving_point_batch(
    variants: &[BatchVariant<'_>],
    node: NodeId,
    grid: &FrequencyGrid,
) -> Result<BatchedSweep, SpiceError> {
    let freqs = grid.freqs();
    let mut outcomes: Vec<VariantOutcome> = variants
        .iter()
        .enumerate()
        .map(|(i, v)| VariantOutcome {
            index: i,
            label: v.label.to_string(),
            response: None,
            error: None,
        })
        .collect();
    if variants.is_empty() {
        return Ok(BatchedSweep {
            freqs: freqs.to_vec(),
            outcomes,
            stats: SolveStats::default(),
        });
    }

    // Per-variant analysis construction; failures become that variant's
    // outcome, never the batch's. The batched engine always runs the direct
    // SoA path whatever `LOOPSCOPE_SOLVER` says: its lane-amortized
    // refactorization already fills the role the stale-preconditioned
    // iterative backend plays for serial sweeps (one factor pass serving
    // many solves), and the bitwise-vs-serial-direct contract of the lane
    // engine requires the direct ladder on both sides.
    let analyses: Vec<Result<AcAnalysis<'_>, SpiceError>> = variants
        .iter()
        .map(|v| {
            let a = AcAnalysis::new(v.circuit, v.op)?;
            a.set_solver_backend(loopscope_sparse::SolverBackend::Direct);
            Ok(a)
        })
        .collect();
    let mut healthy: Vec<usize> = Vec::with_capacity(variants.len());
    for (i, a) in analyses.iter().enumerate() {
        match a {
            Ok(_) => healthy.push(i),
            Err(e) => outcomes[i].error = Some(e.clone()),
        }
    }

    if freqs.is_empty() {
        // Mirror the serial path: an empty grid yields empty responses.
        for &i in &healthy {
            outcomes[i].response = Some(Vec::new());
        }
        return Ok(BatchedSweep {
            freqs: Vec::new(),
            outcomes,
            stats: SolveStats::default(),
        });
    }

    // One symbolic analysis for the whole batch, from the first variant
    // whose representative system factors.
    let mut plan = None;
    let mut plan_owner = usize::MAX;
    for &i in &healthy {
        let analysis = analyses[i].as_ref().expect("healthy index");
        match analysis.plan_for(freqs[0]) {
            Ok(p) => {
                plan = Some(p);
                plan_owner = i;
                break;
            }
            Err(e) => outcomes[i].error = Some(e),
        }
    }
    let Some(plan) = plan else {
        // Every variant failed before a plan could be built.
        return Ok(BatchedSweep {
            freqs: freqs.to_vec(),
            outcomes,
            stats: SolveStats::default(),
        });
    };
    healthy.retain(|&i| outcomes[i].error.is_none());

    let Some(var) = plan.layout().node_var(node) else {
        return Err(SpiceError::UnknownReference(
            "cannot inject at the ground node".to_string(),
        ));
    };
    if node.index() >= variants[plan_owner].circuit.node_count() {
        return Err(SpiceError::UnknownReference(format!(
            "node index {} outside circuit",
            node.index()
        )));
    }

    // Structural guard: every lane must address the plan's layout. Variants
    // with a different layout are reported per-variant and skipped.
    healthy.retain(|&i| {
        let a = analyses[i].as_ref().expect("healthy index");
        let compatible = a.layout().dim() == plan.dim() && a.layout().node_var(node) == Some(var);
        if !compatible {
            outcomes[i].error = Some(SpiceError::InvalidOptions(format!(
                "variant '{}' has a different topology than the batch base",
                variants[i].label
            )));
        }
        compatible
    });

    let jobs: Vec<(usize, Lane<'_, '_>)> = healthy
        .iter()
        .map(|&i| {
            (
                i,
                Lane {
                    analysis: analyses[i].as_ref().expect("healthy index"),
                    overrides: &[],
                },
            )
        })
        .collect();
    let (results, drive_stats) = drive_lanes(&plan, &jobs, freqs, var);
    let mut stats = plan.stats();
    stats.merge(&drive_stats);
    for (vi, result) in results {
        match result {
            Ok(resp) => outcomes[vi].response = Some(resp),
            Err(e) => outcomes[vi].error = Some(e),
        }
    }

    Ok(BatchedSweep {
        freqs: freqs.to_vec(),
        outcomes,
        stats,
    })
}

/// One variant's outcome inside [`drive_lanes`]: the original variant index
/// paired with its full-sweep response or the error at its lowest failing
/// frequency.
type VariantResult = (usize, Result<Vec<Complex64>, SpiceError>);

/// The shared two-axis drive of both batch entry points: chunks `jobs`
/// (variant index + lane) into groups of [`configured_batch_width`], sweeps
/// every group over `freqs` — variant groups outside, frequency points
/// inside, so both a many-group and a single-group batch saturate the
/// machine — and transposes the per-point lane rows into per-variant sweeps
/// (a variant's error is the one at its lowest failing frequency).
///
/// Returns per-variant results plus the merged runner counters (**without**
/// the plan-build counters — the caller owns the plan). Counters live in the
/// pooled runners, accumulated across every group a runner served and merged
/// once at the end, so the totals are exact sums — invariant under chunking,
/// lane width and worker count.
fn drive_lanes(
    plan: &SweepPlan<Complex64>,
    jobs: &[(usize, Lane<'_, '_>)],
    freqs: &[f64],
    var: usize,
) -> (Vec<VariantResult>, SolveStats) {
    let width = configured_batch_width();
    let groups: Vec<Vec<(usize, Lane<'_, '_>)>> = jobs
        .chunks(width)
        .map(<[(usize, Lane<'_, '_>)]>::to_vec)
        .collect();
    let (group_results, worker_pools) = par::sweep_chunks(
        &groups,
        Vec::new,
        |pool: &mut Vec<GroupRunner<'_>>,
         _gi,
         group: &Vec<(usize, Lane<'_, '_>)>|
         -> Result<Vec<VariantResult>, SpiceError> {
            let lanes: Vec<Lane<'_, '_>> = group.iter().map(|&(_, lane)| lane).collect();
            // Runners (factor buffers, escalation context) are pooled across
            // groups: each inner worker takes one from the pool — or mints
            // one at the full configured width on first use — and returns it
            // afterwards, so the per-group cost is restamp/refactor only.
            let shared_pool = std::sync::Mutex::new(std::mem::take(pool));
            let (points, runners) = par::sweep_chunks(
                freqs,
                || {
                    shared_pool
                        .lock()
                        .expect("runner pool lock")
                        .pop()
                        .unwrap_or_else(|| GroupRunner::new(plan, width, var))
                },
                |runner: &mut GroupRunner<'_>, _fi, &f| -> Result<Vec<LanePoint>, SpiceError> {
                    Ok(runner.solve_point(&lanes, f))
                },
            );
            *pool = shared_pool.into_inner().expect("runner pool lock");
            pool.extend(runners);
            let points = points.expect("group step is infallible");
            let out = group
                .iter()
                .enumerate()
                .map(|(k, &(vi, _))| {
                    let mut resp = Vec::with_capacity(freqs.len());
                    let mut first_err = None;
                    for row in &points {
                        match &row[k] {
                            Ok(z) => resp.push(*z),
                            Err(e) => {
                                first_err = Some(e.clone());
                                break;
                            }
                        }
                    }
                    (vi, first_err.map_or(Ok(resp), Err))
                })
                .collect();
            Ok(out)
        },
    );

    let mut stats = SolveStats::default();
    for pool in &worker_pools {
        for runner in pool {
            stats.merge(&runner.stats());
        }
    }
    let results = group_results
        .expect("group driver is infallible")
        .into_iter()
        .flatten()
        .collect();
    (results, stats)
}

/// Monte Carlo driving-point sweep: generates `count` variants of `circuit`
/// under `variation` (variant `i`'s values depend only on the seed and `i`)
/// and sweeps them through the batched engine.
///
/// All variants share the base operating point: the analysis linearizes
/// around one fixed bias, which is the small-signal-variation regime the
/// paper's corner methodology assumes (tolerances perturb the AC response,
/// not the bias network).
///
/// Because tolerance rules only rescale element *values* — never the
/// topology — every variant shares the base circuit's validation outcome,
/// node layout and device linearizations. The sweep therefore builds **one**
/// [`AcAnalysis`] and stamps each lane from the base elements with that
/// variant's scaled elements substituted in place, instead of materializing
/// `count` circuit clones. The substituted elements carry the exact values
/// [`ParameterVariation::apply`] would have written, and the stamp walks the
/// element list in the same order, so lane systems — and thus results — are
/// bitwise identical to running the materialized variants through
/// [`driving_point_batch`].
///
/// # Errors
///
/// Returns the rule errors of [`ParameterVariation::apply`] (unknown element
/// name, unscalable element kind) — those would fail every variant
/// identically — and the batch-level errors of [`driving_point_batch`].
/// Per-variant solver failures are **not** errors; they land in the yield.
pub fn driving_point_monte_carlo(
    circuit: &Circuit,
    op: &OperatingPoint,
    node: NodeId,
    grid: &FrequencyGrid,
    variation: &ParameterVariation,
    count: usize,
) -> Result<BatchedSweep, SpiceError> {
    let freqs = grid.freqs();
    // Rule errors (unknown element, unscalable kind) fail every variant the
    // same way, so they surface as batch-level errors up front.
    let positions = variation.rule_positions(circuit)?;
    let mut overrides: Vec<Vec<(usize, Element)>> = Vec::with_capacity(count);
    for i in 0..count {
        overrides.push(variation.overrides_for(i, circuit, &positions)?);
    }
    let mut outcomes: Vec<VariantOutcome> = (0..count)
        .map(|i| VariantOutcome {
            index: i,
            label: format!("mc#{i}"),
            response: None,
            error: None,
        })
        .collect();
    if count == 0 {
        return Ok(BatchedSweep {
            freqs: freqs.to_vec(),
            outcomes,
            stats: SolveStats::default(),
        });
    }

    // Validation is purely topological, so a base-analysis failure is every
    // variant's failure; mirror the per-variant outcome semantics of
    // `driving_point_batch`.
    let base = match AcAnalysis::new(circuit, op) {
        Ok(a) => {
            // Direct SoA engine regardless of `LOOPSCOPE_SOLVER` — see
            // `driving_point_batch` for the rationale.
            a.set_solver_backend(loopscope_sparse::SolverBackend::Direct);
            a
        }
        Err(e) => {
            for o in &mut outcomes {
                o.error = Some(e.clone());
            }
            return Ok(BatchedSweep {
                freqs: freqs.to_vec(),
                outcomes,
                stats: SolveStats::default(),
            });
        }
    };
    if freqs.is_empty() {
        for o in &mut outcomes {
            o.response = Some(Vec::new());
        }
        return Ok(BatchedSweep {
            freqs: Vec::new(),
            outcomes,
            stats: SolveStats::default(),
        });
    }

    // One symbolic analysis from the base values. The plan's pattern depends
    // only on the (shared) structure; should the base representative fail to
    // factor, fall back to materialized variants so a perturbation that
    // rescues the system still gets its chance, exactly as before.
    let plan = match base.plan_for(freqs[0]) {
        Ok(p) => p,
        Err(_) => {
            let mut variant_circuits = Vec::with_capacity(count);
            for i in 0..count {
                let mut c = circuit.clone();
                variation.apply(i, &mut c)?;
                variant_circuits.push(c);
            }
            let labels: Vec<String> = (0..count).map(|i| format!("mc#{i}")).collect();
            let variants: Vec<BatchVariant<'_>> = variant_circuits
                .iter()
                .zip(&labels)
                .map(|(c, label)| BatchVariant {
                    label,
                    circuit: c,
                    op,
                })
                .collect();
            return driving_point_batch(&variants, node, grid);
        }
    };

    let Some(var) = plan.layout().node_var(node) else {
        return Err(SpiceError::UnknownReference(
            "cannot inject at the ground node".to_string(),
        ));
    };
    if node.index() >= circuit.node_count() {
        return Err(SpiceError::UnknownReference(format!(
            "node index {} outside circuit",
            node.index()
        )));
    }

    let jobs: Vec<(usize, Lane<'_, '_>)> = overrides
        .iter()
        .enumerate()
        .map(|(i, over)| {
            (
                i,
                Lane {
                    analysis: &base,
                    overrides: over,
                },
            )
        })
        .collect();
    let (results, drive_stats) = drive_lanes(&plan, &jobs, freqs, var);
    let mut stats = plan.stats();
    stats.merge(&drive_stats);
    for (vi, result) in results {
        match result {
            Ok(resp) => outcomes[vi].response = Some(resp),
            Err(e) => outcomes[vi].error = Some(e),
        }
    }

    Ok(BatchedSweep {
        freqs: freqs.to_vec(),
        outcomes,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::solve_dc;
    use loopscope_netlist::SourceSpec;

    /// R ∥ C one-pole: Z(jω) = R / (1 + jωRC) — small, well-conditioned.
    fn rc_tank() -> Circuit {
        let mut c = Circuit::new("rc tank");
        let out = c.node("out");
        c.add_resistor("R1", out, Circuit::GROUND, 1.0e3);
        c.add_capacitor("C1", out, Circuit::GROUND, 1.0e-9);
        c.add_isource("I1", Circuit::GROUND, out, SourceSpec::dc(0.0));
        c
    }

    #[test]
    fn batch_width_parsing_defaults_and_bounds() {
        assert_eq!(parse_batch_width(None), DEFAULT_BATCH_WIDTH);
        assert_eq!(parse_batch_width(Some("")), DEFAULT_BATCH_WIDTH);
        assert_eq!(parse_batch_width(Some("junk")), DEFAULT_BATCH_WIDTH);
        assert_eq!(parse_batch_width(Some("0")), DEFAULT_BATCH_WIDTH);
        assert_eq!(parse_batch_width(Some("1")), 1);
        assert_eq!(parse_batch_width(Some(" 8 ")), 8);
    }

    #[test]
    fn variation_streams_are_deterministic_and_index_addressable() {
        let var = ParameterVariation::new(0xCAFE)
            .gaussian("R1", 0.05)
            .uniform("C1", 0.2);
        let f2 = var.factors(2);
        // Re-querying any index reproduces it exactly, in any order.
        assert_eq!(var.factors(7), var.factors(7));
        assert_eq!(var.factors(2), f2);
        assert_ne!(var.factors(3), f2);
        // Uniform factors stay inside their span; Gaussian ones vary.
        for i in 0..200 {
            let f = var.factors(i);
            assert!(f[1] >= 0.8 && f[1] <= 1.2, "uniform out of span: {}", f[1]);
            assert!(f[0].is_finite());
        }
        // A different seed produces a different stream.
        let other = ParameterVariation::new(0xBEEF)
            .gaussian("R1", 0.05)
            .uniform("C1", 0.2);
        assert_ne!(other.factors(2), f2);
    }

    #[test]
    fn variation_apply_scales_named_elements_only() {
        let var = ParameterVariation::new(1).gaussian("R1", 0.1);
        let base = rc_tank();
        let mut scaled = base.clone();
        var.apply(0, &mut scaled).unwrap();
        let factor = var.factors(0)[0];
        let (Some(Element::Resistor(r0)), Some(Element::Resistor(r1))) =
            (base.element("R1"), scaled.element("R1"))
        else {
            panic!("resistor lookup");
        };
        assert_eq!(r1.ohms, r0.ohms * factor);
        // Unnamed elements are untouched.
        assert_eq!(base.element("C1"), scaled.element("C1"));
        // Unknown element name is a rule error.
        let bad = ParameterVariation::new(1).gaussian("R99", 0.1);
        assert!(matches!(
            bad.apply(0, &mut base.clone()),
            Err(SpiceError::UnknownReference(_))
        ));
        // Independent sources have no scalable value.
        let bad_kind = ParameterVariation::new(1).gaussian("I1", 0.1);
        assert!(matches!(
            bad_kind.apply(0, &mut base.clone()),
            Err(SpiceError::InvalidOptions(_))
        ));
    }

    #[test]
    fn identical_variants_match_the_serial_sweep_bitwise() {
        let c = rc_tank();
        let op = solve_dc(&c).unwrap();
        let node = c.find_node("out").unwrap();
        let grid = FrequencyGrid::log_decade(1.0e3, 1.0e7, 5);

        let ac = AcAnalysis::new(&c, &op).unwrap();
        // The batched engine is always direct; pin the serial reference
        // direct too so the bitwise comparison holds at any LOOPSCOPE_SOLVER.
        ac.set_solver_backend(loopscope_sparse::SolverBackend::Direct);
        let reference = ac.driving_point_response(node, &grid).unwrap();

        // Zero rules: every Monte Carlo variant is the base circuit.
        let variation = ParameterVariation::new(9);
        let sweep = driving_point_monte_carlo(&c, &op, node, &grid, &variation, 5).unwrap();
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep.yield_count(), 5);
        assert_eq!(sweep.yield_fraction(), 1.0);
        // One symbolic analysis for the whole batch.
        assert_eq!(sweep.solve_stats().symbolic, 1);
        for outcome in sweep.outcomes() {
            let resp = outcome.response.as_ref().unwrap();
            assert_eq!(resp.len(), reference.len());
            for (a, b) in resp.iter().zip(&reference) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn varied_variants_match_per_variant_serial_references_bitwise() {
        let c = rc_tank();
        let op = solve_dc(&c).unwrap();
        let node = c.find_node("out").unwrap();
        let grid = FrequencyGrid::log_decade(1.0e3, 1.0e7, 4);
        let variation = ParameterVariation::new(0xD00D)
            .gaussian("R1", 0.05)
            .uniform("C1", 0.1);

        let sweep = driving_point_monte_carlo(&c, &op, node, &grid, &variation, 6).unwrap();
        assert_eq!(sweep.yield_count(), 6);
        for (i, outcome) in sweep.outcomes().iter().enumerate() {
            // Serial reference: an independent analysis of the same variant.
            let mut vc = c.clone();
            variation.apply(i, &mut vc).unwrap();
            let ac = AcAnalysis::new(&vc, &op).unwrap();
            // Direct pin: stay engine-coherent with the always-direct batch.
            ac.set_solver_backend(loopscope_sparse::SolverBackend::Direct);
            let reference = ac.driving_point_response(node, &grid).unwrap();
            let resp = outcome.response.as_ref().unwrap();
            for (a, b) in resp.iter().zip(&reference) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn failed_variants_never_abort_the_batch() {
        let c = rc_tank();
        let op = solve_dc(&c).unwrap();
        let node = c.find_node("out").unwrap();
        let grid = FrequencyGrid::log_decade(1.0e3, 1.0e6, 3);

        // A structurally different variant (extra node) cannot share the
        // batch layout and must fail alone.
        let mut odd = Circuit::new("odd");
        let out = odd.node("out");
        let extra = odd.node("extra");
        odd.add_resistor("R1", out, Circuit::GROUND, 1.0e3);
        odd.add_capacitor("C1", out, Circuit::GROUND, 1.0e-9);
        odd.add_resistor("R2", out, extra, 1.0e3);
        odd.add_capacitor("C2", extra, Circuit::GROUND, 1.0e-12);
        let odd_op = solve_dc(&odd).unwrap();

        let variants = [
            BatchVariant {
                label: "good-a",
                circuit: &c,
                op: &op,
            },
            BatchVariant {
                label: "odd",
                circuit: &odd,
                op: &odd_op,
            },
            BatchVariant {
                label: "good-b",
                circuit: &c,
                op: &op,
            },
        ];
        let sweep = driving_point_batch(&variants, node, &grid).unwrap();
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep.yield_count(), 2);
        assert!(sweep.outcomes()[0].converged());
        assert!(sweep.outcomes()[2].converged());
        let bad = &sweep.outcomes()[1];
        assert!(!bad.converged());
        assert!(matches!(bad.error, Some(SpiceError::InvalidOptions(_))));
        // The two healthy lanes still match each other bitwise.
        assert_eq!(sweep.outcomes()[0].response, sweep.outcomes()[2].response);
    }

    #[test]
    fn worst_case_and_quantile_extraction() {
        // Larger R ⇒ taller |Z| peak at DC end: variant order is known.
        let mut circuits = Vec::new();
        for (i, ohms) in [1.0e3, 4.0e3, 2.0e3].into_iter().enumerate() {
            let mut c = Circuit::new(format!("tank {i}"));
            let out = c.node("out");
            c.add_resistor("R1", out, Circuit::GROUND, ohms);
            c.add_capacitor("C1", out, Circuit::GROUND, 1.0e-9);
            circuits.push(c);
        }
        let ops: Vec<_> = circuits.iter().map(|c| solve_dc(c).unwrap()).collect();
        let node = circuits[0].find_node("out").unwrap();
        let labels = ["a", "b", "c"];
        let variants: Vec<BatchVariant<'_>> = circuits
            .iter()
            .zip(&ops)
            .zip(labels)
            .map(|((circuit, op), label)| BatchVariant { label, circuit, op })
            .collect();
        let grid = FrequencyGrid::log_decade(1.0e2, 1.0e6, 3);
        let sweep = driving_point_batch(&variants, node, &grid).unwrap();
        assert_eq!(sweep.yield_count(), 3);
        let (worst_idx, worst_peak) = sweep.worst_case_peak().unwrap();
        assert_eq!(worst_idx, 1); // the 4 kΩ tank
        assert!((worst_peak - sweep.peak_quantile(1.0).unwrap()).abs() == 0.0);
        assert!(sweep.peak_quantile(0.0).unwrap() <= sweep.peak_quantile(0.5).unwrap());
        assert!(sweep.peak_quantile(0.5).unwrap() <= sweep.peak_quantile(1.0).unwrap());
    }

    #[test]
    fn ground_injection_is_a_batch_level_error() {
        let c = rc_tank();
        let op = solve_dc(&c).unwrap();
        let grid = FrequencyGrid::log_decade(1.0e3, 1.0e6, 2);
        let variation = ParameterVariation::new(3);
        let err =
            driving_point_monte_carlo(&c, &op, Circuit::GROUND, &grid, &variation, 2).unwrap_err();
        assert!(matches!(err, SpiceError::UnknownReference(_)));
    }

    #[test]
    fn empty_batch_is_well_defined() {
        let grid = FrequencyGrid::log_decade(1.0e3, 1.0e6, 2);
        let sweep = driving_point_batch(&[], Circuit::GROUND, &grid).unwrap();
        assert!(sweep.is_empty());
        assert_eq!(sweep.yield_fraction(), 1.0);
        assert_eq!(sweep.worst_case_peak(), None);
        assert_eq!(sweep.peak_quantile(0.5), None);
    }
}
