//! Nonlinear DC operating-point analysis.
//!
//! The operating point is found by Newton-Raphson iteration on the MNA
//! system, with two convergence aids borrowed from production SPICE engines
//! when plain iteration fails:
//!
//! * **gmin stepping** — a shunt conductance from every node to ground is
//!   started large and reduced decade by decade, re-converging at every step;
//! * **source stepping** — all independent DC sources are ramped from 0 to
//!   100 % while re-converging.
//!
//! The result ([`OperatingPoint`]) carries the node voltages and branch
//! currents, and is the linearization point for AC and the starting state for
//! transient analysis.

use crate::assembly::{AssembleMna, CachedMna};
use crate::devices;
use crate::error::SpiceError;
use crate::mna::{MatrixSink, MnaLayout, Stamper};
use crate::GMIN;
use loopscope_netlist::{Circuit, Element, NodeId};
use std::collections::HashMap;

/// Options controlling the operating-point solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcOptions {
    /// Maximum Newton iterations per convergence attempt.
    pub max_iterations: usize,
    /// Absolute node-voltage convergence tolerance in volts.
    pub vntol: f64,
    /// Relative convergence tolerance.
    pub reltol: f64,
    /// Largest per-iteration node-voltage update in volts (damping).
    pub max_step: f64,
    /// Number of decades used by gmin stepping when plain Newton fails.
    pub gmin_decades: usize,
    /// Number of ramp points used by source stepping as a last resort.
    pub source_steps: usize,
}

impl Default for DcOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            vntol: 1.0e-9,
            reltol: 1.0e-6,
            max_step: 0.5,
            gmin_decades: 10,
            source_steps: 10,
        }
    }
}

impl DcOptions {
    /// Checks the options for internal consistency before any work happens:
    /// at least one Newton iteration, finite positive tolerances and damping
    /// step, and at least one source-stepping ramp point.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidOptions`] naming the offending field.
    pub fn validate(&self) -> Result<(), SpiceError> {
        if self.max_iterations == 0 {
            return Err(SpiceError::InvalidOptions(
                "max_iterations must be at least 1".into(),
            ));
        }
        for (name, value) in [
            ("vntol", self.vntol),
            ("reltol", self.reltol),
            ("max_step", self.max_step),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(SpiceError::InvalidOptions(format!(
                    "{name} must be finite and positive (got {value})"
                )));
            }
        }
        if self.source_steps == 0 {
            return Err(SpiceError::InvalidOptions(
                "source_steps must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// The convergence strategy a [`StageReport`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcPhase {
    /// Plain Newton-Raphson from the initial guess.
    Newton,
    /// Gmin stepping: a decade-by-decade reduction of an extra shunt
    /// conductance from every node to ground.
    GminStepping,
    /// Source stepping: independent DC sources ramped from 0 to 100 %.
    SourceStepping,
}

/// One Newton run inside the operating-point search: which phase and stage
/// it served, how many iterations it used and where its convergence metric
/// ended up.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// The convergence strategy this run belonged to.
    pub phase: DcPhase,
    /// Stage index within the phase: 0 for plain Newton; the gmin decade
    /// (with the final no-shunt re-solve last) for gmin stepping; the ramp
    /// point (1-based) for source stepping.
    pub stage: usize,
    /// Newton iterations the stage used.
    pub iterations: usize,
    /// Largest node-voltage update at the last iteration — the convergence
    /// residual the tolerances are tested against.
    pub final_delta: f64,
    /// Whether the stage converged (a failed stage triggers the next phase,
    /// or the overall error when no phase is left).
    pub converged: bool,
}

/// How the DC operating point converged: every Newton run the search
/// performed, in order, across the plain / gmin-stepping / source-stepping
/// phases. Carried by [`OperatingPoint::convergence`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceReport {
    stages: Vec<StageReport>,
}

impl ConvergenceReport {
    /// Every Newton run of the search, in execution order.
    pub fn stages(&self) -> &[StageReport] {
        &self.stages
    }

    /// The phase that produced the final (converged) solution — the phase
    /// the search had to escalate to.
    pub fn phase(&self) -> DcPhase {
        self.stages.last().map_or(DcPhase::Newton, |s| s.phase)
    }

    /// Total Newton iterations across all stages, including failed attempts.
    pub fn total_iterations(&self) -> usize {
        self.stages.iter().map(|s| s.iterations).sum()
    }
}

/// The DC operating point of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    node_voltages: Vec<f64>,
    branch_currents: HashMap<String, f64>,
    iterations: usize,
    convergence: ConvergenceReport,
}

impl OperatingPoint {
    /// Voltage of a node (0 for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.node_voltages[node.index()]
    }

    /// The full node-voltage table indexed by `NodeId::index()`.
    pub fn node_voltages(&self) -> &[f64] {
        &self.node_voltages
    }

    /// Current through a branch-forming element (voltage sources, inductors,
    /// VCVS, CCVS), in amperes, if that element owns a branch.
    pub fn branch_current(&self, element_name: &str) -> Option<f64> {
        self.branch_currents.get(element_name).copied()
    }

    /// Total Newton iterations spent converging (across all stepping phases,
    /// including attempts that failed and forced an escalation).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Stage-by-stage convergence report: which phase the search reached and
    /// the iterations and final residual of every Newton run along the way.
    pub fn convergence(&self) -> &ConvergenceReport {
        &self.convergence
    }
}

/// The DC MNA system at a trial solution, as a restampable assembly job.
///
/// `source_scale` multiplies all independent DC sources (used by source
/// stepping) and `gshunt` is an extra conductance from every node to ground
/// (used by gmin stepping). Neither affects the sparsity pattern, and the
/// Newton trial voltages only move values, so the whole DC solve — every
/// iteration of every gmin/source-stepping phase — shares one cached pattern
/// and (pivot health permitting) one symbolic LU analysis.
struct DcSystem<'a> {
    circuit: &'a Circuit,
    layout: &'a MnaLayout,
    voltages: &'a [f64],
    source_scale: f64,
    gshunt: f64,
}

impl AssembleMna<f64> for DcSystem<'_> {
    fn stamp<S: MatrixSink<f64>>(&self, st: &mut Stamper<'_, f64, S>) {
        stamp_dc(
            st,
            self.circuit,
            self.layout,
            self.voltages,
            self.source_scale,
            self.gshunt,
        );
    }
}

/// Stamps the DC MNA system at a trial solution (see [`DcSystem`]).
fn stamp_dc<S: MatrixSink<f64>>(
    st: &mut Stamper<'_, f64, S>,
    circuit: &Circuit,
    layout: &MnaLayout,
    voltages: &[f64],
    source_scale: f64,
    gshunt: f64,
) {
    // Global minimum conductance to ground.
    for node in 1..voltages.len() {
        st.add_node_node(
            NodeId::from_index(node),
            NodeId::from_index(node),
            GMIN + gshunt,
        );
    }

    for el in circuit.elements() {
        match el {
            Element::Resistor(r) => st.stamp_admittance(r.a, r.b, 1.0 / r.ohms),
            Element::Capacitor(_) => {
                // Open circuit at DC.
            }
            Element::Inductor(l) => {
                let br = layout.branch_var(&l.name).expect("inductor owns a branch");
                st.add_var_node(br, l.a, 1.0);
                st.add_var_node(br, l.b, -1.0);
                st.add_node_var(l.a, br, 1.0);
                st.add_node_var(l.b, br, -1.0);
            }
            Element::Vsource(v) => {
                let br = layout.branch_var(&v.name).expect("vsource owns a branch");
                st.add_var_node(br, v.plus, 1.0);
                st.add_var_node(br, v.minus, -1.0);
                st.add_node_var(v.plus, br, 1.0);
                st.add_node_var(v.minus, br, -1.0);
                st.add_rhs_var(br, v.spec.dc * source_scale);
            }
            Element::Isource(i) => {
                // Current flows from `plus` through the source into `minus`.
                st.stamp_current_injection(i.minus, i.plus, i.spec.dc * source_scale);
            }
            Element::Vcvs(e) => {
                let br = layout.branch_var(&e.name).expect("vcvs owns a branch");
                st.add_var_node(br, e.out_plus, 1.0);
                st.add_var_node(br, e.out_minus, -1.0);
                st.add_var_node(br, e.ctrl_plus, -e.gain);
                st.add_var_node(br, e.ctrl_minus, e.gain);
                st.add_node_var(e.out_plus, br, 1.0);
                st.add_node_var(e.out_minus, br, -1.0);
            }
            Element::Vccs(g) => {
                st.stamp_vccs(g.out_plus, g.out_minus, g.ctrl_plus, g.ctrl_minus, g.gm)
            }
            Element::Cccs(f) => {
                let ctrl = layout
                    .branch_var(&f.ctrl_vsource)
                    .expect("controlling source validated");
                st.add_node_var(f.out_plus, ctrl, f.gain);
                st.add_node_var(f.out_minus, ctrl, -f.gain);
            }
            Element::Ccvs(h) => {
                let br = layout.branch_var(&h.name).expect("ccvs owns a branch");
                let ctrl = layout
                    .branch_var(&h.ctrl_vsource)
                    .expect("controlling source validated");
                st.add_var_node(br, h.out_plus, 1.0);
                st.add_var_node(br, h.out_minus, -1.0);
                st.add_var_var(br, ctrl, -h.rm);
                st.add_node_var(h.out_plus, br, 1.0);
                st.add_node_var(h.out_minus, br, -1.0);
            }
            Element::Diode(d) => apply_nonlinear(st, devices::stamp_diode(d, voltages)),
            Element::Bjt(q) => apply_nonlinear(st, devices::stamp_bjt(q, voltages)),
            Element::Mosfet(m) => apply_nonlinear(st, devices::stamp_mosfet(m, voltages)),
        }
    }
}

fn apply_nonlinear<S: MatrixSink<f64>>(
    st: &mut Stamper<'_, f64, S>,
    stamp: devices::NonlinearStamp,
) {
    for (r, c, g) in stamp.conductances {
        st.add_node_node(r, c, g);
    }
    for (n, i) in stamp.rhs_currents {
        st.add_rhs_node(n, i);
    }
}

/// A converged Newton run: the final node voltages, the full unknown vector
/// and the iterations it took.
struct NewtonRun {
    voltages: Vec<f64>,
    solution: Vec<f64>,
    iterations: usize,
    final_delta: f64,
}

/// Outcome of one Newton run. Non-convergence is an ordinary outcome here —
/// the caller escalates to the next continuation phase — while hard solver
/// failures (singular system, non-finite stamp, exhausted retry ladder)
/// surface as `Err` and abort the whole operating-point search.
enum NewtonOutcome {
    Converged(NewtonRun),
    NoConvergence { iterations: usize, final_delta: f64 },
}

/// Runs Newton-Raphson from the supplied initial node voltages.
///
/// Every linear solve goes through the residual-verified retry ladder
/// ([`CachedMna::solve_verified_into`]), so solver failures arrive
/// name-enriched and are genuine hard errors, not convergence noise.
#[allow(clippy::too_many_arguments)]
fn newton(
    circuit: &Circuit,
    layout: &MnaLayout,
    solver: &mut CachedMna<f64>,
    initial_voltages: &[f64],
    source_scale: f64,
    gshunt: f64,
    opts: &DcOptions,
) -> Result<NewtonOutcome, SpiceError> {
    let node_count = circuit.node_count();
    let mut voltages = initial_voltages.to_vec();
    let mut solution = vec![0.0; layout.dim()];
    // Reused across iterations: ground (index 0) stays zero, every other
    // entry is rewritten below.
    let mut new_voltages = vec![0.0; node_count];
    let has_nonlinear = circuit.elements().iter().any(Element::is_nonlinear);
    let mut last_delta = f64::INFINITY;

    for iteration in 1..=opts.max_iterations {
        let job = DcSystem {
            circuit,
            layout,
            voltages: &voltages,
            source_scale,
            gshunt,
        };
        solver.solve_verified_into(layout, &job, &mut solution)?;

        // Extract and damp the node-voltage update.
        let mut max_delta: f64 = 0.0;
        for idx in 1..node_count {
            let node = NodeId::from_index(idx);
            let var = layout.node_var(node).expect("non-ground node");
            let target = solution[var];
            let delta = target - voltages[idx];
            let limited = delta.clamp(-opts.max_step, opts.max_step);
            new_voltages[idx] = voltages[idx] + limited;
            max_delta = max_delta.max(delta.abs());
        }
        last_delta = max_delta;

        let converged = (1..node_count).all(|idx| {
            let node = NodeId::from_index(idx);
            let var = layout.node_var(node).expect("non-ground node");
            let delta = (solution[var] - voltages[idx]).abs();
            delta <= opts.vntol + opts.reltol * solution[var].abs()
        });

        std::mem::swap(&mut voltages, &mut new_voltages);

        if converged || !has_nonlinear {
            // Linear circuits converge in a single iteration by construction.
            // Re-read the exact node voltages from the solution (undo damping).
            for (idx, v) in voltages.iter_mut().enumerate().skip(1) {
                let var = layout
                    .node_var(NodeId::from_index(idx))
                    .expect("non-ground node");
                *v = solution[var];
            }
            return Ok(NewtonOutcome::Converged(NewtonRun {
                voltages,
                solution,
                iterations: iteration,
                final_delta: max_delta,
            }));
        }
    }

    Ok(NewtonOutcome::NoConvergence {
        iterations: opts.max_iterations,
        final_delta: last_delta,
    })
}

/// Solves the DC operating point with default options.
///
/// # Errors
///
/// Returns [`SpiceError::Netlist`] if the circuit fails validation; a hard
/// solver failure ([`SpiceError::SingularSystem`],
/// [`SpiceError::NonFiniteStamp`], [`SpiceError::ResidualCheckFailed`] or
/// [`SpiceError::Linear`]) if the MNA system cannot be solved; and
/// [`SpiceError::DcNoConvergence`] if Newton iteration (including gmin and
/// source stepping) fails to converge.
pub fn solve_dc(circuit: &Circuit) -> Result<OperatingPoint, SpiceError> {
    solve_dc_with(circuit, &DcOptions::default())
}

/// Solves the DC operating point with explicit options.
///
/// # Errors
///
/// See [`solve_dc`]; additionally returns [`SpiceError::InvalidOptions`] if
/// `opts` fails [`DcOptions::validate`].
pub fn solve_dc_with(circuit: &Circuit, opts: &DcOptions) -> Result<OperatingPoint, SpiceError> {
    opts.validate()?;
    circuit.validate().map_err(SpiceError::Netlist)?;
    let layout = MnaLayout::new(circuit);
    let zero = vec![0.0; circuit.node_count()];
    let mut report = ConvergenceReport::default();
    // One assembly/factorization cache for the entire operating-point search:
    // gmin and source stepping only change values, never the pattern.
    let mut solver = CachedMna::new();

    // Attempt 1: plain Newton from a zero initial guess. Hard solver failures
    // (`Err`) abort the whole search; only non-convergence escalates.
    let direct = newton(circuit, &layout, &mut solver, &zero, 1.0, 0.0, opts)?;
    let (voltages, solution) = match direct {
        NewtonOutcome::Converged(run) => {
            report.stages.push(StageReport {
                phase: DcPhase::Newton,
                stage: 0,
                iterations: run.iterations,
                final_delta: run.final_delta,
                converged: true,
            });
            (run.voltages, run.solution)
        }
        NewtonOutcome::NoConvergence {
            iterations,
            final_delta,
        } => {
            report.stages.push(StageReport {
                phase: DcPhase::Newton,
                stage: 0,
                iterations,
                final_delta,
                converged: false,
            });
            // Attempt 2: gmin stepping; attempt 3: source stepping.
            match gmin_stepping(circuit, &layout, &mut solver, opts, &mut report)? {
                Some(pair) => pair,
                None => source_stepping(circuit, &layout, &mut solver, opts, &mut report)?,
            }
        }
    };

    let mut branch_currents = HashMap::new();
    for el in circuit.elements() {
        if let Some(var) = layout.branch_var(el.name()) {
            branch_currents.insert(el.name().to_string(), solution[var]);
        }
    }
    Ok(OperatingPoint {
        node_voltages: voltages,
        branch_currents,
        iterations: report.total_iterations(),
        convergence: report,
    })
}

type DcSolution = (Vec<f64>, Vec<f64>);

/// Gmin-stepping continuation. `Ok(None)` means a stage failed to converge
/// and the caller should fall through to source stepping; `Err` is a hard
/// solver failure that aborts the search.
fn gmin_stepping(
    circuit: &Circuit,
    layout: &MnaLayout,
    solver: &mut CachedMna<f64>,
    opts: &DcOptions,
    report: &mut ConvergenceReport,
) -> Result<Option<DcSolution>, SpiceError> {
    let mut guess = vec![0.0; circuit.node_count()];
    for step in 0..=opts.gmin_decades + 1 {
        // Decades of shrinking shunt conductance, then a final solve with no
        // extra shunt at all.
        let gshunt = if step <= opts.gmin_decades {
            1.0e-2 * 10f64.powi(-(step as i32))
        } else {
            0.0
        };
        let outcome = newton(circuit, layout, solver, &guess, 1.0, gshunt, opts)?;
        match outcome {
            NewtonOutcome::Converged(run) => {
                report.stages.push(StageReport {
                    phase: DcPhase::GminStepping,
                    stage: step,
                    iterations: run.iterations,
                    final_delta: run.final_delta,
                    converged: true,
                });
                guess = run.voltages;
                if step > opts.gmin_decades {
                    return Ok(Some((guess, run.solution)));
                }
            }
            NewtonOutcome::NoConvergence {
                iterations,
                final_delta,
            } => {
                report.stages.push(StageReport {
                    phase: DcPhase::GminStepping,
                    stage: step,
                    iterations,
                    final_delta,
                    converged: false,
                });
                return Ok(None);
            }
        }
    }
    unreachable!("the zero-shunt stage always returns")
}

/// Source-stepping continuation — the last phase, so a stage that fails to
/// converge is the overall [`SpiceError::DcNoConvergence`] (with the real
/// iteration count and final voltage update of the failing stage).
fn source_stepping(
    circuit: &Circuit,
    layout: &MnaLayout,
    solver: &mut CachedMna<f64>,
    opts: &DcOptions,
    report: &mut ConvergenceReport,
) -> Result<DcSolution, SpiceError> {
    let mut guess = vec![0.0; circuit.node_count()];
    let mut result = None;
    for step in 1..=opts.source_steps {
        let scale = step as f64 / opts.source_steps as f64;
        let outcome = newton(circuit, layout, solver, &guess, scale, 0.0, opts)?;
        match outcome {
            NewtonOutcome::Converged(run) => {
                report.stages.push(StageReport {
                    phase: DcPhase::SourceStepping,
                    stage: step,
                    iterations: run.iterations,
                    final_delta: run.final_delta,
                    converged: true,
                });
                guess = run.voltages.clone();
                result = Some((run.voltages, run.solution));
            }
            NewtonOutcome::NoConvergence {
                iterations,
                final_delta,
            } => {
                report.stages.push(StageReport {
                    phase: DcPhase::SourceStepping,
                    stage: step,
                    iterations,
                    final_delta,
                    converged: false,
                });
                return Err(SpiceError::DcNoConvergence {
                    iterations,
                    max_delta: final_delta,
                });
            }
        }
    }
    Ok(result.expect("source_steps >= 1 is enforced by DcOptions::validate"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::THERMAL_VOLTAGE;
    use loopscope_netlist::{
        BjtModel, BjtPolarity, DiodeModel, MosfetModel, MosfetPolarity, SourceSpec,
    };

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new("divider");
        let vin = c.node("in");
        let mid = c.node("mid");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::dc(10.0));
        c.add_resistor("R1", vin, mid, 3.0e3);
        c.add_resistor("R2", mid, Circuit::GROUND, 1.0e3);
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(vin) - 10.0).abs() < 1e-9);
        assert!((op.voltage(mid) - 2.5).abs() < 1e-6);
        // Source current = −10/4k = −2.5 mA (flows out of the + terminal).
        let i = op.branch_current("V1").unwrap();
        assert!((i + 2.5e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new("isrc");
        let out = c.node("out");
        // 1 mA injected into `out` (flows from ground through the source).
        c.add_isource("I1", Circuit::GROUND, out, SourceSpec::dc(1.0e-3));
        c.add_resistor("R1", out, Circuit::GROUND, 2.0e3);
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(out) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut c = Circuit::new("lshort");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_inductor("L1", a, b, 1.0e-3);
        c.add_resistor("R1", b, Circuit::GROUND, 1.0e3);
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(b) - 1.0).abs() < 1e-9);
        let il = op.branch_current("L1").unwrap();
        assert!((il - 1.0e-3).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_dc_open() {
        let mut c = Circuit::new("copen");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(5.0));
        c.add_resistor("R1", a, b, 1.0e3);
        c.add_capacitor("C1", b, Circuit::GROUND, 1.0e-9);
        let op = solve_dc(&c).unwrap();
        // No DC path through the capacitor → no drop across R1.
        assert!((op.voltage(b) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn vcvs_amplifies() {
        let mut c = Circuit::new("vcvs");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("V1", inp, Circuit::GROUND, SourceSpec::dc(0.1));
        c.add_resistor("Rin", inp, Circuit::GROUND, 1.0e6);
        c.add_vcvs("E1", out, Circuit::GROUND, inp, Circuit::GROUND, 20.0);
        c.add_resistor("Rload", out, Circuit::GROUND, 1.0e3);
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(out) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn vccs_and_cccs() {
        let mut c = Circuit::new("gm");
        let inp = c.node("in");
        let out = c.node("out");
        let out2 = c.node("out2");
        c.add_vsource("V1", inp, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_resistor("Rin", inp, Circuit::GROUND, 1.0e3);
        // 1 mS VCCS: i = 1 mA pulled from out (flows out→ground through source).
        c.add_vccs("G1", out, Circuit::GROUND, inp, Circuit::GROUND, 1.0e-3);
        c.add_resistor("Ro", out, Circuit::GROUND, 1.0e3);
        // CCCS mirrors the V1 current into out2.
        c.add_cccs("F1", out2, Circuit::GROUND, "V1", 1.0);
        c.add_resistor("Ro2", out2, Circuit::GROUND, 1.0e3);
        let op = solve_dc(&c).unwrap();
        // VCCS drives current out of node `out` → −1 V across 1 kΩ.
        assert!((op.voltage(out) + 1.0).abs() < 1e-6);
        // V1 sources 1 mA into Rin, so its branch current is −1 mA; the CCCS
        // copies it flowing out of `out2`, giving +1 V across Ro2.
        assert!((op.voltage(out2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ccvs_transresistance() {
        let mut c = Circuit::new("ccvs");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("V1", inp, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_resistor("R1", inp, Circuit::GROUND, 1.0e3);
        // v(out) = 2000 Ω · i(V1); i(V1) = −1 mA → −2 V.
        c.add_ccvs("H1", out, Circuit::GROUND, "V1", 2.0e3);
        c.add_resistor("Rload", out, Circuit::GROUND, 1.0e4);
        let op = solve_dc(&c).unwrap();
        assert!((op.voltage(out) + 2.0).abs() < 1e-6);
    }

    #[test]
    fn diode_forward_drop() {
        let mut c = Circuit::new("diode");
        let a = c.node("a");
        let k = c.node("k");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(5.0));
        c.add_resistor("R1", a, k, 1.0e3);
        c.add_diode("D1", k, Circuit::GROUND, DiodeModel::default());
        let op = solve_dc(&c).unwrap();
        let vd = op.voltage(k);
        // Forward drop of a silicon diode at a few mA.
        assert!(vd > 0.55 && vd < 0.75, "vd = {vd}");
        // Current through the resistor matches the diode equation.
        let i_r = (5.0 - vd) / 1.0e3;
        let i_d = 1e-14 * ((vd / THERMAL_VOLTAGE).exp() - 1.0);
        assert!((i_r - i_d).abs() / i_r < 1e-3);
    }

    #[test]
    fn bjt_common_emitter_bias() {
        let mut c = Circuit::new("ce");
        let vcc = c.node("vcc");
        let vb = c.node("vb");
        let vc = c.node("vc");
        c.add_vsource("VCC", vcc, Circuit::GROUND, SourceSpec::dc(5.0));
        // Base driven through a large resistor from VCC.
        c.add_resistor("RB", vcc, vb, 430.0e3);
        c.add_resistor("RC", vcc, vc, 2.0e3);
        c.add_bjt(
            "Q1",
            vc,
            vb,
            Circuit::GROUND,
            BjtPolarity::Npn,
            BjtModel {
                bf: 100.0,
                ..Default::default()
            },
        );
        let op = solve_dc(&c).unwrap();
        let vbe = op.voltage(vb);
        let vce = op.voltage(vc);
        assert!(vbe > 0.5 && vbe < 0.8, "vbe = {vbe}");
        // IB ≈ (5 − 0.65)/430k ≈ 10 µA → IC ≈ 1 mA → VC ≈ 5 − 2 = 3 V.
        assert!(vce > 2.0 && vce < 4.0, "vce = {vce}");
    }

    #[test]
    fn nmos_diode_connected() {
        let mut c = Circuit::new("mosdiode");
        let vdd = c.node("vdd");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, Circuit::GROUND, SourceSpec::dc(3.0));
        c.add_resistor("R1", vdd, d, 10.0e3);
        c.add_mosfet(
            "M1",
            d,
            d,
            Circuit::GROUND,
            MosfetPolarity::Nmos,
            20.0e-6,
            1.0e-6,
            MosfetModel {
                vto: 0.7,
                kp: 100.0e-6,
                lambda: 0.0,
                ..Default::default()
            },
        );
        let op = solve_dc(&c).unwrap();
        let vgs = op.voltage(d);
        // Solve 0.5·β·(vgs−vth)² = (3−vgs)/10k numerically: vgs ≈ 1.15 V.
        let beta = 100e-6 * 20.0;
        let lhs = 0.5 * beta * (vgs - 0.7) * (vgs - 0.7);
        let rhs = (3.0 - vgs) / 10.0e3;
        assert!((lhs - rhs).abs() / rhs < 1e-3, "vgs = {vgs}");
        assert!(vgs > 0.9 && vgs < 1.4, "vgs = {vgs}");
    }

    #[test]
    fn cmos_inverter_midpoint() {
        let mut c = Circuit::new("inv");
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource("VDD", vdd, Circuit::GROUND, SourceSpec::dc(3.0));
        c.add_vsource("VIN", vin, Circuit::GROUND, SourceSpec::dc(1.5));
        let nmodel = MosfetModel {
            vto: 0.7,
            kp: 100e-6,
            lambda: 0.05,
            ..Default::default()
        };
        let pmodel = MosfetModel {
            vto: -0.7,
            kp: 50e-6,
            lambda: 0.05,
            ..Default::default()
        };
        c.add_mosfet(
            "MN",
            vout,
            vin,
            Circuit::GROUND,
            MosfetPolarity::Nmos,
            10e-6,
            1e-6,
            nmodel,
        );
        c.add_mosfet(
            "MP",
            vout,
            vin,
            vdd,
            MosfetPolarity::Pmos,
            20e-6,
            1e-6,
            pmodel,
        );
        let op = solve_dc(&c).unwrap();
        let vo = op.voltage(vout);
        // With matched drive strengths the switching output sits mid-rail-ish.
        assert!(vo > 0.3 && vo < 2.7, "vout = {vo}");
    }

    #[test]
    fn validation_failure_is_reported() {
        let mut c = Circuit::new("bad");
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor("R1", a, b, 1.0);
        c.add_resistor("R2", a, b, 1.0);
        assert!(matches!(solve_dc(&c), Err(SpiceError::Netlist(_))));
    }

    #[test]
    fn singular_circuit_is_reported() {
        // Two ideal voltage sources in parallel with different values cannot
        // be satisfied; with only sources and no resistive path the matrix is
        // fine, so instead build a current source driving an open node
        // chain... simplest singular case: a current source in series with a
        // capacitor (no DC path).
        let mut c = Circuit::new("singular");
        let a = c.node("a");
        let b = c.node("b");
        c.add_isource("I1", Circuit::GROUND, a, SourceSpec::dc(1e-3));
        c.add_capacitor("C1", a, b, 1e-9);
        c.add_resistor("R1", b, Circuit::GROUND, 1e3);
        // GMIN keeps this solvable, but the node voltage is enormous.
        let op = solve_dc(&c).unwrap();
        assert!(op.voltage(a).abs() > 1e6);
    }

    #[test]
    fn operating_point_accessors() {
        let mut c = Circuit::new("acc");
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1.0);
        let op = solve_dc(&c).unwrap();
        assert_eq!(op.node_voltages().len(), 2);
        assert!(op.iterations() >= 1);
        assert!(op.branch_current("R1").is_none());
        assert!(op.branch_current("V1").is_some());
        assert_eq!(op.voltage(Circuit::GROUND), 0.0);
    }

    #[test]
    fn invalid_options_are_rejected_up_front() {
        let mut c = Circuit::new("opts");
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1.0);

        let check = |opts: DcOptions, needle: &str| {
            let err = solve_dc_with(&c, &opts).unwrap_err();
            match err {
                SpiceError::InvalidOptions(msg) => {
                    assert!(msg.contains(needle), "message `{msg}` missing `{needle}`")
                }
                other => panic!("expected InvalidOptions, got {other:?}"),
            }
        };

        check(
            DcOptions {
                max_iterations: 0,
                ..Default::default()
            },
            "max_iterations",
        );
        check(
            DcOptions {
                vntol: f64::NAN,
                ..Default::default()
            },
            "vntol",
        );
        check(
            DcOptions {
                reltol: 0.0,
                ..Default::default()
            },
            "reltol",
        );
        check(
            DcOptions {
                max_step: f64::INFINITY,
                ..Default::default()
            },
            "max_step",
        );
        check(
            DcOptions {
                source_steps: 0,
                ..Default::default()
            },
            "source_steps",
        );
        assert!(DcOptions::default().validate().is_ok());
    }

    #[test]
    fn convergence_report_for_a_linear_circuit_is_one_newton_stage() {
        let mut c = Circuit::new("divider");
        let vin = c.node("in");
        let mid = c.node("mid");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::dc(10.0));
        c.add_resistor("R1", vin, mid, 3.0e3);
        c.add_resistor("R2", mid, Circuit::GROUND, 1.0e3);
        let op = solve_dc(&c).unwrap();
        let report = op.convergence();
        assert_eq!(report.phase(), DcPhase::Newton);
        assert_eq!(report.stages().len(), 1);
        let stage = &report.stages()[0];
        assert!(stage.converged);
        assert_eq!(stage.stage, 0);
        assert_eq!(stage.iterations, 1);
        assert!(stage.final_delta.is_finite());
        assert_eq!(report.total_iterations(), op.iterations());
    }

    #[test]
    fn convergence_report_tracks_nonlinear_newton_iterations() {
        let mut c = Circuit::new("diode report");
        let a = c.node("a");
        let k = c.node("k");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(5.0));
        c.add_resistor("R1", a, k, 1.0e3);
        c.add_diode("D1", k, Circuit::GROUND, DiodeModel::default());
        let op = solve_dc(&c).unwrap();
        let report = op.convergence();
        // Direct Newton converges here, so there is exactly one stage, and a
        // nonlinear circuit takes more than one iteration.
        assert_eq!(report.phase(), DcPhase::Newton);
        assert_eq!(report.stages().len(), 1);
        assert!(report.stages()[0].converged);
        assert!(report.stages()[0].iterations > 1);
        // The final delta at convergence is below the combined tolerance
        // envelope (vntol + reltol·|v| with |v| < 5 V here).
        let opts = DcOptions::default();
        assert!(report.stages()[0].final_delta <= opts.vntol + opts.reltol * 5.0);
        assert_eq!(report.total_iterations(), op.iterations());
    }

    #[test]
    fn no_convergence_error_carries_real_iteration_data() {
        // A diode circuit given a single Newton iteration cannot converge;
        // the search runs through every phase and the final error must carry
        // the true iteration count and a finite final delta (never NaN).
        let mut c = Circuit::new("starved");
        let a = c.node("a");
        let k = c.node("k");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(5.0));
        c.add_resistor("R1", a, k, 1.0e3);
        c.add_diode("D1", k, Circuit::GROUND, DiodeModel::default());
        let opts = DcOptions {
            max_iterations: 1,
            gmin_decades: 2,
            source_steps: 2,
            ..Default::default()
        };
        match solve_dc_with(&c, &opts) {
            Err(SpiceError::DcNoConvergence {
                iterations,
                max_delta,
            }) => {
                assert_eq!(iterations, 1);
                assert!(max_delta.is_finite(), "max_delta = {max_delta}");
                assert!(max_delta > 0.0);
            }
            other => panic!("expected DcNoConvergence, got {other:?}"),
        }
    }
}
