//! Nonlinear device evaluation: companion models for Newton-Raphson and
//! small-signal (AC) linearizations.
//!
//! Every nonlinear device is reduced, at a given set of terminal voltages, to
//!
//! * a set of **conductance stamps** `(row node, column node, value)` that are
//!   added to the MNA matrix, and
//! * a set of **right-hand-side currents** `(node, value)` that implement the
//!   Newton companion sources,
//!
//! plus, for AC analysis, a set of **two-terminal capacitances** evaluated at
//! the operating point. The polarity handling (NPN/PNP, NMOS/PMOS) happens in
//! here so the analyses never need to special-case device flavours.

use crate::{GMIN, THERMAL_VOLTAGE};
use loopscope_netlist::{Bjt, BjtPolarity, Diode, Mosfet, MosfetPolarity, NodeId};

/// Voltage beyond which the junction exponential is linearized to avoid
/// floating-point overflow during badly scaled Newton steps.
const EXP_LIMIT: f64 = 40.0;

/// A limited exponential: returns `(value, derivative)` of a function that
/// equals `exp(x)` for `x ≤ EXP_LIMIT` and continues linearly (with matching
/// slope) beyond it.
fn limited_exp(x: f64) -> (f64, f64) {
    if x > EXP_LIMIT {
        let e = EXP_LIMIT.exp();
        (e * (1.0 + (x - EXP_LIMIT)), e)
    } else {
        let e = x.exp();
        (e, e)
    }
}

/// Linearized contribution of a nonlinear device at a trial solution.
#[derive(Debug, Clone, Default)]
pub struct NonlinearStamp {
    /// Conductance entries `(row node, column node, value)` to add to the MNA
    /// matrix. Ground rows/columns are filtered out by the stamper.
    pub conductances: Vec<(NodeId, NodeId, f64)>,
    /// Newton companion currents `(node, value)` to add to the RHS.
    pub rhs_currents: Vec<(NodeId, f64)>,
}

/// Small-signal (AC) model of a device at the operating point.
#[derive(Debug, Clone, Default)]
pub struct SmallSignal {
    /// Conductance entries `(row node, column node, value)`; these include
    /// non-reciprocal transconductance terms.
    pub conductances: Vec<(NodeId, NodeId, f64)>,
    /// Two-terminal capacitances `(a, b, farads)` stamped as `jωC` admittances.
    pub capacitances: Vec<(NodeId, NodeId, f64)>,
}

/// Reads the voltage of `node` from a full node-voltage table (index 0 is
/// ground and always reads 0).
#[inline]
pub fn node_voltage(voltages: &[f64], node: NodeId) -> f64 {
    voltages[node.index()]
}

fn two_terminal_conductance(a: NodeId, b: NodeId, g: f64) -> Vec<(NodeId, NodeId, f64)> {
    vec![(a, a, g), (b, b, g), (a, b, -g), (b, a, -g)]
}

// ---------------------------------------------------------------------------
// Diode
// ---------------------------------------------------------------------------

/// Evaluates a diode at the given node voltages and returns its Newton stamp.
pub fn stamp_diode(d: &Diode, voltages: &[f64]) -> NonlinearStamp {
    let vd = node_voltage(voltages, d.anode) - node_voltage(voltages, d.cathode);
    let nvt = d.model.n * THERMAL_VOLTAGE;
    let (e, de) = limited_exp(vd / nvt);
    let id = d.model.is * (e - 1.0) + GMIN * vd;
    let gd = d.model.is * de / nvt + GMIN;
    let ieq = id - gd * vd;
    NonlinearStamp {
        conductances: two_terminal_conductance(d.anode, d.cathode, gd),
        rhs_currents: vec![(d.anode, -ieq), (d.cathode, ieq)],
    }
}

/// Small-signal model of a diode at the operating point.
pub fn small_signal_diode(d: &Diode, voltages: &[f64]) -> SmallSignal {
    let vd = node_voltage(voltages, d.anode) - node_voltage(voltages, d.cathode);
    let nvt = d.model.n * THERMAL_VOLTAGE;
    let (_, de) = limited_exp(vd / nvt);
    let gd = d.model.is * de / nvt + GMIN;
    SmallSignal {
        conductances: two_terminal_conductance(d.anode, d.cathode, gd),
        capacitances: if d.model.cj0 > 0.0 {
            vec![(d.anode, d.cathode, d.model.cj0)]
        } else {
            Vec::new()
        },
    }
}

// ---------------------------------------------------------------------------
// BJT (Ebers-Moll with Early effect)
// ---------------------------------------------------------------------------

/// Normalized (NPN-referenced) BJT evaluation shared by DC and AC paths.
struct BjtEval {
    /// Collector current derivative w.r.t. v_be.
    dic_dvbe: f64,
    /// Collector current derivative w.r.t. v_bc.
    dic_dvbc: f64,
    /// Base current derivative w.r.t. v_be (input conductance g_pi).
    dib_dvbe: f64,
    /// Base current derivative w.r.t. v_bc (g_mu).
    dib_dvbc: f64,
    /// Normalized collector current.
    ic: f64,
    /// Normalized base current.
    ib: f64,
}

fn eval_bjt(q: &Bjt, vbe: f64, vbc: f64) -> BjtEval {
    let vt = THERMAL_VOLTAGE;
    let m = &q.model;
    let (ef, def) = limited_exp(vbe / vt);
    let (er, der) = limited_exp(vbc / vt);
    let i_f = m.is * (ef - 1.0);
    let i_r = m.is * (er - 1.0);
    let gif = m.is * def / vt;
    let gir = m.is * der / vt;
    let kq = if m.vaf.is_finite() {
        1.0 - vbc / m.vaf
    } else {
        1.0
    };
    let dkq_dvbc = if m.vaf.is_finite() { -1.0 / m.vaf } else { 0.0 };

    let ic = (i_f - i_r) * kq - i_r / m.br;
    let ib = i_f / m.bf + i_r / m.br;

    BjtEval {
        dic_dvbe: gif * kq,
        dic_dvbc: -gir * kq + (i_f - i_r) * dkq_dvbc - gir / m.br,
        dib_dvbe: gif / m.bf,
        dib_dvbc: gir / m.br,
        ic,
        ib,
    }
}

fn bjt_junction_voltages(q: &Bjt, voltages: &[f64]) -> (f64, f64, f64) {
    let sign = match q.polarity {
        BjtPolarity::Npn => 1.0,
        BjtPolarity::Pnp => -1.0,
    };
    let vb = node_voltage(voltages, q.base);
    let vc = node_voltage(voltages, q.collector);
    let ve = node_voltage(voltages, q.emitter);
    (sign * (vb - ve), sign * (vb - vc), sign)
}

/// Evaluates a BJT and returns its Newton companion stamp.
pub fn stamp_bjt(q: &Bjt, voltages: &[f64]) -> NonlinearStamp {
    let (vbe, vbc, sign) = bjt_junction_voltages(q, voltages);
    let e = eval_bjt(q, vbe, vbc);

    // Derivatives of the *normalized* currents w.r.t. real node voltages.
    // v_be = sign·(V_b − V_e), v_bc = sign·(V_b − V_c); the sign cancels when
    // converting the normalized current back to the real terminal current.
    let dic = |dvbe: f64, dvbc: f64| (dvbe + dvbc, -dvbc, -dvbe); // (d/dVb, d/dVc, d/dVe)
    let (dic_db, dic_dc, dic_de) = dic(e.dic_dvbe, e.dic_dvbc);
    let (dib_db, dib_dc, dib_de) = dic(e.dib_dvbe, e.dib_dvbc);

    let vb = node_voltage(voltages, q.base);
    let vc = node_voltage(voltages, q.collector);
    let ve = node_voltage(voltages, q.emitter);

    // Real terminal currents flowing *into* the device.
    let i_c = sign * e.ic;
    let i_b = sign * e.ib;

    // Conductance rows for collector and base; emitter is the negative sum.
    let mut conductances = Vec::with_capacity(9);
    let mut rhs_currents = Vec::with_capacity(3);

    let mut add_row = |terminal: NodeId, d_db: f64, d_dc: f64, d_de: f64, current: f64| {
        conductances.push((terminal, q.base, d_db));
        conductances.push((terminal, q.collector, d_dc));
        conductances.push((terminal, q.emitter, d_de));
        let ieq = current - (d_db * vb + d_dc * vc + d_de * ve);
        rhs_currents.push((terminal, -ieq));
    };

    add_row(q.collector, dic_db, dic_dc, dic_de, i_c);
    add_row(q.base, dib_db, dib_dc, dib_de, i_b);
    add_row(
        q.emitter,
        -(dic_db + dib_db),
        -(dic_dc + dib_dc),
        -(dic_de + dib_de),
        -(i_c + i_b),
    );

    NonlinearStamp {
        conductances,
        rhs_currents,
    }
}

/// Small-signal model of a BJT at the operating point: g_pi, g_mu, g_m and
/// g_o style conductances plus junction and diffusion capacitances.
pub fn small_signal_bjt(q: &Bjt, voltages: &[f64]) -> SmallSignal {
    let (vbe, vbc, _) = bjt_junction_voltages(q, voltages);
    let e = eval_bjt(q, vbe, vbc);

    let dic = |dvbe: f64, dvbc: f64| (dvbe + dvbc, -dvbc, -dvbe);
    let (dic_db, dic_dc, dic_de) = dic(e.dic_dvbe, e.dic_dvbc);
    let (dib_db, dib_dc, dib_de) = dic(e.dib_dvbe, e.dib_dvbc);

    let mut conductances = Vec::with_capacity(9);
    let mut push_row = |terminal: NodeId, d_db: f64, d_dc: f64, d_de: f64| {
        conductances.push((terminal, q.base, d_db));
        conductances.push((terminal, q.collector, d_dc));
        conductances.push((terminal, q.emitter, d_de));
    };
    push_row(q.collector, dic_db, dic_dc, dic_de);
    push_row(q.base, dib_db, dib_dc, dib_de);
    push_row(
        q.emitter,
        -(dic_db + dib_db),
        -(dic_dc + dib_dc),
        -(dic_de + dib_de),
    );

    // Diffusion capacitance c_d = TF·g_m (forward transconductance).
    let gm_forward = e.dic_dvbe;
    let mut capacitances = Vec::new();
    let cbe = q.model.cje + q.model.tf * gm_forward.max(0.0);
    if cbe > 0.0 {
        capacitances.push((q.base, q.emitter, cbe));
    }
    if q.model.cjc > 0.0 {
        capacitances.push((q.base, q.collector, q.model.cjc));
    }

    SmallSignal {
        conductances,
        capacitances,
    }
}

// ---------------------------------------------------------------------------
// MOSFET (Shichman-Hodges level 1)
// ---------------------------------------------------------------------------

struct MosEval {
    id: f64,
    gm: f64,
    gds: f64,
}

fn eval_mosfet_normalized(beta: f64, lambda: f64, vth: f64, vgs: f64, vds: f64) -> MosEval {
    debug_assert!(vds >= 0.0);
    let vov = vgs - vth;
    if vov <= 0.0 {
        // Cut-off: leave a tiny conductance for numerical robustness.
        return MosEval {
            id: 0.0,
            gm: 0.0,
            gds: GMIN,
        };
    }
    let clm = 1.0 + lambda * vds;
    if vds < vov {
        // Triode region.
        let id0 = beta * (vov * vds - 0.5 * vds * vds);
        MosEval {
            id: id0 * clm,
            gm: beta * vds * clm,
            gds: beta * (vov - vds) * clm + id0 * lambda + GMIN,
        }
    } else {
        // Saturation region.
        let id0 = 0.5 * beta * vov * vov;
        MosEval {
            id: id0 * clm,
            gm: beta * vov * clm,
            gds: id0 * lambda + GMIN,
        }
    }
}

struct MosOperating {
    /// Terminal playing the role of drain after source/drain symmetry swap.
    eff_drain: NodeId,
    /// Terminal playing the role of source after the swap.
    eff_source: NodeId,
    sign: f64,
    eval: MosEval,
}

fn mosfet_operating(m: &Mosfet, voltages: &[f64]) -> MosOperating {
    let sign = match m.polarity {
        MosfetPolarity::Nmos => 1.0,
        MosfetPolarity::Pmos => -1.0,
    };
    let vd = node_voltage(voltages, m.drain);
    let vg = node_voltage(voltages, m.gate);
    let vs = node_voltage(voltages, m.source);
    let vds_n = sign * (vd - vs);
    // The level-1 channel is symmetric: when v_ds goes negative the device
    // conducts with drain and source roles exchanged.
    let (eff_drain, eff_source, vds_eff, vgs_eff) = if vds_n >= 0.0 {
        (m.drain, m.source, vds_n, sign * (vg - vs))
    } else {
        (m.source, m.drain, -vds_n, sign * (vg - vd))
    };
    let vth = sign * m.model.vto;
    let eval = eval_mosfet_normalized(m.beta(), m.model.lambda, vth, vgs_eff, vds_eff);
    MosOperating {
        eff_drain,
        eff_source,
        sign,
        eval,
    }
}

/// Evaluates a MOSFET and returns its Newton companion stamp.
pub fn stamp_mosfet(m: &Mosfet, voltages: &[f64]) -> NonlinearStamp {
    let op = mosfet_operating(m, voltages);
    let MosEval { id, gm, gds } = op.eval;
    let sign = op.sign;
    let (d, s, g) = (op.eff_drain, op.eff_source, m.gate);

    // Real drain-terminal current (into the effective drain).
    let i_d = sign * id;
    // Derivatives of the real current w.r.t. real node voltages; the sign
    // factors cancel as for the BJT.
    let did_dg = gm;
    let did_dd = gds;
    let did_ds = -(gm + gds);

    let vd = node_voltage(voltages, d);
    let vg = node_voltage(voltages, g);
    let vs = node_voltage(voltages, s);
    let ieq = i_d - (did_dg * vg + did_dd * vd + did_ds * vs);

    NonlinearStamp {
        conductances: vec![
            (d, g, did_dg),
            (d, d, did_dd),
            (d, s, did_ds),
            (s, g, -did_dg),
            (s, d, -did_dd),
            (s, s, -did_ds),
        ],
        rhs_currents: vec![(d, -ieq), (s, ieq)],
    }
}

/// Small-signal model of a MOSFET at the operating point.
pub fn small_signal_mosfet(m: &Mosfet, voltages: &[f64]) -> SmallSignal {
    let op = mosfet_operating(m, voltages);
    let MosEval { gm, gds, .. } = op.eval;
    let (d, s, g) = (op.eff_drain, op.eff_source, m.gate);

    let conductances = vec![
        (d, g, gm),
        (d, d, gds),
        (d, s, -(gm + gds)),
        (s, g, -gm),
        (s, d, -gds),
        (s, s, gm + gds),
    ];
    let mut capacitances = Vec::new();
    if m.model.cgs > 0.0 {
        capacitances.push((m.gate, m.source, m.model.cgs));
    }
    if m.model.cgd > 0.0 {
        capacitances.push((m.gate, m.drain, m.model.cgd));
    }
    if m.model.cdb > 0.0 {
        capacitances.push((m.drain, NodeId::GROUND, m.model.cdb));
    }
    SmallSignal {
        conductances,
        capacitances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_netlist::{BjtModel, Circuit, DiodeModel, MosfetModel};

    fn nodes(n: usize) -> (Circuit, Vec<NodeId>) {
        let mut c = Circuit::new("dev");
        let ids = (0..n).map(|i| c.node(&format!("n{}", i + 1))).collect();
        (c, ids)
    }

    #[test]
    fn limited_exp_continuity() {
        let (below, _) = limited_exp(EXP_LIMIT - 1e-9);
        let (above, _) = limited_exp(EXP_LIMIT + 1e-9);
        assert!((below - above).abs() / below < 1e-6);
        // Far beyond the limit the value grows linearly, not exponentially.
        let (far, slope) = limited_exp(EXP_LIMIT + 100.0);
        assert!((far - EXP_LIMIT.exp() * 101.0).abs() / far < 1e-12);
        assert_eq!(slope, EXP_LIMIT.exp());
    }

    #[test]
    fn diode_forward_current_matches_shockley() {
        let (_, ids) = nodes(2);
        let d = Diode {
            name: "D1".into(),
            anode: ids[0],
            cathode: ids[1],
            model: DiodeModel::default(),
        };
        // 0.6 V forward bias.
        let voltages = vec![0.0, 0.6, 0.0];
        let stamp = stamp_diode(&d, &voltages);
        // Reconstruct the trial-point current from the companion model:
        // the RHS at the anode is −(i_d − g_d·v_d), so i_d = g_d·v_d − rhs.
        let gd = stamp
            .conductances
            .iter()
            .find(|(r, c, _)| *r == ids[0] && *c == ids[0])
            .unwrap()
            .2;
        let id = gd * 0.6 - stamp.rhs_currents[0].1;
        let expected = 1e-14 * ((0.6 / THERMAL_VOLTAGE).exp() - 1.0) + GMIN * 0.6;
        assert!(
            (id - expected).abs() / expected < 1e-9,
            "id {id} vs {expected}"
        );
        assert!(gd > 0.0);
    }

    #[test]
    fn diode_reverse_bias_is_nearly_off() {
        let (_, ids) = nodes(2);
        let d = Diode {
            name: "D1".into(),
            anode: ids[0],
            cathode: ids[1],
            model: DiodeModel::default(),
        };
        let voltages = vec![0.0, -5.0, 0.0];
        let ss = small_signal_diode(&d, &voltages);
        let gd = ss.conductances[0].2;
        assert!(gd < 1e-9, "reverse conductance should be tiny, got {gd}");
    }

    #[test]
    fn bjt_active_region_transconductance() {
        let (_, ids) = nodes(3);
        let q = Bjt {
            name: "Q1".into(),
            collector: ids[0],
            base: ids[1],
            emitter: ids[2],
            polarity: BjtPolarity::Npn,
            model: BjtModel {
                is: 1e-16,
                bf: 100.0,
                br: 1.0,
                vaf: f64::INFINITY,
                ..Default::default()
            },
        };
        // Vb = 0.65, Vc = 3.0, Ve = 0: forward active.
        let voltages = vec![0.0, 3.0, 0.65, 0.0];
        let e = eval_bjt(&q, 0.65, 0.65 - 3.0);
        let ic = e.ic;
        // gm ≈ Ic / Vt in forward active.
        assert!((e.dic_dvbe - ic / THERMAL_VOLTAGE).abs() / (ic / THERMAL_VOLTAGE) < 1e-3);
        // beta = Ic/Ib ≈ BF.
        assert!((ic / e.ib - 100.0).abs() < 1.0);

        let ss = small_signal_bjt(&q, &voltages);
        // The (collector, base) entry is the transconductance.
        let gm_entry = ss
            .conductances
            .iter()
            .find(|(r, c, _)| *r == ids[0] && *c == ids[1])
            .unwrap()
            .2;
        assert!((gm_entry - e.dic_dvbe).abs() / e.dic_dvbe < 1e-12);
    }

    #[test]
    fn bjt_early_effect_gives_output_conductance() {
        let (_, ids) = nodes(3);
        let mk = |vaf: f64| Bjt {
            name: "Q1".into(),
            collector: ids[0],
            base: ids[1],
            emitter: ids[2],
            polarity: BjtPolarity::Npn,
            model: BjtModel {
                vaf,
                ..Default::default()
            },
        };
        let voltages = vec![0.0, 3.0, 0.65, 0.0];
        let with_early = small_signal_bjt(&mk(50.0), &voltages);
        let without = small_signal_bjt(&mk(f64::INFINITY), &voltages);
        let go = |ss: &SmallSignal| {
            ss.conductances
                .iter()
                .find(|(r, c, _)| *r == ids[0] && *c == ids[0])
                .unwrap()
                .2
        };
        assert!(go(&with_early) > go(&without));
        assert!(go(&with_early) > 0.0);
    }

    #[test]
    fn pnp_mirrors_npn() {
        let (_, ids) = nodes(3);
        let npn = Bjt {
            name: "Qn".into(),
            collector: ids[0],
            base: ids[1],
            emitter: ids[2],
            polarity: BjtPolarity::Npn,
            model: BjtModel::default(),
        };
        let pnp = Bjt {
            polarity: BjtPolarity::Pnp,
            name: "Qp".into(),
            ..npn.clone()
        };
        // NPN biased at +0.65 base, PNP at −0.65 base with mirrored rails.
        let v_npn = vec![0.0, 2.0, 0.65, 0.0];
        let v_pnp = vec![0.0, -2.0, -0.65, 0.0];
        let sn = stamp_bjt(&npn, &v_npn);
        let sp = stamp_bjt(&pnp, &v_pnp);
        // Companion currents mirror in sign.
        let ic_n = sn.rhs_currents[0].1;
        let ic_p = sp.rhs_currents[0].1;
        assert!((ic_n + ic_p).abs() < 1e-9 * ic_n.abs().max(1e-30));
    }

    #[test]
    fn mosfet_regions() {
        // Saturation: vds > vov.
        let sat = eval_mosfet_normalized(1e-3, 0.0, 0.7, 1.7, 3.0);
        assert!((sat.id - 0.5e-3).abs() < 1e-9);
        assert!((sat.gm - 1e-3).abs() < 1e-9);
        assert!(sat.gds <= 2.0 * GMIN);
        // Triode: vds < vov.
        let tri = eval_mosfet_normalized(1e-3, 0.0, 0.7, 1.7, 0.1);
        let expected = 1e-3 * (1.0 * 0.1 - 0.005);
        assert!((tri.id - expected).abs() < 1e-9);
        assert!(tri.gds > sat.gds);
        // Cut-off.
        let off = eval_mosfet_normalized(1e-3, 0.0, 0.7, 0.3, 1.0);
        assert_eq!(off.id, 0.0);
        assert_eq!(off.gm, 0.0);
    }

    #[test]
    fn mosfet_lambda_increases_current_with_vds() {
        let lo = eval_mosfet_normalized(1e-3, 0.05, 0.7, 1.7, 2.0);
        let hi = eval_mosfet_normalized(1e-3, 0.05, 0.7, 1.7, 4.0);
        assert!(hi.id > lo.id);
        assert!(lo.gds > GMIN);
    }

    #[test]
    fn nmos_stamp_in_saturation() {
        let (_, ids) = nodes(3);
        let m = Mosfet {
            name: "M1".into(),
            drain: ids[0],
            gate: ids[1],
            source: ids[2],
            polarity: MosfetPolarity::Nmos,
            width: 10e-6,
            length: 1e-6,
            model: MosfetModel {
                vto: 0.7,
                kp: 100e-6,
                lambda: 0.0,
                ..Default::default()
            },
        };
        // Vd=3, Vg=1.7, Vs=0 → vov=1, Id = 0.5·β·vov² = 0.5 mA.
        let voltages = vec![0.0, 3.0, 1.7, 0.0];
        let stamp = stamp_mosfet(&m, &voltages);
        // Companion reconstructs Id at the trial point: ieq_d = −(Id − Σg·v).
        let sum_gv: f64 = stamp
            .conductances
            .iter()
            .filter(|(r, _, _)| *r == ids[0])
            .map(|(_, c, g)| g * node_voltage(&voltages, *c))
            .sum();
        let id = -stamp.rhs_currents[0].1 + sum_gv;
        assert!((id - 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn pmos_conducts_with_negative_vgs() {
        let (_, ids) = nodes(3);
        let m = Mosfet {
            name: "M1".into(),
            drain: ids[0],
            gate: ids[1],
            source: ids[2],
            polarity: MosfetPolarity::Pmos,
            width: 10e-6,
            length: 1e-6,
            model: MosfetModel {
                vto: -0.7,
                kp: 100e-6,
                lambda: 0.0,
                ..Default::default()
            },
        };
        // Source at 3 V (tied to supply), gate at 1.3 V, drain at 0 V:
        // |Vgs| = 1.7 > |Vto| → conducting, |vov| = 1.
        let voltages = vec![0.0, 0.0, 1.3, 3.0];
        let op = mosfet_operating(&m, &voltages);
        assert!((op.eval.id - 0.5e-3).abs() < 1e-9);
        // Effective drain is the terminal at lower potential for a PMOS.
        assert_eq!(op.eff_drain, ids[0]);
    }

    #[test]
    fn mosfet_source_drain_swap() {
        let (_, ids) = nodes(3);
        let m = Mosfet {
            name: "M1".into(),
            drain: ids[0],
            gate: ids[1],
            source: ids[2],
            polarity: MosfetPolarity::Nmos,
            width: 10e-6,
            length: 1e-6,
            model: MosfetModel {
                vto: 0.5,
                kp: 100e-6,
                lambda: 0.0,
                ..Default::default()
            },
        };
        // Drain below source: the device should conduct "backwards".
        let voltages = vec![0.0, 0.0, 2.0, 1.0];
        let op = mosfet_operating(&m, &voltages);
        assert_eq!(op.eff_drain, ids[2]);
        assert_eq!(op.eff_source, ids[0]);
        assert!(op.eval.id > 0.0);
    }

    #[test]
    fn small_signal_capacitances_present() {
        let (_, ids) = nodes(3);
        let m = Mosfet {
            name: "M1".into(),
            drain: ids[0],
            gate: ids[1],
            source: ids[2],
            polarity: MosfetPolarity::Nmos,
            width: 10e-6,
            length: 1e-6,
            model: MosfetModel {
                cgs: 1e-14,
                cgd: 5e-15,
                cdb: 2e-15,
                ..Default::default()
            },
        };
        let ss = small_signal_mosfet(&m, &[0.0, 3.0, 1.7, 0.0]);
        assert_eq!(ss.capacitances.len(), 3);
        let q = Bjt {
            name: "Q1".into(),
            collector: ids[0],
            base: ids[1],
            emitter: ids[2],
            polarity: BjtPolarity::Npn,
            model: BjtModel {
                cje: 1e-13,
                cjc: 5e-14,
                tf: 1e-10,
                ..Default::default()
            },
        };
        let ssq = small_signal_bjt(&q, &[0.0, 3.0, 0.65, 0.0]);
        assert_eq!(ssq.capacitances.len(), 2);
        // Diffusion capacitance adds to CJE.
        let cbe = ssq
            .capacitances
            .iter()
            .find(|(a, b, _)| *a == ids[1] && *b == ids[2])
            .unwrap()
            .2;
        assert!(cbe > 1e-13);
    }
}
