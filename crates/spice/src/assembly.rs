//! Cached MNA assembly: build the sparsity pattern once, then restamp values
//! in place and refactor with a reused pivot order.
//!
//! Every analysis in this crate solves the same shape of problem many times
//! over: an AC sweep assembles `Y(jω)` at hundreds of frequencies, a DC
//! Newton loop re-linearizes at every iteration, a transient run re-stamps
//! companion models at every timestep — and in all cases the **sparsity
//! pattern never changes**, only the values. The naive pipeline (triplet
//! accumulation → sort/dedup to CSR → pivoting factorization) repays none of
//! that structure.
//!
//! [`CachedMna`] is the structured pipeline:
//!
//! 1. **First assembly** runs the element stamps into a
//!    [`TripletMatrix`](loopscope_sparse::TripletMatrix) and
//!    converts to CSR — exactly the naive path — and keeps the CSR as the
//!    pattern.
//! 2. **Later assemblies** zero the CSR values and replay the same stamps
//!    through a [`SlotSink`], which routes each stamp to its value slot by a
//!    binary search within the row. No allocation, no sorting, no BTreeMap.
//!    If a stamp misses the pattern (a nonlinear device changed operating
//!    region, say), the assembly transparently rebuilds the pattern.
//! 3. **Factorization** computes a fill-reducing (minimum-degree) column
//!    order on first use and captures the resulting threshold-pivoted
//!    [`SymbolicLu`]; afterwards it runs the numeric-only, allocation-free
//!    [`SparseLu::refactor_into`] over buffers owned by the cache,
//!    re-analyzing only when the refactorization reports a degraded pivot or
//!    the pattern was rebuilt.
//!
//! [`SolveStats`] counts what actually happened, which is how the tests (and
//! the `solver_refactor` bench) assert that e.g. a whole AC sweep performs
//! exactly one symbolic analysis.
//!
//! # Two drivers over the same machinery
//!
//! * [`CachedMna`] is the **adaptive serial cache**: it owns pattern,
//!   symbolic analysis and factors in one mutable bundle, rebuilding and
//!   re-adopting them as the matrix structure or numerics drift. That is the
//!   right shape for DC Newton loops and transient stepping, where operating
//!   regions change and each solve depends on the previous one.
//! * [`SweepPlan`] / [`SolveContext`] are the **parallel sweep engine**: the
//!   same pipeline split into an immutable, shareable plan (slot maps, CSR
//!   pattern, symbolic analysis) and a per-worker context holding every
//!   mutable buffer. Frequency sweeps are embarrassingly parallel, and the
//!   split is what lets [`crate::par::sweep_chunks`] chunk a sweep across
//!   worker threads with bitwise-identical results at any worker count.

use crate::error::SpiceError;
use crate::mna::{MatrixSink, MnaLayout, Stamper};
use crate::solver::{
    configured_solver_mode, resolve_backend, GMRES_ACCEPT_BACKWARD_TOLERANCE,
    PRECOND_REFRESH_INTERVAL,
};
use loopscope_sparse::{
    gmres_solve_into, CsrMatrix, GmresWorkspace, LuWorkspace, RefineWorkspace, Scalar, SolveError,
    SolveQuality, SolverBackend, SparseLu, SymbolicLu,
};
use std::sync::Arc;

/// Per-point gmin bump schedule of the solve retry ladder: on its last rung
/// the ladder adds each value in turn to every stored node-voltage diagonal
/// and retries a fresh factorization, regularizing near-singular systems the
/// way SPICE's gmin does. The schedule is a fixed constant — no randomness,
/// no state carried between points — so the ladder's decisions at a sweep
/// point are a pure function of that point's values and parallel sweeps stay
/// bitwise reproducible.
pub const GMIN_BUMP_LADDER: [f64; 2] = [1.0e-9, 1.0e-6];

/// Adds `bump` to every stored node-voltage diagonal slot (`0..node_vars`),
/// returning whether at least one such slot exists in the pattern. Branch
/// rows (voltage sources, inductors) are never bumped — a shunt conductance
/// there has no physical meaning.
fn bump_node_diagonals<T: Scalar>(matrix: &mut CsrMatrix<T>, node_vars: usize, bump: f64) -> bool {
    let limit = node_vars.min(matrix.rows()).min(matrix.cols());
    let mut any = false;
    for v in 0..limit {
        if let Some(slot) = matrix.find_slot(v, v) {
            matrix.values_mut()[slot] += T::from_f64(bump);
            any = true;
        }
    }
    any
}

/// A circuit-assembly job: stamps one MNA system into any matrix sink.
///
/// Implementations must be **pure**: calling [`stamp`](AssembleMna::stamp)
/// twice with equivalent sinks must produce the same entries, because the
/// cache replays the job when it needs to rebuild the pattern.
pub trait AssembleMna<T: Scalar> {
    /// Stamps the matrix entries and right-hand side for this job.
    fn stamp<S: MatrixSink<T>>(&self, stamper: &mut Stamper<'_, T, S>);
}

/// Matrix sink that accumulates stamps into the value slots of an existing
/// CSR pattern. Records (instead of panicking on) stamps that fall outside
/// the pattern so the caller can rebuild.
#[derive(Debug)]
pub struct SlotSink<'m, T: Scalar> {
    csr: &'m mut CsrMatrix<T>,
    missed: bool,
}

impl<'m, T: Scalar> SlotSink<'m, T> {
    /// Wraps a CSR matrix whose values have already been zeroed.
    pub fn new(csr: &'m mut CsrMatrix<T>) -> Self {
        Self { csr, missed: false }
    }

    /// `true` when at least one stamp addressed a position outside the
    /// pattern (the assembly is then incomplete and must be rebuilt).
    pub fn missed(&self) -> bool {
        self.missed
    }
}

impl<T: Scalar> MatrixSink<T> for SlotSink<'_, T> {
    #[inline]
    fn add(&mut self, row: usize, col: usize, value: T) {
        match self.csr.find_slot(row, col) {
            Some(slot) => self.csr.values_mut()[slot] += value,
            None => self.missed = true,
        }
    }
}

/// Counters describing how a [`CachedMna`] served its solves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Full symbolic analyses (pivot order + fill pattern computations).
    pub symbolic: usize,
    /// Numeric-only refactorizations that reused the pattern.
    pub numeric_refactor: usize,
    /// Fresh pivoting factorizations forced by a degraded pivot.
    pub fresh_fallback: usize,
    /// Pattern rebuilds forced by a stamp outside the cached pattern.
    pub pattern_rebuilds: usize,
    /// In-place (value-only) assemblies served from the cached pattern.
    pub cached_assemblies: usize,
    /// Retry-ladder escalations to a fresh threshold-pivoted factorization
    /// after a residual-verified solve failed its backward-error check (the
    /// fresh analysis itself is counted in `symbolic`). Healthy sweeps keep
    /// this at zero.
    pub residual_retries: usize,
    /// Per-point gmin bumps applied by the retry ladder's last rung (each
    /// followed by a fresh factorization, counted in `symbolic`). A nonzero
    /// count means some solutions were computed on a deliberately
    /// regularized system.
    pub gmin_bumps: usize,
    /// Solves attempted on the iterative (GMRES) backend — whether the
    /// attempt was accepted or fell back. Zero under the direct backend.
    pub iterative_solves: usize,
    /// Total GMRES Arnoldi iterations across all iterative solves. A pure
    /// function of the per-point inputs, so chunking/thread-invariant.
    pub gmres_iterations: usize,
    /// Scheduled stale-preconditioner refreshes: one per
    /// [`crate::solver::PRECOND_REFRESH_INTERVAL`]-sized group of sweep
    /// points (plus one per direct-path refresh of the adaptive cache).
    /// Warm-up refactorizations a worker performs to reconstruct the anchor
    /// of a mid-group chunk start are deliberately **not** counted, keeping
    /// the total chunking-invariant.
    pub preconditioner_refreshes: usize,
    /// Iterative solves whose GMRES verdict missed the acceptance tolerance
    /// and were re-solved on the exact verified-direct ladder. Healthy
    /// sweeps keep this at zero.
    pub iterative_fallbacks: usize,
}

impl SolveStats {
    /// Total number of factorizations of any kind.
    pub fn factorizations(&self) -> usize {
        self.symbolic + self.numeric_refactor + self.fresh_fallback
    }

    /// Accumulates another counter set into this one.
    ///
    /// The parallel sweep executor hands every worker its own
    /// [`SolveContext`] (and with it its own `SolveStats`); merging the
    /// workers' counters into the plan-level totals keeps sweep invariants —
    /// "one symbolic analysis per sweep", "every point was a numeric
    /// refactorization" — assertable under any thread count, because sums
    /// are independent of how the points were chunked.
    pub fn merge(&mut self, other: &SolveStats) {
        self.symbolic += other.symbolic;
        self.numeric_refactor += other.numeric_refactor;
        self.fresh_fallback += other.fresh_fallback;
        self.pattern_rebuilds += other.pattern_rebuilds;
        self.cached_assemblies += other.cached_assemblies;
        self.residual_retries += other.residual_retries;
        self.gmin_bumps += other.gmin_bumps;
        self.iterative_solves += other.iterative_solves;
        self.gmres_iterations += other.gmres_iterations;
        self.preconditioner_refreshes += other.preconditioner_refreshes;
        self.iterative_fallbacks += other.iterative_fallbacks;
    }
}

/// Reusable assembly + factorization state for one MNA structure.
///
/// Create one per analysis run (or store it for the lifetime of the circuit —
/// the cache detects pattern changes) and drive every solve through
/// [`assemble`](CachedMna::assemble) followed by
/// [`factor`](CachedMna::factor), or the [`solve`](CachedMna::solve)
/// convenience wrapper. The first factorization computes a minimum-degree
/// fill-reducing ordering and a threshold-pivoted symbolic analysis; every
/// later one is a numeric-only refactorization into buffers the cache owns,
/// so the steady state performs no factorization-side heap allocation.
///
/// ```
/// use loopscope_netlist::{Circuit, SourceSpec};
/// use loopscope_spice::assembly::CachedMna;
/// use loopscope_spice::mna::{MatrixSink, MnaLayout, Stamper};
///
/// // A conductance-divider job: same pattern at every drive level.
/// struct Divider {
///     g: f64,
/// }
/// impl loopscope_spice::assembly::AssembleMna<f64> for Divider {
///     fn stamp<S: MatrixSink<f64>>(&self, st: &mut Stamper<'_, f64, S>) {
///         st.add_var_var(0, 0, self.g + 1.0e-3);
///         st.add_var_var(0, 1, -self.g);
///         st.add_var_var(1, 0, -self.g);
///         st.add_var_var(1, 1, self.g);
///         st.add_rhs_var(0, 1.0e-3);
///     }
/// }
///
/// let mut c = Circuit::new("divider");
/// let a = c.node("a");
/// let b = c.node("b");
/// c.add_resistor("R1", a, Circuit::GROUND, 1.0e3);
/// c.add_resistor("R2", a, b, 1.0e3);
/// c.add_isource("I1", Circuit::GROUND, a, SourceSpec::dc(1.0e-3));
/// let layout = MnaLayout::new(&c);
///
/// let mut cache = CachedMna::<f64>::new();
/// for k in 1..=4 {
///     let x = cache.solve(&layout, &Divider { g: 1.0e-3 * k as f64 })?;
///     assert!(x[0].is_finite());
/// }
/// // One symbolic analysis serves the whole series of solves.
/// assert_eq!(cache.stats().symbolic, 1);
/// assert_eq!(cache.stats().numeric_refactor, 3);
/// # Ok::<(), loopscope_sparse::SolveError>(())
/// ```
#[derive(Debug)]
pub struct CachedMna<T: Scalar> {
    csr: Option<CsrMatrix<T>>,
    symbolic: Option<SymbolicLu>,
    /// The factorization whose L/U value buffers every refactorization
    /// reuses; handed out by reference from [`factor`](CachedMna::factor).
    lu: Option<SparseLu<T>>,
    /// Scratch buffers of the allocation-free refactorization path.
    workspace: LuWorkspace<T>,
    /// Scratch for [`solve`](CachedMna::solve)'s substitution sweeps.
    solve_work: Vec<T>,
    /// Scratch of the residual-verified solve path; grown on first use,
    /// reused (allocation-free) afterwards.
    refine_ws: RefineWorkspace<T>,
    /// Pristine copy of the right-hand side, so retry-ladder escalations can
    /// restart the solve from `b` after a failed attempt overwrote it.
    rhs_backup: Vec<T>,
    /// The solver mode this cache resolves its backend from; captured from
    /// the `LOOPSCOPE_SOLVER` environment at construction, overridable with
    /// [`set_solver_mode`](CachedMna::set_solver_mode).
    solver_mode: crate::solver::SolverMode,
    /// The backend resolved against the current pattern's structure; cleared
    /// on pattern rebuilds (the structure — and with it the auto decision —
    /// may have changed).
    backend: Option<SolverBackend>,
    /// Verified solves served off the current factors since they were last
    /// refreshed; at [`PRECOND_REFRESH_INTERVAL`] the next solve refactors
    /// directly instead of iterating off the stale factors.
    solves_since_refresh: usize,
    /// Scratch of the GMRES path; empty until the first iterative solve.
    gmres_ws: GmresWorkspace<T>,
    /// Pristine RHS copy of the iterative attempt — separate from
    /// `rhs_backup`, which the direct ladder overwrites internally when a
    /// GMRES miss falls back to it.
    backend_rhs: Vec<T>,
    stats: SolveStats,
}

impl<T: Scalar> Default for CachedMna<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> CachedMna<T> {
    /// Creates an empty cache; the first assembly establishes the pattern.
    pub fn new() -> Self {
        Self {
            csr: None,
            symbolic: None,
            lu: None,
            workspace: LuWorkspace::new(),
            solve_work: Vec::new(),
            refine_ws: RefineWorkspace::new(),
            rhs_backup: Vec::new(),
            solver_mode: configured_solver_mode(),
            backend: None,
            solves_since_refresh: 0,
            gmres_ws: GmresWorkspace::new(),
            backend_rhs: Vec::new(),
            stats: SolveStats::default(),
        }
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Overrides the solver mode (normally captured from `LOOPSCOPE_SOLVER`
    /// at construction) — the in-process pin the test matrices use instead
    /// of mutating the environment. Resets the backend resolution, so the
    /// next verified solve re-resolves against the current structure.
    pub fn set_solver_mode(&mut self, mode: crate::solver::SolverMode) {
        self.solver_mode = mode;
        self.backend = None;
        self.solves_since_refresh = 0;
    }

    /// The backend the cache resolved for the current pattern, if the first
    /// symbolic analysis has run ([`resolve_backend`] needs the structure).
    pub fn backend(&self) -> Option<SolverBackend> {
        self.backend
    }

    /// Assembles the MNA system for `job`, reusing the cached pattern when
    /// possible, and returns the right-hand side (the matrix stays inside the
    /// cache for [`factor`](CachedMna::factor)).
    pub fn assemble(&mut self, layout: &MnaLayout, job: &impl AssembleMna<T>) -> Vec<T> {
        let mut rhs = Vec::new();
        self.assemble_into(layout, job, &mut rhs);
        rhs
    }

    /// Like [`assemble`](CachedMna::assemble), but writing the right-hand
    /// side into a caller-held buffer instead of allocating a fresh one: on
    /// the cached (pattern-hit) path, once `rhs`'s capacity has reached the
    /// layout dimension the assembly performs **zero heap allocations** —
    /// the property the transient Newton loop relies on, where the same
    /// buffer cycles through assemble → solve at every iteration of every
    /// timestep. A pattern rebuild (structure change) still allocates, as
    /// it must.
    pub fn assemble_into(
        &mut self,
        layout: &MnaLayout,
        job: &impl AssembleMna<T>,
        rhs: &mut Vec<T>,
    ) {
        if let Some(csr) = self.csr.as_mut() {
            csr.zero_values();
            let buf = std::mem::take(rhs);
            let mut stamper = Stamper::with_sink_reusing(layout, SlotSink::new(csr), buf);
            job.stamp(&mut stamper);
            let (sink, out) = stamper.into_parts();
            let missed = sink.missed();
            *rhs = out;
            if !missed {
                self.stats.cached_assemblies += 1;
                return;
            }
            // The structure changed under us: drop the pattern (and the
            // symbolic analysis and factorization tied to it) and rebuild
            // below.
            self.stats.pattern_rebuilds += 1;
            self.csr = None;
            self.symbolic = None;
            self.lu = None;
            // The structure (and with it the auto backend decision) changed.
            self.backend = None;
            self.solves_since_refresh = 0;
        }

        let mut stamper = Stamper::new(layout);
        job.stamp(&mut stamper);
        let (triplets, out) = stamper.finish();
        self.csr = Some(triplets.to_csr());
        *rhs = out;
    }

    /// The assembled matrix from the most recent
    /// [`assemble`](CachedMna::assemble) call.
    ///
    /// # Panics
    ///
    /// Panics when called before any assembly.
    pub fn matrix(&self) -> &CsrMatrix<T> {
        self.csr
            .as_ref()
            .expect("CachedMna::assemble must run first")
    }

    /// Factors the most recently assembled matrix, reusing the symbolic
    /// analysis whenever one is available and still numerically healthy.
    ///
    /// The returned reference stays valid until the next mutating call; the
    /// underlying L/U value buffers are owned by the cache and reused across
    /// calls, so a steady-state refactorization allocates nothing. The first
    /// factorization of a pattern computes a minimum-degree fill-reducing
    /// ordering (see [`loopscope_sparse::ordering`]) and factors with
    /// KLU-style threshold pivoting, which keeps the reused fill pattern —
    /// and with it every later refactorization — small.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SolveError`] when the system is singular or
    /// inconsistent.
    ///
    /// # Panics
    ///
    /// Panics when called before any assembly.
    pub fn factor(&mut self) -> Result<&SparseLu<T>, SolveError> {
        let csr = self
            .csr
            .as_ref()
            .expect("CachedMna::assemble must run first");
        if self.symbolic.is_some() && self.lu.is_some() {
            let symbolic = self.symbolic.as_ref().expect("checked above");
            let lu = self.lu.as_mut().expect("checked above");
            if let Err(e) = lu.refactor_into(symbolic, csr, &mut self.workspace) {
                // A failed refactorization leaves the factors unusable; drop
                // them so the next attempt re-analyzes from scratch.
                self.lu = None;
                return Err(e);
            }
            if lu.refactored() {
                self.stats.numeric_refactor += 1;
            } else {
                // The pivot order went stale and the fallback already ran a
                // fresh pivoting factorization — adopt its pattern so the
                // next solve refactors again instead of re-analyzing.
                self.stats.fresh_fallback += 1;
                self.symbolic = Some(self.lu.as_ref().expect("still present").extract_symbolic());
            }
            return Ok(self.lu.as_ref().expect("refactored in place"));
        }
        // First factorization over this pattern: block-triangular analysis,
        // then a min-degree order and threshold-pivoted factorization per
        // diagonal block (KLU-style; irreducible patterns degenerate to one
        // block and the plain ordered factorization).
        let (lu, symbolic) = SparseLu::factor_with_symbolic_btf(csr)?;
        self.symbolic = Some(symbolic);
        self.stats.symbolic += 1;
        Ok(self.lu.insert(lu))
    }

    /// The symbolic analysis currently serving refactorizations, if any —
    /// a fill/ordering diagnostic (e.g. `fill_nnz` for the bench tables).
    pub fn symbolic(&self) -> Option<&SymbolicLu> {
        self.symbolic.as_ref()
    }

    /// Convenience wrapper: assemble, factor, and solve with the assembled
    /// right-hand side.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SolveError`] when the system is singular.
    pub fn solve(
        &mut self,
        layout: &MnaLayout,
        job: &impl AssembleMna<T>,
    ) -> Result<Vec<T>, SolveError> {
        let mut solution = Vec::new();
        self.solve_in_place(layout, job, &mut solution)?;
        Ok(solution)
    }

    /// Like [`solve`](CachedMna::solve), but cycling a caller-held buffer:
    /// `solution` receives the assembled right-hand side and is solved in
    /// place. On the cached-pattern path, once the buffer and the cache's
    /// internal scratch are warm (after the first call) the entire
    /// assemble → refactor → solve cycle performs **zero heap allocations**
    /// — this is the entry point the transient Newton loop drives at every
    /// iteration of every timestep.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SolveError`] when the system is singular
    /// (the contents of `solution` are unspecified in that case).
    pub fn solve_in_place(
        &mut self,
        layout: &MnaLayout,
        job: &impl AssembleMna<T>,
        solution: &mut Vec<T>,
    ) -> Result<(), SolveError> {
        self.assemble_into(layout, job, solution);
        self.factor()?;
        let lu = self.lu.as_ref().expect("factor just succeeded");
        // Size-only adjustment: `solve_into` overwrites every work slot in
        // its forward sweep, so no zeroing is needed.
        if self.solve_work.len() != lu.dim() {
            self.solve_work.resize(lu.dim(), T::ZERO);
        }
        lu.solve_into(solution, &mut self.solve_work)?;
        Ok(())
    }

    /// Convenience wrapper over the retry ladder: assemble, then
    /// [`verify_assembled`](CachedMna::verify_assembled). Returns the
    /// residual-verified solution together with its [`SolveQuality`].
    ///
    /// # Errors
    ///
    /// Returns the name-enriched [`SpiceError`] when every rung of the
    /// ladder fails (see [`verify_assembled`](CachedMna::verify_assembled)).
    pub fn solve_verified(
        &mut self,
        layout: &MnaLayout,
        job: &impl AssembleMna<T>,
    ) -> Result<(Vec<T>, SolveQuality), SpiceError> {
        let mut solution = Vec::new();
        let quality = self.solve_verified_into(layout, job, &mut solution)?;
        Ok((solution, quality))
    }

    /// Like [`solve_verified`](CachedMna::solve_verified), but cycling a
    /// caller-held buffer — the residual-verified analogue of
    /// [`solve_in_place`](CachedMna::solve_in_place). Once the buffers are
    /// warm and no ladder escalation fires, the cycle performs zero heap
    /// allocations, so this is safe to drive from the transient Newton loop.
    ///
    /// # Errors
    ///
    /// Returns the name-enriched [`SpiceError`] when every rung of the
    /// ladder fails (see [`verify_assembled`](CachedMna::verify_assembled)).
    pub fn solve_verified_into(
        &mut self,
        layout: &MnaLayout,
        job: &impl AssembleMna<T>,
        solution: &mut Vec<T>,
    ) -> Result<SolveQuality, SpiceError> {
        self.assemble_into(layout, job, solution);
        self.verify_assembled(layout, solution)
    }

    /// Runs the structured **retry ladder** over the most recently assembled
    /// system. `rhs` holds `b` on entry and the verified solution on
    /// success. The rungs, in order:
    ///
    /// 1. factor (a pattern-reusing refactorization when possible, with the
    ///    built-in fresh fallback on a degraded pivot) and solve with
    ///    iterative refinement ([`SparseLu::solve_refined_into`]);
    /// 2. if the backward error still fails its tolerance and the factors
    ///    came from a reused pivot order, escalate to a fresh
    ///    threshold-pivoted factorization of this exact system
    ///    (`residual_retries` in [`SolveStats`]);
    /// 3. if the system is singular or refinement still cannot converge,
    ///    apply the deterministic per-point gmin bumps of
    ///    [`GMIN_BUMP_LADDER`] to the node-voltage diagonals, re-factoring
    ///    after each (`gmin_bumps` in [`SolveStats`]).
    ///
    /// Every escalation decision is a pure function of the assembled values,
    /// so identical systems take identical ladders.
    ///
    /// # Errors
    ///
    /// Non-finite stamps abort immediately as
    /// [`SpiceError::NonFiniteStamp`] (no rung can repair a NaN); a system
    /// still singular after the gmin rung surfaces as
    /// [`SpiceError::SingularSystem`]; a ladder that ran dry with finite
    /// arithmetic returns [`SpiceError::ResidualCheckFailed`]. All carry
    /// circuit names mapped through the [`MnaLayout`].
    ///
    /// # Panics
    ///
    /// Panics when called before any assembly.
    pub fn verify_assembled(
        &mut self,
        layout: &MnaLayout,
        rhs: &mut [T],
    ) -> Result<SolveQuality, SpiceError> {
        let n = layout.dim();
        if rhs.len() != n {
            return Err(SpiceError::Linear(SolveError::RhsLength {
                expected: n,
                got: rhs.len(),
            }));
        }
        if let Some(quality) = self.iterative_attempt(rhs) {
            return Ok(quality);
        }
        let result = self.verify_assembled_direct(layout, rhs);
        // The direct rungs factored the current system: under the iterative
        // backend those factors are the freshly refreshed preconditioner for
        // the next solves.
        if result.is_ok() && self.backend.is_some_and(|b| b.is_iterative()) {
            self.solves_since_refresh = 0;
        }
        result
    }

    /// The GMRES leg of a verified solve: `Some(quality)` when the iterative
    /// backend is active, stale factors are available and the solve passed
    /// the acceptance tolerance; `None` routes to the direct ladder (first
    /// solve, scheduled refresh, pattern rebuild or GMRES miss — with the
    /// RHS restored and `iterative_fallbacks` counted for a miss).
    fn iterative_attempt(&mut self, rhs: &mut [T]) -> Option<SolveQuality> {
        if self.backend.is_none() {
            let symbolic = self.symbolic.as_ref()?;
            self.backend = Some(resolve_backend(
                self.solver_mode,
                symbolic.dim(),
                symbolic.fill_nnz(),
            ));
        }
        let opts = self.backend?.gmres_options()?;
        if self.lu.is_none() || self.solves_since_refresh >= PRECOND_REFRESH_INTERVAL {
            // Scheduled refresh: let the direct path factor this system; its
            // factors then serve the next group of solves.
            self.stats.preconditioner_refreshes += 1;
            return None;
        }
        let csr = self.csr.as_ref().expect("assemble must run first");
        let lu = self.lu.as_ref().expect("checked above");
        self.backend_rhs.clear();
        self.backend_rhs.extend_from_slice(rhs);
        self.stats.iterative_solves += 1;
        if let Ok(out) = gmres_solve_into(csr, lu, rhs, &opts, &mut self.gmres_ws) {
            self.stats.gmres_iterations += out.iterations;
            if out.converged && out.backward_error <= GMRES_ACCEPT_BACKWARD_TOLERANCE {
                self.solves_since_refresh += 1;
                return Some(SolveQuality {
                    residual_norm: out.residual_norm,
                    backward_error: out.backward_error,
                    refinement_steps: 0,
                    pivot_growth: lu.pivot_growth(),
                    converged: true,
                });
            }
        }
        self.stats.iterative_fallbacks += 1;
        rhs.copy_from_slice(&self.backend_rhs);
        None
    }

    /// The direct verified-solve rungs of
    /// [`verify_assembled`](CachedMna::verify_assembled) — the exact ladder
    /// of PR 6, unchanged; the iterative backend falls back here whenever
    /// GMRES misses its tolerance.
    fn verify_assembled_direct(
        &mut self,
        layout: &MnaLayout,
        rhs: &mut [T],
    ) -> Result<SolveQuality, SpiceError> {
        self.rhs_backup.clear();
        self.rhs_backup.extend_from_slice(rhs);
        let mut pending_singular = None;
        let mut last_quality: Option<SolveQuality> = None;

        match self.factor() {
            Ok(_) => {}
            Err(e @ SolveError::Singular(_)) => pending_singular = Some(e),
            Err(e) => return Err(SpiceError::from_solve(e, layout)),
        }
        if pending_singular.is_none() {
            let q = self.refined_attempt(layout, rhs)?;
            if q.converged {
                return Ok(q);
            }
            last_quality = Some(q);
            let reused_pivots = self.lu.as_ref().is_some_and(|lu| lu.refactored());
            if reused_pivots {
                self.stats.residual_retries += 1;
                match self.fresh_factor_adopting() {
                    Ok(()) => {
                        rhs.copy_from_slice(&self.rhs_backup);
                        let q = self.refined_attempt(layout, rhs)?;
                        if q.converged {
                            return Ok(q);
                        }
                        last_quality = Some(q);
                    }
                    Err(e @ SolveError::Singular(_)) => pending_singular = Some(e),
                    Err(e) => return Err(SpiceError::from_solve(e, layout)),
                }
            }
        }
        let node_vars = layout.dim() - layout.branch_count();
        let mut bumps = 0usize;
        for &bump in GMIN_BUMP_LADDER.iter() {
            let matrix = self.csr.as_mut().expect("assemble must run first");
            if !bump_node_diagonals(matrix, node_vars, bump) {
                break;
            }
            self.stats.gmin_bumps += 1;
            bumps += 1;
            match self.fresh_factor_adopting() {
                Ok(()) => {
                    rhs.copy_from_slice(&self.rhs_backup);
                    let q = self.refined_attempt(layout, rhs)?;
                    if q.converged {
                        return Ok(q);
                    }
                    last_quality = Some(q);
                    pending_singular = None;
                }
                Err(e @ SolveError::Singular(_)) => pending_singular = Some(e),
                Err(e) => return Err(SpiceError::from_solve(e, layout)),
            }
        }
        match pending_singular {
            Some(e) => Err(SpiceError::from_solve(e, layout)),
            None => Err(SpiceError::ResidualCheckFailed {
                backward_error: last_quality.map_or(f64::INFINITY, |q| q.backward_error),
                gmin_bumps: bumps,
            }),
        }
    }

    /// One residual-verified solve over the current factors and matrix.
    fn refined_attempt(
        &mut self,
        layout: &MnaLayout,
        rhs: &mut [T],
    ) -> Result<SolveQuality, SpiceError> {
        let csr = self.csr.as_ref().expect("assemble must run first");
        let lu = self.lu.as_ref().expect("factor must succeed first");
        lu.solve_refined_into(csr, rhs, &mut self.refine_ws)
            .map_err(|e| SpiceError::from_solve(e, layout))
    }

    /// Fresh threshold-pivoted factorization of the current matrix, adopting
    /// its pattern (counted in `symbolic`, like every full analysis).
    fn fresh_factor_adopting(&mut self) -> Result<(), SolveError> {
        let csr = self.csr.as_ref().expect("assemble must run first");
        let (lu, symbolic) = SparseLu::factor_with_symbolic_btf(csr)?;
        self.symbolic = Some(symbolic);
        self.lu = Some(lu);
        self.stats.symbolic += 1;
        Ok(())
    }

    /// Hager/Higham 1-norm condition estimate of the most recently factored
    /// system (see [`SparseLu::condition_estimate`]).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SolveError`] on a dimension mismatch.
    ///
    /// # Panics
    ///
    /// Panics when no successful [`factor`](CachedMna::factor) call has run.
    pub fn condition_estimate(&self) -> Result<f64, SolveError> {
        let csr = self
            .csr
            .as_ref()
            .expect("CachedMna::assemble must run first");
        let lu = self
            .lu
            .as_ref()
            .expect("CachedMna::factor must succeed first");
        lu.condition_estimate(csr)
    }

    /// Mutable access to the assembled matrix values — the perturbation hook
    /// the fault-injection test-suites use to poison stamped values between
    /// assembly and solve. Compiled only for tests and under the
    /// `fault-inject` feature; never part of the production surface.
    ///
    /// # Panics
    ///
    /// Panics when called before any assembly.
    #[cfg(any(test, feature = "fault-inject"))]
    pub fn matrix_mut(&mut self) -> &mut CsrMatrix<T> {
        self.csr
            .as_mut()
            .expect("CachedMna::assemble must run first")
    }
}

/// The **immutable, shareable half** of a sweep's solver state: everything
/// that is a function of the circuit *structure* (and of the representative
/// values the plan was built from), nothing that mutates during a solve.
///
/// A plan holds the [`MnaLayout`]'s slot assignment, the CSR sparsity
/// pattern (values zeroed) whose slot map every assembly reuses, and the
/// [`SymbolicLu`] — row/column permutations plus fill pattern — captured by
/// one fill-reducing ordered factorization at build time. All of it is
/// read-only, so a plan is `Sync` and can be shared by reference (or
/// `Arc`) across any number of worker threads.
///
/// The mutable half lives in [`SolveContext`], minted per worker by
/// [`context`](SweepPlan::context): value buffers, L/U numeric buffers,
/// scratch and counters. The split is what makes frequency sweeps
/// embarrassingly parallel — workers share the expensive analysis and own
/// everything they write to:
///
/// ```text
///            SweepPlan (built once, immutable, shared)
///      layout slot maps · CSR pattern · Arc<SymbolicLu> (perm, cperm, fill)
///            │ context()          │ context()            │ context()
///            ▼                    ▼                      ▼
///      SolveContext #1      SolveContext #2        SolveContext #3
///      csr values, L/U      csr values, L/U        csr values, L/U
///      workspace, stats     workspace, stats       workspace, stats
/// ```
///
/// Because every context always refactors against the *same* plan symbolic
/// (never adopting a per-worker pattern mid-sweep), the values a context
/// produces at a point depend only on the job at that point — results are
/// bitwise identical no matter how points are chunked across workers.
///
/// ```
/// use loopscope_netlist::{Circuit, SourceSpec};
/// use loopscope_spice::assembly::{AssembleMna, SweepPlan};
/// use loopscope_spice::mna::{MatrixSink, MnaLayout, Stamper};
///
/// struct Divider {
///     g: f64,
/// }
/// impl AssembleMna<f64> for Divider {
///     fn stamp<S: MatrixSink<f64>>(&self, st: &mut Stamper<'_, f64, S>) {
///         st.add_var_var(0, 0, self.g + 1.0e-3);
///         st.add_var_var(0, 1, -self.g);
///         st.add_var_var(1, 0, -self.g);
///         st.add_var_var(1, 1, self.g);
///         st.add_rhs_var(0, 1.0e-3);
///     }
/// }
///
/// let mut c = Circuit::new("divider");
/// let a = c.node("a");
/// let b = c.node("b");
/// c.add_resistor("R1", a, Circuit::GROUND, 1.0e3);
/// c.add_resistor("R2", a, b, 1.0e3);
/// c.add_isource("I1", Circuit::GROUND, a, SourceSpec::dc(1.0e-3));
/// let layout = MnaLayout::new(&c);
///
/// // One symbolic analysis at build time, shared by every context.
/// let plan = SweepPlan::build(&layout, &Divider { g: 1.0e-3 })?;
/// let mut ctx = plan.context();
/// for k in 1..=4 {
///     let x = ctx.solve(&Divider { g: 1.0e-3 * k as f64 })?;
///     assert!(x[0].is_finite());
/// }
/// assert_eq!(plan.stats().symbolic, 1);
/// assert_eq!(ctx.stats().numeric_refactor, 4);
/// assert_eq!(ctx.stats().symbolic, 0);
/// # Ok::<(), loopscope_sparse::SolveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SweepPlan<T: Scalar> {
    layout: MnaLayout,
    /// The shared sparsity pattern with zeroed values: every context clones
    /// it once at mint time and restamps values into its own copy.
    pattern: CsrMatrix<T>,
    /// Permutations + fill pattern shared by every context (`SymbolicLu` is
    /// itself `Arc`-backed, so the extra `Arc` keeps the plan cheaply
    /// clonable as a whole).
    symbolic: Arc<SymbolicLu>,
    /// The solver backend every context minted from this plan routes its
    /// verified solves through — resolved once at build time from the
    /// `LOOPSCOPE_SOLVER` mode and the system structure, so all workers of a
    /// sweep agree on it.
    backend: SolverBackend,
    /// Counters of the build itself (exactly one symbolic analysis).
    build_stats: SolveStats,
}

impl<T: Scalar> SweepPlan<T> {
    /// Builds a plan by assembling `job` from scratch (triplets → CSR) and
    /// running one fill-reducing ordered factorization over it to capture
    /// the symbolic analysis.
    ///
    /// `job` should stamp **representative values** (e.g. the first
    /// frequency point of the sweep): the threshold-pivoted ordering is
    /// computed from them, and every context refactorization reuses it.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SolveError`] when the representative system
    /// is singular.
    pub fn build(layout: &MnaLayout, job: &impl AssembleMna<T>) -> Result<Self, SolveError> {
        let mut plan = Self::build_with_backend(layout, job, SolverBackend::Direct)?;
        plan.backend = resolve_backend(
            configured_solver_mode(),
            plan.symbolic.dim(),
            plan.symbolic.fill_nnz(),
        );
        Ok(plan)
    }

    /// Like [`build`](SweepPlan::build), but pinning the solver backend
    /// instead of resolving it from the `LOOPSCOPE_SOLVER` environment —
    /// the in-process override the determinism and fault-injection test
    /// matrices use, so they never mutate global state.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SolveError`] when the representative system
    /// is singular.
    pub fn build_with_backend(
        layout: &MnaLayout,
        job: &impl AssembleMna<T>,
        backend: SolverBackend,
    ) -> Result<Self, SolveError> {
        let mut stamper = Stamper::new(layout);
        job.stamp(&mut stamper);
        let (triplets, _rhs) = stamper.finish();
        let mut pattern = triplets.to_csr();
        let (_, symbolic) = SparseLu::factor_with_symbolic_btf(&pattern)?;
        pattern.zero_values();
        Ok(Self {
            layout: layout.clone(),
            pattern,
            symbolic: Arc::new(symbolic),
            backend,
            build_stats: SolveStats {
                symbolic: 1,
                ..SolveStats::default()
            },
        })
    }

    /// The solver backend every context of this plan routes through.
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }

    /// The MNA layout whose slot assignment the plan's pattern was built for.
    pub fn layout(&self) -> &MnaLayout {
        &self.layout
    }

    /// Matrix dimension of the planned system.
    pub fn dim(&self) -> usize {
        self.symbolic.dim()
    }

    /// The symbolic analysis (permutations + fill pattern) every context
    /// refactorization reuses.
    pub fn symbolic(&self) -> &SymbolicLu {
        &self.symbolic
    }

    /// Counters of the plan build itself: exactly one symbolic analysis.
    /// Merge with the workers' [`SolveContext::stats`] for sweep totals.
    pub fn stats(&self) -> SolveStats {
        self.build_stats
    }

    /// The shared zero-valued sparsity pattern. Batched drivers clone it
    /// once per variant lane and restamp values into each copy, exactly as
    /// [`context`](SweepPlan::context) does for its single value CSR.
    pub(crate) fn pattern(&self) -> &CsrMatrix<T> {
        &self.pattern
    }

    /// Mints a fresh per-worker [`SolveContext`]: its own value CSR (cloned
    /// from the shared pattern), an unfilled L/U shell over the shared
    /// symbolic analysis, a pre-sized workspace and solve scratch. All
    /// allocation happens here; the context's sweep loop is allocation-free
    /// on the factor/solve side from its very first point.
    pub fn context(&self) -> SolveContext<'_, T> {
        let n = self.dim();
        SolveContext {
            plan: self,
            csr: self.pattern.clone(),
            lu: SparseLu::from_symbolic(&self.symbolic),
            workspace: LuWorkspace::for_dim(n),
            solve_work: vec![T::ZERO; n],
            panel_work: Vec::new(),
            refine_ws: RefineWorkspace::for_dim(n),
            rhs_backup: Vec::with_capacity(n),
            off_pattern: None,
            factored: false,
            precond: SparseLu::from_symbolic(&self.symbolic),
            precond_anchor: None,
            gmres_ws: GmresWorkspace::new(),
            backend_rhs: Vec::new(),
            stats: SolveStats::default(),
        }
    }

    /// Like [`context`](SweepPlan::context), additionally pre-sizing the
    /// blocked-solve scratch for panels of up to `panel_width` right-hand
    /// sides, so even the first
    /// [`solve_panel_in_place`](SolveContext::solve_panel_in_place) call
    /// over the context performs no heap allocation. This is what the
    /// all-nodes scan's frequency workers use.
    pub fn context_with_panel(&self, panel_width: usize) -> SolveContext<'_, T> {
        let mut ctx = self.context();
        ctx.panel_work = vec![T::ZERO; self.dim() * panel_width];
        ctx
    }
}

/// The **mutable, per-worker half** of a sweep's solver state: everything a
/// solve writes to, owned exclusively by one worker.
///
/// Minted by [`SweepPlan::context`]; drive each point through
/// [`assemble`](SolveContext::assemble) → [`factor`](SolveContext::factor) →
/// [`solve_in_place`](SolveContext::solve_in_place) (one factor, many
/// right-hand sides — the all-nodes scan), or the
/// [`solve`](SolveContext::solve) convenience wrapper.
///
/// Unlike [`CachedMna`], a context never adopts a new pattern or pivot
/// order mid-sweep: every point refactors against the plan's fixed
/// symbolic analysis, and a numerically degraded point falls back to a
/// fresh factorization **for that point only**. Results at a point are
/// therefore a pure function of the job — independent of the points the
/// context processed before — which is what makes chunked parallel sweeps
/// bitwise identical to the serial run.
#[derive(Debug)]
pub struct SolveContext<'p, T: Scalar> {
    plan: &'p SweepPlan<T>,
    /// Worker-owned value buffer over the plan's sparsity pattern.
    csr: CsrMatrix<T>,
    /// Worker-owned L/U numeric buffers (pattern shared with the plan).
    lu: SparseLu<T>,
    workspace: LuWorkspace<T>,
    solve_work: Vec<T>,
    /// Scratch of the blocked multi-RHS solve path
    /// ([`solve_panel_in_place`](SolveContext::solve_panel_in_place)); grown
    /// on demand, pre-sized by [`SweepPlan::context_with_panel`].
    panel_work: Vec<T>,
    /// Scratch of the residual-verified solve path, pre-sized at mint time.
    refine_ws: RefineWorkspace<T>,
    /// Pristine copy of the right-hand side, so retry-ladder escalations can
    /// restart the solve from `b` after a failed attempt overwrote it.
    rhs_backup: Vec<T>,
    /// A from-scratch matrix built when a stamp missed the shared pattern;
    /// used by [`factor`](SolveContext::factor) and the verified-solve path
    /// as a one-point fallback until the next assembly clears it (the plan
    /// and the context's slot map stay untouched).
    off_pattern: Option<CsrMatrix<T>>,
    factored: bool,
    /// The stale preconditioner of the iterative backend: the LU of the
    /// sweep group's **anchor** matrix, kept separate from `lu` so a
    /// direct-ladder fallback at one point can never corrupt the
    /// preconditioner other points of the group rely on.
    precond: SparseLu<T>,
    /// The sweep index whose matrix `precond` currently factors; `None`
    /// until the first refresh, or after an anchor whose refactorization
    /// failed (every point of that group then takes the direct fallback).
    precond_anchor: Option<usize>,
    /// Scratch of the GMRES path; empty until the first iterative solve.
    gmres_ws: GmresWorkspace<T>,
    /// Pristine RHS copy of the iterative attempt — separate from
    /// `rhs_backup`, which the direct ladder overwrites internally when a
    /// GMRES miss falls back to it.
    backend_rhs: Vec<T>,
    stats: SolveStats,
}

impl<'p, T: Scalar> SolveContext<'p, T> {
    /// The plan this context was minted from.
    pub fn plan(&self) -> &'p SweepPlan<T> {
        self.plan
    }

    /// Counters accumulated by this context since it was minted.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// The solver backend this context routes
    /// [`solve_backend_in_place`](SolveContext::solve_backend_in_place)
    /// through (fixed at plan build time).
    pub fn backend(&self) -> SolverBackend {
        self.plan.backend
    }

    /// Ensures the stale preconditioner of the iterative backend factors the
    /// matrix of sweep index `anchor_idx`, assembling `anchor_job` (the job
    /// of that index) and refactoring when it does not. A no-op under the
    /// direct backend and when the preconditioner is already current.
    ///
    /// Call **before** [`assemble`](SolveContext::assemble) for the point —
    /// the anchor assembly borrows the context's value buffer, which the
    /// point's own assembly then restamps.
    ///
    /// `scheduled` marks the refresh the sweep schedule mandates (the point
    /// **is** its own anchor): only those are counted in
    /// `preconditioner_refreshes`. The uncounted warm-up refresh a worker
    /// performs when its chunk starts mid-group reconstructs the identical
    /// anchor factorization, which is what keeps every point's GMRES inputs
    /// — and so its iteration count and solution — bitwise invariant under
    /// any chunking. An anchor that cannot be refactored (singular or
    /// off-pattern) clears the preconditioner; every point of its group then
    /// takes the counted direct fallback, identically in any chunking.
    pub fn ensure_preconditioner(
        &mut self,
        anchor_idx: usize,
        scheduled: bool,
        anchor_job: &impl AssembleMna<T>,
    ) {
        if !self.plan.backend.is_iterative() {
            return;
        }
        if scheduled {
            self.stats.preconditioner_refreshes += 1;
        } else if self.precond_anchor == Some(anchor_idx) {
            return;
        }
        // Assemble the anchor system, uncounted: warm-up work must not
        // perturb the chunking-invariant per-point assembly counters.
        self.factored = false;
        self.csr.zero_values();
        let mut stamper = Stamper::with_sink(self.plan.layout(), SlotSink::new(&mut self.csr));
        anchor_job.stamp(&mut stamper);
        let (sink, _rhs) = stamper.into_parts();
        if sink.missed() {
            self.precond_anchor = None;
            return;
        }
        match self
            .precond
            .refactor_into(&self.plan.symbolic, &self.csr, &mut self.workspace)
        {
            Ok(()) => self.precond_anchor = Some(anchor_idx),
            Err(_) => self.precond_anchor = None,
        }
    }

    /// Solves the most recently assembled system through the plan's solver
    /// backend: under [`SolverBackend::Direct`] this **is**
    /// [`solve_verified_in_place`](SolveContext::solve_verified_in_place);
    /// under the iterative backend it runs GMRES off the stale
    /// preconditioner installed by
    /// [`ensure_preconditioner`](SolveContext::ensure_preconditioner) and
    /// accepts the result only when its true-residual backward error passes
    /// [`GMRES_ACCEPT_BACKWARD_TOLERANCE`] — anything else (missed
    /// tolerance, missing/failed preconditioner, off-pattern point) restores
    /// the right-hand side and re-solves on the exact verified-direct
    /// ladder, counted in `iterative_fallbacks`. Failure semantics and
    /// structured errors are therefore identical across backends.
    ///
    /// `rhs` holds `b` on entry and the verified solution on success.
    ///
    /// # Errors
    ///
    /// Exactly those of
    /// [`solve_verified_in_place`](SolveContext::solve_verified_in_place).
    pub fn solve_backend_in_place(&mut self, rhs: &mut [T]) -> Result<SolveQuality, SpiceError> {
        let Some(opts) = self.plan.backend.gmres_options() else {
            return self.solve_verified_in_place(rhs);
        };
        let n = self.plan.dim();
        if rhs.len() != n {
            return Err(SpiceError::Linear(SolveError::RhsLength {
                expected: n,
                got: rhs.len(),
            }));
        }
        if self.precond_anchor.is_none() || self.off_pattern.is_some() {
            self.stats.iterative_fallbacks += 1;
            return self.solve_verified_in_place(rhs);
        }
        self.backend_rhs.clear();
        self.backend_rhs.extend_from_slice(rhs);
        self.stats.iterative_solves += 1;
        if let Ok(out) = gmres_solve_into(&self.csr, &self.precond, rhs, &opts, &mut self.gmres_ws)
        {
            self.stats.gmres_iterations += out.iterations;
            if out.converged && out.backward_error <= GMRES_ACCEPT_BACKWARD_TOLERANCE {
                return Ok(SolveQuality {
                    residual_norm: out.residual_norm,
                    backward_error: out.backward_error,
                    refinement_steps: 0,
                    pivot_growth: self.precond.pivot_growth(),
                    converged: true,
                });
            }
        }
        self.stats.iterative_fallbacks += 1;
        rhs.copy_from_slice(&self.backend_rhs);
        self.solve_verified_in_place(rhs)
    }

    /// Assembles the MNA system for `job` into the context's value buffer
    /// (value-only restamp over the plan's slot map) and returns the
    /// right-hand side.
    ///
    /// A job stamping outside the shared pattern — which cannot happen for
    /// the frequency sweeps the plan exists for, whose pattern is
    /// frequency-independent — is handled per point: the system is rebuilt
    /// from scratch and the next [`factor`](SolveContext::factor) runs a
    /// fresh analysis for this point only, leaving the shared plan (and
    /// later points) untouched.
    pub fn assemble(&mut self, job: &impl AssembleMna<T>) -> Vec<T> {
        self.off_pattern = None;
        self.factored = false;
        self.csr.zero_values();
        let mut stamper = Stamper::with_sink(self.plan.layout(), SlotSink::new(&mut self.csr));
        job.stamp(&mut stamper);
        let (sink, rhs) = stamper.into_parts();
        if !sink.missed() {
            self.stats.cached_assemblies += 1;
            return rhs;
        }
        self.stats.pattern_rebuilds += 1;
        let mut stamper = Stamper::new(self.plan.layout());
        job.stamp(&mut stamper);
        let (triplets, rhs) = stamper.finish();
        self.off_pattern = Some(triplets.to_csr());
        rhs
    }

    /// Factors the most recently assembled system: a numeric-only
    /// refactorization against the plan's symbolic analysis (the hot path),
    /// or a fresh one-point factorization when the assembly went off
    /// pattern or a pivot degraded.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SolveError`] when the system is singular.
    ///
    /// # Panics
    ///
    /// Panics when called before any [`assemble`](SolveContext::assemble).
    pub fn factor(&mut self) -> Result<&SparseLu<T>, SolveError> {
        if let Some(matrix) = self.off_pattern.as_ref() {
            // One-point fallback: a full analysis of the off-plan matrix.
            // The matrix stays around (until the next assembly) so the
            // verified-solve path can compute residuals against it.
            let (lu, _) = SparseLu::factor_with_symbolic_btf(matrix)?;
            self.stats.symbolic += 1;
            self.lu = lu;
            self.factored = true;
            return Ok(&self.lu);
        }
        self.lu
            .refactor_into(&self.plan.symbolic, &self.csr, &mut self.workspace)?;
        if self.lu.refactored() {
            self.stats.numeric_refactor += 1;
        } else {
            // Degraded pivot at this point: `refactor_into` already fell
            // back to a fresh factorization. Unlike `CachedMna` the new
            // pattern is NOT adopted — the next point refactors against the
            // shared plan again, so no point's result ever depends on chunk
            // boundaries or on which points this worker saw before.
            self.stats.fresh_fallback += 1;
        }
        self.factored = true;
        Ok(&self.lu)
    }

    /// Solves the factored system in place: `rhs` holds `b` on entry and
    /// `x` on return, using the context's own scratch (no allocation).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::RhsLength`] when `rhs` does not match the
    /// system dimension.
    ///
    /// # Panics
    ///
    /// Panics when no successful [`factor`](SolveContext::factor) call has
    /// run since the last assembly.
    pub fn solve_in_place(&mut self, rhs: &mut [T]) -> Result<(), SolveError> {
        assert!(
            self.factored,
            "SolveContext::factor must succeed before solving"
        );
        self.lu.solve_into(rhs, &mut self.solve_work)
    }

    /// Solves the factored system for `k` right-hand sides in one blocked
    /// traversal (see
    /// [`SparseLu::solve_block_into`]): `rhs` holds the `k` columns back to
    /// back (column-major) on entry and the solutions on return. Per column
    /// the result is **bitwise identical** to
    /// [`solve_in_place`](SolveContext::solve_in_place) on that column, so
    /// any batching of a scan's injections produces the same numbers.
    ///
    /// Allocation-free once the context's panel scratch has reached `k`
    /// columns — mint the context with [`SweepPlan::context_with_panel`] to
    /// pre-size it.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::RhsLength`] when `rhs.len()` is not `k` times
    /// the system dimension.
    ///
    /// # Panics
    ///
    /// Panics when no successful [`factor`](SolveContext::factor) call has
    /// run since the last assembly.
    pub fn solve_panel_in_place(&mut self, rhs: &mut [T], k: usize) -> Result<(), SolveError> {
        assert!(
            self.factored,
            "SolveContext::factor must succeed before solving"
        );
        if self.panel_work.len() < rhs.len() {
            self.panel_work.resize(rhs.len(), T::ZERO);
        }
        self.lu
            .solve_block_into(rhs, k, &mut self.panel_work[..rhs.len()])
    }

    /// Convenience wrapper: assemble, factor, and solve with the assembled
    /// right-hand side.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SolveError`] when the system is singular.
    pub fn solve(&mut self, job: &impl AssembleMna<T>) -> Result<Vec<T>, SolveError> {
        let mut rhs = self.assemble(job);
        self.factor()?;
        self.solve_in_place(&mut rhs)?;
        Ok(rhs)
    }

    /// Convenience wrapper over the retry ladder: assemble, then
    /// [`solve_verified_in_place`](SolveContext::solve_verified_in_place).
    /// Returns the residual-verified solution and its [`SolveQuality`].
    ///
    /// # Errors
    ///
    /// Returns the name-enriched [`SpiceError`] when every rung of the
    /// ladder fails.
    pub fn solve_verified(
        &mut self,
        job: &impl AssembleMna<T>,
    ) -> Result<(Vec<T>, SolveQuality), SpiceError> {
        let mut rhs = self.assemble(job);
        let quality = self.solve_verified_in_place(&mut rhs)?;
        Ok((rhs, quality))
    }

    /// Runs the structured **retry ladder** over the most recently assembled
    /// system: factor → residual-verified solve → fresh threshold-pivoted
    /// factorization on a failed backward-error check → deterministic
    /// per-point gmin bumps ([`GMIN_BUMP_LADDER`]). The same ladder as
    /// [`CachedMna::verify_assembled`] — see there for the rung-by-rung
    /// contract — with one sweep-critical difference: escalations here are
    /// strictly **per point**. Nothing a rung does is adopted into the plan
    /// or carried to the next point, so a context that escalated at point
    /// `k` still produces bitwise-identical results at every other point,
    /// whatever the chunking.
    ///
    /// `rhs` holds `b` on entry and the verified solution on success. When
    /// [`factor`](SolveContext::factor) already ran since the last assembly
    /// its factors are reused as rung 1; otherwise the ladder factors first.
    ///
    /// # Errors
    ///
    /// [`SpiceError::NonFiniteStamp`] for NaN/∞ stamps,
    /// [`SpiceError::SingularSystem`] for systems the gmin rung cannot
    /// regularize, [`SpiceError::ResidualCheckFailed`] when the ladder runs
    /// dry — all enriched with circuit names.
    pub fn solve_verified_in_place(&mut self, rhs: &mut [T]) -> Result<SolveQuality, SpiceError> {
        let n = self.plan.dim();
        if rhs.len() != n {
            return Err(SpiceError::Linear(SolveError::RhsLength {
                expected: n,
                got: rhs.len(),
            }));
        }
        self.rhs_backup.clear();
        self.rhs_backup.extend_from_slice(rhs);
        let mut pending_singular = None;
        let mut last_quality: Option<SolveQuality> = None;

        if !self.factored {
            match self.factor() {
                Ok(_) => {}
                Err(e @ SolveError::Singular(_)) => pending_singular = Some(e),
                Err(e) => return Err(SpiceError::from_solve(e, self.plan.layout())),
            }
        }
        if pending_singular.is_none() {
            let q = self.refined_attempt(rhs)?;
            if q.converged {
                return Ok(q);
            }
            last_quality = Some(q);
            if self.lu.refactored() {
                self.stats.residual_retries += 1;
                match self.fresh_factor_point() {
                    Ok(()) => {
                        rhs.copy_from_slice(&self.rhs_backup);
                        let q = self.refined_attempt(rhs)?;
                        if q.converged {
                            return Ok(q);
                        }
                        last_quality = Some(q);
                    }
                    Err(e @ SolveError::Singular(_)) => pending_singular = Some(e),
                    Err(e) => return Err(SpiceError::from_solve(e, self.plan.layout())),
                }
            }
        }
        let node_vars = self.plan.layout().dim() - self.plan.layout().branch_count();
        let mut bumps = 0usize;
        for &bump in GMIN_BUMP_LADDER.iter() {
            let matrix = self.off_pattern.as_mut().unwrap_or(&mut self.csr);
            if !bump_node_diagonals(matrix, node_vars, bump) {
                break;
            }
            self.stats.gmin_bumps += 1;
            bumps += 1;
            match self.fresh_factor_point() {
                Ok(()) => {
                    rhs.copy_from_slice(&self.rhs_backup);
                    let q = self.refined_attempt(rhs)?;
                    if q.converged {
                        return Ok(q);
                    }
                    last_quality = Some(q);
                    pending_singular = None;
                }
                Err(e @ SolveError::Singular(_)) => pending_singular = Some(e),
                Err(e) => return Err(SpiceError::from_solve(e, self.plan.layout())),
            }
        }
        match pending_singular {
            Some(e) => Err(SpiceError::from_solve(e, self.plan.layout())),
            None => Err(SpiceError::ResidualCheckFailed {
                backward_error: last_quality.map_or(f64::INFINITY, |q| q.backward_error),
                gmin_bumps: bumps,
            }),
        }
    }

    /// One residual-verified solve over the current factors and matrix.
    fn refined_attempt(&mut self, rhs: &mut [T]) -> Result<SolveQuality, SpiceError> {
        let matrix = self.off_pattern.as_ref().unwrap_or(&self.csr);
        self.lu
            .solve_refined_into(matrix, rhs, &mut self.refine_ws)
            .map_err(|e| SpiceError::from_solve(e, self.plan.layout()))
    }

    /// Fresh threshold-pivoted factorization of this point's matrix only —
    /// unlike [`CachedMna`], the resulting pattern is **not** adopted; the
    /// next point refactors against the shared plan as usual. Counted in
    /// `symbolic`, like every full analysis.
    fn fresh_factor_point(&mut self) -> Result<(), SolveError> {
        let matrix = self.off_pattern.as_ref().unwrap_or(&self.csr);
        let (lu, _) = SparseLu::factor_with_symbolic_btf(matrix)?;
        self.lu = lu;
        self.factored = true;
        self.stats.symbolic += 1;
        Ok(())
    }

    /// Hager/Higham 1-norm condition estimate of the most recently factored
    /// system (see [`SparseLu::condition_estimate`]).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SolveError`] on a dimension mismatch.
    ///
    /// # Panics
    ///
    /// Panics when no successful [`factor`](SolveContext::factor) call has
    /// run since the last assembly.
    pub fn condition_estimate(&self) -> Result<f64, SolveError> {
        assert!(
            self.factored,
            "SolveContext::factor must succeed before estimating conditioning"
        );
        let matrix = self.off_pattern.as_ref().unwrap_or(&self.csr);
        self.lu.condition_estimate(matrix)
    }

    /// Mutable access to the assembled matrix values — the perturbation hook
    /// the fault-injection test-suites use to poison stamped values between
    /// assembly and solve. Compiled only for tests and under the
    /// `fault-inject` feature; never part of the production surface.
    #[cfg(any(test, feature = "fault-inject"))]
    pub fn matrix_mut(&mut self) -> &mut CsrMatrix<T> {
        self.off_pattern.as_mut().unwrap_or(&mut self.csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_netlist::{Circuit, SourceSpec};

    /// A tiny hand-written job: conductance ladder with a value knob.
    struct LadderJob {
        g1: f64,
        g2: f64,
        extra_entry: bool,
    }

    impl AssembleMna<f64> for LadderJob {
        fn stamp<S: MatrixSink<f64>>(&self, st: &mut Stamper<'_, f64, S>) {
            st.add_var_var(0, 0, self.g1 + self.g2);
            st.add_var_var(0, 1, -self.g2);
            st.add_var_var(1, 0, -self.g2);
            st.add_var_var(1, 1, self.g2);
            st.add_rhs_var(0, 1.0e-3);
            if self.extra_entry {
                st.add_var_var(1, 1, 0.5);
            }
        }
    }

    fn two_node_layout() -> (Circuit, MnaLayout) {
        let mut c = Circuit::new("cache test");
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0e3);
        c.add_resistor("R2", a, b, 1.0e3);
        c.add_isource("I1", Circuit::GROUND, a, SourceSpec::dc(1.0e-3));
        let layout = MnaLayout::new(&c);
        (c, layout)
    }

    #[test]
    fn second_assembly_is_value_only() {
        let (_c, layout) = two_node_layout();
        let mut cache = CachedMna::<f64>::new();
        let job = LadderJob {
            g1: 1.0e-3,
            g2: 2.0e-3,
            extra_entry: false,
        };
        cache.assemble(&layout, &job);
        let first = cache.matrix().clone();
        let job2 = LadderJob {
            g1: 4.0e-3,
            g2: 0.5e-3,
            extra_entry: false,
        };
        let rhs = cache.assemble(&layout, &job2);
        assert!(cache.matrix().same_pattern(&first));
        assert_eq!(cache.stats().cached_assemblies, 1);
        assert_eq!(cache.stats().pattern_rebuilds, 0);
        assert!((cache.matrix().get(0, 0) - 4.5e-3).abs() < 1e-18);
        assert!((cache.matrix().get(0, 1) + 0.5e-3).abs() < 1e-18);
        assert_eq!(rhs[0], 1.0e-3);
    }

    #[test]
    fn pattern_miss_triggers_rebuild() {
        let (_c, layout) = two_node_layout();
        let mut cache = CachedMna::<f64>::new();
        cache.assemble(
            &layout,
            &LadderJob {
                g1: 1.0,
                g2: 1.0,
                extra_entry: false,
            },
        );
        cache.factor().unwrap();
        assert_eq!(cache.stats().symbolic, 1);
        // The extra stamp addresses (1,1), which IS in the pattern — use a
        // job with a different structure instead: g2 = 0 keeps positions, so
        // force a genuinely new position via a fresh cache scenario below.
        let mut cache2 = CachedMna::<f64>::new();
        struct DiagOnly;
        impl AssembleMna<f64> for DiagOnly {
            fn stamp<S: MatrixSink<f64>>(&self, st: &mut Stamper<'_, f64, S>) {
                st.add_var_var(0, 0, 1.0);
                st.add_var_var(1, 1, 2.0);
            }
        }
        cache2.assemble(&layout, &DiagOnly);
        cache2.factor().unwrap();
        cache2.assemble(
            &layout,
            &LadderJob {
                g1: 1.0,
                g2: 1.0,
                extra_entry: false,
            },
        );
        assert_eq!(cache2.stats().pattern_rebuilds, 1);
        assert_eq!(cache2.matrix().get(0, 1), -1.0);
        // The symbolic analysis was invalidated: next factor re-analyzes.
        cache2.factor().unwrap();
        assert_eq!(cache2.stats().symbolic, 2);
    }

    #[test]
    fn factor_counts_refactors() {
        let (_c, layout) = two_node_layout();
        let mut cache = CachedMna::<f64>::new();
        for k in 1..=5 {
            let job = LadderJob {
                g1: 1.0e-3 * k as f64,
                g2: 2.0e-3,
                extra_entry: false,
            };
            let x = cache.solve(&layout, &job).unwrap();
            assert!(x[0].is_finite());
        }
        let stats = cache.stats();
        assert_eq!(stats.symbolic, 1);
        assert_eq!(stats.numeric_refactor, 4);
        assert_eq!(stats.fresh_fallback, 0);
        assert_eq!(stats.factorizations(), 5);
    }

    #[test]
    fn plan_contexts_are_independent_and_deterministic() {
        let (_c, layout) = two_node_layout();
        let job0 = LadderJob {
            g1: 1.0e-3,
            g2: 2.0e-3,
            extra_entry: false,
        };
        let plan = SweepPlan::<f64>::build(&layout, &job0).unwrap();
        assert_eq!(plan.stats().symbolic, 1);
        assert_eq!(plan.dim(), layout.dim());

        // Two contexts solving the same jobs must agree bitwise — and both
        // must match a context that solved them in a different order.
        let jobs: Vec<LadderJob> = (1..=5)
            .map(|k| LadderJob {
                g1: 1.0e-3 * k as f64,
                g2: 2.0e-3 / k as f64,
                extra_entry: false,
            })
            .collect();
        let mut ctx_a = plan.context();
        let mut ctx_b = plan.context();
        let forward: Vec<Vec<f64>> = jobs.iter().map(|j| ctx_a.solve(j).unwrap()).collect();
        let backward: Vec<Vec<f64>> = jobs.iter().rev().map(|j| ctx_b.solve(j).unwrap()).collect();
        for (i, x) in forward.iter().enumerate() {
            let y = &backward[jobs.len() - 1 - i];
            assert_eq!(x, y, "job {i} must not depend on processing order");
        }
        // Every point was a numeric refactorization over the shared plan.
        assert_eq!(ctx_a.stats().symbolic, 0);
        assert_eq!(ctx_a.stats().numeric_refactor, jobs.len());
        assert_eq!(ctx_a.stats().cached_assemblies, jobs.len());
        assert_eq!(ctx_a.stats().pattern_rebuilds, 0);
    }

    #[test]
    fn plan_context_matches_cached_mna() {
        let (_c, layout) = two_node_layout();
        let jobs: Vec<LadderJob> = (1..=4)
            .map(|k| LadderJob {
                g1: 0.5e-3 * k as f64,
                g2: 1.5e-3,
                extra_entry: false,
            })
            .collect();
        let plan = SweepPlan::<f64>::build(&layout, &jobs[0]).unwrap();
        let mut ctx = plan.context();
        let mut cache = CachedMna::<f64>::new();
        for job in &jobs {
            let from_plan = ctx.solve(job).unwrap();
            let from_cache = cache.solve(&layout, job).unwrap();
            for (a, b) in from_plan.iter().zip(&from_cache) {
                assert!((a - b).abs() <= 1e-15 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn off_pattern_point_falls_back_without_poisoning_later_points() {
        let (_c, layout) = two_node_layout();
        // Plan built over a diagonal-only pattern...
        struct DiagOnly;
        impl AssembleMna<f64> for DiagOnly {
            fn stamp<S: MatrixSink<f64>>(&self, st: &mut Stamper<'_, f64, S>) {
                st.add_var_var(0, 0, 1.0);
                st.add_var_var(1, 1, 2.0);
                st.add_rhs_var(0, 1.0);
            }
        }
        let plan = SweepPlan::<f64>::build(&layout, &DiagOnly).unwrap();
        let mut ctx = plan.context();
        // ...hit with an off-diagonal job: the point must still solve right.
        let off = LadderJob {
            g1: 1.0e-3,
            g2: 2.0e-3,
            extra_entry: false,
        };
        let x = ctx.solve(&off).unwrap();
        let mut st = Stamper::new(&layout);
        off.stamp(&mut st);
        let (trip, rhs) = st.finish();
        let reference = loopscope_sparse::solve_once(&trip.to_csr(), &rhs).unwrap();
        for (a, b) in x.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert_eq!(ctx.stats().pattern_rebuilds, 1);
        assert_eq!(ctx.stats().symbolic, 1);
        // An on-plan point afterwards goes back to the shared fast path and
        // matches a context that never saw the off-pattern job.
        let on = DiagOnly;
        let after = ctx.solve(&on).unwrap();
        let fresh = plan.context().solve(&on).unwrap();
        assert_eq!(after, fresh);
        assert_eq!(ctx.stats().numeric_refactor, 1);
    }

    #[test]
    fn merged_stats_are_chunking_invariant() {
        let mut a = SolveStats {
            symbolic: 1,
            numeric_refactor: 3,
            fresh_fallback: 0,
            pattern_rebuilds: 0,
            cached_assemblies: 4,
            residual_retries: 1,
            gmin_bumps: 0,
            iterative_solves: 7,
            gmres_iterations: 21,
            preconditioner_refreshes: 1,
            iterative_fallbacks: 0,
        };
        let b = SolveStats {
            symbolic: 0,
            numeric_refactor: 5,
            fresh_fallback: 1,
            pattern_rebuilds: 2,
            cached_assemblies: 6,
            residual_retries: 2,
            gmin_bumps: 3,
            iterative_solves: 2,
            gmres_iterations: 9,
            preconditioner_refreshes: 1,
            iterative_fallbacks: 1,
        };
        a.merge(&b);
        assert_eq!(a.symbolic, 1);
        assert_eq!(a.numeric_refactor, 8);
        assert_eq!(a.fresh_fallback, 1);
        assert_eq!(a.pattern_rebuilds, 2);
        assert_eq!(a.cached_assemblies, 10);
        assert_eq!(a.residual_retries, 3);
        assert_eq!(a.gmin_bumps, 3);
        assert_eq!(a.iterative_solves, 9);
        assert_eq!(a.gmres_iterations, 30);
        assert_eq!(a.preconditioner_refreshes, 2);
        assert_eq!(a.iterative_fallbacks, 1);
        assert_eq!(a.factorizations(), 10);
    }

    #[test]
    fn verified_solve_on_healthy_system_takes_no_escalation() {
        let (_c, layout) = two_node_layout();
        let job = LadderJob {
            g1: 1.0e-3,
            g2: 2.0e-3,
            extra_entry: false,
        };
        let plan = SweepPlan::<f64>::build(&layout, &job).unwrap();
        let mut ctx = plan.context();
        let plain = ctx.solve(&job).unwrap();
        let (verified, q) = ctx.solve_verified(&job).unwrap();
        assert!(q.converged);
        assert_eq!(q.refinement_steps, 0);
        assert_eq!(verified, plain);
        assert_eq!(ctx.stats().residual_retries, 0);
        assert_eq!(ctx.stats().gmin_bumps, 0);
        assert_eq!(ctx.stats().symbolic, 0);

        let mut cache = CachedMna::<f64>::new();
        let (x, q) = cache.solve_verified(&layout, &job).unwrap();
        assert!(q.converged);
        assert_eq!(x, plain);
        assert_eq!(cache.stats().residual_retries, 0);
        assert_eq!(cache.stats().gmin_bumps, 0);
        assert_eq!(cache.stats().symbolic, 1);
    }

    #[test]
    fn stale_factors_escalate_to_a_fresh_point_factorization() {
        let (_c, layout) = two_node_layout();
        let job = LadderJob {
            g1: 1.0e-3,
            g2: 2.0e-3,
            extra_entry: false,
        };
        let plan = SweepPlan::<f64>::build(&layout, &job).unwrap();
        let mut ctx = plan.context();
        // Factor honestly, then perturb the matrix under the factors: the
        // refined solve sees a residual it cannot repair with stale factors
        // and must climb to rung 2 (fresh factorization of this point).
        let mut rhs = ctx.assemble(&job);
        ctx.factor().unwrap();
        let slot = ctx.matrix_mut().find_slot(0, 0).unwrap();
        ctx.matrix_mut().values_mut()[slot] *= 1.0e6;
        let q = ctx.solve_verified_in_place(&mut rhs).unwrap();
        assert!(q.converged);
        assert_eq!(ctx.stats().residual_retries, 1);
        assert_eq!(ctx.stats().gmin_bumps, 0);
        // The answer is the solution of the *perturbed* system.
        let mut st = Stamper::new(&layout);
        job.stamp(&mut st);
        let (trip, b) = st.finish();
        let mut csr = trip.to_csr();
        let s = csr.find_slot(0, 0).unwrap();
        csr.values_mut()[s] *= 1.0e6;
        let reference = loopscope_sparse::solve_once(&csr, &b).unwrap();
        for (a, r) in rhs.iter().zip(&reference) {
            assert!((a - r).abs() <= 1e-12 * r.abs().max(1.0), "{a} vs {r}");
        }
    }

    #[test]
    fn dead_node_column_is_rescued_by_the_gmin_rung() {
        let (_c, layout) = two_node_layout();
        let job = LadderJob {
            g1: 1.0e-3,
            g2: 2.0e-3,
            extra_entry: false,
        };
        let plan = SweepPlan::<f64>::build(&layout, &job).unwrap();
        let mut ctx = plan.context();
        let mut rhs = ctx.assemble(&job);
        // Kill column 1 (node `b`): the system is exactly singular, so the
        // factor rungs fail and only the per-point gmin bump can rescue it.
        let m = ctx.matrix_mut();
        for (r, c) in [(0usize, 1usize), (1, 1)] {
            let slot = m.find_slot(r, c).unwrap();
            m.values_mut()[slot] = 0.0;
        }
        let q = ctx.solve_verified_in_place(&mut rhs).unwrap();
        assert!(q.converged);
        assert_eq!(ctx.stats().gmin_bumps, 1);
        assert!(rhs.iter().all(|v| v.is_finite()));
        // v(b) floats up to the bump conductance's scale — large but finite
        // and flagged through the `gmin_bumps` counter.
        assert!(rhs[1].abs() > 1.0);
    }

    #[test]
    fn singular_branch_column_exhausts_the_ladder_with_names() {
        // A layout with one branch unknown: gmin bumps only touch node
        // diagonals, so a dead branch column must surface as a name-enriched
        // singular error after the ladder runs dry.
        let mut c = Circuit::new("branch ladder");
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1.0e3);
        let layout = MnaLayout::new(&c);
        struct VsrcJob;
        impl AssembleMna<f64> for VsrcJob {
            fn stamp<S: MatrixSink<f64>>(&self, st: &mut Stamper<'_, f64, S>) {
                st.add_var_var(0, 0, 1.0e-3);
                st.add_var_var(0, 1, 1.0);
                st.add_var_var(1, 0, 1.0);
                st.add_rhs_var(1, 1.0);
            }
        }
        let plan = SweepPlan::<f64>::build(&layout, &VsrcJob).unwrap();
        let mut ctx = plan.context();
        let mut rhs = ctx.assemble(&VsrcJob);
        // Kill the branch column (var 1 = I(V1)).
        let m = ctx.matrix_mut();
        let slot = m.find_slot(0, 1).unwrap();
        m.values_mut()[slot] = 0.0;
        let err = ctx.solve_verified_in_place(&mut rhs).unwrap_err();
        assert_eq!(
            err,
            SpiceError::SingularSystem {
                unknown: "I(V1)".into(),
                column: 1
            }
        );
        // Both bumps were tried (node diagonals exist) before giving up.
        assert_eq!(ctx.stats().gmin_bumps, GMIN_BUMP_LADDER.len());
    }

    #[test]
    fn nan_stamp_aborts_immediately_with_names() {
        let (_c, layout) = two_node_layout();
        let job = LadderJob {
            g1: 1.0e-3,
            g2: 2.0e-3,
            extra_entry: false,
        };
        let plan = SweepPlan::<f64>::build(&layout, &job).unwrap();
        let mut ctx = plan.context();
        let mut rhs = ctx.assemble(&job);
        let m = ctx.matrix_mut();
        let slot = m.find_slot(0, 1).unwrap();
        m.values_mut()[slot] = f64::NAN;
        let err = ctx.solve_verified_in_place(&mut rhs).unwrap_err();
        assert_eq!(
            err,
            SpiceError::NonFiniteStamp {
                row: "V(a)".into(),
                col: "V(b)".into(),
                row_index: 0,
                col_index: 1
            }
        );
        // No rung can repair a NaN: the ladder must not have escalated.
        assert_eq!(ctx.stats().residual_retries, 0);
        assert_eq!(ctx.stats().gmin_bumps, 0);

        // The cached driver takes the identical path.
        let mut cache = CachedMna::<f64>::new();
        let mut b = cache.assemble(&layout, &job);
        let m = cache.matrix_mut();
        let slot = m.find_slot(0, 1).unwrap();
        m.values_mut()[slot] = f64::NAN;
        let cache_err = cache.verify_assembled(&layout, &mut b).unwrap_err();
        assert_eq!(cache_err, err);
    }

    #[test]
    fn cached_mna_gmin_rescue_adopts_and_recovers() {
        let (_c, layout) = two_node_layout();
        let job = LadderJob {
            g1: 1.0e-3,
            g2: 2.0e-3,
            extra_entry: false,
        };
        let mut cache = CachedMna::<f64>::new();
        let mut rhs = cache.assemble(&layout, &job);
        let m = cache.matrix_mut();
        for (r, c) in [(0usize, 1usize), (1, 1)] {
            let slot = m.find_slot(r, c).unwrap();
            m.values_mut()[slot] = 0.0;
        }
        let q = cache.verify_assembled(&layout, &mut rhs).unwrap();
        assert!(q.converged);
        assert_eq!(cache.stats().gmin_bumps, 1);
        // A later healthy solve recovers the normal fast path.
        let (x, q2) = cache.solve_verified(&layout, &job).unwrap();
        assert!(q2.converged);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn solve_matches_from_scratch_build() {
        let (_c, layout) = two_node_layout();
        let job = LadderJob {
            g1: 3.0e-3,
            g2: 1.5e-3,
            extra_entry: true,
        };
        // Naive path.
        let mut st = Stamper::new(&layout);
        job.stamp(&mut st);
        let (trip, rhs) = st.finish();
        let naive = loopscope_sparse::solve_once(&trip.to_csr(), &rhs).unwrap();
        // Cached path, twice (second solve exercises the slot sink).
        let mut cache = CachedMna::<f64>::new();
        cache.solve(&layout, &job).unwrap();
        let cached = cache.solve(&layout, &job).unwrap();
        for (a, b) in naive.iter().zip(&cached) {
            assert!((a - b).abs() < 1e-15, "{a} vs {b}");
        }
    }
}
