//! Simulator error type.

use loopscope_netlist::NetlistError;
use loopscope_sparse::SolveError;
use std::fmt;

/// Errors produced by the circuit simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The circuit failed structural validation before simulation.
    Netlist(NetlistError),
    /// The MNA matrix could not be factored (singular system), typically a
    /// floating node or an inconsistent source loop.
    Linear(SolveError),
    /// The Newton-Raphson operating-point iteration did not converge.
    DcNoConvergence {
        /// Number of iterations attempted.
        iterations: usize,
        /// Largest voltage update at the last iteration.
        max_delta: f64,
    },
    /// A transient Newton solve failed to converge at the given time.
    TransientNoConvergence {
        /// Simulation time at which convergence failed, in seconds.
        time: f64,
    },
    /// A reference (node or element) passed to an analysis does not belong to
    /// the circuit.
    UnknownReference(String),
    /// Analysis options are inconsistent (e.g. a non-positive time step).
    InvalidOptions(String),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::Netlist(e) => write!(f, "netlist error: {e}"),
            SpiceError::Linear(e) => write!(f, "linear solve failed: {e}"),
            SpiceError::DcNoConvergence {
                iterations,
                max_delta,
            } => write!(
                f,
                "DC operating point did not converge after {iterations} iterations (last |ΔV| = {max_delta:.3e})"
            ),
            SpiceError::TransientNoConvergence { time } => {
                write!(f, "transient Newton iteration failed to converge at t = {time:.3e} s")
            }
            SpiceError::UnknownReference(name) => {
                write!(f, "unknown node or element reference `{name}`")
            }
            SpiceError::InvalidOptions(reason) => write!(f, "invalid analysis options: {reason}"),
        }
    }
}

impl std::error::Error for SpiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpiceError::Netlist(e) => Some(e),
            SpiceError::Linear(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SpiceError {
    fn from(e: NetlistError) -> Self {
        SpiceError::Netlist(e)
    }
}

impl From<SolveError> for SpiceError {
    fn from(e: SolveError) -> Self {
        SpiceError::Linear(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = SpiceError::DcNoConvergence {
            iterations: 100,
            max_delta: 0.5,
        };
        assert!(e.to_string().contains("100 iterations"));
        assert!(e.source().is_none());

        let wrapped = SpiceError::Linear(SolveError::Singular(3));
        assert!(wrapped.to_string().contains("singular"));
        assert!(wrapped.source().is_some());

        let n = SpiceError::from(NetlistError::InvalidCircuit("x".into()));
        assert!(matches!(n, SpiceError::Netlist(_)));

        assert!(SpiceError::UnknownReference("foo".into())
            .to_string()
            .contains("foo"));
        assert!(SpiceError::TransientNoConvergence { time: 1e-6 }
            .to_string()
            .contains("transient"));
        assert!(SpiceError::InvalidOptions("dt".into())
            .to_string()
            .contains("dt"));
    }
}
