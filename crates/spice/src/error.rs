//! Simulator error type.

use crate::mna::MnaLayout;
use loopscope_netlist::NetlistError;
use loopscope_sparse::SolveError;
use std::fmt;

/// Why the adaptive transient stepper rejected one attempted step.
///
/// Mirrors the rungs of the per-step accept-or-escalate ladder (see
/// [`crate::tran`]): a step is retried with a smaller width after either
/// failure kind, and only once the ladder is exhausted at `dt_min` does the
/// run surface [`SpiceError::TransientNoConvergence`] carrying the recorded
/// [`StepRejection`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepRejectReason {
    /// The Newton loop did not converge within `max_newton` iterations.
    NewtonNoConvergence,
    /// The local-truncation-error estimate exceeded the `reltol`/`abstol`
    /// tolerance.
    LteExceeded {
        /// Worst per-node `error / tolerance` ratio (`> 1` means rejected).
        ratio: f64,
    },
}

/// One rejected transient step attempt: where it was tried, how wide it was,
/// and which ladder rung rejected it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRejection {
    /// Attempted end time of the step, in seconds.
    pub time: f64,
    /// Attempted step width, in seconds.
    pub dt: f64,
    /// Which ladder rung rejected the attempt.
    pub reason: StepRejectReason,
}

/// Errors produced by the circuit simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The circuit failed structural validation before simulation.
    Netlist(NetlistError),
    /// The MNA matrix could not be factored (singular system), typically a
    /// floating node or an inconsistent source loop.
    Linear(SolveError),
    /// The MNA matrix is singular at a *named* circuit unknown — the
    /// name-enriched form of [`SolveError::Singular`], produced by
    /// [`SpiceError::from_solve`]. Typically a floating node (`V(name)`) or an
    /// inconsistent voltage-source / inductor loop (`I(element)`).
    SingularSystem {
        /// Human-readable unknown: `V(node)` or `I(element)`.
        unknown: String,
        /// Original (un-permuted) MNA matrix column index.
        column: usize,
    },
    /// A NaN or infinite value was stamped into the MNA matrix — the
    /// name-enriched form of [`SolveError::NonFinite`], produced by
    /// [`SpiceError::from_solve`]. Usually a device model evaluated outside
    /// its domain or a corrupted parameter.
    NonFiniteStamp {
        /// Human-readable unknown of the offending row.
        row: String,
        /// Human-readable unknown of the offending column.
        col: String,
        /// Original row index of the non-finite entry.
        row_index: usize,
        /// Original column index of the non-finite entry.
        col_index: usize,
    },
    /// The solve retry ladder ran out of rungs: refinement, a fresh
    /// threshold-pivoted factorization and the per-point gmin bumps all
    /// failed to produce a residual-verified solution.
    ResidualCheckFailed {
        /// Backward error of the best solution the ladder produced
        /// (see [`loopscope_sparse::SolveQuality::backward_error`]).
        backward_error: f64,
        /// Number of per-point gmin bumps that were applied before giving up.
        gmin_bumps: usize,
    },
    /// The Newton-Raphson operating-point iteration did not converge.
    DcNoConvergence {
        /// Number of iterations attempted.
        iterations: usize,
        /// Largest voltage update at the last iteration.
        max_delta: f64,
    },
    /// A transient Newton solve failed to converge at the given time.
    TransientNoConvergence {
        /// Simulation time at which convergence failed, in seconds.
        time: f64,
        /// Timestep index (1-based, matching the output sample index).
        step: usize,
        /// Name of the node with the largest voltage update at the last
        /// Newton iteration — the unknown that refused to settle.
        worst_node: String,
        /// The rejected attempts at this time point, in ladder order (the
        /// adaptive stepper's halve-and-retry history; empty on the
        /// fixed-grid path, which has no retry ladder).
        rejections: Vec<StepRejection>,
    },
    /// A reference (node or element) passed to an analysis does not belong to
    /// the circuit.
    UnknownReference(String),
    /// Analysis options are inconsistent (e.g. a non-positive time step).
    InvalidOptions(String),
}

impl SpiceError {
    /// Enriches a sparse-solver error with circuit names: singular columns
    /// and non-finite coordinates are mapped through the MNA `layout` to
    /// `V(node)` / `I(element)` labels ([`SpiceError::SingularSystem`],
    /// [`SpiceError::NonFiniteStamp`]); every other [`SolveError`] passes
    /// through as [`SpiceError::Linear`].
    pub fn from_solve(e: SolveError, layout: &MnaLayout) -> Self {
        match e {
            SolveError::Singular(column) => SpiceError::SingularSystem {
                unknown: layout.unknown_name(column),
                column,
            },
            SolveError::NonFinite { row, col } => SpiceError::NonFiniteStamp {
                row: layout.unknown_name(row),
                col: layout.unknown_name(col),
                row_index: row,
                col_index: col,
            },
            other => SpiceError::Linear(other),
        }
    }

    /// Whether this error is a hard linear-solver failure (as opposed to a
    /// Newton non-convergence that a continuation strategy such as gmin or
    /// source stepping might still rescue).
    pub fn is_solver_failure(&self) -> bool {
        matches!(
            self,
            SpiceError::Linear(_)
                | SpiceError::SingularSystem { .. }
                | SpiceError::NonFiniteStamp { .. }
                | SpiceError::ResidualCheckFailed { .. }
        )
    }
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::Netlist(e) => write!(f, "netlist error: {e}"),
            SpiceError::Linear(e) => write!(f, "linear solve failed: {e}"),
            SpiceError::SingularSystem { unknown, column } => write!(
                f,
                "MNA matrix is singular at {unknown} (column {column}): \
                 check for floating nodes or voltage-source/inductor loops"
            ),
            SpiceError::NonFiniteStamp {
                row,
                col,
                row_index,
                col_index,
            } => write!(
                f,
                "non-finite value stamped at ({row}, {col}) \
                 [matrix entry ({row_index}, {col_index})]"
            ),
            SpiceError::ResidualCheckFailed {
                backward_error,
                gmin_bumps,
            } => write!(
                f,
                "solve retry ladder exhausted: backward error {backward_error:.3e} \
                 after {gmin_bumps} gmin bump(s)"
            ),
            SpiceError::DcNoConvergence {
                iterations,
                max_delta,
            } => write!(
                f,
                "DC operating point did not converge after {iterations} iterations (last |ΔV| = {max_delta:.3e})"
            ),
            SpiceError::TransientNoConvergence {
                time,
                step,
                worst_node,
                rejections,
            } => {
                write!(
                    f,
                    "transient Newton iteration failed to converge at t = {time:.3e} s \
                     (step {step}, worst node {worst_node})"
                )?;
                if !rejections.is_empty() {
                    let smallest = rejections.iter().map(|r| r.dt).fold(f64::INFINITY, f64::min);
                    write!(
                        f,
                        " after {} rejected attempt(s), smallest dt {smallest:.3e} s",
                        rejections.len()
                    )?;
                }
                Ok(())
            }
            SpiceError::UnknownReference(name) => {
                write!(f, "unknown node or element reference `{name}`")
            }
            SpiceError::InvalidOptions(reason) => write!(f, "invalid analysis options: {reason}"),
        }
    }
}

impl std::error::Error for SpiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpiceError::Netlist(e) => Some(e),
            SpiceError::Linear(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SpiceError {
    fn from(e: NetlistError) -> Self {
        SpiceError::Netlist(e)
    }
}

impl From<SolveError> for SpiceError {
    fn from(e: SolveError) -> Self {
        SpiceError::Linear(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_netlist::{Circuit, SourceSpec};
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = SpiceError::DcNoConvergence {
            iterations: 100,
            max_delta: 0.5,
        };
        assert!(e.to_string().contains("100 iterations"));
        assert!(e.source().is_none());

        let wrapped = SpiceError::Linear(SolveError::Singular(3));
        assert!(wrapped.to_string().contains("singular"));
        assert!(wrapped.source().is_some());

        let n = SpiceError::from(NetlistError::InvalidCircuit("x".into()));
        assert!(matches!(n, SpiceError::Netlist(_)));

        assert!(SpiceError::UnknownReference("foo".into())
            .to_string()
            .contains("foo"));
        let t = SpiceError::TransientNoConvergence {
            time: 1e-6,
            step: 42,
            worst_node: "V(out)".into(),
            rejections: Vec::new(),
        };
        assert!(t.to_string().contains("transient"));
        assert!(t.to_string().contains("step 42"));
        assert!(t.to_string().contains("V(out)"));
        assert!(!t.to_string().contains("rejected"));
        let ladder = SpiceError::TransientNoConvergence {
            time: 1e-6,
            step: 42,
            worst_node: "V(out)".into(),
            rejections: vec![
                StepRejection {
                    time: 1e-6,
                    dt: 4e-9,
                    reason: StepRejectReason::LteExceeded { ratio: 3.5 },
                },
                StepRejection {
                    time: 0.998e-6,
                    dt: 2e-9,
                    reason: StepRejectReason::NewtonNoConvergence,
                },
            ],
        };
        let msg = ladder.to_string();
        assert!(msg.contains("2 rejected attempt(s)"), "{msg}");
        assert!(msg.contains("2.000e-9"), "{msg}");
        assert!(SpiceError::InvalidOptions("dt".into())
            .to_string()
            .contains("dt"));
    }

    #[test]
    fn from_solve_enriches_with_circuit_names() {
        let mut c = Circuit::new("enrich");
        let a = c.node("in");
        let b = c.node("out");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_resistor("R1", a, b, 1e3);
        let layout = MnaLayout::new(&c);

        let singular = SpiceError::from_solve(SolveError::Singular(1), &layout);
        assert_eq!(
            singular,
            SpiceError::SingularSystem {
                unknown: "V(out)".into(),
                column: 1
            }
        );
        assert!(singular.is_solver_failure());

        let nan = SpiceError::from_solve(SolveError::NonFinite { row: 0, col: 2 }, &layout);
        assert_eq!(
            nan,
            SpiceError::NonFiniteStamp {
                row: "V(in)".into(),
                col: "I(V1)".into(),
                row_index: 0,
                col_index: 2
            }
        );

        let passthrough = SpiceError::from_solve(
            SolveError::RhsLength {
                expected: 2,
                got: 3,
            },
            &layout,
        );
        assert!(matches!(passthrough, SpiceError::Linear(_)));

        let soft = SpiceError::DcNoConvergence {
            iterations: 5,
            max_delta: 0.1,
        };
        assert!(!soft.is_solver_failure());
        assert!(SpiceError::ResidualCheckFailed {
            backward_error: 1e-3,
            gmin_bumps: 2
        }
        .is_solver_failure());
    }
}
