//! Small-signal AC analysis.
//!
//! The circuit is linearized around a previously computed DC operating point
//! and the complex MNA system `Y(jω)·x = b` is solved at every frequency of a
//! sweep. Two kinds of excitation are supported:
//!
//! * the circuit's own AC sources ([`AcAnalysis::sweep`]), which is the
//!   classical `.ac` analysis used for Bode plots, and
//! * a **unit AC current injected at a node** with every other AC stimulus
//!   turned off ([`AcAnalysis::driving_point_response`] /
//!   [`AcAnalysis::driving_point_all_nodes`]) — the probe the stability
//!   methodology of Milev & Burt is built on. The response at the injected
//!   node is the driving-point impedance `Z_nn(jω)`, whose magnitude carries
//!   the complex-pole signature the stability plot extracts.
//!
//! For the all-nodes mode the factorization of `Y(jω)` is reused for every
//! injection node at a given frequency — and the injections themselves are
//! batched into panels of K right-hand sides solved in one blocked L/U
//! traversal each ([`loopscope_sparse::SparseLu::solve_block_into`];
//! `LOOPSCOPE_PANEL` knob, bitwise identical at any width) — which is what
//! makes whole-circuit stability scans cheap compared to running one full
//! simulation per node.
//!
//! Across frequency points the heavy lifting is shared through a
//! [`SweepPlan`]: the sparsity pattern,
//! value-slot map and fill-reducing LU symbolic analysis are built **once
//! per analysis** and shared — read-only — by every solve. Frequency points
//! are embarrassingly parallel, so all three sweep entry points
//! ([`AcAnalysis::sweep`], [`AcAnalysis::driving_point_response`],
//! [`AcAnalysis::driving_point_all_nodes`]) chunk their grid across worker
//! threads via [`crate::par::sweep_chunks`] (`LOOPSCOPE_THREADS` knob,
//! default = available parallelism). Each worker mints its own
//! [`SolveContext`] from the shared plan:
//! value buffers, numeric L/U, scratch — restamped in place, refactored
//! numerically, solved through
//! [`loopscope_sparse::SparseLu::solve_into`] with zero heap allocations in
//! the per-node inner loop. Results are assembled in frequency order and
//! are **bitwise identical at any worker count**; a whole sweep still
//! performs exactly one symbolic analysis (see
//! [`AcAnalysis::solve_stats`]).

use crate::assembly::{AssembleMna, SolveContext, SolveStats, SweepPlan};
use crate::dc::OperatingPoint;
use crate::devices;
use crate::error::SpiceError;
use crate::mna::{MatrixSink, MnaLayout, Stamper};
use crate::par;
use crate::solver::anchor_index;
use crate::GMIN;
use loopscope_math::{interp, Complex64, FrequencyGrid, TWO_PI};
use loopscope_netlist::{Circuit, Element, NodeId};
use loopscope_sparse::{CsrMatrix, KernelBackend, SolverBackend};
use std::sync::{Arc, Mutex};

/// Results of an AC sweep: complex node voltages over frequency.
///
/// ```
/// use loopscope_math::FrequencyGrid;
/// use loopscope_netlist::{Circuit, SourceSpec};
/// use loopscope_spice::{ac::AcAnalysis, dc::solve_dc};
///
/// // RC low-pass driven by a 1 V AC source.
/// let mut ckt = Circuit::new("rc");
/// let vin = ckt.node("in");
/// let vout = ckt.node("out");
/// ckt.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::dc_ac(0.0, 1.0, 0.0));
/// ckt.add_resistor("R1", vin, vout, 1.0e3);
/// ckt.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-6);
/// let op = solve_dc(&ckt)?;
/// let ac = AcAnalysis::new(&ckt, &op)?;
/// let sweep = ac.sweep(&FrequencyGrid::log_decade(1.0, 1.0e4, 10))?;
/// assert_eq!(sweep.len(), sweep.freqs().len());
/// // −3 dB at the RC corner, 1/(2πRC) ≈ 159.2 Hz.
/// let corner = sweep.magnitude_at(vout, 159.155);
/// assert!((corner - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
/// # Ok::<(), loopscope_spice::SpiceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AcSweep {
    freqs: Vec<f64>,
    /// `data[freq_index][node_index]` — node voltages including ground at 0.
    data: Vec<Vec<Complex64>>,
}

impl AcSweep {
    /// The swept frequencies in hertz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Returns `true` when the sweep holds no points.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Complex response of a node across the sweep.
    pub fn response(&self, node: NodeId) -> Vec<Complex64> {
        self.data.iter().map(|row| row[node.index()]).collect()
    }

    /// Magnitude of a node response across the sweep.
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        self.data
            .iter()
            .map(|row| row[node.index()].abs())
            .collect()
    }

    /// Magnitude in decibels of a node response across the sweep.
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        self.data
            .iter()
            .map(|row| row[node.index()].abs_db())
            .collect()
    }

    /// Phase in degrees (wrapped to ±180°) of a node response.
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        self.data
            .iter()
            .map(|row| row[node.index()].arg_deg())
            .collect()
    }

    /// Magnitude of a node response, linearly interpolated at `freq_hz`.
    ///
    /// Out-of-range queries **clamp to the endpoint values** — a frequency
    /// below the first swept point returns the first sample's magnitude and
    /// one above the last returns the last sample's, never an extrapolation
    /// (this is [`interp::lerp_at_by`]'s documented contract, asserted by
    /// this type's below-first/above-last unit tests). Interpolates directly
    /// over the stored sweep data without materializing the full magnitude
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics on an empty sweep.
    pub fn magnitude_at(&self, node: NodeId, freq_hz: f64) -> f64 {
        let idx = node.index();
        interp::lerp_at_by(&self.freqs, freq_hz, |i| self.data[i][idx].abs())
    }
}

/// Structural diagnostics of the shared solver plan an [`AcAnalysis`] runs
/// on, reported by [`AcAnalysis::solver_structure`]: how the block-
/// triangular analysis partitioned the admittance matrix, how much fill the
/// per-block factorization carries, which kernel backend the numeric inner
/// loops run, and how well-conditioned the representative system is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverStructure {
    /// MNA system dimension (node voltages + branch currents).
    pub dim: usize,
    /// Diagonal blocks of the block-triangular (BTF) partition: 1 when the
    /// admittance pattern is irreducible (a single feedback loop couples
    /// everything), more for block-structured circuits such as cascades.
    pub block_count: usize,
    /// Stored factor entries — L and U fill plus raw off-diagonal block
    /// entries.
    pub fill_nnz: usize,
    /// The kernel backend (scalar reference or explicit SIMD) every numeric
    /// refactorization and solve over the plan runs — recorded once at plan
    /// build time (see [`loopscope_sparse::kernels::selected_backend`] and
    /// the `LOOPSCOPE_KERNEL` knob); results are bitwise identical either
    /// way.
    pub kernel: KernelBackend,
    /// Hager/Higham 1-norm condition estimate `κ₁(Y)` of the admittance
    /// system at the representative frequency the structure was taken at
    /// (see [`loopscope_sparse::SparseLu::condition_estimate`]). A lower
    /// bound on the true condition number — large values warn that sweep
    /// results near that frequency carry amplified rounding error.
    pub condition_estimate: f64,
    /// The linear-solver backend every sweep over this plan routes through —
    /// resolved at plan build time from the `LOOPSCOPE_SOLVER` mode and the
    /// dim/fill structure above (see [`crate::solver::resolve_backend`]).
    pub solver: SolverBackend,
}

/// Small-signal AC analysis of a circuit linearized at an operating point.
#[derive(Debug)]
pub struct AcAnalysis<'c> {
    circuit: &'c Circuit,
    layout: MnaLayout,
    /// The shared sweep plan, built lazily at the first solve: the Y(jω)
    /// sparsity pattern, slot map and LU symbolic analysis are identical at
    /// every frequency (and for both sweep and driving-point excitations,
    /// which differ only in the right-hand side), so one plan serves every
    /// solve this analysis ever performs — shared read-only across the
    /// worker threads of a chunked sweep. The `Mutex` only guards lazy
    /// construction; workers hold `Arc` clones.
    plan: Mutex<Option<Arc<SweepPlan<Complex64>>>>,
    /// In-process solver-backend pin (see
    /// [`set_solver_backend`](AcAnalysis::set_solver_backend)); `None`
    /// resolves from the `LOOPSCOPE_SOLVER` environment at plan build.
    backend_override: Mutex<Option<SolverBackend>>,
    /// Sweep-level counter totals: the plan build plus every worker
    /// context's counters, merged after each sweep.
    stats: Mutex<SolveStats>,
    /// Small-signal linearizations of the nonlinear devices, precomputed at
    /// construction in element order: they depend only on the element and
    /// the operating point, never on frequency, so one evaluation serves
    /// every stamp this analysis ever performs. The values are the exact
    /// ones `devices::small_signal_*` would produce inside the stamp loop —
    /// computed once instead of per frequency point — so stamped systems
    /// are bitwise identical to recomputing on every call.
    small_signal: Vec<devices::SmallSignal>,
}

/// Assembly job for the complex admittance system at one frequency.
///
/// Crate-visible so the batched variant driver ([`crate::batch`]) can hand
/// the exact same assembly job to its escalation [`SolveContext`], keeping
/// the escalated path bitwise identical to the serial sweep path.
pub(crate) struct AcSystem<'a, 'c> {
    pub(crate) analysis: &'a AcAnalysis<'c>,
    pub(crate) freq_hz: f64,
    pub(crate) use_circuit_sources: bool,
    /// Element value overrides `(position, element)` sorted by position —
    /// the batched Monte Carlo driver stamps one shared analysis with
    /// per-variant values instead of materializing a circuit per variant.
    /// Empty on the serial path.
    pub(crate) overrides: &'a [(usize, Element)],
}

impl AssembleMna<Complex64> for AcSystem<'_, '_> {
    fn stamp<S: MatrixSink<Complex64>>(&self, st: &mut Stamper<'_, Complex64, S>) {
        self.analysis.stamp_system_overridden(
            st,
            self.freq_hz,
            self.use_circuit_sources,
            self.overrides,
        );
    }
}

impl<'c> AcAnalysis<'c> {
    /// Prepares an AC analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Netlist`] if the circuit fails validation or
    /// [`SpiceError::InvalidOptions`] if the operating point does not match
    /// the circuit's node count.
    pub fn new(circuit: &'c Circuit, op: &OperatingPoint) -> Result<Self, SpiceError> {
        circuit.validate().map_err(SpiceError::Netlist)?;
        if op.node_voltages().len() != circuit.node_count() {
            return Err(SpiceError::InvalidOptions(format!(
                "operating point has {} nodes but the circuit has {}",
                op.node_voltages().len(),
                circuit.node_count()
            )));
        }
        let op_voltages = op.node_voltages();
        let small_signal = circuit
            .elements()
            .iter()
            .filter_map(|el| match el {
                Element::Diode(d) => Some(devices::small_signal_diode(d, op_voltages)),
                Element::Bjt(q) => Some(devices::small_signal_bjt(q, op_voltages)),
                Element::Mosfet(m) => Some(devices::small_signal_mosfet(m, op_voltages)),
                _ => None,
            })
            .collect();
        Ok(Self {
            circuit,
            layout: MnaLayout::new(circuit),
            plan: Mutex::new(None),
            backend_override: Mutex::new(None),
            stats: Mutex::new(SolveStats::default()),
            small_signal,
        })
    }

    /// Pins the solver backend for every sweep of this analysis — the
    /// in-process alternative to the `LOOPSCOPE_SOLVER` environment knob,
    /// used by test matrices that must never mutate global state. Must be
    /// called **before the first solve**: once the shared sweep plan is
    /// built its backend is fixed, and later pins have no effect.
    pub fn set_solver_backend(&self, backend: SolverBackend) {
        *self.backend_override.lock().expect("override lock") = Some(backend);
    }

    /// The MNA layout used by this analysis.
    pub fn layout(&self) -> &MnaLayout {
        &self.layout
    }

    /// Counters describing how this analysis served its linear solves so
    /// far: how many symbolic analyses, numeric refactorizations and
    /// in-place assemblies ran, summed over the plan build and every worker
    /// context (sums are chunking-independent, so the totals are identical
    /// at any worker count). A fresh analysis performs exactly one symbolic
    /// analysis for an entire sweep — or any number of sweeps.
    pub fn solve_stats(&self) -> SolveStats {
        *self.stats.lock().expect("stats lock")
    }

    /// Structural diagnostics of the shared solver plan: the BTF block
    /// partition and factor fill of the admittance system, plus a condition
    /// estimate of the system at `representative_freq_hz`. Builds the plan
    /// from that system if no solve has run yet (the structure is
    /// frequency-independent, so any in-band frequency serves); afterwards
    /// the same shared plan is reported. The condition estimate always
    /// factors the system at `representative_freq_hz` — a diagnostic
    /// factorization in a throwaway context that is **not** folded into
    /// [`solve_stats`](AcAnalysis::solve_stats), so sweep counter
    /// invariants are unaffected.
    ///
    /// # Errors
    ///
    /// Returns the name-enriched solver error (e.g.
    /// [`SpiceError::SingularSystem`]) when the representative system cannot
    /// be factored.
    pub fn solver_structure(
        &self,
        representative_freq_hz: f64,
    ) -> Result<SolverStructure, SpiceError> {
        let plan = self.plan_for(representative_freq_hz)?;
        let symbolic = plan.symbolic();
        let mut probe = plan.context();
        let job = AcSystem {
            analysis: self,
            freq_hz: representative_freq_hz,
            use_circuit_sources: false,
            overrides: &[],
        };
        let _ = probe.assemble(&job);
        probe
            .factor()
            .map_err(|e| SpiceError::from_solve(e, &self.layout))?;
        let condition_estimate = probe
            .condition_estimate()
            .map_err(|e| SpiceError::from_solve(e, &self.layout))?;
        Ok(SolverStructure {
            dim: symbolic.dim(),
            block_count: symbolic.block_count(),
            fill_nnz: symbolic.fill_nnz(),
            kernel: symbolic.kernel_backend(),
            condition_estimate,
            solver: plan.backend(),
        })
    }

    /// The shared sweep plan, built at the first solve from the system at
    /// `first_freq` (representative values for the threshold-pivoted
    /// ordering) and reused — read-only — for every later solve.
    pub(crate) fn plan_for(
        &self,
        first_freq: f64,
    ) -> Result<Arc<SweepPlan<Complex64>>, SpiceError> {
        let mut guard = self.plan.lock().expect("plan lock");
        if let Some(plan) = guard.as_ref() {
            return Ok(Arc::clone(plan));
        }
        let job = AcSystem {
            analysis: self,
            freq_hz: first_freq,
            use_circuit_sources: false,
            overrides: &[],
        };
        let pinned = *self.backend_override.lock().expect("override lock");
        let plan = Arc::new(
            match pinned {
                Some(backend) => SweepPlan::build_with_backend(&self.layout, &job, backend),
                None => SweepPlan::build(&self.layout, &job),
            }
            .map_err(SpiceError::Linear)?,
        );
        self.stats.lock().expect("stats lock").merge(&plan.stats());
        *guard = Some(Arc::clone(&plan));
        Ok(plan)
    }

    /// Folds the counters of finished worker contexts into the totals.
    fn absorb_worker_stats(&self, worker_stats: impl IntoIterator<Item = SolveStats>) {
        let mut stats = self.stats.lock().expect("stats lock");
        for s in worker_stats {
            stats.merge(&s);
        }
    }

    /// Assembles and returns the complex admittance matrix at `freq_hz`
    /// (diagnostic/benchmark entry point; the analyses themselves go through
    /// the in-place cached path).
    pub fn admittance_matrix(&self, freq_hz: f64) -> CsrMatrix<Complex64> {
        let mut st = Stamper::<Complex64>::new(&self.layout);
        self.stamp_system(&mut st, freq_hz, false);
        let (triplets, _) = st.finish();
        triplets.to_csr()
    }

    /// Stamps the complex admittance system at `freq_hz` along with the RHS
    /// produced by the circuit's own AC sources.
    pub(crate) fn stamp_system<S: MatrixSink<Complex64>>(
        &self,
        st: &mut Stamper<'_, Complex64, S>,
        freq_hz: f64,
        use_circuit_sources: bool,
    ) {
        self.stamp_system_overridden(st, freq_hz, use_circuit_sources, &[]);
    }

    /// [`stamp_system`](AcAnalysis::stamp_system) with per-variant element
    /// value overrides, `(position, element)` sorted ascending by position:
    /// the override element is stamped in place of the circuit's own. The
    /// batched Monte Carlo driver uses this to stamp thousands of variants
    /// through one analysis — an override carrying the same values as a
    /// materialized variant circuit produces a bitwise-identical system,
    /// since the stamp order and arithmetic are untouched.
    pub(crate) fn stamp_system_overridden<S: MatrixSink<Complex64>>(
        &self,
        st: &mut Stamper<'_, Complex64, S>,
        freq_hz: f64,
        use_circuit_sources: bool,
        overrides: &[(usize, Element)],
    ) {
        let w = TWO_PI * freq_hz;
        let jw = Complex64::new(0.0, w);

        for node in self.circuit.signal_nodes_iter() {
            st.add_node_node(node, node, Complex64::from_real(GMIN));
        }

        // Nonlinear devices consume their precomputed linearizations in the
        // same element order they were cached in. (Overrides never replace a
        // nonlinear device — they carry scalable value kinds only — so the
        // cache cursor stays aligned.)
        let mut small_signal = self.small_signal.iter();
        let mut pending = overrides.iter().peekable();
        for (idx, base_el) in self.circuit.elements().iter().enumerate() {
            let el = match pending.peek() {
                Some(&&(pos, ref over)) if pos == idx => {
                    pending.next();
                    over
                }
                _ => base_el,
            };
            match el {
                Element::Resistor(r) => {
                    st.stamp_admittance(r.a, r.b, Complex64::from_real(1.0 / r.ohms))
                }
                Element::Capacitor(c) => st.stamp_admittance(c.a, c.b, jw * c.farads),
                Element::Inductor(l) => {
                    let br = self.layout.branch_var(&l.name).expect("branch");
                    st.add_var_node(br, l.a, Complex64::ONE);
                    st.add_var_node(br, l.b, -Complex64::ONE);
                    st.add_node_var(l.a, br, Complex64::ONE);
                    st.add_node_var(l.b, br, -Complex64::ONE);
                    st.add_var_var(br, br, -(jw * l.henries));
                }
                Element::Vsource(v) => {
                    let br = self.layout.branch_var(&v.name).expect("branch");
                    st.add_var_node(br, v.plus, Complex64::ONE);
                    st.add_var_node(br, v.minus, -Complex64::ONE);
                    st.add_node_var(v.plus, br, Complex64::ONE);
                    st.add_node_var(v.minus, br, -Complex64::ONE);
                    if use_circuit_sources && v.spec.ac_mag != 0.0 {
                        let phasor =
                            Complex64::from_polar(v.spec.ac_mag, v.spec.ac_phase_deg.to_radians());
                        st.add_rhs_var(br, phasor);
                    }
                }
                Element::Isource(i) => {
                    if use_circuit_sources && i.spec.ac_mag != 0.0 {
                        let phasor =
                            Complex64::from_polar(i.spec.ac_mag, i.spec.ac_phase_deg.to_radians());
                        st.stamp_current_injection(i.minus, i.plus, phasor);
                    }
                }
                Element::Vcvs(e) => {
                    let br = self.layout.branch_var(&e.name).expect("branch");
                    st.add_var_node(br, e.out_plus, Complex64::ONE);
                    st.add_var_node(br, e.out_minus, -Complex64::ONE);
                    st.add_var_node(br, e.ctrl_plus, Complex64::from_real(-e.gain));
                    st.add_var_node(br, e.ctrl_minus, Complex64::from_real(e.gain));
                    st.add_node_var(e.out_plus, br, Complex64::ONE);
                    st.add_node_var(e.out_minus, br, -Complex64::ONE);
                }
                Element::Vccs(g) => st.stamp_vccs(
                    g.out_plus,
                    g.out_minus,
                    g.ctrl_plus,
                    g.ctrl_minus,
                    Complex64::from_real(g.gm),
                ),
                Element::Cccs(f) => {
                    let ctrl = self
                        .layout
                        .branch_var(&f.ctrl_vsource)
                        .expect("controlling source validated");
                    st.add_node_var(f.out_plus, ctrl, Complex64::from_real(f.gain));
                    st.add_node_var(f.out_minus, ctrl, Complex64::from_real(-f.gain));
                }
                Element::Ccvs(h) => {
                    let br = self.layout.branch_var(&h.name).expect("branch");
                    let ctrl = self
                        .layout
                        .branch_var(&h.ctrl_vsource)
                        .expect("controlling source validated");
                    st.add_var_node(br, h.out_plus, Complex64::ONE);
                    st.add_var_node(br, h.out_minus, -Complex64::ONE);
                    st.add_var_var(br, ctrl, Complex64::from_real(-h.rm));
                    st.add_node_var(h.out_plus, br, Complex64::ONE);
                    st.add_node_var(h.out_minus, br, -Complex64::ONE);
                }
                Element::Diode(_) | Element::Bjt(_) | Element::Mosfet(_) => {
                    let ss = small_signal.next().expect("cached linearization");
                    Self::apply_small_signal(st, ss, jw);
                }
            }
        }
    }

    fn apply_small_signal<S: MatrixSink<Complex64>>(
        st: &mut Stamper<'_, Complex64, S>,
        ss: &devices::SmallSignal,
        jw: Complex64,
    ) {
        for &(r, c, g) in &ss.conductances {
            st.add_node_node(r, c, Complex64::from_real(g));
        }
        for &(a, b, cap) in &ss.capacitances {
            st.stamp_admittance(a, b, jw * cap);
        }
    }

    fn solve_into_node_row(&self, solution: &[Complex64]) -> Vec<Complex64> {
        let mut row = vec![Complex64::ZERO; self.circuit.node_count()];
        for node in self.circuit.signal_nodes_iter() {
            row[node.index()] = self.layout.node_value(solution, node);
        }
        row
    }

    /// Runs a classical AC sweep using the circuit's own AC sources.
    ///
    /// Frequency points are chunked across worker threads (see
    /// [`crate::par`]); results come back in frequency order and are
    /// bitwise identical at any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Linear`] when the linearized system is singular
    /// at some frequency (the lowest failing frequency wins).
    pub fn sweep(&self, grid: &FrequencyGrid) -> Result<AcSweep, SpiceError> {
        let freqs = grid.freqs();
        if freqs.is_empty() {
            return Ok(AcSweep {
                freqs: Vec::new(),
                data: Vec::new(),
            });
        }
        let plan = self.plan_for(freqs[0])?;
        let (result, workers) = par::sweep_chunks(
            freqs,
            || plan.context(),
            |ctx: &mut SolveContext<'_, Complex64>,
             idx,
             &f|
             -> Result<Vec<Complex64>, SpiceError> {
                // Iterative backend: precondition this point with the LU of
                // its group's anchor frequency — the same anchor whatever
                // worker runs the point, so results stay chunking-invariant.
                let anchor = anchor_index(idx);
                let anchor_job = AcSystem {
                    analysis: self,
                    freq_hz: freqs[anchor],
                    use_circuit_sources: true,
                    overrides: &[],
                };
                ctx.ensure_preconditioner(anchor, idx == anchor, &anchor_job);
                let job = AcSystem {
                    analysis: self,
                    freq_hz: f,
                    use_circuit_sources: true,
                    overrides: &[],
                };
                // The assembled RHS becomes the solution in place; the
                // backend seam runs GMRES off the stale factor or the
                // per-point verified retry ladder, and enriches failures
                // with circuit names either way.
                let mut solution = ctx.assemble(&job);
                ctx.solve_backend_in_place(&mut solution)?;
                Ok(self.solve_into_node_row(&solution))
            },
        );
        // Counters survive failures: merge before propagating any error.
        self.absorb_worker_stats(workers.iter().map(|c| c.stats()));
        Ok(AcSweep {
            freqs: freqs.to_vec(),
            data: result?,
        })
    }

    /// Injects a unit AC current into `node` (all other AC stimuli disabled)
    /// and returns the complex response **at the same node** across the sweep
    /// — the driving-point impedance used by the stability plot.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownReference`] when `node` is the ground node
    /// and [`SpiceError::Linear`] when the system is singular.
    pub fn driving_point_response(
        &self,
        node: NodeId,
        grid: &FrequencyGrid,
    ) -> Result<Vec<Complex64>, SpiceError> {
        let Some(var) = self.layout.node_var(node) else {
            return Err(SpiceError::UnknownReference(
                "cannot inject at the ground node".to_string(),
            ));
        };
        if node.index() >= self.circuit.node_count() {
            return Err(SpiceError::UnknownReference(format!(
                "node index {} outside circuit",
                node.index()
            )));
        }
        let freqs = grid.freqs();
        if freqs.is_empty() {
            return Ok(Vec::new());
        }
        let plan = self.plan_for(freqs[0])?;
        let dim = self.layout.dim();
        let (out, workers) = par::sweep_chunks(
            freqs,
            // Per-worker state: a solve context plus the injection vector.
            || (plan.context(), vec![Complex64::ZERO; dim]),
            |(ctx, x): &mut (SolveContext<'_, Complex64>, Vec<Complex64>),
             idx,
             &f|
             -> Result<Complex64, SpiceError> {
                let anchor = anchor_index(idx);
                let anchor_job = AcSystem {
                    analysis: self,
                    freq_hz: freqs[anchor],
                    use_circuit_sources: false,
                    overrides: &[],
                };
                ctx.ensure_preconditioner(anchor, idx == anchor, &anchor_job);
                let job = AcSystem {
                    analysis: self,
                    freq_hz: f,
                    use_circuit_sources: false,
                    overrides: &[],
                };
                let _ = ctx.assemble(&job);
                // Unit current injection at `node`, solved in place through
                // the backend seam (stale-preconditioned GMRES or the
                // verified retry ladder, which factors first).
                x.fill(Complex64::ZERO);
                x[var] = Complex64::ONE;
                ctx.solve_backend_in_place(x)?;
                Ok(x[var])
            },
        );
        self.absorb_worker_stats(workers.iter().map(|(c, _)| c.stats()));
        out
    }

    /// Driving-point responses for **every** non-ground node: the workhorse of
    /// the tool's "All Nodes" mode. At each frequency the admittance matrix is
    /// factored once and re-used for all injection nodes, the per-node unit
    /// injections are batched into **panels of K right-hand sides** solved in
    /// one L/U traversal each (K from [`par::configured_panel_width`], knob
    /// `LOOPSCOPE_PANEL`, default [`par::DEFAULT_PANEL_WIDTH`];
    /// `LOOPSCOPE_PANEL=1` forces the per-RHS path), and frequencies are
    /// chunked across worker threads — the machine-saturating scan the
    /// plan/context split exists for. Results are assembled in frequency
    /// order and are bitwise identical at any worker count **and any panel
    /// width**: the blocked solve's per-column arithmetic is identical to an
    /// independent solve per node.
    ///
    /// Returns one vector per signal node, in [`Circuit::signal_nodes`] order.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Linear`] when the system is singular.
    pub fn driving_point_all_nodes(
        &self,
        grid: &FrequencyGrid,
    ) -> Result<Vec<Vec<Complex64>>, SpiceError> {
        let nodes = self.circuit.signal_nodes();
        let freqs = grid.freqs();
        if freqs.is_empty() {
            return Ok(vec![Vec::new(); nodes.len()]);
        }
        let plan = self.plan_for(freqs[0])?;
        let dim = self.layout.dim();
        let vars: Vec<usize> = nodes
            .iter()
            .map(|&n| self.layout.node_var(n).expect("signal node"))
            .collect();
        let panel_width = par::configured_panel_width().min(vars.len().max(1));
        // One row of node responses per frequency. The worker owns a panel
        // buffer of `panel_width` injection columns next to its context's
        // pre-sized blocked-solve scratch, so the whole inner loop — fill,
        // blocked solve, gather — performs zero heap allocations.
        let (rows, workers) = par::sweep_chunks(
            freqs,
            || {
                (
                    plan.context_with_panel(panel_width),
                    vec![Complex64::ZERO; dim * panel_width],
                )
            },
            |(ctx, panel): &mut (SolveContext<'_, Complex64>, Vec<Complex64>),
             idx,
             &f|
             -> Result<Vec<Complex64>, SpiceError> {
                let anchor = anchor_index(idx);
                let anchor_job = AcSystem {
                    analysis: self,
                    freq_hz: freqs[anchor],
                    use_circuit_sources: false,
                    overrides: &[],
                };
                ctx.ensure_preconditioner(anchor, idx == anchor, &anchor_job);
                let job = AcSystem {
                    analysis: self,
                    freq_hz: f,
                    use_circuit_sources: false,
                    overrides: &[],
                };
                let _ = ctx.assemble(&job);
                let mut row = Vec::with_capacity(vars.len());
                if ctx.backend().is_iterative() {
                    // GMRES has no blocked multi-RHS form: one iterative
                    // solve per injection, in fixed node order — trivially
                    // identical at any `LOOPSCOPE_PANEL` width.
                    for &var in &vars {
                        let x = &mut panel[..dim];
                        x.fill(Complex64::ZERO);
                        x[var] = Complex64::ONE;
                        ctx.solve_backend_in_place(x)?;
                        row.push(x[var]);
                    }
                    return Ok(row);
                }
                ctx.factor()
                    .map_err(|e| SpiceError::from_solve(e, &self.layout))?;
                if panel_width == 1 {
                    // Per-RHS reference path (`LOOPSCOPE_PANEL=1`): one
                    // solve per node, the pre-batching inner loop.
                    for &var in &vars {
                        let x = &mut panel[..dim];
                        x.fill(Complex64::ZERO);
                        x[var] = Complex64::ONE;
                        ctx.solve_in_place(x)
                            .map_err(|e| SpiceError::from_solve(e, &self.layout))?;
                        row.push(x[var]);
                    }
                } else {
                    for chunk in vars.chunks(panel_width) {
                        let cols = chunk.len();
                        let active = &mut panel[..dim * cols];
                        active.fill(Complex64::ZERO);
                        for (j, &var) in chunk.iter().enumerate() {
                            active[j * dim + var] = Complex64::ONE;
                        }
                        ctx.solve_panel_in_place(active, cols)
                            .map_err(|e| SpiceError::from_solve(e, &self.layout))?;
                        for (j, &var) in chunk.iter().enumerate() {
                            row.push(active[j * dim + var]);
                        }
                    }
                }
                Ok(row)
            },
        );
        self.absorb_worker_stats(workers.iter().map(|(c, _)| c.stats()));
        // Transpose frequency-major worker rows into the node-major layout
        // the stability report consumes.
        let mut out = vec![Vec::with_capacity(freqs.len()); nodes.len()];
        for row in rows? {
            for (k, v) in row.into_iter().enumerate() {
                out[k].push(v);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::solve_dc;
    use loopscope_math::interp;
    use loopscope_netlist::SourceSpec;

    fn rc_lowpass() -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new("rc");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::dc_ac(0.0, 1.0, 0.0));
        c.add_resistor("R1", vin, vout, 1.0e3);
        c.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-6);
        (c, vin, vout)
    }

    #[test]
    fn rc_corner_frequency() {
        let (c, vin, vout) = rc_lowpass();
        let op = solve_dc(&c).unwrap();
        let ac = AcAnalysis::new(&c, &op).unwrap();
        let grid = FrequencyGrid::log_decade(1.0, 1.0e5, 20);
        let sweep = ac.sweep(&grid).unwrap();
        // Input node follows the source exactly.
        for m in sweep.magnitude(vin) {
            assert!((m - 1.0).abs() < 1e-9);
        }
        // Corner at 1/(2πRC) = 159.15 Hz → −3 dB.
        let corner = sweep.magnitude_at(vout, 159.155);
        assert!((corner - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
        // Two decades above the corner the slope is −20 dB/dec.
        let hi = sweep.magnitude_at(vout, 15_915.5);
        assert!((hi - 0.01).abs() < 0.001);
        // Phase approaches −90°.
        let phases = sweep.phase_deg(vout);
        assert!(phases.last().unwrap() < &-85.0);
    }

    #[test]
    fn rlc_series_resonance() {
        let mut c = Circuit::new("rlc");
        let vin = c.node("in");
        let mid = c.node("mid");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::dc_ac(0.0, 1.0, 0.0));
        c.add_resistor("R1", vin, mid, 10.0);
        c.add_inductor("L1", mid, vout, 1.0e-3);
        c.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-9);
        let op = solve_dc(&c).unwrap();
        let ac = AcAnalysis::new(&c, &op).unwrap();
        // f0 = 1/(2π√(LC)) ≈ 159.2 kHz; Q = √(L/C)/R = 100.
        let grid = FrequencyGrid::log_decade(1.0e3, 1.0e7, 200);
        let sweep = ac.sweep(&grid).unwrap();
        let mags = sweep.magnitude(vout);
        let peak = mags.iter().cloned().fold(0.0, f64::max);
        let peak_idx = mags.iter().position(|&m| m == peak).unwrap();
        let peak_freq = sweep.freqs()[peak_idx];
        assert!(
            (peak_freq - 159.2e3).abs() / 159.2e3 < 0.05,
            "peak at {peak_freq}"
        );
        // Output resonates to roughly Q × input.
        assert!(peak > 50.0 && peak < 150.0, "peak magnitude {peak}");
    }

    #[test]
    fn driving_point_of_parallel_rc() {
        // A 1 kΩ ∥ 1 µF one-port: Z(0) = 1 kΩ, corner at 159 Hz.
        let mut c = Circuit::new("zrc");
        let n = c.node("n");
        c.add_resistor("R1", n, Circuit::GROUND, 1.0e3);
        c.add_capacitor("C1", n, Circuit::GROUND, 1.0e-6);
        let op = solve_dc(&c).unwrap();
        let ac = AcAnalysis::new(&c, &op).unwrap();
        let grid = FrequencyGrid::log_decade(1.0, 1.0e5, 20);
        let z = ac.driving_point_response(n, &grid).unwrap();
        assert!((z[0].abs() - 1.0e3).abs() / 1.0e3 < 1e-3);
        let mags: Vec<f64> = z.iter().map(|v| v.abs()).collect();
        let corner = interp::lerp_at(grid.freqs(), &mags, 159.155);
        assert!((corner - 1.0e3 * std::f64::consts::FRAC_1_SQRT_2).abs() / 707.0 < 0.01);
    }

    #[test]
    fn driving_point_rejects_ground() {
        let (c, _, _) = rc_lowpass();
        let op = solve_dc(&c).unwrap();
        let ac = AcAnalysis::new(&c, &op).unwrap();
        let grid = FrequencyGrid::log_decade(1.0, 10.0, 2);
        assert!(matches!(
            ac.driving_point_response(Circuit::GROUND, &grid),
            Err(SpiceError::UnknownReference(_))
        ));
    }

    #[test]
    fn all_nodes_matches_single_node() {
        let (c, vin, vout) = rc_lowpass();
        let op = solve_dc(&c).unwrap();
        let ac = AcAnalysis::new(&c, &op).unwrap();
        let grid = FrequencyGrid::log_decade(10.0, 1.0e4, 10);
        let all = ac.driving_point_all_nodes(&grid).unwrap();
        let single_out = ac.driving_point_response(vout, &grid).unwrap();
        let single_in = ac.driving_point_response(vin, &grid).unwrap();
        let nodes = c.signal_nodes();
        let idx_out = nodes.iter().position(|&n| n == vout).unwrap();
        let idx_in = nodes.iter().position(|&n| n == vin).unwrap();
        for (a, b) in all[idx_out].iter().zip(&single_out) {
            assert!((*a - *b).abs() < 1e-12);
        }
        for (a, b) in all[idx_in].iter().zip(&single_in) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn vsource_ac_mag_zero_acts_as_short() {
        // The input source has no AC component: injecting current at the
        // output should see R1 to the AC-grounded input in parallel with C1.
        let mut c = Circuit::new("short");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_resistor("R1", vin, vout, 2.0e3);
        c.add_resistor("R2", vout, Circuit::GROUND, 2.0e3);
        let op = solve_dc(&c).unwrap();
        let ac = AcAnalysis::new(&c, &op).unwrap();
        let grid = FrequencyGrid::log_decade(1.0, 100.0, 2);
        let z = ac.driving_point_response(vout, &grid).unwrap();
        // 2k ∥ 2k = 1k.
        assert!((z[0].abs() - 1.0e3).abs() / 1.0e3 < 1e-6);
    }

    #[test]
    fn mosfet_common_source_gain() {
        use loopscope_netlist::{MosfetModel, MosfetPolarity};
        let mut c = Circuit::new("cs amp");
        let vdd = c.node("vdd");
        let vg = c.node("g");
        let vd = c.node("d");
        c.add_vsource("VDD", vdd, Circuit::GROUND, SourceSpec::dc(3.0));
        c.add_vsource("VG", vg, Circuit::GROUND, SourceSpec::dc_ac(1.0, 1.0, 0.0));
        c.add_resistor("RD", vdd, vd, 2.0e3);
        c.add_mosfet(
            "M1",
            vd,
            vg,
            Circuit::GROUND,
            MosfetPolarity::Nmos,
            50.0e-6,
            1.0e-6,
            MosfetModel {
                vto: 0.6,
                kp: 100.0e-6,
                lambda: 0.0,
                ..Default::default()
            },
        );
        let op = solve_dc(&c).unwrap();
        // vov = 0.4 V, β = 5 mA/V² → Id = 0.4 mA (drain sits at 2.2 V, well in
        // saturation); gm = β·vov = 2 mS → gain = gm·RD = 4.
        let ac = AcAnalysis::new(&c, &op).unwrap();
        let grid = FrequencyGrid::log_decade(1.0, 1.0e3, 5);
        let sweep = ac.sweep(&grid).unwrap();
        let gain = sweep.magnitude(vd)[0];
        assert!((gain - 4.0).abs() < 0.1, "gain = {gain}");
    }

    #[test]
    fn magnitude_at_clamps_below_first_point() {
        let (c, _, vout) = rc_lowpass();
        let op = solve_dc(&c).unwrap();
        let ac = AcAnalysis::new(&c, &op).unwrap();
        // Sweep starts at 10 Hz: querying below must return the 10 Hz value,
        // not a left-extrapolation of the first segment's slope.
        let grid = FrequencyGrid::log_decade(10.0, 1.0e5, 10);
        let sweep = ac.sweep(&grid).unwrap();
        let first = sweep.magnitude(vout)[0];
        assert_eq!(sweep.magnitude_at(vout, 10.0), first);
        assert_eq!(sweep.magnitude_at(vout, 1.0), first);
        assert_eq!(sweep.magnitude_at(vout, 0.0), first);
        assert_eq!(sweep.magnitude_at(vout, -5.0), first);
    }

    #[test]
    fn magnitude_at_clamps_above_last_point() {
        let (c, _, vout) = rc_lowpass();
        let op = solve_dc(&c).unwrap();
        let ac = AcAnalysis::new(&c, &op).unwrap();
        let grid = FrequencyGrid::log_decade(10.0, 1.0e4, 10);
        let sweep = ac.sweep(&grid).unwrap();
        let last = *sweep.magnitude(vout).last().unwrap();
        // Above the last point the −20 dB/dec rolloff would extrapolate far
        // below the last sample; the contract is to clamp instead.
        assert_eq!(sweep.magnitude_at(vout, 1.0e4), last);
        assert_eq!(sweep.magnitude_at(vout, 1.0e6), last);
        assert_eq!(sweep.magnitude_at(vout, f64::MAX), last);
        // Interior queries still interpolate (strictly between neighbours).
        let mid = sweep.magnitude_at(vout, 200.0);
        assert!(mid < sweep.magnitude_at(vout, 100.0));
        assert!(mid > last);
    }

    #[test]
    fn sweep_accessors() {
        let (c, _, vout) = rc_lowpass();
        let op = solve_dc(&c).unwrap();
        let ac = AcAnalysis::new(&c, &op).unwrap();
        let grid = FrequencyGrid::log_decade(1.0, 100.0, 5);
        let sweep = ac.sweep(&grid).unwrap();
        assert_eq!(sweep.len(), grid.len());
        assert!(!sweep.is_empty());
        assert_eq!(sweep.response(vout).len(), grid.len());
        assert_eq!(sweep.magnitude_db(vout).len(), grid.len());
        assert_eq!(sweep.freqs(), grid.freqs());
    }
}
