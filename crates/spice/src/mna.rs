//! Modified nodal analysis bookkeeping: unknown layout and stamping helpers.
//!
//! The unknown vector of an MNA system is
//!
//! ```text
//! x = [ v(node 1), …, v(node N−1),  i(branch 1), …, i(branch M) ]
//! ```
//!
//! where branch currents are introduced for elements whose constitutive
//! relation cannot be written as a nodal admittance: independent voltage
//! sources, inductors, voltage-controlled voltage sources and
//! current-controlled voltage sources. Ground (node 0) is eliminated.

use loopscope_netlist::{Circuit, Element, NodeId};
use loopscope_sparse::{Scalar, TripletMatrix};
use std::collections::HashMap;

/// Index assignment for the MNA unknown vector of a circuit.
#[derive(Debug, Clone)]
pub struct MnaLayout {
    node_count: usize,
    node_names: Vec<String>,
    branch_names: Vec<String>,
    branch_index: HashMap<String, usize>,
}

impl MnaLayout {
    /// Builds the layout for a circuit.
    pub fn new(circuit: &Circuit) -> Self {
        let mut branch_names = Vec::new();
        let mut branch_index = HashMap::new();
        for el in circuit.elements() {
            let needs_branch = matches!(
                el,
                Element::Vsource(_) | Element::Inductor(_) | Element::Vcvs(_) | Element::Ccvs(_)
            );
            if needs_branch {
                branch_index.insert(el.name().to_string(), branch_names.len());
                branch_names.push(el.name().to_string());
            }
        }
        let node_names = circuit
            .signal_nodes_iter()
            .map(|n| circuit.node_name(n).to_string())
            .collect();
        Self {
            node_count: circuit.node_count(),
            node_names,
            branch_names,
            branch_index,
        }
    }

    /// Total number of unknowns (node voltages plus branch currents).
    pub fn dim(&self) -> usize {
        (self.node_count - 1) + self.branch_names.len()
    }

    /// Number of branch-current unknowns.
    pub fn branch_count(&self) -> usize {
        self.branch_names.len()
    }

    /// Unknown index of a node voltage, or `None` for the ground node.
    pub fn node_var(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Unknown index of the branch current owned by the named element.
    pub fn branch_var(&self, element_name: &str) -> Option<usize> {
        self.branch_index
            .get(element_name)
            .map(|&i| (self.node_count - 1) + i)
    }

    /// Human-readable name of an unknown, for error enrichment: node-voltage
    /// unknowns render as `V(name)`, branch-current unknowns as `I(element)`,
    /// and out-of-range indices fall back to the raw `x[var]` position.
    pub fn unknown_name(&self, var: usize) -> String {
        if let Some(node) = self.node_names.get(var) {
            format!("V({node})")
        } else if let Some(branch) = self.branch_names.get(var - self.node_names.len()) {
            format!("I({branch})")
        } else {
            format!("x[{var}]")
        }
    }

    /// Extracts the voltage of `node` from a solution vector (0 for ground).
    pub fn node_value<T: Scalar>(&self, solution: &[T], node: NodeId) -> T {
        match self.node_var(node) {
            Some(idx) => solution[idx],
            None => T::ZERO,
        }
    }
}

/// Destination of MNA matrix stamps.
///
/// Implemented by [`TripletMatrix`] (pattern discovery: every stamp appends a
/// coordinate entry) and by [`crate::assembly::SlotSink`] (in-place
/// re-assembly: every stamp accumulates into a precomputed CSR value slot).
/// Element stamping code is written once against [`Stamper`] and works with
/// either destination.
pub trait MatrixSink<T: Scalar> {
    /// Accumulates `value` at `(row, col)`.
    fn add(&mut self, row: usize, col: usize, value: T);
}

impl<T: Scalar> MatrixSink<T> for TripletMatrix<T> {
    #[inline]
    fn add(&mut self, row: usize, col: usize, value: T) {
        self.push(row, col, value);
    }
}

/// Accumulates MNA stamps into a matrix sink and right-hand side, hiding the
/// ground-elimination bookkeeping from element code.
#[derive(Debug)]
pub struct Stamper<'a, T: Scalar, S: MatrixSink<T> = TripletMatrix<T>> {
    layout: &'a MnaLayout,
    matrix: S,
    rhs: Vec<T>,
}

impl<'a, T: Scalar> Stamper<'a, T, TripletMatrix<T>> {
    /// Creates an empty triplet-backed stamper for the given layout (the
    /// pattern-discovery path).
    pub fn new(layout: &'a MnaLayout) -> Self {
        let n = layout.dim();
        Self::with_sink(layout, TripletMatrix::with_capacity(n, n, 8 * n))
    }

    /// Consumes the stamper and returns the assembled matrix and RHS.
    pub fn finish(self) -> (TripletMatrix<T>, Vec<T>) {
        (self.matrix, self.rhs)
    }
}

impl<'a, T: Scalar, S: MatrixSink<T>> Stamper<'a, T, S> {
    /// Creates a stamper writing matrix entries into an explicit sink.
    pub fn with_sink(layout: &'a MnaLayout, sink: S) -> Self {
        Self::with_sink_reusing(layout, sink, Vec::new())
    }

    /// Like [`with_sink`](Stamper::with_sink), but reusing a caller-supplied
    /// right-hand-side buffer instead of allocating a fresh one: the buffer
    /// is cleared and zero-filled to the layout dimension in place, so once
    /// its capacity has reached `layout.dim()` no heap allocation happens.
    /// This is what keeps repeated assemblies — e.g. every Newton iteration
    /// of every transient timestep — allocation-free; the buffer comes back
    /// out of [`into_parts`](Stamper::into_parts).
    pub fn with_sink_reusing(layout: &'a MnaLayout, sink: S, mut rhs: Vec<T>) -> Self {
        rhs.clear();
        rhs.resize(layout.dim(), T::ZERO);
        Self {
            layout,
            matrix: sink,
            rhs,
        }
    }

    /// The layout this stamper addresses.
    pub fn layout(&self) -> &MnaLayout {
        self.layout
    }

    /// Consumes the stamper and returns the sink and RHS.
    pub fn into_parts(self) -> (S, Vec<T>) {
        (self.matrix, self.rhs)
    }

    /// Adds `val` at the matrix position addressed by two node voltages.
    /// Entries involving ground are dropped.
    pub fn add_node_node(&mut self, row: NodeId, col: NodeId, val: T) {
        if let (Some(r), Some(c)) = (self.layout.node_var(row), self.layout.node_var(col)) {
            self.matrix.add(r, c, val);
        }
    }

    /// Adds `val` at (node-voltage row, raw unknown column).
    pub fn add_node_var(&mut self, row: NodeId, col: usize, val: T) {
        if let Some(r) = self.layout.node_var(row) {
            self.matrix.add(r, col, val);
        }
    }

    /// Adds `val` at (raw unknown row, node-voltage column).
    pub fn add_var_node(&mut self, row: usize, col: NodeId, val: T) {
        if let Some(c) = self.layout.node_var(col) {
            self.matrix.add(row, c, val);
        }
    }

    /// Adds `val` at a raw (row, column) position.
    pub fn add_var_var(&mut self, row: usize, col: usize, val: T) {
        self.matrix.add(row, col, val);
    }

    /// Adds `val` to the right-hand side entry of a node-voltage row.
    pub fn add_rhs_node(&mut self, node: NodeId, val: T) {
        if let Some(r) = self.layout.node_var(node) {
            self.rhs[r] += val;
        }
    }

    /// Adds `val` to the right-hand side entry of a raw unknown row.
    pub fn add_rhs_var(&mut self, row: usize, val: T) {
        self.rhs[row] += val;
    }

    /// Stamps a two-terminal admittance `y` between nodes `a` and `b`
    /// (resistor, capacitor admittance, linearized device conductance …).
    pub fn stamp_admittance(&mut self, a: NodeId, b: NodeId, y: T) {
        self.add_node_node(a, a, y);
        self.add_node_node(b, b, y);
        self.add_node_node(a, b, -y);
        self.add_node_node(b, a, -y);
    }

    /// Stamps a current `i` injected *into* node `a` and drawn *out of* node
    /// `b` (i.e. a current source from `b` to `a` through the source).
    pub fn stamp_current_injection(&mut self, into: NodeId, out_of: NodeId, i: T) {
        self.add_rhs_node(into, i);
        self.add_rhs_node(out_of, -i);
    }

    /// Stamps a voltage-controlled current source: a current
    /// `gm·(v(cp) − v(cm))` flowing out of node `op`, through the source, into
    /// node `om`.
    pub fn stamp_vccs(&mut self, op: NodeId, om: NodeId, cp: NodeId, cm: NodeId, gm: T) {
        self.add_node_node(op, cp, gm);
        self.add_node_node(op, cm, -gm);
        self.add_node_node(om, cp, -gm);
        self.add_node_node(om, cm, gm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_netlist::SourceSpec;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new("layout test");
        let a = c.node("a");
        let b = c.node("b");
        let d = c.node("d");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(1.0));
        c.add_resistor("R1", a, b, 1e3);
        c.add_inductor("L1", b, d, 1e-6);
        c.add_capacitor("C1", d, Circuit::GROUND, 1e-12);
        c.add_vcvs("E1", d, Circuit::GROUND, a, b, 2.0);
        c
    }

    #[test]
    fn layout_counts_and_indices() {
        let ckt = sample_circuit();
        let layout = MnaLayout::new(&ckt);
        // 3 signal nodes + branches for V1, L1, E1.
        assert_eq!(layout.dim(), 3 + 3);
        assert_eq!(layout.branch_count(), 3);
        assert_eq!(layout.node_var(Circuit::GROUND), None);
        let a = ckt.find_node("a").unwrap();
        assert_eq!(layout.node_var(a), Some(0));
        assert_eq!(layout.branch_var("V1"), Some(3));
        assert_eq!(layout.branch_var("L1"), Some(4));
        assert_eq!(layout.branch_var("E1"), Some(5));
        assert_eq!(layout.branch_var("R1"), None);
    }

    #[test]
    fn unknown_names_cover_nodes_branches_and_overflow() {
        let ckt = sample_circuit();
        let layout = MnaLayout::new(&ckt);
        assert_eq!(layout.unknown_name(0), "V(a)");
        assert_eq!(layout.unknown_name(1), "V(b)");
        assert_eq!(layout.unknown_name(2), "V(d)");
        assert_eq!(layout.unknown_name(3), "I(V1)");
        assert_eq!(layout.unknown_name(4), "I(L1)");
        assert_eq!(layout.unknown_name(5), "I(E1)");
        assert_eq!(layout.unknown_name(6), "x[6]");
    }

    #[test]
    fn node_value_extraction() {
        let ckt = sample_circuit();
        let layout = MnaLayout::new(&ckt);
        let solution = vec![1.0, 2.0, 3.0, -0.5, 0.0, 0.1];
        let b = ckt.find_node("b").unwrap();
        assert_eq!(layout.node_value(&solution, b), 2.0);
        assert_eq!(layout.node_value(&solution, Circuit::GROUND), 0.0);
    }

    #[test]
    fn stamper_ignores_ground() {
        let ckt = sample_circuit();
        let layout = MnaLayout::new(&ckt);
        let mut st = Stamper::<f64>::new(&layout);
        let a = ckt.find_node("a").unwrap();
        st.stamp_admittance(a, Circuit::GROUND, 0.5);
        let (m, rhs) = st.finish();
        let csr = m.to_csr();
        // Only the (a, a) entry survives ground elimination.
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), 0.5);
        assert!(rhs.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stamper_admittance_pattern() {
        let ckt = sample_circuit();
        let layout = MnaLayout::new(&ckt);
        let a = ckt.find_node("a").unwrap();
        let b = ckt.find_node("b").unwrap();
        let mut st = Stamper::<f64>::new(&layout);
        st.stamp_admittance(a, b, 2.0);
        let (m, _) = st.finish();
        let csr = m.to_csr();
        assert_eq!(csr.get(0, 0), 2.0);
        assert_eq!(csr.get(1, 1), 2.0);
        assert_eq!(csr.get(0, 1), -2.0);
        assert_eq!(csr.get(1, 0), -2.0);
    }

    #[test]
    fn stamper_current_injection_sign() {
        let ckt = sample_circuit();
        let layout = MnaLayout::new(&ckt);
        let a = ckt.find_node("a").unwrap();
        let mut st = Stamper::<f64>::new(&layout);
        st.stamp_current_injection(a, Circuit::GROUND, 1e-3);
        let (_, rhs) = st.finish();
        assert_eq!(rhs[0], 1e-3);
        assert!(rhs[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stamper_vccs_pattern() {
        let ckt = sample_circuit();
        let layout = MnaLayout::new(&ckt);
        let a = ckt.find_node("a").unwrap();
        let b = ckt.find_node("b").unwrap();
        let d = ckt.find_node("d").unwrap();
        let mut st = Stamper::<f64>::new(&layout);
        st.stamp_vccs(d, Circuit::GROUND, a, b, 1e-3);
        let (m, _) = st.finish();
        let csr = m.to_csr();
        assert_eq!(csr.get(2, 0), 1e-3);
        assert_eq!(csr.get(2, 1), -1e-3);
    }
}
