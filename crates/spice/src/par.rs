//! Scoped-thread sweep executor: chunk a list of independent points across
//! worker threads, each with its own per-worker state.
//!
//! Every sweep-style analysis in this workspace — the AC sweep, the
//! driving-point probes, the all-nodes stability scan, the corner sweep —
//! solves the same problem at many independent points (frequencies or
//! circuit variants). [`sweep_chunks`] is the one executor they all share:
//!
//! * the points are split into **contiguous chunks**, one worker per chunk,
//!   spawned on [`std::thread::scope`] (no detached threads, no channels);
//! * every worker mints its own state with the `init` closure — for the
//!   solver pipeline that is a [`SolveContext`](crate::assembly::SolveContext)
//!   minted from the shared [`SweepPlan`](crate::assembly::SweepPlan) — and
//!   runs `step` over its chunk;
//! * results are returned **in point order** regardless of chunking, and the
//!   worker states are handed back so the caller can merge per-worker
//!   counters into sweep-level totals.
//!
//! # Determinism
//!
//! The executor adds no nondeterminism of its own: each point is processed
//! by exactly one `step` call whose inputs (`index`, `point`, and a state
//! minted by `init`) do not depend on the worker count or chunk layout. As
//! long as `init`/`step` are themselves deterministic per point — true for
//! the solve contexts, which always refactor against the *shared* plan —
//! the assembled output is **bitwise identical at any worker count**,
//! including the serial in-line path used for a single worker. Errors are
//! deterministic too: the error of the lowest point index wins, exactly as
//! a serial left-to-right run would report. That guarantee is why a failing
//! point does **not** cancel the other workers: a cancelled worker might
//! never reach the globally lowest failing point, so which error surfaces
//! would depend on timing. Sweep errors (a singular system at some
//! frequency) are rare and terminal, so finishing the in-flight chunks is
//! the right trade for a reproducible error.
//!
//! # Worker count
//!
//! [`configured_workers`] reads the `LOOPSCOPE_THREADS` environment
//! variable (any integer ≥ 1); when unset or unparsable it defaults to the
//! hardware's [available parallelism](std::thread::available_parallelism).
//! `LOOPSCOPE_THREADS=1` forces the serial fallback, which runs the same
//! per-point code in-line without spawning. Sweeps may nest (the corner
//! sweep runs whole frequency-sweeping analyses per point); a sweep that
//! already runs inside a parallel worker is executed serially, so one level
//! of nesting owns the whole thread budget instead of spawning T×T workers.

use std::cell::Cell;
use std::thread;

/// What one worker chunk produces: the results of its completed points, its
/// final state (always — counters survive failures), and the global index +
/// error of its first failing point, if any.
type ChunkResult<R, S, E> = (Vec<R>, S, Option<(usize, E)>);

/// Environment variable naming the worker count used by [`sweep_chunks`]
/// (any integer ≥ 1; unset or invalid falls back to available parallelism).
pub const THREADS_ENV: &str = "LOOPSCOPE_THREADS";

/// Environment variable naming the **panel width** of blocked multi-RHS
/// solves — how many right-hand sides the all-nodes stability scan batches
/// into one L/U traversal (any integer ≥ 1; unset or invalid falls back to
/// [`DEFAULT_PANEL_WIDTH`]). `LOOPSCOPE_PANEL=1` forces the per-RHS solve
/// path. Results are bitwise identical at any width — the knob only trades
/// traversal amortization against panel memory.
pub const PANEL_ENV: &str = "LOOPSCOPE_PANEL";

/// Default panel width of blocked multi-RHS solves: wide enough to amortize
/// the L/U index traversal across injections, small enough that a panel of
/// complex vectors stays cache-resident for paper-scale circuits.
pub const DEFAULT_PANEL_WIDTH: usize = 16;

/// The panel width blocked multi-RHS solves run with: [`PANEL_ENV`] when
/// set to an integer ≥ 1, otherwise [`DEFAULT_PANEL_WIDTH`]. Read afresh on
/// every call, so tests and benches can switch it between runs.
pub fn configured_panel_width() -> usize {
    parse_workers(std::env::var(PANEL_ENV).ok().as_deref()).unwrap_or(DEFAULT_PANEL_WIDTH)
}

thread_local! {
    /// `true` while this thread IS a spawned sweep worker. Sweeps nest —
    /// `core`'s corner sweep runs whole stability analyses per point, each
    /// of which sweeps frequencies — and without this flag a parallel outer
    /// sweep of T workers would spawn T inner pools of T workers each (T×T
    /// threads thrashing the machine). Inside a worker the env-driven count
    /// collapses to 1, so one level of nesting owns the whole thread budget;
    /// a *serial* outer sweep leaves inner sweeps free to parallelize.
    static IN_SWEEP_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Parses a `LOOPSCOPE_THREADS`-style value: `Some(n)` for an integer ≥ 1,
/// `None` otherwise (the caller then falls back to hardware parallelism).
fn parse_workers(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The hardware's available parallelism (1 when it cannot be queried).
pub fn available_workers() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// The worker count sweeps run with: 1 inside an already-parallel sweep
/// worker (see the nesting note in the [module docs](self)), otherwise
/// [`THREADS_ENV`] when set to an integer ≥ 1, otherwise
/// [`available_workers`]. Read afresh on every call, so tests and benches
/// can switch it between runs.
pub fn configured_workers() -> usize {
    if IN_SWEEP_WORKER.with(Cell::get) {
        return 1;
    }
    parse_workers(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(available_workers)
}

/// Runs `step` over every point, chunked across [`configured_workers`]
/// scoped worker threads. Returns the results **in point order** (or the
/// error of the lowest-index failing point — the same error a serial
/// left-to-right run would surface first) together with every worker's
/// final state (in chunk order). States are returned **even on failure**,
/// so per-worker counters always account for the work that did run.
///
/// `init` mints one state per worker; `step` receives the state, the point's
/// global index and the point itself. See the [module docs](self) for the
/// determinism guarantees.
pub fn sweep_chunks<P, R, S, E, Init, Step>(
    points: &[P],
    init: Init,
    step: Step,
) -> (Result<Vec<R>, E>, Vec<S>)
where
    P: Sync,
    R: Send,
    S: Send,
    E: Send,
    Init: Fn() -> S + Sync,
    Step: Fn(&mut S, usize, &P) -> Result<R, E> + Sync,
{
    sweep_chunks_with(configured_workers(), points, init, step)
}

/// [`sweep_chunks`] with an explicit worker count (tests and benches use
/// this to pin the count independently of the environment).
pub fn sweep_chunks_with<P, R, S, E, Init, Step>(
    workers: usize,
    points: &[P],
    init: Init,
    step: Step,
) -> (Result<Vec<R>, E>, Vec<S>)
where
    P: Sync,
    R: Send,
    S: Send,
    E: Send,
    Init: Fn() -> S + Sync,
    Step: Fn(&mut S, usize, &P) -> Result<R, E> + Sync,
{
    /// One worker's job: its chunk, processed left to right, stopping at
    /// the first error (state and completed rows are kept either way).
    fn run_chunk<P, R, S, E>(
        base: usize,
        chunk: &[P],
        state: &mut S,
        step: &(impl Fn(&mut S, usize, &P) -> Result<R, E> + Sync),
    ) -> (Vec<R>, Option<(usize, E)>) {
        let mut out = Vec::with_capacity(chunk.len());
        for (j, p) in chunk.iter().enumerate() {
            match step(state, base + j, p) {
                Ok(r) => out.push(r),
                Err(e) => return (out, Some((base + j, e))),
            }
        }
        (out, None)
    }

    let workers = workers.max(1).min(points.len().max(1));
    let chunk_results: Vec<ChunkResult<R, S, E>> = if workers == 1 {
        // Serial fallback: the same per-point code, run in-line. One worker
        // state, no spawn — this is the `LOOPSCOPE_THREADS=1` path and the
        // reference the parallel paths are bit-compared against.
        let mut state = init();
        let (out, err) = run_chunk(0, points, &mut state, &step);
        vec![(out, state, err)]
    } else {
        // Contiguous chunks of (ceiling) equal size; the last may run
        // short. Chunk layout only affects scheduling, never results: every
        // point keeps its global index and workers never share mutable
        // state.
        let chunk_len = points.len().div_ceil(workers);
        thread::scope(|scope| {
            let handles: Vec<_> = points
                .chunks(chunk_len)
                .enumerate()
                .map(|(ci, chunk)| {
                    let init = &init;
                    let step = &step;
                    scope.spawn(move || {
                        IN_SWEEP_WORKER.with(|f| f.set(true));
                        let mut state = init();
                        let (out, err) = run_chunk(ci * chunk_len, chunk, &mut state, step);
                        (out, state, err)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
    };

    merge_chunk_results(chunk_results)
}

/// Like [`sweep_chunks`] but **consuming** the points, for sweeps whose step
/// needs ownership of each item (e.g. a corner sweep moving each circuit
/// variant into its analyzer). Same chunking, ordering, error and state
/// semantics; worker count from [`configured_workers`].
pub fn sweep_chunks_owned<P, R, S, E, Init, Step>(
    points: Vec<P>,
    init: Init,
    step: Step,
) -> (Result<Vec<R>, E>, Vec<S>)
where
    P: Send,
    R: Send,
    S: Send,
    E: Send,
    Init: Fn() -> S + Sync,
    Step: Fn(&mut S, usize, P) -> Result<R, E> + Sync,
{
    /// One worker's chunk, consumed left to right, stopping at the first
    /// error (state and completed rows are kept either way).
    fn run_chunk_owned<P, R, S, E>(
        base: usize,
        chunk: Vec<P>,
        state: &mut S,
        step: &(impl Fn(&mut S, usize, P) -> Result<R, E> + Sync),
    ) -> (Vec<R>, Option<(usize, E)>) {
        let mut out = Vec::with_capacity(chunk.len());
        for (j, p) in chunk.into_iter().enumerate() {
            match step(state, base + j, p) {
                Ok(r) => out.push(r),
                Err(e) => return (out, Some((base + j, e))),
            }
        }
        (out, None)
    }

    let total = points.len();
    let workers = configured_workers().min(total.max(1));
    let chunk_results: Vec<ChunkResult<R, S, E>> = if workers == 1 {
        let mut state = init();
        let (out, err) = run_chunk_owned(0, points, &mut state, &step);
        vec![(out, state, err)]
    } else {
        // Split into contiguous chunks by value, preserving global indices.
        let chunk_len = total.div_ceil(workers);
        let mut chunks: Vec<(usize, Vec<P>)> = Vec::with_capacity(workers);
        let mut iter = points.into_iter();
        let mut base = 0;
        loop {
            let chunk: Vec<P> = iter.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            base += chunk.len();
            chunks.push((base - chunk.len(), chunk));
        }
        thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(base, chunk)| {
                    let init = &init;
                    let step = &step;
                    scope.spawn(move || {
                        IN_SWEEP_WORKER.with(|f| f.set(true));
                        let mut state = init();
                        let (out, err) = run_chunk_owned(base, chunk, &mut state, step);
                        (out, state, err)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
    };
    merge_chunk_results(chunk_results)
}

/// Reassembles per-chunk outputs (in chunk = point order) into one result
/// list plus all worker states, surfacing the lowest-index error if any
/// point failed.
fn merge_chunk_results<R, S, E>(
    chunk_results: Vec<ChunkResult<R, S, E>>,
) -> (Result<Vec<R>, E>, Vec<S>) {
    let mut results = Vec::new();
    let mut states = Vec::with_capacity(chunk_results.len());
    let mut first_error: Option<(usize, E)> = None;
    for (rows, state, err) in chunk_results {
        results.extend(rows);
        states.push(state);
        if let Some((idx, e)) = err {
            if first_error.as_ref().is_none_or(|(i, _)| idx < *i) {
                first_error = Some((idx, e));
            }
        }
    }
    match first_error {
        Some((_, e)) => (Err(e), states),
        None => (Ok(results), states),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_workers_accepts_integers_and_rejects_garbage() {
        assert_eq!(parse_workers(Some("4")), Some(4));
        assert_eq!(parse_workers(Some(" 2 ")), Some(2));
        assert_eq!(parse_workers(Some("1")), Some(1));
        assert_eq!(parse_workers(Some("0")), None);
        assert_eq!(parse_workers(Some("-3")), None);
        assert_eq!(parse_workers(Some("four")), None);
        assert_eq!(parse_workers(Some("")), None);
        assert_eq!(parse_workers(None), None);
    }

    #[test]
    fn configured_workers_is_at_least_one() {
        assert!(configured_workers() >= 1);
        assert!(available_workers() >= 1);
    }

    #[test]
    fn configured_panel_width_is_at_least_one() {
        // NOTE: does not mutate the environment (other tests in this binary
        // run concurrently); the parsing rules themselves are covered by
        // `parse_workers_accepts_integers_and_rejects_garbage`, which this
        // knob shares.
        assert!(configured_panel_width() >= 1);
    }

    #[test]
    fn results_keep_point_order_at_any_worker_count() {
        let points: Vec<usize> = (0..23).collect();
        for workers in [1, 2, 3, 4, 7, 23, 64] {
            let (out, states) = sweep_chunks_with(
                workers,
                &points,
                || 0usize,
                |count, idx, &p| {
                    *count += 1;
                    assert_eq!(idx, p, "global index must match the point");
                    Ok::<_, ()>(p * 10)
                },
            );
            let expected: Vec<usize> = points.iter().map(|p| p * 10).collect();
            assert_eq!(out.unwrap(), expected, "workers = {workers}");
            // Every point was processed exactly once, across all workers.
            assert_eq!(states.iter().sum::<usize>(), points.len());
            assert!(states.len() <= workers.min(points.len()));
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let (out, states) =
            sweep_chunks_with(4, &[] as &[usize], || (), |_, _, _| Ok::<usize, ()>(0));
        assert!(out.unwrap().is_empty());
        assert_eq!(states.len(), 1, "the serial fallback still mints a state");
    }

    #[test]
    fn lowest_index_error_wins_and_states_survive_at_any_worker_count() {
        let points: Vec<usize> = (0..20).collect();
        for workers in [1, 2, 4, 8] {
            // Points 5 and 13 fail; the reported error must always be 5's.
            let (out, states) = sweep_chunks_with(
                workers,
                &points,
                || 0usize,
                |attempted, _, &p| {
                    *attempted += 1;
                    if p == 5 || p == 13 {
                        Err(format!("boom at {p}"))
                    } else {
                        Ok(p)
                    }
                },
            );
            assert_eq!(out.unwrap_err(), "boom at 5", "workers = {workers}");
            // Every worker state comes back even though the sweep failed, so
            // callers can still account for the work that ran. Failing
            // workers stop at their first error; the rest run to completion.
            assert!(!states.is_empty());
            let attempted: usize = states.iter().sum();
            assert!(
                attempted >= 6 && attempted <= points.len(),
                "workers = {workers}: attempted {attempted}"
            );
        }
    }

    #[test]
    fn per_worker_state_is_not_shared() {
        let points: Vec<usize> = (0..16).collect();
        let (_, states) =
            sweep_chunks_with(4, &points, Vec::new, |seen: &mut Vec<usize>, idx, _| {
                seen.push(idx);
                Ok::<_, ()>(())
            });
        // Each worker saw a contiguous, strictly increasing slice of indices.
        let mut all: Vec<usize> = Vec::new();
        for s in &states {
            assert!(s.windows(2).all(|w| w[1] == w[0] + 1));
            all.extend(s);
        }
        all.sort_unstable();
        assert_eq!(all, points);
    }

    #[test]
    fn owned_sweep_consumes_points_in_order() {
        // A non-Clone payload proves ownership really moves to the workers.
        struct Payload(usize);
        let points: Vec<Payload> = (0..13).map(Payload).collect();
        let (out, states) = sweep_chunks_owned(
            points,
            || 0usize,
            |count, idx, Payload(p)| {
                *count += 1;
                assert_eq!(idx, p);
                Ok::<_, ()>(p * 3)
            },
        );
        assert_eq!(out.unwrap(), (0..13).map(|p| p * 3).collect::<Vec<_>>());
        assert_eq!(states.iter().sum::<usize>(), 13);

        // Error semantics match the borrowed executor: lowest index wins,
        // states survive.
        let points: Vec<Payload> = (0..13).map(Payload).collect();
        let (out, states) = sweep_chunks_owned(
            points,
            || (),
            |(), _, Payload(p)| {
                if p >= 4 {
                    Err(p)
                } else {
                    Ok(p)
                }
            },
        );
        assert_eq!(out.unwrap_err(), 4);
        assert!(!states.is_empty());
    }

    #[test]
    fn nested_sweeps_inside_parallel_workers_run_serially() {
        let points: Vec<usize> = (0..8).collect();
        // From the main thread the env-driven count is whatever the machine
        // offers...
        assert!(configured_workers() >= 1);
        let (out, _) = sweep_chunks_with(
            4,
            &points,
            || (),
            |(), _, &p| {
                // ...but inside a spawned sweep worker it collapses to 1, so
                // an inner sweep cannot multiply the thread pool.
                assert_eq!(configured_workers(), 1, "nested sweeps must serialize");
                let inner: Vec<usize> = (0..5).collect();
                let (inner_out, inner_states) =
                    sweep_chunks(&inner, || (), |(), _, &q| Ok::<_, ()>(q + p));
                assert_eq!(inner_states.len(), 1, "one in-line state, no spawn");
                Ok::<_, ()>(inner_out.unwrap().iter().sum::<usize>())
            },
        );
        let expected: Vec<usize> = points.iter().map(|p| 10 + 5 * p).collect();
        assert_eq!(out.unwrap(), expected);
    }
}
