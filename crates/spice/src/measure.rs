//! Measurement helpers shared by the analyses and the stability tool.
//!
//! These implement the "waveform calculator" style post-processing the
//! original tool relies on: step-response overshoot, Bode gain/phase curves,
//! crossover frequencies and the classical gain/phase margins that serve as
//! the paper's baseline comparison (its Fig. 2 and Fig. 3).

use loopscope_math::interp;

/// Percent overshoot of a step response.
///
/// `initial` and `final_value` are the settled levels before and after the
/// step; the overshoot is `(peak − final) / (final − initial) · 100` for a
/// rising step (and the mirror image for a falling step). Returns 0 when the
/// step has zero amplitude or the response never exceeds its final value.
///
/// ```
/// let wave = vec![0.0, 0.8, 1.4, 1.1, 0.95, 1.02, 1.0];
/// let os = loopscope_spice::measure::overshoot_percent(&wave, 0.0, 1.0);
/// assert!((os - 40.0).abs() < 1e-9);
/// ```
pub fn overshoot_percent(waveform: &[f64], initial: f64, final_value: f64) -> f64 {
    let swing = final_value - initial;
    if swing == 0.0 || waveform.is_empty() {
        return 0.0;
    }
    let extreme = if swing > 0.0 {
        waveform.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    } else {
        waveform.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    let over = (extreme - final_value) / swing;
    (over.max(0.0)) * 100.0
}

/// Unwraps a phase sequence given in degrees so that consecutive samples never
/// jump by more than 180°.
///
/// ```
/// let wrapped = vec![170.0, 179.0, -179.0, -170.0];
/// let unwrapped = loopscope_spice::measure::unwrap_phase_deg(&wrapped);
/// assert!((unwrapped[2] - 181.0).abs() < 1e-9);
/// ```
pub fn unwrap_phase_deg(phase: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phase.len());
    let mut offset = 0.0;
    for (i, &p) in phase.iter().enumerate() {
        if i > 0 {
            let prev = phase[i - 1];
            if p - prev > 180.0 {
                offset -= 360.0;
            } else if prev - p > 180.0 {
                offset += 360.0;
            }
        }
        out.push(p + offset);
    }
    out
}

/// Classical Bode stability margins extracted from an open-loop response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodeMargins {
    /// Unity-gain (0 dB) crossover frequency in hertz, if the gain crosses 0 dB.
    pub gain_crossover_hz: Option<f64>,
    /// Phase margin in degrees, measured at the gain crossover.
    pub phase_margin_deg: Option<f64>,
    /// Frequency where the phase crosses −180°, in hertz.
    pub phase_crossover_hz: Option<f64>,
    /// Gain margin in decibels, measured at the phase crossover.
    pub gain_margin_db: Option<f64>,
}

/// Computes gain/phase margins from an open-loop frequency response.
///
/// `gain_db` and `phase_deg` must be sampled on `freqs` (hertz, ascending);
/// the phase is unwrapped internally and referenced so that the low-frequency
/// phase is near 0° (the standard convention for loop-gain plots).
///
/// ```
/// use loopscope_math::{logspace, Complex64};
/// // Single-pole integrator-like loop: gain 1000, pole at 10 Hz.
/// let freqs = logspace(0.1, 1.0e6, 601);
/// let (gain_db, phase): (Vec<f64>, Vec<f64>) = freqs.iter().map(|&f| {
///     let h = Complex64::from_real(1000.0)
///         / (Complex64::ONE + Complex64::new(0.0, f / 10.0));
///     (h.abs_db(), h.arg_deg())
/// }).unzip();
/// let m = loopscope_spice::measure::bode_margins(&freqs, &gain_db, &phase);
/// // Crossover near 10 kHz, phase margin near 90°.
/// assert!((m.gain_crossover_hz.unwrap() - 1.0e4).abs() / 1.0e4 < 0.01);
/// assert!((m.phase_margin_deg.unwrap() - 90.0).abs() < 1.0);
/// ```
pub fn bode_margins(freqs: &[f64], gain_db: &[f64], phase_deg: &[f64]) -> BodeMargins {
    assert_eq!(freqs.len(), gain_db.len());
    assert_eq!(freqs.len(), phase_deg.len());
    let phase = unwrap_phase_deg(phase_deg);

    let gain_crossover_hz = interp::first_crossing(freqs, gain_db, 0.0);
    let phase_margin_deg = gain_crossover_hz.map(|fc| {
        let p = interp::lerp_at(freqs, &phase, fc);
        180.0 + p
    });
    let phase_crossover_hz = interp::first_crossing(freqs, &phase, -180.0);
    let gain_margin_db = phase_crossover_hz.map(|fp| -interp::lerp_at(freqs, gain_db, fp));

    BodeMargins {
        gain_crossover_hz,
        phase_margin_deg,
        phase_crossover_hz,
        gain_margin_db,
    }
}

/// Finds the settled (final) value of a waveform as the mean of its last
/// `tail_fraction` of samples — a simple, robust estimate for overshoot
/// measurements on well-damped responses.
///
/// # Panics
///
/// Panics if the waveform is empty or `tail_fraction` is not in `(0, 1]`.
pub fn settled_value(waveform: &[f64], tail_fraction: f64) -> f64 {
    assert!(!waveform.is_empty(), "waveform must not be empty");
    assert!(
        tail_fraction > 0.0 && tail_fraction <= 1.0,
        "tail fraction must be in (0, 1]"
    );
    let n = waveform.len();
    let start = n - ((n as f64 * tail_fraction).ceil() as usize).clamp(1, n);
    let tail = &waveform[start..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_math::{logspace, Complex64, SecondOrder};

    #[test]
    fn overshoot_of_flat_response_is_zero() {
        let wave = vec![0.0, 0.5, 0.9, 1.0, 1.0];
        assert_eq!(overshoot_percent(&wave, 0.0, 1.0), 0.0);
        assert_eq!(overshoot_percent(&[], 0.0, 1.0), 0.0);
        assert_eq!(overshoot_percent(&wave, 1.0, 1.0), 0.0);
    }

    #[test]
    fn overshoot_of_falling_step() {
        let wave = vec![1.0, 0.4, -0.2, 0.1, 0.0];
        let os = overshoot_percent(&wave, 1.0, 0.0);
        assert!((os - 20.0).abs() < 1e-9);
    }

    #[test]
    fn overshoot_matches_second_order_theory() {
        for zeta in [0.2, 0.4, 0.6] {
            let sys = SecondOrder::from_damping(zeta, 1.0e3);
            let waveform: Vec<f64> = (0..20_000)
                .map(|i| sys.step_response(i as f64 * 5.0e-7))
                .collect();
            let os = overshoot_percent(&waveform, 0.0, 1.0);
            assert!(
                (os - sys.percent_overshoot()).abs() < 0.5,
                "zeta {zeta}: {os} vs {}",
                sys.percent_overshoot()
            );
        }
    }

    #[test]
    fn unwrap_handles_multiple_wraps() {
        let wrapped = vec![0.0, -90.0, -179.0, 179.0, 90.0, -10.0, -170.0, 170.0];
        let un = unwrap_phase_deg(&wrapped);
        assert_eq!(un[0], 0.0);
        assert!((un[3] - (-181.0)).abs() < 1e-9);
        assert!((un[7] - (-550.0)).abs() < 1e-9);
        // No consecutive jump exceeds 180°.
        for w in un.windows(2) {
            assert!((w[1] - w[0]).abs() <= 180.0 + 1e-9);
        }
    }

    #[test]
    fn second_order_loop_margins() {
        // Open loop L(s) = ωn²/(s(s + 2ζωn)) gives the classical closed-loop
        // second-order system; check the phase margin formula against the
        // analytic expression.
        let zeta = 0.3;
        let wn = 2.0 * std::f64::consts::PI * 1.0e3;
        let freqs = logspace(1.0, 1.0e6, 2401);
        let (gain_db, phase): (Vec<f64>, Vec<f64>) = freqs
            .iter()
            .map(|&f| {
                let s = Complex64::new(0.0, 2.0 * std::f64::consts::PI * f);
                let l = Complex64::from_real(wn * wn) / (s * (s + 2.0 * zeta * wn));
                (l.abs_db(), l.arg_deg())
            })
            .unzip();
        let m = bode_margins(&freqs, &gain_db, &phase);
        let sys = SecondOrder::from_damping(zeta, 1.0e3);
        let pm = m.phase_margin_deg.unwrap();
        assert!(
            (pm - sys.phase_margin_deg()).abs() < 1.0,
            "pm {pm} vs {}",
            sys.phase_margin_deg()
        );
        // A two-pole loop never reaches −180°, so no gain margin exists.
        assert!(m.phase_crossover_hz.is_none());
    }

    #[test]
    fn three_pole_loop_has_gain_margin() {
        let freqs = logspace(1.0, 1.0e7, 2401);
        let poles_hz = [1.0e3, 30.0e3, 100.0e3];
        let (gain_db, phase): (Vec<f64>, Vec<f64>) = freqs
            .iter()
            .map(|&f| {
                let mut h = Complex64::from_real(30.0);
                for p in poles_hz {
                    h /= Complex64::ONE + Complex64::new(0.0, f / p);
                }
                (h.abs_db(), h.arg_deg())
            })
            .unzip();
        let m = bode_margins(&freqs, &gain_db, &phase);
        assert!(m.gain_crossover_hz.is_some());
        assert!(m.phase_crossover_hz.is_some());
        let gm = m.gain_margin_db.unwrap();
        assert!(gm.is_finite());
        // The phase crossover must lie above the gain crossover for this loop.
        assert!(m.phase_crossover_hz.unwrap() > m.gain_crossover_hz.unwrap());
    }

    #[test]
    fn settled_value_uses_tail() {
        let wave = vec![0.0, 2.0, 1.5, 1.0, 1.0, 1.0, 1.0];
        assert!((settled_value(&wave, 0.4) - 1.0).abs() < 1e-12);
        assert!((settled_value(&wave, 1.0) - (7.5 / 7.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn settled_value_rejects_empty() {
        settled_value(&[], 0.5);
    }
}
