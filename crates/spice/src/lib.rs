//! A small-signal circuit simulator built on modified nodal analysis (MNA).
//!
//! This crate is the substrate that replaces the commercial Spectre/TIspice
//! simulators used by the original DATE'05 tool. It provides the three
//! analyses the stability methodology needs:
//!
//! * [`dc::OperatingPoint`] — nonlinear DC operating point via Newton-Raphson
//!   with gmin and source stepping,
//! * [`ac::AcAnalysis`] — small-signal frequency sweeps, including the
//!   driving-point (current-injection) responses the stability plot is
//!   computed from,
//! * [`tran::TransientAnalysis`] — time-domain integration used by the
//!   traditional step-response overshoot baseline.
//!
//! The MNA formulation, element stamps and device companion models live in
//! [`mna`] and [`devices`]; measurement helpers (overshoot, gain/phase
//! margins, crossovers) live in [`measure`]. The solver pipeline builds the
//! sparsity pattern and the LU pivot order once per circuit structure and
//! then restamps values in place and refactors numerically for every
//! further frequency point, Newton iteration or timestep — in two shapes:
//! the sequential analyses (DC Newton, transient stepping) use the adaptive
//! [`assembly::CachedMna`] cache, while the frequency sweeps split the same
//! state into a shared immutable [`assembly::SweepPlan`] plus per-worker
//! [`assembly::SolveContext`]s and run their grids across scoped worker
//! threads through [`par::sweep_chunks`] (`LOOPSCOPE_THREADS` knob, results
//! bitwise identical at any worker count).
//!
//! # Example
//!
//! ```
//! use loopscope_netlist::{Circuit, SourceSpec};
//! use loopscope_spice::{dc::solve_dc, ac::AcAnalysis};
//! use loopscope_math::FrequencyGrid;
//!
//! // A simple RC low-pass driven by a 1 V AC source.
//! let mut ckt = Circuit::new("rc");
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::dc_ac(0.0, 1.0, 0.0));
//! ckt.add_resistor("R1", vin, vout, 1.0e3);
//! ckt.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-6);
//! let op = solve_dc(&ckt)?;
//! let ac = AcAnalysis::new(&ckt, &op)?;
//! let grid = FrequencyGrid::log_decade(1.0, 1.0e5, 10);
//! let sweep = ac.sweep(&grid)?;
//! // At the 159 Hz corner the output is 3 dB down.
//! let corner = sweep.magnitude_at(vout, 159.15);
//! assert!((corner - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
//! # Ok::<(), loopscope_spice::SpiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ac;
pub mod assembly;
pub mod batch;
pub mod dc;
pub mod devices;
pub mod error;
pub mod measure;
pub mod mna;
pub mod par;
pub mod solver;
pub mod tran;

pub use ac::{AcAnalysis, AcSweep, SolverStructure};
pub use assembly::{AssembleMna, CachedMna, SlotSink, SolveContext, SolveStats, SweepPlan};
pub use batch::{
    driving_point_batch, driving_point_monte_carlo, BatchVariant, BatchedSweep, ParameterVariation,
    VariantOutcome,
};
pub use dc::{
    solve_dc, solve_dc_with, ConvergenceReport, DcOptions, DcPhase, OperatingPoint, StageReport,
};
pub use error::{SpiceError, StepRejectReason, StepRejection};
pub use loopscope_sparse::{KernelBackend, SolverBackend};
pub use solver::{configured_solver_mode, resolve_backend, SolverMode};
pub use tran::{Integration, TransientAnalysis, TransientOptions, TransientResult, TransientStats};

/// Thermal voltage kT/q at 300 K, in volts.
pub const THERMAL_VOLTAGE: f64 = 0.02585;

/// Minimum conductance added from every node to ground to keep MNA matrices
/// well conditioned (SPICE `GMIN`).
pub const GMIN: f64 = 1.0e-12;
