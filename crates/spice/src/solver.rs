//! Linear-solver backend selection: the `LOOPSCOPE_SOLVER` knob, the
//! dim/fill auto-selection rule, and the stale-preconditioner refresh
//! schedule shared by every sweep driver.
//!
//! Every analysis in this crate routes its solves through a
//! [`SolverBackend`] seam: the **direct** path (numeric LU refactorization
//! at every point, residual-verified — the PR 6 ladder) or the
//! **iterative** path (restarted GMRES preconditioned by a *stale* LU that
//! is refreshed only every [`PRECOND_REFRESH_INTERVAL`]-th sweep point).
//! Direct LU fill grows superlinearly on 2-D mesh patterns, so large
//! power-grid systems want the iterative path; small block-structured MNA
//! systems refactor so cheaply that direct always wins. The
//! [`resolve_backend`] rule picks per structure, and the environment knob
//! lets benches, CI matrices and users force either path.
//!
//! # Determinism contract
//!
//! Iterative results are **not** bitwise identical to direct results — but
//! they are deterministic and chunking/thread-invariant: the preconditioner
//! used at sweep point `idx` is always the factorization of the matrix at
//! [`anchor_index`]`(idx)`, whatever worker processes the point, so the
//! GMRES inputs (and with them the iteration counts, residuals and
//! solutions) are bitwise reproducible at any `LOOPSCOPE_THREADS` ×
//! `LOOPSCOPE_PANEL` chunking.

use loopscope_sparse::SolverBackend;

/// Environment variable naming the solver backend every analysis routes
/// through: `direct` forces the LU path, `iterative` forces GMRES with the
/// stale-LU preconditioner, `auto` (the default when unset or unparsable)
/// picks per system structure via [`resolve_backend`].
pub const SOLVER_ENV: &str = "LOOPSCOPE_SOLVER";

/// How often the iterative path refreshes its preconditioner: sweep point
/// `idx` is preconditioned by the LU of the matrix at
/// `anchor_index(idx) = idx − idx % 8`, so one numeric refactorization
/// serves 8 sweep points. Chosen so adjacent-frequency matrices stay close
/// enough for GMRES to converge in a handful of iterations while the
/// refactor cost amortizes nearly 8x.
pub const PRECOND_REFRESH_INTERVAL: usize = 8;

/// Acceptance threshold of an iterative solve's normwise backward error.
/// Looser than the direct path's `REFINE_BACKWARD_TOLERANCE` (the
/// documented determinism-contract relaxation: iterative results are
/// verified against the true residual but not refined to working
/// precision); any GMRES verdict above this falls back to the exact
/// verified-direct ladder.
pub const GMRES_ACCEPT_BACKWARD_TOLERANCE: f64 = 1.0e-9;

/// Minimum system dimension at which `auto` considers the iterative path.
pub const AUTO_DIM_THRESHOLD: usize = 4096;

/// Minimum fill ratio (`fill_nnz / dim`) at which `auto` considers the
/// iterative path: below it the direct refactorization is cheap enough
/// that stale-preconditioned GMRES cannot pay for its matrix-vector
/// products.
pub const AUTO_FILL_FACTOR: usize = 8;

/// The user-facing solver selection parsed from [`SOLVER_ENV`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverMode {
    /// Always the direct verified-LU path.
    Direct,
    /// Always the GMRES path (with the direct ladder as per-point fallback).
    Iterative,
    /// Pick per system structure — see [`resolve_backend`].
    Auto,
}

impl SolverMode {
    /// Parses a `LOOPSCOPE_SOLVER` value; `None` for anything but the three
    /// known spellings (case-insensitive, surrounding whitespace ignored).
    pub fn parse(value: Option<&str>) -> Option<SolverMode> {
        match value?.trim().to_ascii_lowercase().as_str() {
            "direct" => Some(SolverMode::Direct),
            "iterative" => Some(SolverMode::Iterative),
            "auto" => Some(SolverMode::Auto),
            _ => None,
        }
    }
}

/// The solver mode analyses run with: [`SOLVER_ENV`] when set to a known
/// value, otherwise [`SolverMode::Auto`]. Read afresh on every call, so
/// tests and benches can switch it between runs.
pub fn configured_solver_mode() -> SolverMode {
    SolverMode::parse(std::env::var(SOLVER_ENV).ok().as_deref()).unwrap_or(SolverMode::Auto)
}

/// Resolves a [`SolverMode`] against a system's structure: `Auto` picks the
/// iterative backend only for large, fill-heavy systems
/// (`dim ≥` [`AUTO_DIM_THRESHOLD`] and `fill_nnz ≥` [`AUTO_FILL_FACTOR`]`·dim`
/// — the 2-D-mesh regime where per-point refactorization dominates), and
/// the direct backend everywhere else.
pub fn resolve_backend(mode: SolverMode, dim: usize, fill_nnz: usize) -> SolverBackend {
    match mode {
        SolverMode::Direct => SolverBackend::Direct,
        SolverMode::Iterative => SolverBackend::iterative_default(),
        SolverMode::Auto => {
            if dim >= AUTO_DIM_THRESHOLD && fill_nnz >= AUTO_FILL_FACTOR * dim {
                SolverBackend::iterative_default()
            } else {
                SolverBackend::Direct
            }
        }
    }
}

/// The sweep point whose matrix preconditions point `idx`: the start of
/// `idx`'s refresh group. A pure function of the index, so every worker
/// derives the same preconditioner for a point regardless of chunking.
pub fn anchor_index(idx: usize) -> usize {
    idx - idx % PRECOND_REFRESH_INTERVAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing_accepts_known_spellings() {
        assert_eq!(SolverMode::parse(Some("direct")), Some(SolverMode::Direct));
        assert_eq!(
            SolverMode::parse(Some(" Iterative ")),
            Some(SolverMode::Iterative)
        );
        assert_eq!(SolverMode::parse(Some("AUTO")), Some(SolverMode::Auto));
        assert_eq!(SolverMode::parse(Some("gmres")), None);
        assert_eq!(SolverMode::parse(Some("")), None);
        assert_eq!(SolverMode::parse(None), None);
    }

    #[test]
    fn auto_picks_iterative_only_for_large_fill_heavy_systems() {
        assert_eq!(
            resolve_backend(SolverMode::Auto, 100, 10_000),
            SolverBackend::Direct,
            "small systems stay direct regardless of fill"
        );
        assert_eq!(
            resolve_backend(SolverMode::Auto, 10_000, 10_000),
            SolverBackend::Direct,
            "sparse factors stay direct regardless of dimension"
        );
        assert!(
            resolve_backend(SolverMode::Auto, 10_000, 200_000).is_iterative(),
            "big 2-D-mesh fill goes iterative"
        );
        assert_eq!(
            resolve_backend(SolverMode::Direct, 1_000_000, 1_000_000_000),
            SolverBackend::Direct
        );
        assert!(resolve_backend(SolverMode::Iterative, 2, 4).is_iterative());
    }

    #[test]
    fn anchor_index_is_the_group_start() {
        let k = PRECOND_REFRESH_INTERVAL;
        assert_eq!(anchor_index(0), 0);
        assert_eq!(anchor_index(k - 1), 0);
        assert_eq!(anchor_index(k), k);
        assert_eq!(anchor_index(3 * k + 5), 3 * k);
    }
}
