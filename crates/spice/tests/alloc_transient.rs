//! Counting-allocator proof that the transient driver's **steady-state
//! loop** is allocation-free on the solver side: every Newton iteration of
//! every timestep cycles hoisted buffers through
//! `CachedMna::solve_in_place` (in-place assembly, numeric refactorization,
//! in-place substitution), so the only per-step allocation left is the one
//! result row the waveform storage clones.
//!
//! Methodology: the setup cost (pattern discovery, symbolic analysis,
//! buffer minting) is a per-run constant, so two runs differing only in
//! step count isolate the per-step cost as a difference — independent of
//! how big the constant is. The same counting-allocator caveat as
//! `loopscope-sparse/tests/alloc_free.rs` applies: exactly ONE `#[test]`
//! in this binary may touch the counter, because sibling tests run on
//! parallel threads and would race it.

use loopscope_netlist::{Circuit, SourceSpec};
use loopscope_spice::dc::solve_dc;
use loopscope_spice::tran::{TransientAnalysis, TransientOptions};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator with a global allocation counter.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// An RC divider with a step source: linear (one Newton iteration per
/// step), with a capacitor so the companion models restamp every step.
fn circuit() -> Circuit {
    let mut c = Circuit::new("alloc tran");
    let vin = c.node("in");
    let vout = c.node("out");
    c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 1.0, 0.0));
    c.add_resistor("R1", vin, vout, 1.0e3);
    c.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-6);
    c
}

/// Allocations of one whole transient run of `steps` steps (dt chosen so
/// t_stop is a non-multiple, exercising the shortened final step too).
fn run_allocations(steps: usize) -> usize {
    let c = circuit();
    let op = solve_dc(&c).unwrap();
    let dt = 10.0e-6;
    // Non-multiple stop time: `steps` full steps plus a shortened one.
    let t_stop = dt * steps as f64 - 0.4 * dt;
    let tran = TransientAnalysis::new(&c, TransientOptions::new(dt, t_stop)).unwrap();
    let before = allocation_count();
    let r = tran.run(&op).unwrap();
    let after = allocation_count();
    assert_eq!(r.len(), steps + 1, "initial point + one row per step");
    assert_eq!(*r.times().last().unwrap(), t_stop);
    after - before
}

#[test]
fn transient_steady_state_loop_allocates_only_result_rows() {
    // Warm up lazily initialized runtime bits (thread-locals, fmt buffers…)
    // so they don't pollute the measured difference.
    let _ = run_allocations(8);

    let small = run_allocations(50);
    let large = run_allocations(150);
    let extra_steps = 100;
    let per_step = (large.saturating_sub(small)) as f64 / extra_steps as f64;

    // Each extra step may allocate its stored result row (one `Vec` clone)
    // and nothing else: the Newton loop's assemble → factor → solve cycle
    // runs entirely in hoisted buffers. The bound of 2 leaves headroom for
    // an amortized storage growth while still failing loudly if any
    // per-iteration allocation (pre-fix: ≥ 3 per step) sneaks back in.
    assert!(
        per_step <= 2.0,
        "steady-state transient loop allocates {per_step:.2} times per step \
         (runs: {small} allocs @ 50 steps, {large} @ 150 steps); \
         the Newton loop must not allocate"
    );

    // Sanity-check that the counter actually counts, so the bound above is
    // meaningful.
    let probe = allocation_count();
    let v: Vec<u8> = vec![0; 4096];
    assert!(v.len() == 4096 && allocation_count() > probe);
}
