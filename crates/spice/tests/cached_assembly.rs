//! Integration tests for the cached-assembly + refactorization pipeline:
//! value-only restamping must be bit-equivalent to building from scratch, and
//! whole sweeps must perform exactly one symbolic LU analysis.
//!
//! The AC paths run on the `SweepPlan`/`SolveContext` split: the plan build
//! performs the sweep's single symbolic analysis (plus the factorization it
//! rides on), and **every** frequency point is then a value-only assembly +
//! numeric refactorization inside some worker context. All counters are
//! sums over the plan and the workers, so the invariants asserted here hold
//! under any `LOOPSCOPE_THREADS` setting — CI runs this suite with both
//! `LOOPSCOPE_THREADS=1` and `=4`.

use loopscope_math::FrequencyGrid;
use loopscope_netlist::{Circuit, DiodeModel, SourceSpec};
use loopscope_spice::ac::AcAnalysis;
use loopscope_spice::dc::solve_dc;
use loopscope_spice::tran::{TransientAnalysis, TransientOptions};
use loopscope_spice::SolverBackend;

/// The per-point refactorization counters asserted below are invariants of
/// the **direct** path; pin it so the assertions hold at any
/// `LOOPSCOPE_SOLVER` setting (the iterative path's counter contract is
/// covered by the solver-backend tests in the library crate).
fn pin_direct(ac: &AcAnalysis<'_>) {
    ac.set_solver_backend(SolverBackend::Direct);
}

fn rc_chain(sections: usize) -> Circuit {
    let mut c = Circuit::new("rc chain");
    let input = c.node("in");
    c.add_vsource(
        "V1",
        input,
        Circuit::GROUND,
        SourceSpec::dc_ac(1.0, 1.0, 0.0),
    );
    let mut prev = input;
    for k in 0..sections {
        let n = c.node(&format!("n{k}"));
        c.add_resistor(&format!("R{k}"), prev, n, 1.0e3 * (k + 1) as f64);
        c.add_capacitor(
            &format!("C{k}"),
            n,
            Circuit::GROUND,
            1.0e-9 / (k + 1) as f64,
        );
        prev = n;
    }
    c
}

#[test]
fn ac_sweep_runs_one_symbolic_analysis() {
    let c = rc_chain(6);
    let op = solve_dc(&c).unwrap();
    let ac = AcAnalysis::new(&c, &op).unwrap();
    pin_direct(&ac);
    let grid = FrequencyGrid::log_decade(1.0e2, 1.0e7, 40);
    let sweep = ac.sweep(&grid).unwrap();
    assert_eq!(sweep.len(), grid.len());

    let stats = ac.solve_stats();
    assert_eq!(
        stats.symbolic, 1,
        "one symbolic analysis per sweep: {stats:?}"
    );
    // Every grid point is a numeric refactorization over the shared plan
    // (the plan build itself accounts for the one extra factorization).
    assert_eq!(stats.numeric_refactor, grid.len(), "{stats:?}");
    assert_eq!(stats.cached_assemblies, grid.len(), "{stats:?}");
    assert_eq!(stats.fresh_fallback, 0, "{stats:?}");
    assert_eq!(stats.pattern_rebuilds, 0, "{stats:?}");
    assert_eq!(stats.factorizations(), grid.len() + 1, "{stats:?}");
}

#[test]
fn all_nodes_scan_runs_one_symbolic_analysis() {
    let c = rc_chain(5);
    let op = solve_dc(&c).unwrap();
    let ac = AcAnalysis::new(&c, &op).unwrap();
    pin_direct(&ac);
    let grid = FrequencyGrid::log_decade(1.0e2, 1.0e6, 25);
    let responses = ac.driving_point_all_nodes(&grid).unwrap();
    assert_eq!(responses.len(), c.signal_nodes().len());

    let stats = ac.solve_stats();
    assert_eq!(stats.symbolic, 1, "{stats:?}");
    assert_eq!(stats.factorizations(), grid.len() + 1, "{stats:?}");
}

#[test]
fn sweep_and_driving_point_share_one_pattern() {
    // The sweep and driving-point systems differ only in the right-hand
    // side, so running both through the same analysis still needs exactly
    // one symbolic analysis in total.
    let c = rc_chain(4);
    let op = solve_dc(&c).unwrap();
    let ac = AcAnalysis::new(&c, &op).unwrap();
    pin_direct(&ac);
    let grid = FrequencyGrid::log_decade(1.0e3, 1.0e6, 10);
    let n0 = c.find_node("n0").unwrap();
    ac.sweep(&grid).unwrap();
    ac.driving_point_response(n0, &grid).unwrap();
    let stats = ac.solve_stats();
    assert_eq!(stats.symbolic, 1, "{stats:?}");
    assert_eq!(stats.factorizations(), 2 * grid.len() + 1, "{stats:?}");
}

#[test]
fn repeated_sweeps_reuse_the_cached_analysis() {
    let c = rc_chain(3);
    let op = solve_dc(&c).unwrap();
    let ac = AcAnalysis::new(&c, &op).unwrap();
    let grid = FrequencyGrid::log_decade(1.0e3, 1.0e5, 8);
    let first = ac.sweep(&grid).unwrap();
    let second = ac.sweep(&grid).unwrap();
    // Deterministic: the cached path must reproduce itself exactly.
    let out = c.find_node("n2").unwrap();
    for (a, b) in first.response(out).iter().zip(&second.response(out)) {
        assert_eq!(a.re, b.re);
        assert_eq!(a.im, b.im);
    }
    let stats = ac.solve_stats();
    assert_eq!(stats.symbolic, 1, "{stats:?}");
}

#[test]
fn cached_sweep_matches_freshly_built_matrices() {
    // Cross-check the in-place restamped path against from-scratch assembly
    // + factorization at every frequency.
    let c = rc_chain(5);
    let op = solve_dc(&c).unwrap();
    let ac = AcAnalysis::new(&c, &op).unwrap();
    let grid = FrequencyGrid::log_decade(1.0e2, 1.0e8, 12);
    let out = c.find_node("n4").unwrap();
    let z = ac.driving_point_response(out, &grid).unwrap();

    let layout = ac.layout();
    let var = layout.node_var(out).unwrap();
    for (i, &f) in grid.freqs().iter().enumerate() {
        let matrix = ac.admittance_matrix(f);
        let mut rhs = vec![loopscope_sparse::Complex64::ZERO; layout.dim()];
        rhs[var] = loopscope_sparse::Complex64::ONE;
        let fresh = loopscope_sparse::solve_once(&matrix, &rhs).unwrap();
        let diff = (fresh[var] - z[i]).abs();
        let scale = z[i].abs().max(1e-30);
        assert!(diff / scale < 1e-9, "mismatch at {f} Hz: {diff}");
    }
}

#[test]
fn nonlinear_dc_and_transient_still_converge_through_the_cache() {
    // A diode rectifier forces operating-region changes (pattern stays
    // fixed, values swing over many decades) — the cached Newton path must
    // converge to the same answer as physics says.
    let mut c = Circuit::new("diode dc");
    let a = c.node("a");
    let k = c.node("k");
    c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(5.0));
    c.add_resistor("R1", a, k, 1.0e3);
    c.add_diode("D1", k, Circuit::GROUND, DiodeModel::default());
    let op = solve_dc(&c).unwrap();
    let vd = op.voltage(k);
    assert!(vd > 0.55 && vd < 0.75, "vd = {vd}");

    let mut c2 = Circuit::new("step tran");
    let vin = c2.node("in");
    let vout = c2.node("out");
    c2.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 1.0, 0.0));
    c2.add_resistor("R1", vin, vout, 1.0e3);
    c2.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-6);
    let op2 = solve_dc(&c2).unwrap();
    let tran = TransientAnalysis::new(&c2, TransientOptions::new(10.0e-6, 5.0e-3)).unwrap();
    let result = tran.run(&op2).unwrap();
    let v_tau = result.value_at(vout, 1.0e-3).unwrap();
    assert!((v_tau - 0.632).abs() < 0.01, "v(τ) = {v_tau}");
}

#[test]
fn gmin_held_node_survives_huge_conductances() {
    // Regression: the singularity test is per-pivot-column relative. A 10 mΩ
    // resistor puts 100 S entries in the matrix while a capacitor-only node
    // is held up by nothing but GMIN (1e-12 S) at DC; a matrix-norm-relative
    // threshold (norm·1e-14 = 1e-12) would misclassify that healthy column
    // as singular.
    let mut c = Circuit::new("gmin vs 100 S");
    let a = c.node("a");
    let b = c.node("b");
    let float = c.node("float");
    c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc(1.0));
    c.add_resistor("Rshunt", a, b, 0.01); // 100 S
    c.add_resistor("Rload", b, Circuit::GROUND, 1.0);
    c.add_resistor("Rup", b, float, 1.0e3);
    c.add_capacitor("Cfloat", float, Circuit::GROUND, 1.0e-9); // DC open
    let op = solve_dc(&c).unwrap();
    // The floating node draws no DC current, so it sits at v(b).
    assert!((op.voltage(float) - op.voltage(b)).abs() < 1e-6);
    assert!(
        op.voltage(b) > 0.9 && op.voltage(b) <= 1.0,
        "v(b) = {}",
        op.voltage(b)
    );
}
