//! Transient fault-injection determinism: a seeded numeric fault planted at
//! Newton-solve ordinal `k` of a transient run must surface as the **same
//! structured, name-enriched error** — or the same identically-rescued
//! waveform, bit for bit — across the `LOOPSCOPE_THREADS` ×
//! `LOOPSCOPE_KERNEL` config matrix, exactly like
//! `tests/fault_injection.rs` pins for sweeps.
//!
//! The injection seam is [`TransientAnalysis::run_with_hook`]: the hook runs
//! between assembly and the verified solve of every Newton iteration, on
//! both the fixed-grid and the adaptive path, so the fault lands on the same
//! assembled system no matter which configuration is active.
//!
//! NOTE: this file mutates the process environment (the kernel knob is
//! re-read on every symbolic analysis), so it holds exactly ONE `#[test]`
//! in its own test binary — a sibling test reading the environment between
//! this test's set/remove calls would be racy.

#![cfg(feature = "fault-inject")]

use loopscope_netlist::{Circuit, DiodeModel, SourceSpec};
use loopscope_sparse::faults::{FaultInjector, FaultKind};
use loopscope_spice::dc::solve_dc;
use loopscope_spice::par;
use loopscope_spice::tran::{TransientAnalysis, TransientOptions};
use loopscope_spice::SpiceError;

/// A stiff nonlinear circuit with a delayed breakpoint, so the fault can
/// land mid-ladder on the adaptive path.
fn circuit() -> Circuit {
    let mut c = Circuit::new("tran faults");
    let vin = c.node("in");
    let fast = c.node("fast");
    let slow = c.node("slow");
    c.add_vsource(
        "V1",
        vin,
        Circuit::GROUND,
        SourceSpec::step(0.0, 1.5, 2.0e-6),
    );
    c.add_resistor("R1", vin, fast, 1.0e3);
    c.add_capacitor("C1", fast, Circuit::GROUND, 1.0e-9);
    c.add_resistor("R2", vin, slow, 1.0e5);
    c.add_capacitor("C2", slow, Circuit::GROUND, 50.0e-9);
    c.add_diode("D1", fast, Circuit::GROUND, DiodeModel::default());
    c
}

/// One run under the current env knobs with `fault` injected at Newton-solve
/// ordinal `at` (`usize::MAX` = no fault), reduced to bit patterns.
fn run(
    adaptive: bool,
    fault: FaultKind,
    at: usize,
    seed: u64,
) -> Result<(Vec<u64>, Vec<Vec<u64>>), SpiceError> {
    let c = circuit();
    let op = solve_dc(&c).unwrap();
    let opts = if adaptive {
        TransientOptions::adaptive(10.0e-9, 0.5e-6, 10.0e-6)
    } else {
        TransientOptions::new(0.1e-6, 10.0e-6)
    };
    let tran = TransientAnalysis::new(&c, opts).unwrap();
    let r = tran.run_with_hook(&op, |ordinal, solver| {
        if ordinal == at {
            // Seeded by ordinal: the same fault lands on the same entry of
            // the same assembled system in every configuration.
            FaultInjector::new(seed + at as u64).inject(fault, solver.matrix_mut());
        }
    })?;
    let times = r.times().iter().map(|t| t.to_bits()).collect();
    let waves = ["fast", "slow"]
        .iter()
        .map(|n| {
            let node = c.find_node(n).unwrap();
            r.waveform(node)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    Ok((times, waves))
}

/// The scenarios pinned across the config matrix:
/// (adaptive?, fault, solve ordinal, seed).
const SCENARIOS: &[(bool, FaultKind, usize, u64)] = &[
    // NaN mid-run: no ladder rung can repair it — must abort identically.
    (true, FaultKind::Nan, 23, 0xC0FFEE),
    (false, FaultKind::Nan, 23, 0xC0FFEE),
    // A zeroed column: rescued by the gmin rung or surfaced as a named
    // singular system — identical either way.
    (true, FaultKind::NearSingular, 11, 0xDEAD),
    (false, FaultKind::NearSingular, 11, 0xDEAD),
    // Control: no fault.
    (true, FaultKind::Nan, usize::MAX, 1),
    (false, FaultKind::Nan, usize::MAX, 1),
];

#[test]
fn injected_transient_faults_are_config_invariant() {
    // Reference outcomes under pinned serial/default knobs.
    std::env::set_var(par::THREADS_ENV, "1");
    std::env::remove_var("LOOPSCOPE_KERNEL");
    let references: Vec<_> = SCENARIOS
        .iter()
        .map(|&(adaptive, fault, at, seed)| run(adaptive, fault, at, seed))
        .collect();

    // The NaN scenarios must have surfaced as the name-enriched stamp error.
    for (i, r) in references.iter().enumerate() {
        let (_, fault, at, _) = SCENARIOS[i];
        if fault == FaultKind::Nan && at != usize::MAX {
            match r {
                Err(SpiceError::NonFiniteStamp { row, col, .. }) => {
                    assert!(
                        row.starts_with("V(") || row.starts_with("I("),
                        "row = {row}"
                    );
                    assert!(
                        col.starts_with("V(") || col.starts_with("I("),
                        "col = {col}"
                    );
                }
                other => panic!("scenario {i}: expected NonFiniteStamp, got {other:?}"),
            }
        }
        if at == usize::MAX {
            assert!(r.is_ok(), "control scenario {i} failed: {r:?}");
        }
    }

    for threads in ["1", "4"] {
        for kernel in [Some("scalar"), None] {
            std::env::set_var(par::THREADS_ENV, threads);
            match kernel {
                Some(k) => std::env::set_var("LOOPSCOPE_KERNEL", k),
                None => std::env::remove_var("LOOPSCOPE_KERNEL"),
            }
            for (i, &(adaptive, fault, at, seed)) in SCENARIOS.iter().enumerate() {
                let got = run(adaptive, fault, at, seed);
                let cfg = format!("threads={threads}, kernel={kernel:?}, scenario {i}");
                match (&references[i], &got) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "rescued waveform diverged at {cfg}"),
                    (Err(a), Err(b)) => assert_eq!(a, b, "error diverged at {cfg}"),
                    (a, b) => panic!("outcome diverged at {cfg}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    std::env::remove_var(par::THREADS_ENV);
    std::env::remove_var("LOOPSCOPE_KERNEL");
}
