//! Property-based tests for the simulator on randomly generated linear
//! circuits, checking physical invariants rather than specific values.

use loopscope_math::FrequencyGrid;
use loopscope_netlist::{Circuit, SourceSpec};
use loopscope_spice::ac::AcAnalysis;
use loopscope_spice::dc::solve_dc;
use proptest::prelude::*;

/// Builds a random ladder of resistors with capacitors to ground, driven by a
/// DC + AC source. Always a valid, passive, connected circuit.
fn random_ladder(rs: &[f64], cs: &[f64], vdc: f64) -> (Circuit, Vec<loopscope_netlist::NodeId>) {
    let mut circuit = Circuit::new("random ladder");
    let input = circuit.node("in");
    circuit.add_vsource(
        "V1",
        input,
        Circuit::GROUND,
        SourceSpec::dc_ac(vdc, 1.0, 0.0),
    );
    let mut prev = input;
    let mut nodes = Vec::new();
    for (k, (&r, &c)) in rs.iter().zip(cs).enumerate() {
        let n = circuit.node(&format!("n{k}"));
        circuit.add_resistor(&format!("R{k}"), prev, n, r);
        circuit.add_capacitor(&format!("C{k}"), n, Circuit::GROUND, c);
        nodes.push(n);
        prev = n;
    }
    (circuit, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DC: with no DC path to ground anywhere except through the source, every
    /// ladder node sits at the source voltage (capacitors carry no current).
    #[test]
    fn dc_ladder_floats_to_source(
        rs in prop::collection::vec(10.0f64..1.0e6, 1..8),
        cs in prop::collection::vec(1.0e-12f64..1.0e-6, 8),
        vdc in -5.0f64..5.0,
    ) {
        let cs = &cs[..rs.len()];
        let (circuit, nodes) = random_ladder(&rs, cs, vdc);
        let op = solve_dc(&circuit).expect("linear circuit always converges");
        for n in nodes {
            prop_assert!((op.voltage(n) - vdc).abs() < 1.0e-3 + 1.0e-6 * vdc.abs());
        }
    }

    /// AC: a passive RC ladder driven by a 1 V source can never show gain
    /// above 1 anywhere, and the response magnitude is monotonically
    /// non-increasing along the ladder at every frequency.
    #[test]
    fn ac_ladder_is_passive_and_ordered(
        rs in prop::collection::vec(100.0f64..1.0e5, 2..6),
        cs in prop::collection::vec(10.0e-12f64..10.0e-9, 6),
    ) {
        let cs = &cs[..rs.len()];
        let (circuit, nodes) = random_ladder(&rs, cs, 0.0);
        let op = solve_dc(&circuit).expect("converges");
        let ac = AcAnalysis::new(&circuit, &op).expect("valid");
        let grid = FrequencyGrid::log_decade(10.0, 1.0e8, 10);
        let sweep = ac.sweep(&grid).expect("no singularities in a passive ladder");
        for (fi, _f) in grid.freqs().iter().enumerate() {
            let mut prev_mag = 1.0 + 1e-9;
            for n in &nodes {
                let mag = sweep.response(*n)[fi].abs();
                prop_assert!(mag <= 1.0 + 1.0e-6, "passive gain bound violated: {mag}");
                prop_assert!(mag <= prev_mag + 1.0e-9, "monotonicity violated");
                prev_mag = mag;
            }
        }
    }

    /// Driving-point impedance of a passive one-port has a non-negative real
    /// part at every frequency (positive-real property).
    #[test]
    fn driving_point_impedance_is_positive_real(
        r1 in 10.0f64..1.0e5,
        r2 in 10.0f64..1.0e5,
        c in 1.0e-12f64..1.0e-7,
        l in 1.0e-9f64..1.0e-3,
    ) {
        let mut circuit = Circuit::new("one port");
        let a = circuit.node("a");
        let b = circuit.node("b");
        circuit.add_resistor("R1", a, b, r1);
        circuit.add_inductor("L1", b, Circuit::GROUND, l);
        circuit.add_resistor("R2", a, Circuit::GROUND, r2);
        circuit.add_capacitor("C1", a, Circuit::GROUND, c);
        let op = solve_dc(&circuit).expect("converges");
        let ac = AcAnalysis::new(&circuit, &op).expect("valid");
        let grid = FrequencyGrid::log_decade(1.0, 1.0e9, 10);
        let z = ac.driving_point_response(a, &grid).expect("solvable");
        for zi in z {
            prop_assert!(zi.re >= -1.0e-9, "negative real part {}", zi.re);
        }
    }
}
