//! Property-based tests for the simulator on randomly generated linear
//! circuits, checking physical invariants rather than specific values.

use loopscope_math::FrequencyGrid;
use loopscope_netlist::{Circuit, SourceSpec};
use loopscope_spice::ac::AcAnalysis;
use loopscope_spice::assembly::{AssembleMna, CachedMna, SweepPlan};
use loopscope_spice::dc::solve_dc;
use loopscope_spice::mna::{MatrixSink, MnaLayout, Stamper};
use loopscope_spice::{configured_solver_mode, SolverMode};
use proptest::prelude::*;

/// Physics-invariant tolerance for solved node voltages. The direct path
/// refines to a 1e-12 backward error, so 1e-9 absolute slack is generous;
/// a forced-iterative run (`LOOPSCOPE_SOLVER=iterative`) accepts solves at
/// a 1e-9 backward error, so the same invariants hold only to ~1e-6.
fn solve_slack() -> f64 {
    match configured_solver_mode() {
        SolverMode::Iterative => 1.0e-6,
        SolverMode::Direct | SolverMode::Auto => 1.0e-9,
    }
}

/// A conductance-chain assembly job over raw MNA variables — the same
/// pattern at every parameter set, like one frequency point of a sweep.
struct ChainJob {
    gs: Vec<f64>,
    shunt: f64,
}

impl AssembleMna<f64> for ChainJob {
    fn stamp<S: MatrixSink<f64>>(&self, st: &mut Stamper<'_, f64, S>) {
        let n = self.gs.len();
        for (i, &g) in self.gs.iter().enumerate() {
            st.add_var_var(i, i, g + self.shunt);
            if i + 1 < n {
                st.add_var_var(i, i + 1, -g);
                st.add_var_var(i + 1, i, -g);
                st.add_var_var(i + 1, i + 1, g);
            }
        }
        st.add_rhs_var(0, 1.0e-3);
    }
}

/// A resistor chain whose `MnaLayout` has exactly `n` variables (no branch
/// currents), so [`ChainJob`] can address them directly.
fn chain_layout(n: usize) -> MnaLayout {
    let mut c = Circuit::new("chain layout");
    let mut prev = Circuit::GROUND;
    for k in 0..n {
        let node = c.node(&format!("n{k}"));
        c.add_resistor(&format!("R{k}"), prev, node, 1.0);
        prev = node;
    }
    let layout = MnaLayout::new(&c);
    assert_eq!(layout.dim(), n);
    layout
}

/// Builds a random ladder of resistors with capacitors to ground, driven by a
/// DC + AC source. Always a valid, passive, connected circuit.
fn random_ladder(rs: &[f64], cs: &[f64], vdc: f64) -> (Circuit, Vec<loopscope_netlist::NodeId>) {
    let mut circuit = Circuit::new("random ladder");
    let input = circuit.node("in");
    circuit.add_vsource(
        "V1",
        input,
        Circuit::GROUND,
        SourceSpec::dc_ac(vdc, 1.0, 0.0),
    );
    let mut prev = input;
    let mut nodes = Vec::new();
    for (k, (&r, &c)) in rs.iter().zip(cs).enumerate() {
        let n = circuit.node(&format!("n{k}"));
        circuit.add_resistor(&format!("R{k}"), prev, n, r);
        circuit.add_capacitor(&format!("C{k}"), n, Circuit::GROUND, c);
        nodes.push(n);
        prev = n;
    }
    (circuit, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DC: with no DC path to ground anywhere except through the source, every
    /// ladder node sits at the source voltage (capacitors carry no current).
    #[test]
    fn dc_ladder_floats_to_source(
        rs in prop::collection::vec(10.0f64..1.0e6, 1..8),
        cs in prop::collection::vec(1.0e-12f64..1.0e-6, 8),
        vdc in -5.0f64..5.0,
    ) {
        let cs = &cs[..rs.len()];
        let (circuit, nodes) = random_ladder(&rs, cs, vdc);
        let op = solve_dc(&circuit).expect("linear circuit always converges");
        for n in nodes {
            prop_assert!((op.voltage(n) - vdc).abs() < 1.0e-3 + 1.0e-6 * vdc.abs());
        }
    }

    /// AC: a passive RC ladder driven by a 1 V source can never show gain
    /// above 1 anywhere, and the response magnitude is monotonically
    /// non-increasing along the ladder at every frequency.
    #[test]
    fn ac_ladder_is_passive_and_ordered(
        rs in prop::collection::vec(100.0f64..1.0e5, 2..6),
        cs in prop::collection::vec(10.0e-12f64..10.0e-9, 6),
    ) {
        let cs = &cs[..rs.len()];
        let (circuit, nodes) = random_ladder(&rs, cs, 0.0);
        let op = solve_dc(&circuit).expect("converges");
        let ac = AcAnalysis::new(&circuit, &op).expect("valid");
        let grid = FrequencyGrid::log_decade(10.0, 1.0e8, 10);
        let sweep = ac.sweep(&grid).expect("no singularities in a passive ladder");
        let slack = solve_slack();
        for (fi, _f) in grid.freqs().iter().enumerate() {
            let mut prev_mag = 1.0 + slack;
            for n in &nodes {
                let mag = sweep.response(*n)[fi].abs();
                prop_assert!(mag <= 1.0 + 1.0e-6 + slack, "passive gain bound violated: {mag}");
                prop_assert!(mag <= prev_mag + slack, "monotonicity violated");
                prev_mag = mag;
            }
        }
    }

    /// Plan/context split vs the adaptive cache: solving a series of
    /// same-pattern systems through a `SweepPlan`-built `SolveContext` must
    /// agree with a fresh `CachedMna` (which runs its own symbolic analysis
    /// per value set it first sees) and with a from-scratch factorization,
    /// and a second context over the same plan must reproduce the first
    /// bitwise.
    #[test]
    fn sweep_plan_contexts_agree_with_cached_mna(
        gs0 in prop::collection::vec(1.0e-6f64..1.0e-1, 2..9),
        scales in prop::collection::vec(0.05f64..20.0, 1..6),
        shunt in 1.0e-9f64..1.0e-3,
    ) {
        let layout = chain_layout(gs0.len());
        let plan = SweepPlan::<f64>::build(&layout, &ChainJob { gs: gs0.clone(), shunt })
            .expect("representative chain factors");
        let mut ctx = plan.context();
        let mut ctx2 = plan.context();
        let mut cache = CachedMna::<f64>::new();
        for scale in scales {
            let job = ChainJob {
                gs: gs0.iter().map(|g| g * scale).collect(),
                shunt,
            };
            let from_plan = ctx.solve(&job).expect("context solves");
            let from_cache = cache.solve(&layout, &job).expect("cache solves");
            // From-scratch reference: fresh triplets, fresh factorization.
            let mut st = Stamper::new(&layout);
            job.stamp(&mut st);
            let (trip, rhs) = st.finish();
            let fresh = loopscope_sparse::solve_once(&trip.to_csr(), &rhs).expect("solvable");
            let slack = solve_slack();
            for ((a, b), c) in from_plan.iter().zip(&from_cache).zip(&fresh) {
                let scale_ref = c.abs().max(1e-30);
                prop_assert!((a - c).abs() / scale_ref < slack, "plan vs fresh: {a} vs {c}");
                prop_assert!((b - c).abs() / scale_ref < slack, "cache vs fresh: {b} vs {c}");
            }
            // Contexts over one plan are deterministic replicas of each other.
            let replay = ctx2.solve(&job).expect("context solves");
            prop_assert_eq!(from_plan, replay);
        }
        // The plan ran the only symbolic analysis on its side of the fence.
        prop_assert_eq!(plan.stats().symbolic, 1);
        prop_assert_eq!(ctx.stats().symbolic, 0);
        prop_assert_eq!(ctx.stats().pattern_rebuilds, 0);
    }

    /// Driving-point impedance of a passive one-port has a non-negative real
    /// part at every frequency (positive-real property).
    #[test]
    fn driving_point_impedance_is_positive_real(
        r1 in 10.0f64..1.0e5,
        r2 in 10.0f64..1.0e5,
        c in 1.0e-12f64..1.0e-7,
        l in 1.0e-9f64..1.0e-3,
    ) {
        let mut circuit = Circuit::new("one port");
        let a = circuit.node("a");
        let b = circuit.node("b");
        circuit.add_resistor("R1", a, b, r1);
        circuit.add_inductor("L1", b, Circuit::GROUND, l);
        circuit.add_resistor("R2", a, Circuit::GROUND, r2);
        circuit.add_capacitor("C1", a, Circuit::GROUND, c);
        let op = solve_dc(&circuit).expect("converges");
        let ac = AcAnalysis::new(&circuit, &op).expect("valid");
        let grid = FrequencyGrid::log_decade(1.0, 1.0e9, 10);
        let z = ac.driving_point_response(a, &grid).expect("solvable");
        let slack = solve_slack();
        for zi in z {
            prop_assert!(zi.re >= -slack * zi.abs().max(1.0), "negative real part {}", zi.re);
        }
    }
}
