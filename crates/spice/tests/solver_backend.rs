//! End-to-end contract tests for the pluggable linear-solver backend seam:
//! a forced-iterative sweep must agree with the direct reference to the
//! iterative acceptance tolerance, report its work in the new
//! [`SolveStats`] counters, fall back to the verified direct ladder when no
//! preconditioner is available, and reproduce itself **bitwise** — counters
//! included — at every worker count and panel width.
//!
//! Like `fault_injection.rs`, this file never touches the process
//! environment: backends are pinned in-process through
//! [`AcAnalysis::set_solver_backend`] / [`SweepPlan::build_with_backend`] /
//! [`CachedMna::set_solver_mode`], and worker counts go through
//! [`par::sweep_chunks_with`], so the whole configuration matrix runs
//! race-free inside one test binary.

use loopscope_math::{Complex64, FrequencyGrid};
use loopscope_netlist::{Circuit, Element, SourceSpec};
use loopscope_spice::ac::AcAnalysis;
use loopscope_spice::assembly::{AssembleMna, CachedMna, SolveStats, SweepPlan};
use loopscope_spice::dc::solve_dc;
use loopscope_spice::mna::{MatrixSink, MnaLayout, Stamper};
use loopscope_spice::solver::{anchor_index, PRECOND_REFRESH_INTERVAL};
use loopscope_spice::{par, SolverBackend, SolverMode, SpiceError};

/// An RC ladder long enough that a sweep spans several preconditioner
/// refresh groups.
fn rc_chain(sections: usize) -> Circuit {
    let mut c = Circuit::new("backend chain");
    let input = c.node("in");
    c.add_vsource(
        "V1",
        input,
        Circuit::GROUND,
        SourceSpec::dc_ac(1.0, 1.0, 0.0),
    );
    let mut prev = input;
    for k in 0..sections {
        let n = c.node(&format!("n{k}"));
        c.add_resistor(&format!("R{k}"), prev, n, 1.0e3 * (k + 1) as f64);
        c.add_capacitor(
            &format!("C{k}"),
            n,
            Circuit::GROUND,
            1.0e-9 / (k + 1) as f64,
        );
        prev = n;
    }
    c
}

/// Minimal AC assembly job over a linear circuit (the library's own AC job
/// is private) — resistor/capacitor admittances plus voltage-source branch
/// rows, with a unit excitation on the source branch.
struct AcJob<'a> {
    circuit: &'a Circuit,
    freq_hz: f64,
}

impl AssembleMna<Complex64> for AcJob<'_> {
    fn stamp<S: MatrixSink<Complex64>>(&self, st: &mut Stamper<'_, Complex64, S>) {
        let omega = 2.0 * std::f64::consts::PI * self.freq_hz;
        let one = Complex64::new(1.0, 0.0);
        for el in self.circuit.elements() {
            match el {
                Element::Resistor(r) => {
                    st.stamp_admittance(r.a, r.b, Complex64::new(1.0 / r.ohms, 0.0))
                }
                Element::Capacitor(c) => {
                    st.stamp_admittance(c.a, c.b, Complex64::new(0.0, omega * c.farads))
                }
                Element::Vsource(v) => {
                    let br = st.layout().branch_var(&v.name).expect("branch");
                    st.add_var_node(br, v.plus, one);
                    st.add_var_node(br, v.minus, -one);
                    st.add_node_var(v.plus, br, one);
                    st.add_node_var(v.minus, br, -one);
                    st.add_rhs_var(br, one);
                }
                other => panic!("unexpected element {other:?}"),
            }
        }
    }
}

fn sweep_freqs(points: usize) -> Vec<f64> {
    (0..points)
        .map(|k| 1.0e3 * 10f64.powf(k as f64 / 8.0))
        .collect()
}

/// Drives `freqs` through a plan pinned to `backend` with `workers` workers
/// and `panel`-wide contexts, following the anchor-preconditioner discipline
/// of the library's own sweep drivers. Returns the per-point solutions and
/// the merged counters.
fn run_pinned_sweep(
    backend: SolverBackend,
    workers: usize,
    panel: usize,
    freqs: &[f64],
) -> (Vec<Vec<Complex64>>, SolveStats) {
    let circuit = rc_chain(6);
    let layout = MnaLayout::new(&circuit);
    let seed_job = AcJob {
        circuit: &circuit,
        freq_hz: freqs[0],
    };
    let plan = SweepPlan::build_with_backend(&layout, &seed_job, backend).expect("plan");
    let (rows, states) = par::sweep_chunks_with(
        workers,
        freqs,
        || plan.context_with_panel(panel),
        |ctx, idx, &freq| -> Result<Vec<Complex64>, SpiceError> {
            let anchor = anchor_index(idx);
            let anchor_job = AcJob {
                circuit: &circuit,
                freq_hz: freqs[anchor],
            };
            ctx.ensure_preconditioner(anchor, idx == anchor, &anchor_job);
            let job = AcJob {
                circuit: &circuit,
                freq_hz: freq,
            };
            let mut rhs = ctx.assemble(&job);
            ctx.solve_backend_in_place(&mut rhs)?;
            Ok(rhs)
        },
    );
    let mut stats = plan.stats();
    for s in states {
        stats.merge(&s.stats());
    }
    (rows.expect("healthy passive sweep"), stats)
}

#[test]
fn forced_iterative_sweep_matches_direct_and_reports_counters() {
    let freqs = sweep_freqs(24);
    let (direct, dstats) = run_pinned_sweep(SolverBackend::Direct, 1, 1, &freqs);
    let (iterative, istats) = run_pinned_sweep(SolverBackend::iterative_default(), 1, 1, &freqs);

    // Same physics to the iterative acceptance tolerance (1e-9 backward
    // error — far tighter than this 1e-6 forward check on a well-conditioned
    // ladder).
    for (point, (a, b)) in direct.iter().zip(&iterative).enumerate() {
        for (x, y) in a.iter().zip(b) {
            let scale = x.abs().max(1.0);
            assert!(
                (*x - *y).abs() / scale < 1.0e-6,
                "point {point}: direct {x:?} vs iterative {y:?}"
            );
        }
    }

    // The direct run never touches the iterative counters.
    assert_eq!(dstats.iterative_solves, 0, "{dstats:?}");
    assert_eq!(dstats.gmres_iterations, 0, "{dstats:?}");
    assert_eq!(dstats.preconditioner_refreshes, 0, "{dstats:?}");
    assert_eq!(dstats.iterative_fallbacks, 0, "{dstats:?}");

    // The iterative run refreshes once per anchor group and serves every
    // point either by GMRES or by a counted fallback to the direct ladder.
    let groups = freqs.len().div_ceil(PRECOND_REFRESH_INTERVAL);
    assert_eq!(istats.preconditioner_refreshes, groups, "{istats:?}");
    assert_eq!(
        istats.iterative_solves + istats.iterative_fallbacks,
        freqs.len(),
        "{istats:?}"
    );
    assert!(istats.iterative_solves > 0, "{istats:?}");
    assert!(
        istats.gmres_iterations >= istats.iterative_solves,
        "{istats:?}"
    );
}

#[test]
fn iterative_sweep_is_chunking_invariant_counters_included() {
    let freqs = sweep_freqs(24);
    let backend = SolverBackend::iterative_default();
    let (reference, ref_stats) = run_pinned_sweep(backend, 1, 1, &freqs);
    for workers in [1, 2, 4] {
        for panel in [1, 3, 16] {
            let (run, stats) = run_pinned_sweep(backend, workers, panel, &freqs);
            for (point, (a, b)) in reference.iter().zip(&run).enumerate() {
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    assert!(
                        x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                        "point {point} entry {i} diverged at workers={workers}, \
                         panel={panel}: {x:?} != {y:?}"
                    );
                }
            }
            // GMRES iteration counts, refresh counts and fallback counts are
            // part of the determinism contract, not just the solutions.
            assert_eq!(
                ref_stats, stats,
                "counters diverged at workers={workers}, panel={panel}"
            );
        }
    }
}

#[test]
fn backend_seam_without_preconditioner_falls_back_to_the_direct_ladder() {
    // `solve_backend_in_place` with no installed preconditioner must serve
    // the point through the exact verified-direct ladder — bitwise — and
    // count the miss.
    let freqs = sweep_freqs(6);
    let circuit = rc_chain(4);
    let layout = MnaLayout::new(&circuit);
    let seed_job = AcJob {
        circuit: &circuit,
        freq_hz: freqs[0],
    };
    let direct_plan =
        SweepPlan::build_with_backend(&layout, &seed_job, SolverBackend::Direct).expect("plan");
    let iter_plan =
        SweepPlan::build_with_backend(&layout, &seed_job, SolverBackend::iterative_default())
            .expect("plan");
    let mut dctx = direct_plan.context();
    let mut ictx = iter_plan.context();
    for &freq in &freqs {
        let job = AcJob {
            circuit: &circuit,
            freq_hz: freq,
        };
        let mut a = dctx.assemble(&job);
        dctx.solve_verified_in_place(&mut a).expect("direct");
        // No ensure_preconditioner call: every backend solve must miss.
        let mut b = ictx.assemble(&job);
        ictx.solve_backend_in_place(&mut b).expect("fallback");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }
    let stats = ictx.stats();
    assert_eq!(stats.iterative_fallbacks, freqs.len(), "{stats:?}");
    assert_eq!(stats.iterative_solves, 0, "{stats:?}");
    assert_eq!(stats.gmres_iterations, 0, "{stats:?}");
}

#[test]
fn pinned_analysis_reports_its_backend_and_serves_iterative_sweeps() {
    let circuit = rc_chain(5);
    let op = solve_dc(&circuit).unwrap();
    let grid = FrequencyGrid::log_decade(1.0e2, 1.0e6, 8);

    let direct = AcAnalysis::new(&circuit, &op).unwrap();
    direct.set_solver_backend(SolverBackend::Direct);
    let reference = direct.sweep(&grid).unwrap();

    let pinned = AcAnalysis::new(&circuit, &op).unwrap();
    pinned.set_solver_backend(SolverBackend::iterative_default());
    let structure = pinned.solver_structure(1.0e3).unwrap();
    assert!(structure.solver.is_iterative(), "{structure:?}");
    let sweep = pinned.sweep(&grid).unwrap();

    let out = circuit.find_node("n4").unwrap();
    for (a, b) in reference.response(out).iter().zip(&sweep.response(out)) {
        assert!(
            (*a - *b).abs() / a.abs().max(1.0) < 1.0e-6,
            "direct {a:?} vs iterative {b:?}"
        );
    }
    let stats = pinned.solve_stats();
    assert!(
        stats.iterative_solves > 0 && stats.preconditioner_refreshes > 0,
        "pinned analysis never took the iterative path: {stats:?}"
    );
}

/// A real-valued conductance chain for the adaptive-cache (DC/transient)
/// side of the seam.
struct ChainJob {
    gs: Vec<f64>,
    drive: f64,
}

impl AssembleMna<f64> for ChainJob {
    fn stamp<S: MatrixSink<f64>>(&self, st: &mut Stamper<'_, f64, S>) {
        let n = self.gs.len();
        for (i, &g) in self.gs.iter().enumerate() {
            st.add_var_var(i, i, g + 1.0e-9);
            if i + 1 < n {
                st.add_var_var(i, i + 1, -g);
                st.add_var_var(i + 1, i, -g);
                st.add_var_var(i + 1, i + 1, g);
            }
        }
        st.add_rhs_var(0, self.drive);
    }
}

fn chain_layout(n: usize) -> MnaLayout {
    let mut c = Circuit::new("chain layout");
    let mut prev = Circuit::GROUND;
    for k in 0..n {
        let node = c.node(&format!("n{k}"));
        c.add_resistor(&format!("R{k}"), prev, node, 1.0);
        prev = node;
    }
    MnaLayout::new(&c)
}

#[test]
fn cached_mna_iterative_mode_reuses_stale_factors_between_refreshes() {
    let n = 8;
    let layout = chain_layout(n);
    let gs: Vec<f64> = (0..n).map(|k| 1.0e-3 * (k + 1) as f64).collect();
    let solves = 2 * PRECOND_REFRESH_INTERVAL + 3;

    // Direct reference: same job sequence through a direct-pinned cache.
    let mut reference = Vec::new();
    let mut direct = CachedMna::<f64>::new();
    direct.set_solver_mode(SolverMode::Direct);
    for step in 0..solves {
        let job = ChainJob {
            gs: gs.iter().map(|g| g * (1.0 + 0.01 * step as f64)).collect(),
            drive: 1.0e-3,
        };
        let (x, _) = direct.solve_verified(&layout, &job).expect("direct");
        reference.push(x);
    }
    let dstats = direct.stats();
    assert_eq!(dstats.iterative_solves, 0, "{dstats:?}");

    let mut cache = CachedMna::<f64>::new();
    cache.set_solver_mode(SolverMode::Iterative);
    for (step, reference) in reference.iter().enumerate() {
        let job = ChainJob {
            gs: gs.iter().map(|g| g * (1.0 + 0.01 * step as f64)).collect(),
            drive: 1.0e-3,
        };
        let (x, quality) = cache.solve_verified(&layout, &job).expect("iterative");
        assert!(quality.converged);
        for (a, b) in x.iter().zip(reference) {
            assert!(
                (a - b).abs() / b.abs().max(1.0) < 1.0e-6,
                "step {step}: {a} vs {b}"
            );
        }
    }
    let stats = cache.stats();
    // The very first solve runs before the backend can resolve (the auto
    // rule needs the symbolic analysis, which that solve creates); every
    // later solve is exactly one of refresh / GMRES / counted fallback,
    // with a refresh once per full interval.
    assert!(stats.preconditioner_refreshes >= 2, "{stats:?}");
    assert!(stats.iterative_solves > 0, "{stats:?}");
    assert_eq!(
        stats.iterative_solves + stats.iterative_fallbacks + stats.preconditioner_refreshes,
        solves - 1,
        "{stats:?}"
    );
    assert!(cache.backend().is_some_and(|b| b.is_iterative()));
}
