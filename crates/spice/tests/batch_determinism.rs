//! Configuration invariance of the batched many-variant sweep engine: a
//! seeded Monte Carlo driving-point sweep must produce **bitwise identical**
//! per-variant responses — and identical yield and merged solve counters —
//! across every `LOOPSCOPE_THREADS` × `LOOPSCOPE_PANEL` × `LOOPSCOPE_KERNEL`
//! × `LOOPSCOPE_BATCH` combination. `LOOPSCOPE_BATCH=1` with one worker is
//! the serial per-variant reference; wider lanes and more workers only
//! change how the same scalar-ordered arithmetic is scheduled.
//!
//! NOTE: this file mutates the process environment (all four knobs are
//! deliberately re-read on every batched call so benches and tests can
//! switch them), so it holds exactly ONE `#[test]` in its own test binary:
//! tests in one binary run on parallel threads, and a sibling test reading
//! the environment between this test's set/remove calls would be racy.

use loopscope_math::FrequencyGrid;
use loopscope_netlist::{Circuit, SourceSpec};
use loopscope_spice::assembly::SolveStats;
use loopscope_spice::batch::{self, driving_point_monte_carlo, ParameterVariation};
use loopscope_spice::dc::solve_dc;
use loopscope_spice::par;

/// A miniature two-stage amplifier with feedback compensation — gm stages,
/// load poles and a compensation network, so the admittance system has the
/// coupled structure (BTF blocks, off-diagonal fill) of the paper's op-amp
/// circuits rather than a trivial ladder.
fn two_stage() -> Circuit {
    let mut c = Circuit::new("two stage");
    let inp = c.node("in");
    let s1 = c.node("s1");
    let out = c.node("out");
    c.add_vsource("V1", inp, Circuit::GROUND, SourceSpec::dc_ac(1.0, 0.0, 0.0));
    // Stage 1: transconductance into r1 ∥ c1.
    c.add_vccs("G1", s1, Circuit::GROUND, inp, out, 1.0e-4);
    c.add_resistor("R1", s1, Circuit::GROUND, 2.0e6);
    c.add_capacitor("C1", s1, Circuit::GROUND, 0.5e-12);
    // Stage 2: transconductance into r2 ∥ cload.
    c.add_vccs("G2", out, Circuit::GROUND, s1, Circuit::GROUND, 2.0e-3);
    c.add_resistor("R2", out, Circuit::GROUND, 5.0e4);
    c.add_capacitor("CL", out, Circuit::GROUND, 100.0e-12);
    // Miller compensation across stage 2.
    c.add_capacitor("CC", s1, out, 2.0e-12);
    c
}

/// Per-variant bit patterns: `None` for a failed variant, otherwise the
/// `(re, im)` bit representation of every frequency point's response.
type VariantBits = Vec<Option<Vec<(u64, u64)>>>;

/// One seeded Monte Carlo sweep under the current environment knobs.
fn mc_sweep() -> (VariantBits, usize, SolveStats) {
    let c = two_stage();
    let op = solve_dc(&c).unwrap();
    let node = c.find_node("out").unwrap();
    let grid = FrequencyGrid::log_decade(1.0e3, 1.0e8, 8);
    let variation = ParameterVariation::new(0x10C5_C0DE)
        .gaussian("R1", 0.10)
        .gaussian("CL", 0.15)
        .uniform("CC", 0.25)
        .uniform("G2", 0.05);
    // 11 variants: not a multiple of any tested lane width, so ragged final
    // groups are exercised at every width.
    let sweep = driving_point_monte_carlo(&c, &op, node, &grid, &variation, 11).unwrap();
    let bits = sweep
        .outcomes()
        .iter()
        .map(|o| {
            o.response.as_ref().map(|resp| {
                resp.iter()
                    .map(|z| (z.re.to_bits(), z.im.to_bits()))
                    .collect()
            })
        })
        .collect();
    (bits, sweep.yield_count(), sweep.solve_stats())
}

#[test]
fn batched_sweeps_are_bitwise_identical_across_all_knobs() {
    // Reference: one worker, per-RHS panels, one variant lane, default
    // (auto-detected) kernel backend — the serial per-variant path.
    std::env::set_var(par::THREADS_ENV, "1");
    std::env::set_var(par::PANEL_ENV, "1");
    std::env::set_var(batch::BATCH_ENV, "1");
    std::env::remove_var("LOOPSCOPE_KERNEL");
    let (reference, ref_yield, ref_stats) = mc_sweep();
    assert_eq!(ref_yield, 11, "the seeded batch is expected to fully yield");
    assert_eq!(ref_stats.symbolic, 1, "one symbolic analysis per batch");

    for threads in ["1", "3", "4"] {
        for panel in ["1", "4"] {
            for kernel in [Some("scalar"), None] {
                for width in ["1", "2", "3", "4", "8"] {
                    std::env::set_var(par::THREADS_ENV, threads);
                    std::env::set_var(par::PANEL_ENV, panel);
                    std::env::set_var(batch::BATCH_ENV, width);
                    match kernel {
                        Some(k) => std::env::set_var("LOOPSCOPE_KERNEL", k),
                        None => std::env::remove_var("LOOPSCOPE_KERNEL"),
                    }
                    let (bits, yield_count, stats) = mc_sweep();
                    let cfg = format!(
                        "threads={threads}, panel={panel}, kernel={kernel:?}, batch={width}"
                    );
                    assert_eq!(yield_count, ref_yield, "{cfg}");
                    assert_eq!(stats, ref_stats, "{cfg}");
                    assert_eq!(bits.len(), reference.len(), "{cfg}");
                    for (v, (got, want)) in bits.iter().zip(&reference).enumerate() {
                        assert_eq!(got, want, "variant {v} diverged at {cfg}");
                    }
                }
            }
        }
    }

    // Defaults (all knobs unset) must reproduce the reference too.
    std::env::remove_var(par::THREADS_ENV);
    std::env::remove_var(par::PANEL_ENV);
    std::env::remove_var(batch::BATCH_ENV);
    std::env::remove_var("LOOPSCOPE_KERNEL");
    let (bits, yield_count, stats) = mc_sweep();
    assert_eq!(yield_count, ref_yield, "default knobs");
    assert_eq!(stats, ref_stats, "default knobs");
    assert_eq!(bits, reference, "default knobs diverged");
}
