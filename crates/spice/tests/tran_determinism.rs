//! Configuration invariance of the adaptive transient stepper: the step
//! sequence (and with it every waveform sample and every [`TransientStats`]
//! counter) must be **bitwise identical** across the `LOOPSCOPE_THREADS` ×
//! `LOOPSCOPE_KERNEL` × `LOOPSCOPE_PANEL` matrix. The transient Newton loop
//! is serial through `CachedMna`, whose verified solves are bitwise
//! kernel-invariant by the solver contract — so every accept/reject/grow
//! decision, being a pure function of those solutions and the options, is
//! config-invariant too. This test pins that end to end.
//!
//! NOTE: this file mutates the process environment (the knobs are re-read on
//! every run so benches and tests can switch them), so it holds exactly ONE
//! `#[test]` in its own test binary: tests in one binary run on parallel
//! threads, and a sibling test reading the environment between this test's
//! set/remove calls would be racy.

use loopscope_netlist::{Circuit, DiodeModel, SourceSpec};
use loopscope_spice::dc::solve_dc;
use loopscope_spice::par;
use loopscope_spice::tran::{TransientAnalysis, TransientOptions, TransientStats};

/// A stiff, nonlinear circuit with a delayed source discontinuity — the
/// adaptive ladder exercises growth, LTE rejections, a breakpoint landing
/// and the post-breakpoint backward-Euler restart.
fn ladder_circuit() -> Circuit {
    let mut c = Circuit::new("tran determinism");
    let vin = c.node("in");
    let fast = c.node("fast");
    let slow = c.node("slow");
    let clamp = c.node("clamp");
    c.add_vsource(
        "V1",
        vin,
        Circuit::GROUND,
        SourceSpec::step(0.0, 2.0, 3.0e-6),
    );
    c.add_resistor("R1", vin, fast, 1.0e3);
    c.add_capacitor("C1", fast, Circuit::GROUND, 1.0e-9);
    c.add_resistor("R2", vin, slow, 1.0e5);
    c.add_capacitor("C2", slow, Circuit::GROUND, 100.0e-9);
    c.add_resistor("R3", fast, clamp, 2.0e3);
    c.add_diode("D1", clamp, Circuit::GROUND, DiodeModel::default());
    c
}

/// One adaptive run under the current environment knobs, reduced to bit
/// patterns.
fn adaptive_run() -> (Vec<u64>, Vec<Vec<u64>>, TransientStats) {
    let c = ladder_circuit();
    let op = solve_dc(&c).unwrap();
    let opts = TransientOptions::adaptive(5.0e-9, 1.0e-6, 20.0e-6);
    let r = TransientAnalysis::new(&c, opts).unwrap().run(&op).unwrap();
    let time_bits = r.times().iter().map(|t| t.to_bits()).collect();
    let wave_bits = ["fast", "slow", "clamp"]
        .iter()
        .map(|name| {
            let node = c.find_node(name).unwrap();
            r.waveform(node)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    (time_bits, wave_bits, *r.stats())
}

#[test]
fn adaptive_stepper_is_bitwise_identical_across_all_knobs() {
    // Reference: one worker, per-RHS panels, default (auto-detected) kernel.
    std::env::set_var(par::THREADS_ENV, "1");
    std::env::set_var(par::PANEL_ENV, "1");
    std::env::remove_var("LOOPSCOPE_KERNEL");
    let (ref_times, ref_waves, ref_stats) = adaptive_run();
    // The scenario actually exercised the ladder.
    assert!(ref_stats.accepted_steps > 10);
    assert_eq!(ref_stats.breakpoints_hit, 1);
    assert!(ref_stats.max_dt > ref_stats.min_dt);

    for threads in ["1", "2", "4"] {
        for panel in ["1", "3", "16"] {
            for kernel in [Some("scalar"), None] {
                std::env::set_var(par::THREADS_ENV, threads);
                std::env::set_var(par::PANEL_ENV, panel);
                match kernel {
                    Some(k) => std::env::set_var("LOOPSCOPE_KERNEL", k),
                    None => std::env::remove_var("LOOPSCOPE_KERNEL"),
                }
                let (times, waves, stats) = adaptive_run();
                let cfg = format!("threads={threads}, panel={panel}, kernel={kernel:?}");
                assert_eq!(times, ref_times, "step sequence diverged at {cfg}");
                assert_eq!(waves, ref_waves, "waveforms diverged at {cfg}");
                assert_eq!(stats, ref_stats, "stats diverged at {cfg}");
            }
        }
    }

    // Defaults (all knobs unset) must reproduce the reference too.
    std::env::remove_var(par::THREADS_ENV);
    std::env::remove_var(par::PANEL_ENV);
    std::env::remove_var("LOOPSCOPE_KERNEL");
    let (times, waves, stats) = adaptive_run();
    assert_eq!(times, ref_times, "default knobs diverged");
    assert_eq!(waves, ref_waves, "default knobs diverged");
    assert_eq!(stats, ref_stats, "default knobs diverged");
}
