//! End-to-end fault-injection determinism: a seeded numeric fault planted
//! at sweep point `k` must surface as the **same structured, name-enriched
//! error** (or the same rescued solution) at every worker count and panel
//! width — no panic, no hang, no silent garbage.
//!
//! Unlike `par_determinism.rs` this file never touches the process
//! environment: worker counts go through [`par::sweep_chunks_with`] and
//! panel widths through [`SweepPlan::context_with_panel`], so the whole
//! matrix of configurations runs race-free inside one test binary.

#![cfg(feature = "fault-inject")]

use loopscope_math::Complex64;
use loopscope_netlist::{Circuit, Element};
use loopscope_sparse::faults::{FaultInjector, FaultKind};
use loopscope_sparse::SolverBackend;
use loopscope_spice::assembly::{AssembleMna, SolveStats, SweepPlan};
use loopscope_spice::mna::{MatrixSink, MnaLayout, Stamper};
use loopscope_spice::par;
use loopscope_spice::solver::anchor_index;
use loopscope_spice::SpiceError;

/// An RC ladder driven by a unit AC source — enough structure to exercise
/// node and branch unknowns in the enriched error names.
fn rc_chain(sections: usize) -> Circuit {
    let mut c = Circuit::new("fault chain");
    let input = c.node("in");
    c.add_vsource(
        "V1",
        input,
        Circuit::GROUND,
        loopscope_netlist::SourceSpec::dc_ac(1.0, 1.0, 0.0),
    );
    let mut prev = input;
    for k in 0..sections {
        let n = c.node(&format!("n{k}"));
        c.add_resistor(&format!("R{k}"), prev, n, 1.0e3 * (k + 1) as f64);
        c.add_capacitor(
            &format!("C{k}"),
            n,
            Circuit::GROUND,
            1.0e-9 / (k + 1) as f64,
        );
        prev = n;
    }
    c
}

/// Minimal AC assembly job (the library's own AC job is private): resistor
/// and capacitor admittances plus the voltage-source branch equations, with
/// a unit excitation on the source branch.
struct AcJob<'a> {
    circuit: &'a Circuit,
    freq_hz: f64,
}

impl AssembleMna<Complex64> for AcJob<'_> {
    fn stamp<S: MatrixSink<Complex64>>(&self, st: &mut Stamper<'_, Complex64, S>) {
        let omega = 2.0 * std::f64::consts::PI * self.freq_hz;
        let one = Complex64::new(1.0, 0.0);
        for el in self.circuit.elements() {
            match el {
                Element::Resistor(r) => {
                    st.stamp_admittance(r.a, r.b, Complex64::new(1.0 / r.ohms, 0.0))
                }
                Element::Capacitor(c) => {
                    st.stamp_admittance(c.a, c.b, Complex64::new(0.0, omega * c.farads))
                }
                Element::Vsource(v) => {
                    let br = st.layout().branch_var(&v.name).expect("branch");
                    st.add_var_node(br, v.plus, one);
                    st.add_var_node(br, v.minus, -one);
                    st.add_node_var(v.plus, br, one);
                    st.add_node_var(v.minus, br, -one);
                    st.add_rhs_var(br, one);
                }
                other => panic!("unexpected element {other:?}"),
            }
        }
    }
}

/// Runs the sweep with `workers` workers and `panel`-wide contexts,
/// injecting `fault` (seeded by `seed + k`) into the assembled matrix of
/// point `fault_point` before its solve. Returns the per-point solutions
/// (or the lowest-index structured error) plus the merged solve counters.
fn sweep_with_fault(
    workers: usize,
    panel: usize,
    fault: FaultKind,
    fault_point: usize,
    seed: u64,
) -> (Result<Vec<Vec<Complex64>>, SpiceError>, SolveStats) {
    let circuit = rc_chain(6);
    let layout = MnaLayout::new(&circuit);
    let freqs: Vec<f64> = (0..24)
        .map(|k| 1.0e3 * 10f64.powf(k as f64 / 8.0))
        .collect();
    let seed_job = AcJob {
        circuit: &circuit,
        freq_hz: freqs[0],
    };
    let plan = SweepPlan::build(&layout, &seed_job).expect("plan");

    let (rows, states) = par::sweep_chunks_with(
        workers,
        &freqs,
        || plan.context_with_panel(panel),
        |ctx, k, &freq| {
            let job = AcJob {
                circuit: &circuit,
                freq_hz: freq,
            };
            let mut rhs = ctx.assemble(&job);
            if k == fault_point {
                // Seeded per point: the same fault lands on the same entry
                // no matter which worker owns the point.
                FaultInjector::new(seed + k as u64).inject(fault, ctx.matrix_mut());
            }
            ctx.solve_verified_in_place(&mut rhs)?;
            Ok(rhs)
        },
    );
    let mut stats = plan.stats();
    for s in states {
        stats.merge(&s.stats());
    }
    (rows, stats)
}

/// The iterative-backend version of [`sweep_with_fault`]: the plan pins
/// GMRES(m) with stale-LU preconditioning and every point follows the
/// anchor discipline. The fault is injected into the *assembled* matrix
/// after the (healthy) anchor preconditioner is in place, so GMRES runs
/// against the faulted operator and must either reject it towards the
/// direct-ladder fallback or never accept a wrong answer.
fn sweep_with_fault_iterative(
    workers: usize,
    panel: usize,
    fault: FaultKind,
    fault_point: usize,
    seed: u64,
) -> (Result<Vec<Vec<Complex64>>, SpiceError>, SolveStats) {
    let circuit = rc_chain(6);
    let layout = MnaLayout::new(&circuit);
    let freqs: Vec<f64> = (0..24)
        .map(|k| 1.0e3 * 10f64.powf(k as f64 / 8.0))
        .collect();
    let seed_job = AcJob {
        circuit: &circuit,
        freq_hz: freqs[0],
    };
    let plan =
        SweepPlan::build_with_backend(&layout, &seed_job, SolverBackend::iterative_default())
            .expect("plan");

    let (rows, states) = par::sweep_chunks_with(
        workers,
        &freqs,
        || plan.context_with_panel(panel),
        |ctx, k, &freq| {
            let anchor = anchor_index(k);
            let anchor_job = AcJob {
                circuit: &circuit,
                freq_hz: freqs[anchor],
            };
            ctx.ensure_preconditioner(anchor, k == anchor, &anchor_job);
            let job = AcJob {
                circuit: &circuit,
                freq_hz: freq,
            };
            let mut rhs = ctx.assemble(&job);
            if k == fault_point {
                FaultInjector::new(seed + k as u64).inject(fault, ctx.matrix_mut());
            }
            ctx.solve_backend_in_place(&mut rhs)?;
            Ok(rhs)
        },
    );
    let mut stats = plan.stats();
    for s in states {
        stats.merge(&s.stats());
    }
    (rows, stats)
}

/// Every (workers × panel) configuration must reproduce the reference run
/// bit for bit: same per-point solutions on success, the same enriched
/// error otherwise, and the same merged counters.
fn assert_config_invariant(fault: FaultKind, fault_point: usize, seed: u64) {
    assert_config_invariant_for(&sweep_with_fault, fault, fault_point, seed);
}

/// [`assert_config_invariant`] on the iterative (GMRES) sweep path.
fn assert_iterative_config_invariant(fault: FaultKind, fault_point: usize, seed: u64) {
    assert_config_invariant_for(&sweep_with_fault_iterative, fault, fault_point, seed);
}

fn assert_config_invariant_for(
    sweep: &dyn Fn(
        usize,
        usize,
        FaultKind,
        usize,
        u64,
    ) -> (Result<Vec<Vec<Complex64>>, SpiceError>, SolveStats),
    fault: FaultKind,
    fault_point: usize,
    seed: u64,
) {
    let (reference, ref_stats) = sweep(1, 1, fault, fault_point, seed);
    for workers in [1, 2, 4] {
        for panel in [1, 3, 16] {
            let (run, stats) = sweep(workers, panel, fault, fault_point, seed);
            match (&reference, &run) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (point, (ra, rb)) in a.iter().zip(b).enumerate() {
                        for (i, (x, y)) in ra.iter().zip(rb).enumerate() {
                            assert!(
                                x.re == y.re && x.im == y.im,
                                "{fault:?}: point {point} entry {i} diverged at \
                                 workers={workers}, panel={panel}: {x:?} != {y:?}"
                            );
                        }
                    }
                }
                (Err(a), Err(b)) => assert_eq!(
                    a, b,
                    "{fault:?}: error diverged at workers={workers}, panel={panel}"
                ),
                (a, b) => panic!(
                    "{fault:?}: outcome diverged at workers={workers}, panel={panel}: \
                     reference {a:?} vs run {b:?}"
                ),
            }
            // Counter totals are only chunking-invariant on success: after an
            // error, each worker stops at its own chunk's first failure, so
            // how much of the rest of the grid ran depends on the chunking.
            if reference.is_ok() {
                assert_eq!(
                    ref_stats, stats,
                    "{fault:?}: counters diverged at workers={workers}, panel={panel}"
                );
            }
        }
    }
}

#[test]
fn nan_fault_surfaces_as_the_same_named_error_everywhere() {
    let (outcome, _) = sweep_with_fault(3, 4, FaultKind::Nan, 9, 0xC0FFEE);
    match outcome {
        Err(SpiceError::NonFiniteStamp { row, col, .. }) => {
            // Coordinates map through the layout to circuit names.
            assert!(
                row.starts_with("V(") || row.starts_with("I("),
                "row = {row}"
            );
            assert!(
                col.starts_with("V(") || col.starts_with("I("),
                "col = {col}"
            );
        }
        other => panic!("expected NonFiniteStamp, got {other:?}"),
    }
    assert_config_invariant(FaultKind::Nan, 9, 0xC0FFEE);
}

#[test]
fn infinity_fault_is_config_invariant() {
    assert_config_invariant(FaultKind::PosInf, 0, 7);
}

#[test]
fn dead_column_fault_is_config_invariant() {
    // A zeroed column either exhausts the ladder as a named SingularSystem
    // or is rescued by the per-point gmin rung; both outcomes must be
    // identical at every configuration.
    let (outcome, stats) = sweep_with_fault(1, 1, FaultKind::NearSingular, 5, 0xDEAD);
    match &outcome {
        Err(e) => assert!(
            matches!(
                e,
                SpiceError::SingularSystem { .. } | SpiceError::ResidualCheckFailed { .. }
            ),
            "unexpected error {e:?}"
        ),
        Ok(_) => assert!(
            stats.gmin_bumps > 0,
            "a dead column can only succeed via the gmin rung; stats = {stats:?}"
        ),
    }
    assert_config_invariant(FaultKind::NearSingular, 5, 0xDEAD);
}

#[test]
fn degraded_pivot_fault_is_config_invariant() {
    assert_config_invariant(FaultKind::DegradedPivot, 17, 0xBEEF);
}

#[test]
fn nan_fault_on_the_iterative_path_matches_the_direct_error_everywhere() {
    // The preconditioner is healthy (built from the anchor's own assembly),
    // so the NaN lands in the GMRES operator; the non-finite guard rejects
    // it before any Krylov work and the direct-ladder fallback surfaces the
    // exact structured error the direct path reports for the same seed.
    let (direct, _) = sweep_with_fault(1, 1, FaultKind::Nan, 9, 0xC0FFEE);
    let (iterative, _) = sweep_with_fault_iterative(1, 1, FaultKind::Nan, 9, 0xC0FFEE);
    match (&direct, &iterative) {
        (Err(a), Err(b)) => assert_eq!(a, b, "iterative path must surface the direct error"),
        (a, b) => panic!("expected matching structured errors, got {a:?} vs {b:?}"),
    }
    assert_iterative_config_invariant(FaultKind::Nan, 9, 0xC0FFEE);
}

#[test]
fn dead_column_fault_on_the_iterative_path_is_config_invariant() {
    // A zeroed column makes the operator (near-)singular: GMRES cannot reach
    // its acceptance tolerance, so the point must be served by the fallback
    // ladder — rescued via the gmin rung or surfaced as the same named error
    // the direct path produces. Either way the outcome is identical at every
    // chunking.
    let (direct, _) = sweep_with_fault(1, 1, FaultKind::NearSingular, 5, 0xDEAD);
    let (iterative, stats) = sweep_with_fault_iterative(1, 1, FaultKind::NearSingular, 5, 0xDEAD);
    match (&direct, &iterative) {
        (Err(a), Err(b)) => assert_eq!(a, b, "iterative path must surface the direct error"),
        (Ok(_), Ok(_)) => assert!(
            stats.iterative_fallbacks > 0 && stats.gmin_bumps > 0,
            "a dead column can only be rescued through the fallback ladder; stats = {stats:?}"
        ),
        (a, b) => panic!("outcome class diverged between backends: {a:?} vs {b:?}"),
    }
    assert_iterative_config_invariant(FaultKind::NearSingular, 5, 0xDEAD);
}

#[test]
fn healthy_iterative_sweep_never_escalates_and_is_config_invariant() {
    // Control: no fault on the iterative plan. GMRES serves the points that
    // converge, misses fall back cleanly, and nothing touches the retry or
    // gmin rungs of the ladder.
    let (outcome, stats) = sweep_with_fault_iterative(4, 16, FaultKind::Nan, usize::MAX, 1);
    assert!(outcome.is_ok());
    assert_eq!(stats.residual_retries, 0);
    assert_eq!(stats.gmin_bumps, 0);
    assert!(
        stats.iterative_solves > 0,
        "the pinned plan must serve points by GMRES: {stats:?}"
    );
    assert_iterative_config_invariant(FaultKind::Nan, usize::MAX, 1);
}

#[test]
fn healthy_sweep_never_escalates_and_is_config_invariant() {
    // Control: no fault injected (fault_point beyond the grid). The ladder
    // must stay on its first rung — zero retries, zero gmin bumps.
    let (outcome, stats) = sweep_with_fault(4, 16, FaultKind::Nan, usize::MAX, 1);
    assert!(outcome.is_ok());
    assert_eq!(stats.residual_retries, 0);
    assert_eq!(stats.gmin_bumps, 0);
    assert_config_invariant(FaultKind::Nan, usize::MAX, 1);
}
