//! Worker-count AND panel-width invariance of the parallel sweep executor:
//! the all-nodes stability scan (and the classical AC sweep) must produce
//! **bitwise identical** results at `LOOPSCOPE_THREADS=1`, `=3` and `=4`
//! and at any `LOOPSCOPE_PANEL` width (1 = the per-RHS solve path, wider =
//! blocked multi-RHS panels), and the merged solve counters must be
//! identical too.
//!
//! NOTE: this file mutates the process environment (`LOOPSCOPE_THREADS` and
//! `LOOPSCOPE_PANEL` are deliberately re-read on every sweep call so
//! benches and tests can switch them), so it holds exactly ONE `#[test]` in
//! its own test binary: tests in one binary run on parallel threads, and a
//! sibling test reading the environment between this test's set/remove
//! calls would be racy.

use loopscope_math::{Complex64, FrequencyGrid};
use loopscope_netlist::{Circuit, SourceSpec};
use loopscope_spice::ac::AcAnalysis;
use loopscope_spice::assembly::SolveStats;
use loopscope_spice::dc::solve_dc;
use loopscope_spice::par;

fn rc_chain(sections: usize) -> Circuit {
    let mut c = Circuit::new("rc chain");
    let input = c.node("in");
    c.add_vsource(
        "V1",
        input,
        Circuit::GROUND,
        SourceSpec::dc_ac(1.0, 1.0, 0.0),
    );
    let mut prev = input;
    for k in 0..sections {
        let n = c.node(&format!("n{k}"));
        c.add_resistor(&format!("R{k}"), prev, n, 1.0e3 * (k + 1) as f64);
        c.add_capacitor(
            &format!("C{k}"),
            n,
            Circuit::GROUND,
            1.0e-9 / (k + 1) as f64,
        );
        prev = n;
    }
    c
}

/// Runs a fresh all-nodes scan with the given `LOOPSCOPE_THREADS` value.
fn all_nodes_with_threads(threads: &str) -> (Vec<Vec<Complex64>>, SolveStats) {
    std::env::set_var(par::THREADS_ENV, threads);
    let c = rc_chain(7);
    let op = solve_dc(&c).unwrap();
    let ac = AcAnalysis::new(&c, &op).unwrap();
    // 121 points — the paper-scale scan the parallel executor targets.
    let grid = FrequencyGrid::log_decade(1.0e2, 1.0e8, 20);
    let responses = ac.driving_point_all_nodes(&grid).unwrap();
    (responses, ac.solve_stats())
}

#[test]
fn sweeps_are_bitwise_identical_at_any_worker_count() {
    // --- All-nodes scan: serial per-RHS reference vs parallel + panels ---
    // The reference runs one worker with LOOPSCOPE_PANEL=1: the pre-panel
    // per-RHS inner loop. Every other (threads × panel) combination —
    // including panels wider than the node count — must reproduce it bit
    // for bit: a panel only changes how solves are batched, never their
    // per-column arithmetic.
    std::env::set_var(par::PANEL_ENV, "1");
    let (serial, serial_stats) = all_nodes_with_threads("1");
    for (threads, panel) in [("1", "3"), ("1", "64"), ("3", "1"), ("3", "4"), ("4", "16")] {
        std::env::set_var(par::PANEL_ENV, panel);
        let (parallel, parallel_stats) = all_nodes_with_threads(threads);
        assert_eq!(serial.len(), parallel.len());
        for (node, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s.len(), p.len());
            for (i, (a, b)) in s.iter().zip(p).enumerate() {
                assert!(
                    a.re == b.re && a.im == b.im,
                    "node {node}, point {i}: {a:?} != {b:?} at \
                     LOOPSCOPE_THREADS={threads}, LOOPSCOPE_PANEL={panel}"
                );
            }
        }
        // Counter totals are sums over plan + workers: chunking-independent.
        assert_eq!(
            serial_stats, parallel_stats,
            "threads = {threads}, panel = {panel}"
        );
    }
    // The default panel width (env unset) must match too.
    std::env::remove_var(par::PANEL_ENV);
    let (default_panel, default_stats) = all_nodes_with_threads("2");
    for (s, p) in serial.iter().zip(&default_panel) {
        for (a, b) in s.iter().zip(p) {
            assert!(a.re == b.re && a.im == b.im, "default panel width diverged");
        }
    }
    assert_eq!(serial_stats, default_stats);

    // --- Classical AC sweep: serial vs 4 workers -------------------------
    let run = |threads: &str| {
        std::env::set_var(par::THREADS_ENV, threads);
        let c = rc_chain(5);
        let op = solve_dc(&c).unwrap();
        let ac = AcAnalysis::new(&c, &op).unwrap();
        let grid = FrequencyGrid::log_decade(1.0e2, 1.0e7, 15);
        let sweep = ac.sweep(&grid).unwrap();
        let out = c.find_node("n4").unwrap();
        (sweep.response(out), ac.solve_stats())
    };
    let (serial, serial_stats) = run("1");
    let (parallel, parallel_stats) = run("4");
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.re, b.re);
        assert_eq!(a.im, b.im);
    }
    assert_eq!(serial_stats, parallel_stats);
    std::env::remove_var(par::THREADS_ENV);
}
