//! The [`Strategy`] trait and implementations for ranges, tuples and string
//! patterns.

use crate::string::generate_from_pattern;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A source of random values of one type. The shim equivalent of
/// `proptest::strategy::Strategy` — generation only, no shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                debug_assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $ty
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                debug_assert!(self.start < self.end, "empty integer range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.next_below(span) as $ty)
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

/// String-pattern strategy: a `&str` is treated as a simplified regex (see
/// [`crate::string`]) and generates matching strings.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = TestRng::deterministic("f64 range");
        let strat = -2.5f64..7.5;
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn usize_range_hits_all_values() {
        let mut rng = TestRng::deterministic("usize range");
        let strat = 3usize..6;
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[strat.generate(&mut rng)] = true;
        }
        assert_eq!(&seen[3..], &[true, true, true]);
        assert_eq!(&seen[..3], &[false, false, false]);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::deterministic("tuple");
        let strat = (0usize..4, -1.0f64..1.0, (10usize..20, 0.0f64..1.0));
        let (a, b, (c, d)) = strat.generate(&mut rng);
        assert!(a < 4);
        assert!((-1.0..1.0).contains(&b));
        assert!((10..20).contains(&c));
        assert!((0.0..1.0).contains(&d));
    }

    #[test]
    fn just_clones_value() {
        let mut rng = TestRng::deterministic("just");
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}
