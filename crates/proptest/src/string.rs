//! Tiny regex-like string generator.
//!
//! Supports the pattern subset loopscope's tests use: literal characters,
//! character classes (`[a-z0-9_]` with ranges and singletons), and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*` and `+` (the unbounded ones are capped
//! at 8 repetitions).

use crate::test_runner::TestRng;

const UNBOUNDED_CAP: usize = 8;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Flattened list of candidate characters.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut members = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .expect("unterminated character class in string pattern");
        match c {
            ']' => {
                if let Some(p) = pending {
                    members.push(p);
                }
                return members;
            }
            '-' => {
                // A range if we have a pending start and a following end.
                let start = pending.take();
                match (start, chars.peek().copied()) {
                    (Some(s), Some(e)) if e != ']' => {
                        chars.next();
                        let (lo, hi) = (s as u32, e as u32);
                        assert!(lo <= hi, "inverted range in character class");
                        for v in lo..=hi {
                            members.push(char::from_u32(v).expect("valid range char"));
                        }
                    }
                    _ => {
                        if let Some(s) = start {
                            members.push(s);
                        }
                        members.push('-');
                    }
                }
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    members.push(p);
                }
            }
        }
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            match body.split_once(',') {
                Some((lo, hi)) => {
                    let lo: usize = lo.trim().parse().expect("bad quantifier lower bound");
                    let hi: usize = hi.trim().parse().expect("bad quantifier upper bound");
                    (lo, hi)
                }
                None => {
                    let n: usize = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Literal(chars.next().expect("dangling escape in pattern")),
            other => Atom::Literal(other),
        };
        let (min, max) = parse_quantifier(&mut chars);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generates a random string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse_pattern(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = if piece.max > piece.min {
            piece.min + rng.next_below((piece.max - piece.min + 1) as u64) as usize
        } else {
            piece.min
        };
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(members) => {
                    assert!(!members.is_empty(), "empty character class");
                    out.push(members[rng.next_below(members.len() as u64) as usize]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches_identifier(s: &str) -> bool {
        let mut chars = s.chars();
        match chars.next() {
            Some(c) if c.is_ascii_lowercase() => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    }

    #[test]
    fn identifier_pattern_generates_identifiers() {
        let mut rng = TestRng::deterministic("identifiers");
        for _ in 0..500 {
            let s = generate_from_pattern("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(matches_identifier(&s), "bad identifier {s:?}");
            assert!(!s.is_empty() && s.len() <= 9);
        }
    }

    #[test]
    fn literal_pattern_is_fixed() {
        let mut rng = TestRng::deterministic("literal");
        assert_eq!(generate_from_pattern("abc", &mut rng), "abc");
    }

    #[test]
    fn exact_repetition() {
        let mut rng = TestRng::deterministic("repeat");
        let s = generate_from_pattern("[01]{4}", &mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.chars().all(|c| c == '0' || c == '1'));
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = TestRng::deterministic("dash");
        let s = generate_from_pattern("[a-]", &mut rng);
        assert!(s == "a" || s == "-");
    }
}
