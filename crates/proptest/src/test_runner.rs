//! Deterministic pseudo-random number generation for property tests.

/// A small, fast, deterministic RNG (xorshift64* core with a splitmix-style
/// seeding stage). Seeded from the test name so every run of a given property
/// draws the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose seed is derived from `label` (typically the
    /// property name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, then mixed so short labels still produce
        // well-distributed initial states.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = Self {
            state: h | 1, // xorshift state must be non-zero
        };
        // Warm the state up past the low-entropy seed.
        for _ in 0..4 {
            rng.next_u64();
        }
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below requires a positive bound");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = TestRng::deterministic("one");
        let mut b = TestRng::deterministic("two");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = TestRng::deterministic("f64");
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
