//! Collection strategies: random vectors and hash sets.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// A size specification for collection strategies: either an exact length or
/// a half-open range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        if self.max <= self.min + 1 {
            self.min
        } else {
            self.min + rng.next_below((self.max - self.min) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing `HashSet`s of distinct values.
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.draw(rng);
        let mut set = HashSet::with_capacity(target);
        // Duplicates are re-drawn; bail out after a generous attempt budget so
        // low-cardinality element strategies cannot loop forever.
        let mut attempts = 0usize;
        while set.len() < target && attempts < 50 * (target + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Generates hash sets of distinct elements; the set size is drawn from
/// `size` (best-effort when the element domain is small).
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::deterministic("vec sizes");
        let strat = vec(0.0f64..1.0, 2..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 7, "len = {}", v.len());
        }
    }

    #[test]
    fn vec_exact_size() {
        let mut rng = TestRng::deterministic("vec exact");
        let strat = vec(0usize..10, 5usize);
        assert_eq!(strat.generate(&mut rng).len(), 5);
    }

    #[test]
    fn hash_set_produces_distinct_elements() {
        let mut rng = TestRng::deterministic("hash set");
        let strat = hash_set("[a-z]{1,6}", 3..10);
        for _ in 0..50 {
            let s = strat.generate(&mut rng);
            assert!(s.len() >= 3 && s.len() < 10, "len = {}", s.len());
        }
    }
}
