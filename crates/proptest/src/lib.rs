//! A self-contained, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest` cannot
//! be fetched from crates.io. This shim implements the subset of the API that
//! loopscope's property tests actually use, with the same call syntax:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! * range strategies over `f64` / integers, tuple strategies,
//! * `prop::collection::vec` / `prop::collection::hash_set`,
//! * string-pattern strategies for simple character-class regexes,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Generation is pseudo-random but fully deterministic: the RNG is seeded from
//! the test name, so failures are reproducible run-to-run. Unlike the real
//! proptest there is no shrinking — a failing case reports the case index and
//! the assertion message only.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Items re-exported the way `proptest::prelude::*` exposes them.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current property case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}` ({:?} != {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Inequality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}` (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Discards the current case (counted as a pass) when the precondition does
/// not hold. The real proptest re-draws; for the small predicates used here,
/// skipping is statistically equivalent.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests. Accepts the same surface syntax as the real
/// `proptest!` macro for `fn name(pattern in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        msg
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
