//! Ablation A2 — paper §2 claim: the double differentiation and normalization
//! of the stability plot "filters out the effects of the real poles and
//! zeros, while responding to the complex poles and zeros".
//!
//! The bench scans an RC ladder (real poles only) and a series RLC divider
//! with known ζ, and prints the deepest stability-plot value seen on each —
//! the ladder must stay above the ζ = 1 threshold while the RLC reads −1/ζ².
//!
//! Regenerate with `cargo bench -p loopscope-bench --bench ablation_real_pole_rejection`.

use criterion::{criterion_group, criterion_main, Criterion};
use loopscope_circuits::blocks::{rc_ladder, series_rlc, series_rlc_damping};
use loopscope_core::{StabilityAnalyzer, StabilityOptions};

fn options() -> StabilityOptions {
    StabilityOptions {
        f_start: 1.0e2,
        f_stop: 1.0e8,
        points_per_decade: 100,
        ..Default::default()
    }
}

fn print_comparison() {
    println!("\n=== Ablation A2: real-pole rejection vs complex-pole response ===");

    let (ladder, nodes) = rc_ladder(6, 1.0e3, 1.0e-9);
    let analyzer = StabilityAnalyzer::new(ladder, options()).expect("ladder OP");
    let mut deepest: f64 = 0.0;
    for node in &nodes {
        let r = analyzer.single_node(*node).expect("scan");
        let min = r
            .plot
            .values()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        deepest = deepest.min(min);
    }
    println!("  6-section RC ladder (real poles only): deepest plot value {deepest:.3}  → no loop reported");

    let l: f64 = 1.0e-3;
    let cap: f64 = 1.0e-9;
    println!("  series RLC dividers (complex poles, peak must equal −1/ζ²):");
    for zeta_target in [0.1f64, 0.2, 0.3, 0.5] {
        let r = 2.0 * zeta_target * (l / cap).sqrt();
        let (circuit, out) = series_rlc(r, l, cap);
        let zeta = series_rlc_damping(r, l, cap);
        let analyzer = StabilityAnalyzer::new(circuit, options()).expect("RLC OP");
        let result = analyzer.single_node(out).expect("scan");
        let peak = result.peak.map(|p| p.y).unwrap_or(f64::NAN);
        println!(
            "    ζ = {:.2}: expected {:>8.2}, measured {:>8.2}",
            zeta,
            -1.0 / (zeta * zeta),
            peak
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let (ladder, nodes) = rc_ladder(6, 1.0e3, 1.0e-9);
    let ladder_analyzer = StabilityAnalyzer::new(ladder, options()).expect("ladder OP");
    let first = nodes[0];
    let (rlc, out) = series_rlc(400.0, 1.0e-3, 1.0e-9);
    let rlc_analyzer = StabilityAnalyzer::new(rlc, options()).expect("RLC OP");

    let mut group = c.benchmark_group("ablation_real_pole_rejection");
    group.sample_size(10);
    group.bench_function("rc_ladder_node_scan", |b| {
        b.iter(|| std::hint::black_box(ladder_analyzer.single_node(first).unwrap()))
    });
    group.bench_function("series_rlc_node_scan", |b| {
        b.iter(|| std::hint::black_box(rlc_analyzer.single_node(out).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
