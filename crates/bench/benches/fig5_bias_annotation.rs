//! Experiment F5 — paper Fig. 5: the zero-TC bias circuit annotated with
//! per-node stability values, before and after the ≈1 pF compensation at the
//! collector of Q3.
//!
//! Regenerate with `cargo bench -p loopscope-bench --bench fig5_bias_annotation`.

use criterion::{criterion_group, criterion_main, Criterion};
use loopscope_bench::{fmt_freq, nominal_bias};
use loopscope_circuits::{zero_tc_bias, BiasParams};
use loopscope_core::{StabilityAnalyzer, StabilityOptions};

fn options() -> StabilityOptions {
    StabilityOptions {
        f_start: 1.0e5,
        f_stop: 1.0e10,
        points_per_decade: 100,
        ..Default::default()
    }
}

fn print_annotation(params: &BiasParams, label: &str) {
    let (circuit, _) = zero_tc_bias(params);
    let analyzer = StabilityAnalyzer::new(circuit, options()).expect("bias cell converges");
    let report = analyzer.all_nodes().expect("all-nodes scan succeeds");
    println!("--- {label} ---");
    for (name, peak, freq) in report.annotations() {
        println!(
            "  {:<14} stability peak {:>7.2}   natural frequency {}",
            name,
            peak,
            fmt_freq(freq)
        );
    }
    if report.annotations().is_empty() {
        println!("  (no under-damped nodes)");
    }
    println!();
}

fn print_fig5() {
    println!("\n=== Fig. 5: bias circuit annotated with stability values ===");
    print_annotation(&nominal_bias(), "uncompensated (nominal)");
    print_annotation(
        &BiasParams {
            c_comp: 1.0e-12,
            ..nominal_bias()
        },
        "compensated (+1 pF at the collector of Q3)",
    );
    println!("  paper reference: local loop ≈ 50 MHz, equivalent overshoot 16–25 %, PM < 50°\n");
}

fn bench(c: &mut Criterion) {
    print_fig5();
    let (circuit, _) = zero_tc_bias(&nominal_bias());
    let analyzer = StabilityAnalyzer::new(circuit, options()).expect("bias cell converges");
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("bias_all_nodes_annotation", |b| {
        b.iter(|| std::hint::black_box(analyzer.all_nodes().unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
