//! Ablation A1 — paper §1.1 claim: the AC-injection method "significantly
//! speeds up the simulation compared to time-domain analysis and broadens the
//! range of frequency coverage".
//!
//! This bench compares, on the same circuit, the cost of the stability-plot
//! scan of a node against the cost of the transient "node pulsing" baseline
//! that would be needed to characterize the same loop, and prints the
//! wall-clock ratio.
//!
//! Regenerate with `cargo bench -p loopscope-bench --bench ablation_ac_vs_transient`.

use criterion::{criterion_group, criterion_main, Criterion};
use loopscope_bench::{bench_options, nominal_opamp};
use loopscope_circuits::two_stage_buffer;
use loopscope_core::baseline::transient_overshoot;
use loopscope_core::StabilityAnalyzer;
use std::time::Instant;

fn print_comparison() {
    let (circuit, nodes) = two_stage_buffer(&nominal_opamp());
    let analyzer =
        StabilityAnalyzer::new(circuit.clone(), bench_options()).expect("operating point");

    let t0 = Instant::now();
    let ac_result = analyzer.single_node(nodes.output).expect("AC scan");
    let ac_time = t0.elapsed();

    // The transient baseline has to resolve the ~3 MHz ringing (ns steps) for
    // several microseconds to see it settle — the cost the paper's method avoids.
    let t1 = Instant::now();
    let tran_result =
        transient_overshoot(&circuit, nodes.output, 2.0e-9, 8.0e-6).expect("transient baseline");
    let tran_time = t1.elapsed();

    println!("\n=== Ablation A1: AC stability scan vs transient node pulsing ===");
    println!(
        "  AC stability plot    : {:>8.1} ms  (ζ = {:.3})",
        ac_time.as_secs_f64() * 1.0e3,
        ac_result
            .estimate
            .map(|e| e.damping_ratio)
            .unwrap_or(f64::NAN)
    );
    println!(
        "  transient overshoot  : {:>8.1} ms  (ζ = {:.3})",
        tran_time.as_secs_f64() * 1.0e3,
        tran_result.equivalent_damping
    );
    println!(
        "  speed-up             : {:.1}×  (frequency coverage: {:.0e}–{:.0e} Hz in one run)\n",
        tran_time.as_secs_f64() / ac_time.as_secs_f64(),
        bench_options().f_start,
        bench_options().f_stop
    );
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let (circuit, nodes) = two_stage_buffer(&nominal_opamp());
    let analyzer =
        StabilityAnalyzer::new(circuit.clone(), bench_options()).expect("operating point");
    let mut group = c.benchmark_group("ablation_ac_vs_transient");
    group.sample_size(10);
    group.bench_function("ac_stability_scan", |b| {
        b.iter(|| std::hint::black_box(analyzer.single_node(nodes.output).unwrap()))
    });
    group.bench_function("transient_node_pulsing", |b| {
        b.iter(|| {
            std::hint::black_box(
                transient_overshoot(&circuit, nodes.output, 2.0e-9, 8.0e-6).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
