//! Experiment T1 — paper Table 1: key performance characteristics of a
//! second-order system (damping ratio vs overshoot, phase margin, peak
//! magnitude and performance index).
//!
//! Regenerate with `cargo bench -p loopscope-bench --bench table1`.

use criterion::{criterion_group, criterion_main, Criterion};
use loopscope_core::table1;

fn print_table1() {
    println!("\n=== Table 1: second-order system characteristics ===");
    println!(
        "{:>5} {:>18} {:>18} {:>16} {:>18}",
        "ζ", "overshoot [%]", "phase margin [°]", "max magnitude", "performance index"
    );
    for row in table1() {
        println!(
            "{:>5.1} {:>18.1} {:>18.1} {:>16.2} {:>18.1}",
            row.zeta,
            row.percent_overshoot,
            row.phase_margin_deg,
            row.max_magnitude,
            row.performance_index
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table1();
    c.bench_function("table1_generation", |b| {
        b.iter(|| std::hint::black_box(table1()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
