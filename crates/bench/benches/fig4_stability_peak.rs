//! Experiment F4 — paper Fig. 4: the stability plot at the buffer output,
//! whose negative peak (≈ −29 at ≈ 3.2 MHz in the paper) gives the loop's
//! damping ratio and estimated phase margin without breaking the loop.
//!
//! Regenerate with `cargo bench -p loopscope-bench --bench fig4_stability_peak`.

use criterion::{criterion_group, criterion_main, Criterion};
use loopscope_bench::{fmt_freq, opamp_analyzer};

fn print_fig4() {
    let (analyzer, nodes) = opamp_analyzer();
    let result = analyzer
        .single_node(nodes.output)
        .expect("single-node run succeeds");
    println!("\n=== Fig. 4: stability plot at the output node (loop left closed) ===");
    match (result.peak, result.estimate) {
        (Some(peak), Some(est)) => {
            println!("  stability peak       : {:.1}", peak.y);
            println!("  natural frequency    : {}", fmt_freq(est.natural_freq_hz));
            println!("  damping ratio ζ      : {:.3}", est.damping_ratio);
            println!(
                "  estimated PM         : {:.1}° (exact 2nd-order {:.1}°)",
                est.phase_margin_deg, est.phase_margin_exact_deg
            );
            println!("  equivalent overshoot : {:.0} %", est.percent_overshoot);
        }
        _ => println!("  no peak detected — circuit unexpectedly well damped"),
    }
    println!(
        "  paper reference      : peak ≈ −29 at ≈ 3.2 MHz ⇒ ζ ≈ 0.19, PM slightly below 20°\n"
    );

    // A short excerpt of the plot around the peak, the data behind the figure.
    if let Some(peak) = result.peak {
        println!("  plot excerpt (around the peak):");
        let freqs = result.plot.freqs();
        let values = result.plot.values();
        let lo = peak.index.saturating_sub(5);
        let hi = (peak.index + 6).min(freqs.len());
        for i in lo..hi {
            println!("    {:>12.4e} Hz   P = {:>9.3}", freqs[i], values[i]);
        }
        println!();
    }
}

fn bench(c: &mut Criterion) {
    print_fig4();
    let (analyzer, nodes) = opamp_analyzer();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("single_node_stability_plot", |b| {
        b.iter(|| std::hint::black_box(analyzer.single_node(nodes.output).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
