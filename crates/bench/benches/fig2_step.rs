//! Experiment F2 — paper Fig. 2: transient step response of the buffer
//! showing ~50–55 % overshoot (the traditional time-domain baseline).
//!
//! Regenerate with `cargo bench -p loopscope-bench --bench fig2_step`.

use criterion::{criterion_group, criterion_main, Criterion};
use loopscope_bench::nominal_opamp;
use loopscope_circuits::two_stage_buffer;
use loopscope_core::baseline::transient_overshoot;

const DT: f64 = 2.0e-9;
const T_STOP: f64 = 8.0e-6;

fn print_fig2() {
    let (circuit, nodes) = two_stage_buffer(&nominal_opamp());
    let result =
        transient_overshoot(&circuit, nodes.output, DT, T_STOP).expect("transient baseline runs");
    println!("\n=== Fig. 2: closed-loop step response (traditional baseline) ===");
    println!("  step                 : 10 mV at the non-inverting input");
    println!("  measured overshoot   : {:.1} %", result.percent_overshoot);
    println!("  equivalent ζ         : {:.3}", result.equivalent_damping);
    println!(
        "  settled output       : {:.4} V → {:.4} V",
        result.initial_value, result.final_value
    );
    println!("  paper reference      : ~50–55 % overshoot for the nominal compensation\n");
}

fn bench(c: &mut Criterion) {
    print_fig2();
    let (circuit, nodes) = two_stage_buffer(&nominal_opamp());
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("transient_overshoot_baseline", |b| {
        b.iter(|| {
            std::hint::black_box(transient_overshoot(&circuit, nodes.output, DT, T_STOP).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
