//! Experiment S1 — symbolic/numeric LU split and fill-reducing ordering:
//! factor-once-vs-refactor on the op-amp MNA matrix, an N-stage RC ladder
//! and a ≥1k-node 2-D mesh.
//!
//! The whole-circuit stability scan solves `Y(jω)·x = b` at hundreds of
//! frequency points with an identical sparsity pattern; this bench isolates
//! the solver-side win of reusing the pivot order and fill pattern
//! ([`loopscope_sparse::SparseLu::refactor`]) instead of running a fresh
//! pivoting factorization per point, compares the **minimum-degree ordered,
//! threshold-pivoted** pattern against the natural partial-pivoting one
//! (nnz(L+U) and refactor throughput), prints the sweep-level counters
//! proving a whole scan performs exactly one symbolic analysis, (S3)
//! measures the thread scaling of the `SweepPlan`/`SolveContext` parallel
//! sweep executor at 1/2/4 workers, and (S4) measures the KLU-style
//! block-triangular factorization (fill vs the whole-matrix ordering, with
//! the block count) and the blocked multi-RHS all-nodes scan against the
//! per-RHS path. (S8) compares the LTE-controlled adaptive transient
//! stepper against the fixed grid on a stiff two-time-constant RC at
//! matched accuracy. (S9) races the `LOOPSCOPE_SOLVER` backends — direct
//! per-point refactorization vs `auto` vs forced stale-preconditioned
//! GMRES — on a ≥ 100×100 power-grid driving-point sweep, with the new
//! `gmres_iterations` / `preconditioner_refreshes` counters in the JSON.
//!
//! Every scenario's ns/op — plus nnz(L+U), BTF block count and
//! accepted/rejected transient step counts where they apply — is also
//! written as machine-readable JSON to
//! `target/BENCH_solver.json`, so the performance trajectory can be tracked
//! across PRs (CI runs the bench in quick mode — `BENCH_QUICK=1`, fewer
//! iterations, same assertions — and uploads the JSON as an artifact).
//!
//! Regenerate with `cargo bench -p loopscope-bench --bench solver_refactor`.

use criterion::{criterion_group, criterion_main, Criterion};
use loopscope_circuits::blocks::{opamp_cascade, power_grid, rc_ladder};
use loopscope_circuits::{mos_two_stage_buffer, two_stage_buffer, OpAmpParams};
use loopscope_math::{Complex64, FrequencyGrid};
use loopscope_netlist::{Circuit, SourceSpec};
use loopscope_sparse::{
    kernels, ordering, CsrMatrix, KernelBackend, LuWorkspace, RefineWorkspace, SparseLu,
    SymbolicLu, TripletMatrix,
};
use loopscope_spice::ac::AcAnalysis;
use loopscope_spice::batch::{driving_point_monte_carlo, ParameterVariation};
use loopscope_spice::dc::solve_dc;
use loopscope_spice::par;
use loopscope_spice::solver;
use loopscope_spice::tran::{TransientAnalysis, TransientOptions, TransientResult};
use std::time::Instant;

/// `BENCH_QUICK=1` (any non-empty value but `0`) cuts iteration counts for
/// CI: same scenarios, same assertions, a fraction of the wall clock.
fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Scales a full-run iteration count down in quick mode.
fn iters(full: usize) -> usize {
    if quick_mode() {
        (full / 10).max(2)
    } else {
        full
    }
}

/// Wall-clock ratio assertions are hard in a full run but demoted to
/// warnings in quick mode: CI runs on shared, noisy-neighbor vCPUs with
/// minimal repetitions, where a scheduling hiccup could fail a timing
/// ratio with no code change. Structural assertions (fill, block counts,
/// solve counters) are deterministic and stay hard everywhere.
fn assert_timing(condition: bool, message: &str) {
    if condition {
        return;
    }
    if quick_mode() {
        println!("WARNING (BENCH_QUICK: timing assertion demoted to warning): {message}");
    } else {
        panic!("{message}");
    }
}

/// One scenario line of the machine-readable `BENCH_solver.json`.
struct Record {
    name: String,
    ns_per_op: f64,
    nnz_lu: Option<usize>,
    blocks: Option<usize>,
    accepted_steps: Option<usize>,
    rejected_steps: Option<usize>,
    gmres_iterations: Option<usize>,
    preconditioner_refreshes: Option<usize>,
}

impl Record {
    fn new(name: impl Into<String>, ns_per_op: f64) -> Self {
        Self {
            name: name.into(),
            ns_per_op,
            nnz_lu: None,
            blocks: None,
            accepted_steps: None,
            rejected_steps: None,
            gmres_iterations: None,
            preconditioner_refreshes: None,
        }
    }

    fn with_structure(mut self, nnz_lu: usize, blocks: usize) -> Self {
        self.nnz_lu = Some(nnz_lu);
        self.blocks = Some(blocks);
        self
    }

    fn with_steps(mut self, accepted: usize, rejected: usize) -> Self {
        self.accepted_steps = Some(accepted);
        self.rejected_steps = Some(rejected);
        self
    }

    fn with_solver_counters(mut self, gmres_iterations: usize, refreshes: usize) -> Self {
        self.gmres_iterations = Some(gmres_iterations);
        self.preconditioner_refreshes = Some(refreshes);
        self
    }
}

/// Writes the collected scenario records to `target/BENCH_solver.json`
/// (hand-rolled JSON — the workspace is offline and dependency-free).
fn write_bench_json(records: &[Record]) {
    // Benches run with the package directory as cwd; resolve the WORKSPACE
    // target directory so CI can pick the file up at target/BENCH_solver.json.
    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target").to_string());
    let path = std::path::Path::new(&target).join("BENCH_solver.json");
    let mut out = String::from("{\n  \"bench\": \"solver_refactor\",\n");
    out.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in records.iter().enumerate() {
        let nnz = r
            .nnz_lu
            .map_or_else(|| "null".to_string(), |v| v.to_string());
        let blocks = r
            .blocks
            .map_or_else(|| "null".to_string(), |v| v.to_string());
        let accepted = r
            .accepted_steps
            .map_or_else(|| "null".to_string(), |v| v.to_string());
        let rejected = r
            .rejected_steps
            .map_or_else(|| "null".to_string(), |v| v.to_string());
        let gmres = r
            .gmres_iterations
            .map_or_else(|| "null".to_string(), |v| v.to_string());
        let refreshes = r
            .preconditioner_refreshes
            .map_or_else(|| "null".to_string(), |v| v.to_string());
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.1}, \"nnz_lu\": {}, \"blocks\": {}, \
             \"accepted_steps\": {}, \"rejected_steps\": {}, \
             \"gmres_iterations\": {}, \"preconditioner_refreshes\": {}}}{}\n",
            r.name,
            r.ns_per_op,
            nnz,
            blocks,
            accepted,
            rejected,
            gmres,
            refreshes,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::create_dir_all(&target).and_then(|()| std::fs::write(&path, &out)) {
        Ok(()) => println!(
            "\nwrote {} scenario record(s) to {}",
            records.len(),
            path.display()
        ),
        Err(e) => println!("\nWARNING: could not write {}: {e}", path.display()),
    }
}

/// Builds the complex MNA admittance matrix of an N-stage RC ladder at a
/// given angular-frequency scale (same pattern for every scale).
fn rc_ladder_matrix(stages: usize, jw_scale: f64) -> CsrMatrix<Complex64> {
    let mut t = TripletMatrix::<Complex64>::new(stages, stages);
    for i in 0..stages {
        let g = 1.0e-3 * (1.0 + (i % 7) as f64 * 0.1);
        let jwc = Complex64::new(0.0, jw_scale * 1.0e-9 * (1.0 + (i % 5) as f64 * 0.2));
        let mut diag = Complex64::from_real(g) + jwc;
        if i > 0 {
            t.push(i, i - 1, Complex64::from_real(-g));
            diag += Complex64::from_real(g);
        }
        if i + 1 < stages {
            t.push(i, i + 1, Complex64::from_real(-g));
        }
        t.push(i, i, diag);
    }
    t.to_csr()
}

/// Mean wall-clock time of `f` over `iters` runs, in nanoseconds.
fn time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Minimum per-op time over `blocks` back-to-back [`time_ns`] blocks of
/// `reps` runs each — the noise-robust variant for ratio assertions: the
/// minimum strips scheduler interference on shared machines, and the ratio
/// of two minima reflects what the code actually costs.
fn time_ns_best<F: FnMut()>(blocks: usize, reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..blocks {
        best = best.min(time_ns(reps, &mut f));
    }
    best
}

fn print_speedup_table(
    label: &str,
    matrices: &[CsrMatrix<Complex64>],
    symbolic: &SymbolicLu,
    reps: usize,
    records: &mut Vec<Record>,
) {
    let mut k = 0usize;
    let fresh_ns = time_ns(reps, || {
        let m = &matrices[k % matrices.len()];
        k += 1;
        std::hint::black_box(SparseLu::factor(m).expect("factor"));
    });
    let mut k = 0usize;
    let refactor_ns = time_ns(reps, || {
        let m = &matrices[k % matrices.len()];
        k += 1;
        let lu = SparseLu::refactor(symbolic, m).expect("refactor");
        assert!(lu.refactored(), "bench matrices must not force a fallback");
        std::hint::black_box(lu);
    });
    println!(
        "{label:<28} fresh factor {:>10.2} µs   refactor {:>10.2} µs   speedup {:>5.2}x",
        fresh_ns / 1.0e3,
        refactor_ns / 1.0e3,
        fresh_ns / refactor_ns
    );
    records.push(Record::new(format!("{label}_fresh_factor"), fresh_ns));
    records.push(
        Record::new(format!("{label}_refactor"), refactor_ns)
            .with_structure(symbolic.fill_nnz(), symbolic.block_count()),
    );
}

/// Complex admittance matrix of a p×p 2-D RC mesh (5-point stencil): the
/// classic pattern where elimination order decides between O(n·p) fill
/// (banded/natural order) and far less (minimum degree).
fn mesh_matrix(p: usize, jw_scale: f64) -> CsrMatrix<Complex64> {
    let n = p * p;
    let mut t = TripletMatrix::<Complex64>::new(n, n);
    for i in 0..p {
        for j in 0..p {
            let u = i * p + j;
            let g = g_of(i, j);
            let jwc = Complex64::new(0.0, jw_scale * 1.0e-9 * (1.0 + ((i * j) % 3) as f64 * 0.2));
            let mut diag = Complex64::from_real(1.0e-6) + jwc;
            if i + 1 < p {
                t.push(u, u + p, Complex64::from_real(-g));
                t.push(u + p, u, Complex64::from_real(-g));
                diag += Complex64::from_real(g);
            }
            if i > 0 {
                diag += Complex64::from_real(g_of(i - 1, j));
            }
            if j + 1 < p {
                t.push(u, u + 1, Complex64::from_real(-g));
                t.push(u + 1, u, Complex64::from_real(-g));
                diag += Complex64::from_real(g);
            }
            if j > 0 {
                diag += Complex64::from_real(g_of(i, j - 1));
            }
            t.push(u, u, diag);
        }
    }
    t.to_csr()
}

/// The conductance used by [`mesh_matrix`] for the edge leaving cell (i, j).
fn g_of(i: usize, j: usize) -> f64 {
    1.0e-3 * (1.0 + ((i + j) % 5) as f64 * 0.1)
}

/// Mean refactor time over the matrix set using the in-place
/// (allocation-free) hot path, in nanoseconds.
fn refactor_ns(matrices: &[CsrMatrix<Complex64>], symbolic: &SymbolicLu, reps: usize) -> f64 {
    let mut lu = SparseLu::refactor(symbolic, &matrices[0]).expect("refactor");
    assert!(lu.refactored(), "bench matrices must not force a fallback");
    let mut ws = LuWorkspace::new();
    let mut k = 0usize;
    time_ns(reps, || {
        let m = &matrices[k % matrices.len()];
        k += 1;
        lu.refactor_into(symbolic, m, &mut ws).expect("refactor");
        assert!(lu.refactored(), "bench matrices must not force a fallback");
        std::hint::black_box(&mut lu);
    })
}

/// Experiment S2 — fill-reducing ordering: nnz(L+U) and refactor throughput
/// of the minimum-degree ordered pattern vs the natural partial-pivoting one.
fn print_ordering_table(
    label: &str,
    matrices: &[CsrMatrix<Complex64>],
    reps: usize,
    require_strictly_less_fill: bool,
    records: &mut Vec<Record>,
) {
    let (_, natural) = SparseLu::factor_with_symbolic(&matrices[0]).expect("factors");
    let order = ordering::min_degree_order(&matrices[0]);
    let (_, ordered) =
        SparseLu::factor_with_symbolic_ordered(&matrices[0], &order).expect("factors");

    let natural_ns = refactor_ns(matrices, &natural, reps);
    let ordered_ns = refactor_ns(matrices, &ordered, reps);
    println!(
        "{label:<18} nnz(L+U) natural {:>8}   ordered {:>8} ({:>5.2}x less fill)   refactor natural {:>9.2} µs   ordered {:>9.2} µs ({:>5.2}x)",
        natural.fill_nnz(),
        ordered.fill_nnz(),
        natural.fill_nnz() as f64 / ordered.fill_nnz() as f64,
        natural_ns / 1.0e3,
        ordered_ns / 1.0e3,
        natural_ns / ordered_ns,
    );
    records.push(
        Record::new(format!("{label}_natural_refactor"), natural_ns)
            .with_structure(natural.fill_nnz(), natural.block_count()),
    );
    records.push(
        Record::new(format!("{label}_ordered_refactor"), ordered_ns)
            .with_structure(ordered.fill_nnz(), ordered.block_count()),
    );
    if require_strictly_less_fill {
        assert!(
            ordered.fill_nnz() < natural.fill_nnz(),
            "{label}: ordered fill {} must be strictly lower than natural fill {}",
            ordered.fill_nnz(),
            natural.fill_nnz()
        );
    } else {
        assert!(
            ordered.fill_nnz() <= natural.fill_nnz(),
            "{label}: ordered fill {} must not exceed natural fill {}",
            ordered.fill_nnz(),
            natural.fill_nnz()
        );
    }
    // Ordered refactor throughput must be at least the unordered one. The
    // printed ratio is the reportable number; the assertion is only a
    // regression backstop, with a generous cushion so wall-clock noise on a
    // loaded machine cannot fail the bench (the deterministic guarantee is
    // the fill assertion above — less fill is systematically less work).
    assert_timing(
        ordered_ns <= natural_ns * 1.5,
        &format!(
            "{label}: ordered refactor ({ordered_ns:.0} ns) grossly slower than natural ({natural_ns:.0} ns)"
        ),
    );
}

fn opamp_matrices() -> (Vec<CsrMatrix<Complex64>>, SymbolicLu) {
    // Transistor-level op-amp: the full MOS small-signal MNA system.
    let (circuit, _nodes) = mos_two_stage_buffer(&OpAmpParams::default());
    let op = solve_dc(&circuit).expect("op-amp operating point");
    let ac = AcAnalysis::new(&circuit, &op).expect("valid analysis");
    // A decade around the loop's natural frequency, like the scan would hit.
    let freqs = FrequencyGrid::log_decade(1.0e6, 1.0e7, 16);
    let matrices: Vec<_> = freqs
        .freqs()
        .iter()
        .map(|&f| ac.admittance_matrix(f))
        .collect();
    let (_, symbolic) = SparseLu::factor_with_symbolic(&matrices[0]).expect("op-amp MNA factors");
    (matrices, symbolic)
}

fn ladder_matrices(stages: usize) -> (Vec<CsrMatrix<Complex64>>, SymbolicLu) {
    let matrices: Vec<_> = (0..16)
        .map(|k| rc_ladder_matrix(stages, 1.0e3 * 10f64.powf(k as f64 * 0.25)))
        .collect();
    let (_, symbolic) = SparseLu::factor_with_symbolic(&matrices[0]).expect("ladder factors");
    (matrices, symbolic)
}

/// Admittance matrices of the buffered op-amp cascade — the genuinely
/// block-structured circuit scenario (one BTF block per stage plus the
/// source block).
fn cascade_matrices(stages: usize) -> Vec<CsrMatrix<Complex64>> {
    let (circuit, _outs) = opamp_cascade(stages);
    let op = solve_dc(&circuit).expect("cascade operating point");
    let ac = AcAnalysis::new(&circuit, &op).expect("valid analysis");
    let freqs = FrequencyGrid::log_decade(1.0e4, 1.0e6, 8);
    freqs
        .freqs()
        .iter()
        .map(|&f| ac.admittance_matrix(f))
        .collect()
}

fn print_sweep_counters() {
    let (circuit, _nodes) = two_stage_buffer(&OpAmpParams::default());
    let op = solve_dc(&circuit).expect("operating point");
    let ac = AcAnalysis::new(&circuit, &op).expect("valid analysis");
    let grid = FrequencyGrid::log_decade(1.0e3, 1.0e9, 20);
    let _ = ac
        .driving_point_all_nodes(&grid)
        .expect("all-nodes scan solves");
    let stats = ac.solve_stats();
    println!(
        "all-nodes scan over {} frequency points: {} symbolic analysis, {} numeric refactors, {} fresh fallbacks, {} in-place assemblies",
        grid.len(),
        stats.symbolic,
        stats.numeric_refactor,
        stats.fresh_fallback,
        stats.cached_assemblies
    );
    assert_eq!(
        stats.symbolic, 1,
        "a whole scan must run exactly one symbolic analysis"
    );
    // Every point must be a value-only assembly + numeric refactorization —
    // the per-point invariant ARCHITECTURE.md documents as bench-gated.
    assert_eq!(stats.numeric_refactor, grid.len(), "{stats:?}");
    assert_eq!(stats.cached_assemblies, grid.len(), "{stats:?}");
    assert_eq!(stats.fresh_fallback, 0, "{stats:?}");
}

/// Experiment S3 — thread scaling of the `SweepPlan`/`SolveContext` sweep
/// executor: wall-clock of two paper-scale sweep workloads at 1/2/4 workers.
///
/// Worker counts are pinned through the `LOOPSCOPE_THREADS` knob (re-read
/// at every sweep call) so the table is reproducible on any machine; the
/// speedup assertion only arms when the hardware actually has ≥ 4 cores —
/// on fewer cores extra workers can only tread water, and the table simply
/// documents that.
fn print_thread_scaling(records: &mut Vec<Record>) {
    let hw = par::available_workers();
    println!(
        "\n=== S3: thread scaling — chunked sweeps over the shared SweepPlan ({hw} hardware core(s)) ==="
    );

    // Workload A: the 121-point all-nodes stability scan (one refactor per
    // frequency, one solve per node per frequency) of the two-stage buffer.
    let (scan_ckt, _) = two_stage_buffer(&OpAmpParams::default());
    let scan_op = solve_dc(&scan_ckt).expect("operating point");
    let scan_grid = FrequencyGrid::log_decade(1.0e3, 1.0e9, 20);
    assert_eq!(scan_grid.len(), 121, "the paper-scale scan is 121 points");

    // Workload B (the large case): a 121-point classical AC sweep of a
    // 400-stage RC ladder — a ~400-unknown system restamped and refactored
    // at every frequency point.
    let (ladder_ckt, _) = rc_ladder(400, 1.0e3, 1.0e-9);
    let ladder_op = solve_dc(&ladder_ckt).expect("ladder operating point");
    let ladder_grid = FrequencyGrid::log_decade(1.0e2, 1.0e8, 20);

    // Pin worker counts for the table, then restore whatever the user had —
    // later benches in this process must still honor a caller-set knob.
    let saved_threads = std::env::var(par::THREADS_ENV).ok();
    let reps = iters(8);
    let mut table: Vec<(usize, f64, f64)> = Vec::new();
    for workers in [1usize, 2, 4] {
        std::env::set_var(par::THREADS_ENV, workers.to_string());

        let scan_ac = AcAnalysis::new(&scan_ckt, &scan_op).expect("valid analysis");
        let _ = scan_ac
            .driving_point_all_nodes(&scan_grid)
            .expect("warm-up scan builds the plan");
        let scan_ns = time_ns(reps, || {
            std::hint::black_box(
                scan_ac
                    .driving_point_all_nodes(&scan_grid)
                    .expect("all-nodes scan"),
            );
        });

        let ladder_ac = AcAnalysis::new(&ladder_ckt, &ladder_op).expect("valid analysis");
        let _ = ladder_ac
            .sweep(&ladder_grid)
            .expect("warm-up sweep builds the plan");
        let ladder_ns = time_ns(reps, || {
            std::hint::black_box(ladder_ac.sweep(&ladder_grid).expect("ladder sweep"));
        });

        table.push((workers, scan_ns, ladder_ns));
        records.push(Record::new(
            format!("all_nodes_scan_121pt_{workers}w"),
            scan_ns,
        ));
        records.push(Record::new(
            format!("ladder400_sweep_121pt_{workers}w"),
            ladder_ns,
        ));
    }
    match saved_threads {
        Some(v) => std::env::set_var(par::THREADS_ENV, v),
        None => std::env::remove_var(par::THREADS_ENV),
    }

    let (_, scan_serial, ladder_serial) = table[0];
    println!(
        "{:<10} {:>22} {:>9} {:>24} {:>9}",
        "workers", "all-nodes 121pt [ms]", "speedup", "ladder-400 sweep [ms]", "speedup"
    );
    for &(workers, scan_ns, ladder_ns) in &table {
        println!(
            "{workers:<10} {:>22.3} {:>8.2}x {:>24.3} {:>8.2}x",
            scan_ns / 1.0e6,
            scan_serial / scan_ns,
            ladder_ns / 1.0e6,
            ladder_serial / ladder_ns,
        );
    }

    let (_, _, ladder_4) = table[2];
    let speedup_4 = ladder_serial / ladder_4;
    if hw >= 4 {
        assert_timing(
            speedup_4 >= 1.5,
            &format!(
                "4 workers must reach ≥ 1.5x on the 400-stage ladder sweep on a \
                 ≥ 4-core machine, measured {speedup_4:.2}x"
            ),
        );
    } else {
        println!(
            "(speedup assertion skipped: {hw} hardware core(s) < 4 — extra workers cannot scale here)"
        );
    }
}

/// Experiment S4a — BTF block-triangular factorization: nnz(L+U) (including
/// the raw off-diagonal block entries) and refactor throughput of the
/// per-block factorization vs the whole-matrix min-degree ordered one,
/// plus the block count BTF discovered.
fn print_btf_table(
    label: &str,
    matrices: &[CsrMatrix<Complex64>],
    reps: usize,
    records: &mut Vec<Record>,
) {
    let order = ordering::min_degree_order(&matrices[0]);
    let (_, ordered) =
        SparseLu::factor_with_symbolic_ordered(&matrices[0], &order).expect("factors");
    let (_, btf) = SparseLu::factor_with_symbolic_btf(&matrices[0]).expect("factors");

    let ordered_ns = refactor_ns(matrices, &ordered, reps);
    let btf_ns = refactor_ns(matrices, &btf, reps);
    println!(
        "{label:<22} blocks {:>4}   nnz(L+U) whole-matrix {:>8}   BTF {:>8}   refactor whole {:>9.2} µs   BTF {:>9.2} µs ({:>5.2}x)",
        btf.block_count(),
        ordered.fill_nnz(),
        btf.fill_nnz(),
        ordered_ns / 1.0e3,
        btf_ns / 1.0e3,
        ordered_ns / btf_ns,
    );
    records.push(
        Record::new(format!("{label}_whole_matrix_refactor"), ordered_ns)
            .with_structure(ordered.fill_nnz(), ordered.block_count()),
    );
    records.push(
        Record::new(format!("{label}_btf_refactor"), btf_ns)
            .with_structure(btf.fill_nnz(), btf.block_count()),
    );
    // The headline structural guarantee: restricting elimination to the
    // diagonal blocks (off-diagonal entries stored raw, zero fill) can
    // never store more than the whole-matrix ordered factorization does.
    assert!(
        btf.fill_nnz() <= ordered.fill_nnz(),
        "{label}: BTF fill {} must not exceed the whole-matrix ordered fill {}",
        btf.fill_nnz(),
        ordered.fill_nnz()
    );
}

/// Experiment S4b — the blocked multi-RHS all-nodes scan: the 121-point
/// scan of a 400-stage RC ladder with the per-node injections solved one
/// RHS at a time (`LOOPSCOPE_PANEL=1`, the pre-batching path) vs batched
/// into default-width panels sharing each L/U traversal. Single worker, so
/// the ratio isolates the blocked solve itself.
fn print_blocked_scan(records: &mut Vec<Record>) {
    println!("\n=== S4b: blocked multi-RHS all-nodes scan — panels vs per-RHS solves ===");
    let saved_threads = std::env::var(par::THREADS_ENV).ok();
    let saved_panel = std::env::var(par::PANEL_ENV).ok();
    std::env::set_var(par::THREADS_ENV, "1");

    let (ckt, _) = rc_ladder(400, 1.0e3, 1.0e-9);
    let op = solve_dc(&ckt).expect("ladder operating point");
    let grid = FrequencyGrid::log_decade(1.0e2, 1.0e8, 20);
    assert_eq!(grid.len(), 121, "the paper-scale grid is 121 points");
    let reps = iters(6);

    std::env::set_var(par::PANEL_ENV, "1");
    let per_rhs_ac = AcAnalysis::new(&ckt, &op).expect("valid analysis");
    let _ = per_rhs_ac
        .driving_point_all_nodes(&grid)
        .expect("warm-up scan builds the plan");
    let per_rhs_ns = time_ns(reps, || {
        std::hint::black_box(
            per_rhs_ac
                .driving_point_all_nodes(&grid)
                .expect("per-RHS scan"),
        );
    });

    std::env::remove_var(par::PANEL_ENV);
    let blocked_ac = AcAnalysis::new(&ckt, &op).expect("valid analysis");
    let _ = blocked_ac
        .driving_point_all_nodes(&grid)
        .expect("warm-up scan builds the plan");
    let blocked_ns = time_ns(reps, || {
        std::hint::black_box(
            blocked_ac
                .driving_point_all_nodes(&grid)
                .expect("blocked scan"),
        );
    });

    match saved_panel {
        Some(v) => std::env::set_var(par::PANEL_ENV, v),
        None => std::env::remove_var(par::PANEL_ENV),
    }
    match saved_threads {
        Some(v) => std::env::set_var(par::THREADS_ENV, v),
        None => std::env::remove_var(par::THREADS_ENV),
    }

    let speedup = per_rhs_ns / blocked_ns;
    println!(
        "ladder-400 all-nodes 121pt   per-RHS {:>9.1} ms   blocked (panel {: >2}) {:>9.1} ms   speedup {:>5.2}x",
        per_rhs_ns / 1.0e6,
        par::DEFAULT_PANEL_WIDTH,
        blocked_ns / 1.0e6,
        speedup
    );
    records.push(Record::new("all_nodes_ladder400_per_rhs", per_rhs_ns));
    records.push(Record::new("all_nodes_ladder400_blocked", blocked_ns));
    assert_timing(
        speedup >= 1.3,
        &format!(
            "the blocked all-nodes scan must be ≥ 1.3x the per-RHS scan on the \
             400-stage ladder, measured {speedup:.2}x"
        ),
    );
}

/// Mean wall-clock of one "frequency point" of the blocked all-nodes scan —
/// refactor once, then solve one unit injection per unknown in panels of
/// `panel` right-hand sides — over the matrix set, in nanoseconds.
fn panel_scan_ns(
    matrices: &[CsrMatrix<Complex64>],
    symbolic: &SymbolicLu,
    panel: usize,
    reps: usize,
) -> f64 {
    let n = matrices[0].rows();
    let mut lu = SparseLu::from_symbolic(symbolic);
    let mut ws = LuWorkspace::for_dim(n);
    let mut rhs = vec![Complex64::ZERO; n * panel];
    let mut work = vec![Complex64::ZERO; n * panel];
    let mut k = 0usize;
    time_ns(reps, || {
        let m = &matrices[k % matrices.len()];
        k += 1;
        lu.refactor_into(symbolic, m, &mut ws).expect("refactor");
        assert!(lu.refactored(), "bench matrices must not force a fallback");
        for start in (0..n).step_by(panel) {
            let cols = panel.min(n - start);
            let active = &mut rhs[..n * cols];
            active.fill(Complex64::ZERO);
            for j in 0..cols {
                active[j * n + start + j] = Complex64::ONE;
            }
            lu.solve_block_into(active, cols, &mut work[..n * cols])
                .expect("blocked solve");
            std::hint::black_box(&mut *active);
        }
    })
}

/// Experiment S5 — explicit SIMD kernels: scalar-kernel vs SIMD-kernel
/// refactor throughput and blocked panel-scan throughput over the same
/// symbolic analysis (backends pinned per pattern via
/// `SymbolicLu::with_kernel_backend`, so both run in one process). A
/// bitwise cross-check of one panel solve guards the table: the backends
/// must agree bit for bit before any timing is reported.
fn print_kernel_table(
    label: &str,
    matrices: &[CsrMatrix<Complex64>],
    reps: usize,
    records: &mut Vec<Record>,
    require_refactor_speedup: bool,
) {
    let (_, symbolic) = SparseLu::factor_with_symbolic_btf(&matrices[0]).expect("factors");
    let sym_scalar = symbolic.with_kernel_backend(KernelBackend::Scalar);
    let simd_backend = if kernels::simd_available() {
        KernelBackend::Avx2
    } else {
        KernelBackend::Scalar
    };
    let sym_simd = symbolic.with_kernel_backend(simd_backend);
    let n = matrices[0].rows();

    // Hard bitwise gate (deterministic, never demoted): the two backends
    // must produce identical factors and panel solutions.
    {
        let mut ws = LuWorkspace::for_dim(n);
        let mut lu_a = SparseLu::from_symbolic(&sym_scalar);
        lu_a.refactor_into(&sym_scalar, &matrices[1 % matrices.len()], &mut ws)
            .expect("refactor");
        let mut lu_b = SparseLu::from_symbolic(&sym_simd);
        lu_b.refactor_into(&sym_simd, &matrices[1 % matrices.len()], &mut ws)
            .expect("refactor");
        let k = 16.min(n);
        let mut rhs_a = vec![Complex64::ZERO; n * k];
        for (j, slot) in rhs_a.iter_mut().enumerate() {
            *slot = Complex64::new(1.0 + (j % 7) as f64, 0.25 * (j % 5) as f64);
        }
        let mut rhs_b = rhs_a.clone();
        let mut work = vec![Complex64::ZERO; n * k];
        lu_a.solve_block_into(&mut rhs_a, k, &mut work)
            .expect("solve");
        lu_b.solve_block_into(&mut rhs_b, k, &mut work)
            .expect("solve");
        for (a, b) in rhs_a.iter().zip(&rhs_b) {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "{label}: scalar and {simd_backend} kernels must be bitwise identical"
            );
        }
    }

    let scalar_refactor = refactor_ns(matrices, &sym_scalar, reps);
    let simd_refactor = refactor_ns(matrices, &sym_simd, reps);
    let scan_reps = (reps / 8).max(2);
    let scalar_scan = panel_scan_ns(matrices, &sym_scalar, par::DEFAULT_PANEL_WIDTH, scan_reps);
    let simd_scan = panel_scan_ns(matrices, &sym_simd, par::DEFAULT_PANEL_WIDTH, scan_reps);
    println!(
        "{label:<18} refactor scalar {:>9.2} µs   {simd_backend} {:>9.2} µs ({:>5.2}x)   \
         panel scan scalar {:>9.2} µs   {simd_backend} {:>9.2} µs ({:>5.2}x)",
        scalar_refactor / 1.0e3,
        simd_refactor / 1.0e3,
        scalar_refactor / simd_refactor,
        scalar_scan / 1.0e3,
        simd_scan / 1.0e3,
        scalar_scan / simd_scan,
    );
    records.push(Record::new(
        format!("{label}_refactor_scalar_kernel"),
        scalar_refactor,
    ));
    records.push(Record::new(
        format!("{label}_refactor_{simd_backend}_kernel"),
        simd_refactor,
    ));
    records.push(Record::new(
        format!("{label}_panel_scan_scalar_kernel"),
        scalar_scan,
    ));
    records.push(Record::new(
        format!("{label}_panel_scan_{simd_backend}_kernel"),
        simd_scan,
    ));

    if require_refactor_speedup && simd_backend.is_simd() {
        assert_timing(
            simd_refactor * 1.2 <= scalar_refactor,
            &format!(
                "{label}: the SIMD refactor ({simd_refactor:.0} ns) must be ≥ 1.2x the \
                 scalar-kernel refactor ({scalar_refactor:.0} ns) with AVX2 detected, \
                 measured {:.2}x",
                scalar_refactor / simd_refactor
            ),
        );
    }
    if simd_backend.is_simd() {
        // The panel solve is the SIMD-shaped loop (k contiguous lanes per
        // factor entry): it must at minimum not regress.
        assert_timing(
            simd_scan <= scalar_scan * 1.05,
            &format!(
                "{label}: the SIMD panel scan ({simd_scan:.0} ns) must not be slower than \
                 the scalar-kernel one ({scalar_scan:.0} ns)"
            ),
        );
    }
}

/// Experiment S6 — robustness-layer overhead: the residual-verified refined
/// solve ([`SparseLu::solve_refined_into`]) vs the plain triangular solve on
/// a healthy system where refinement needs **zero** correction steps (the
/// steady state of every sweep), plus the Hager 1-norm condition estimate.
/// The overhead of the verified path is one `A·x` mat-vec and three norm
/// reductions per solve — on the natural-order mesh (fill ≫ nnz(A), the
/// solve-dominated regime sweeps run in) that must stay within 1.15x.
fn print_refinement_table(records: &mut Vec<Record>) {
    println!(
        "\n=== S6: robustness overhead — verified (refined) solve vs plain solve, condition estimate ==="
    );
    // A 48×48 natural-order mesh: fill(L+U) ≫ nnz(A), the solve-dominated
    // regime the verified sweep path runs in, so the verified solve's extra
    // residual pass (one traversal of A plus a few vector norms) is diluted
    // by the triangular sweeps the plain solve pays anyway.
    let p = 48;
    let a = mesh_matrix(p, 1.0e3);
    let n = a.rows();
    let (lu, _symbolic) = SparseLu::factor_with_symbolic(&a).expect("mesh factors");
    let rhs0: Vec<Complex64> = (0..n)
        .map(|j| Complex64::new(1.0 + (j % 7) as f64, 0.25 * (j % 5) as f64))
        .collect();
    let mut rhs = rhs0.clone();
    let mut work = vec![Complex64::ZERO; n];
    let blocks = iters(16);
    let reps = 8;

    let plain_ns = time_ns_best(blocks, reps, || {
        rhs.copy_from_slice(&rhs0);
        lu.solve_into(&mut rhs, &mut work).expect("plain solve");
        std::hint::black_box(&mut rhs);
    });

    let mut ws = RefineWorkspace::for_dim(n);
    rhs.copy_from_slice(&rhs0);
    let quality = lu
        .solve_refined_into(&a, &mut rhs, &mut ws)
        .expect("refined solve");
    assert_eq!(
        quality.refinement_steps, 0,
        "the well-conditioned mesh must verify without correction steps: {quality:?}"
    );
    assert!(quality.converged, "{quality:?}");
    let refined_ns = time_ns_best(blocks, reps, || {
        rhs.copy_from_slice(&rhs0);
        std::hint::black_box(
            lu.solve_refined_into(&a, &mut rhs, &mut ws)
                .expect("refined solve"),
        );
    });

    let kappa = lu.condition_estimate(&a).expect("condition estimate");
    assert!(
        kappa.is_finite() && kappa >= 1.0,
        "condition estimate must be a finite κ ≥ 1, got {kappa}"
    );
    let cond_ns = time_ns(iters(20).min(6), || {
        std::hint::black_box(lu.condition_estimate(&a).expect("condition estimate"));
    });

    let overhead = refined_ns / plain_ns;
    println!(
        "mesh_{p}x{p} ({n} unknowns)   plain solve {:>8.2} µs   verified solve {:>8.2} µs \
         (overhead {overhead:.3}x, 0 refinement steps)   condition estimate {:>8.2} µs (κ₁ ≥ {kappa:.1})",
        plain_ns / 1.0e3,
        refined_ns / 1.0e3,
        cond_ns / 1.0e3,
    );
    records.push(Record::new(format!("mesh_{p}x{p}_plain_solve"), plain_ns));
    records.push(Record::new(
        format!("mesh_{p}x{p}_verified_solve"),
        refined_ns,
    ));
    records.push(Record::new(
        format!("mesh_{p}x{p}_condition_estimate"),
        cond_ns,
    ));
    assert_timing(
        overhead <= 1.15,
        &format!(
            "the verified solve ({refined_ns:.0} ns) must stay within 1.15x of the plain \
             solve ({plain_ns:.0} ns) when no refinement steps are needed, measured {overhead:.3}x"
        ),
    );
}

/// Experiment S7 — the batched many-variant corner scan: a 10k-variant
/// (quick mode: 400) seeded Monte Carlo sweep of the MOS two-stage buffer
/// through the batched engine ([`loopscope_spice::batch`], **one** symbolic
/// analysis and **one** shared linearization for the whole batch, variants
/// packed into SIMD-style value lanes) vs the naive factor-per-variant loop
/// (a variant circuit plus a fresh `AcAnalysis` — its own layout, its own
/// device linearizations, its own symbolic analysis — per variant, the
/// pre-batch `core::sweep` shape). Single worker, so the ratio isolates the
/// engine; the structural `SolveStats` assertions are hard in every mode.
fn print_monte_carlo_scan(records: &mut Vec<Record>) {
    println!(
        "\n=== S7: batched Monte Carlo corner scan — one symbolic analysis vs one per variant ==="
    );
    let saved_threads = std::env::var(par::THREADS_ENV).ok();
    std::env::set_var(par::THREADS_ENV, "1");

    let count = if quick_mode() { 400 } else { 10_000 };
    let (circuit, _nodes) = mos_two_stage_buffer(&OpAmpParams::default());
    let op = solve_dc(&circuit).expect("operating point");
    let node = circuit.find_node("out").expect("output node");
    // The production corner-scan shape: a spot check of the impedance peak
    // at the loop's natural frequency, thousands of parameter sets — the
    // paper's compensation knobs (Rzero, C1, Cload) under tolerance. One
    // frequency per variant maximizes the weight of per-variant setup,
    // which is exactly what the batched engine amortizes away.
    let grid = FrequencyGrid::from_points(vec![1.0e6]);
    let variation = ParameterVariation::new(0xC02_5CAB)
        .gaussian("Rzero", 0.05)
        .gaussian("Cload", 0.10)
        .uniform("C1", 0.10);

    // Naive reference: an independent analysis per variant — every variant
    // pays layout construction, pattern discovery and a symbolic analysis.
    let mut naive_symbolic = 0usize;
    let mut naive_sink = Complex64::ZERO;
    let naive_start = Instant::now();
    for i in 0..count {
        let mut vc = circuit.clone();
        variation.apply(i, &mut vc).expect("variation applies");
        let ac = AcAnalysis::new(&vc, &op).expect("valid analysis");
        let resp = ac
            .driving_point_response(node, &grid)
            .expect("variant sweep");
        naive_sink += resp[0];
        naive_symbolic += ac.solve_stats().symbolic;
    }
    let naive_ns = naive_start.elapsed().as_nanos() as f64 / count as f64;
    std::hint::black_box(naive_sink);
    assert_eq!(
        naive_symbolic, count,
        "the naive loop pays one symbolic analysis per variant"
    );

    // Batched engine: one symbolic analysis for the entire batch.
    let batch_start = Instant::now();
    let sweep = driving_point_monte_carlo(&circuit, &op, node, &grid, &variation, count)
        .expect("batched sweep");
    let batched_ns = batch_start.elapsed().as_nanos() as f64 / count as f64;
    std::hint::black_box(sweep.worst_case_peak());
    assert_eq!(
        sweep.solve_stats().symbolic,
        1,
        "the batched engine must run exactly one symbolic analysis for the \
         whole {count}-variant batch: {:?}",
        sweep.solve_stats()
    );

    match saved_threads {
        Some(v) => std::env::set_var(par::THREADS_ENV, v),
        None => std::env::remove_var(par::THREADS_ENV),
    }

    let speedup = naive_ns / batched_ns;
    println!(
        "opamp corner scan, {count} variants × {} freq points   naive {:>9.2} µs/variant   \
         batched {:>9.2} µs/variant   speedup {:>5.2}x   yield {}/{} ({:.1}%)",
        grid.len(),
        naive_ns / 1.0e3,
        batched_ns / 1.0e3,
        speedup,
        sweep.yield_count(),
        count,
        100.0 * sweep.yield_fraction(),
    );
    records.push(Record::new("mc_10k_opamp_corner_scan_naive", naive_ns));
    records.push(Record::new("mc_10k_opamp_corner_scan_batched", batched_ns));
    assert_timing(
        speedup >= 5.0,
        &format!(
            "the batched corner scan must amortize to ≥ 5x the naive \
             factor-per-variant loop, measured {speedup:.2}x \
             (naive {naive_ns:.0} ns/variant, batched {batched_ns:.0} ns/variant)"
        ),
    );
}

/// The S8 workload: two independent RC branches off one ideal step source,
/// with time constants 1 µs and 10 ms (ratio 1e4) — the textbook stiff
/// case where a fixed grid pays the fast edge's dt over the slow branch's
/// entire settling time.
fn stiff_rc_circuit() -> Circuit {
    let mut c = Circuit::new("stiff two-tau rc");
    let vin = c.node("in");
    let fast = c.node("fast");
    let slow = c.node("slow");
    c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::step(0.0, 1.0, 0.0));
    c.add_resistor("R1", vin, fast, 1.0e3);
    c.add_capacitor("C1", fast, Circuit::GROUND, 1.0e-9); // tau = 1 us
    c.add_resistor("R2", vin, slow, 1.0e6);
    c.add_capacitor("C2", slow, Circuit::GROUND, 1.0e-8); // tau = 10 ms
    c
}

/// Max |simulated − analytic| for one exponential-charge node, sampled at
/// `n` points spread over `[0, t_end]` (clustered early by the quadratic
/// spacing, where the waveform actually moves).
fn max_charge_error(
    result: &TransientResult,
    c: &Circuit,
    node: &str,
    tau: f64,
    t_end: f64,
    n: usize,
) -> f64 {
    let id = c.find_node(node).expect("node exists");
    let mut worst: f64 = 0.0;
    for k in 1..=n {
        let frac = k as f64 / n as f64;
        let t = t_end * frac * frac;
        let got = result.value_at(id, t).expect("sample");
        let want = 1.0 - (-t / tau).exp();
        worst = worst.max((got - want).abs());
    }
    worst
}

/// Experiment S8 — LTE-controlled adaptive transient vs the fixed grid on
/// the stiff two-time-constant RC. The fixed run uses the dt the fast edge
/// needs (40 ns for ~1e-4 accuracy) and then drags it across the slow
/// branch's full 10 ms settling; the adaptive run resolves the edge at
/// `dt_min` and grows dt by orders of magnitude once the fast branch
/// settles. Matched accuracy is asserted, not assumed: the adaptive max
/// error (against the analytic charge curves, densely sampled on both
/// nodes) must be no worse than the fixed run's, on ≥ 5x fewer accepted
/// steps. Quick mode shortens `t_stop` (same stiffness contrast, fewer
/// solves) and demotes the ratio assertions to warnings like every other
/// wall-clock-adjacent check.
/// Experiment S9 — the pluggable solver-backend seam on the fill-heavy
/// power-grid pattern: a driving-point sweep at the grid's far corner under
/// `LOOPSCOPE_SOLVER=direct`, `=auto` and `=iterative`. Direct pays a full
/// numeric refactorization per frequency point; the iterative path factors
/// only every `PRECOND_REFRESH_INTERVAL`-th point and serves the rest by
/// stale-preconditioned GMRES, which on a 2-D mesh (superlinear LU fill,
/// cheap matvecs) must amortize to ≥ 2x. `auto` must resolve to the
/// iterative backend on the full-size grid by the dim/fill rule alone.
/// Responses are cross-checked against the direct reference at the
/// iterative acceptance tolerance, and the JSON rows carry the new
/// `gmres_iterations` / `preconditioner_refreshes` counters.
fn print_solver_backend_scan(records: &mut Vec<Record>) {
    println!(
        "\n=== S9: solver backends — per-point refactor vs stale-preconditioned GMRES on a power grid ==="
    );
    let saved_threads = std::env::var(par::THREADS_ENV).ok();
    std::env::set_var(par::THREADS_ENV, "1");
    let saved_solver = std::env::var(solver::SOLVER_ENV).ok();

    // Full mode runs the ISSUE-scale 100×100 grid (10 002 unknowns); quick
    // mode shrinks the grid but keeps every structural assertion. The sweep
    // is a narrowband zoom — a quarter octave at fine linear resolution, the
    // power-integrity workload of characterizing an impedance feature —
    // which is the regime the stale preconditioner targets: adjacent points
    // stay close to their anchor factorization, so GMRES converges in a
    // couple of iterations while the direct path still pays a full refactor
    // per point. (A coarse 8-points/decade scan drifts ~70% in frequency
    // between anchor refreshes and measures ~1x; the zoom measures ≥2x.)
    let p = if quick_mode() { 40 } else { 100 };
    let points = if quick_mode() { 33 } else { 257 };
    // Full mode times each mode twice and keeps the faster sweep: a single
    // ~10 s pass on a shared vCPU can absorb a scheduling hiccup that
    // swings the ratio by tens of percent, and the solve path itself is
    // deterministic (identical counters and responses on every rep).
    let reps = if quick_mode() { 1 } else { 2 };
    let (circuit, nodes) = power_grid(p, p);
    let op = solve_dc(&circuit).expect("grid operating point");
    let probe = *nodes.last().expect("non-empty grid");
    let grid = FrequencyGrid::linear(1.0e7, 1.25e7, points);

    let mut responses: Vec<Vec<Complex64>> = Vec::new();
    let mut timings: Vec<(String, f64)> = Vec::new();
    for mode in ["direct", "auto", "iterative"] {
        std::env::set_var(solver::SOLVER_ENV, mode);
        let mut z: Vec<Complex64> = Vec::new();
        let mut stats = loopscope_spice::SolveStats::default();
        let mut ns_per_point = f64::INFINITY;
        for _ in 0..reps {
            let ac = AcAnalysis::new(&circuit, &op).expect("valid analysis");
            let start = Instant::now();
            z = ac.driving_point_response(probe, &grid).expect("grid sweep");
            ns_per_point = ns_per_point.min(start.elapsed().as_nanos() as f64 / grid.len() as f64);
            stats = ac.solve_stats();
        }
        println!(
            "power_grid_{p}x{p} {mode:<10} {:>10.2} µs/point   iterative {:>3}   gmres iters {:>4}   \
             refreshes {:>3}   fallbacks {:>2}",
            ns_per_point / 1.0e3,
            stats.iterative_solves,
            stats.gmres_iterations,
            stats.preconditioner_refreshes,
            stats.iterative_fallbacks,
        );
        match mode {
            "direct" => assert_eq!(
                stats.iterative_solves + stats.gmres_iterations + stats.preconditioner_refreshes,
                0,
                "direct must never touch the iterative counters: {stats:?}"
            ),
            "iterative" => assert!(
                stats.iterative_solves > 0 && stats.preconditioner_refreshes > 0,
                "forced-iterative must serve points by GMRES: {stats:?}"
            ),
            _ => {
                // `auto` must pick the iterative backend for the full-size
                // grid purely by the dim/fill rule; the quick grid may fall
                // below the dimension threshold and legitimately stay direct.
                if !quick_mode() {
                    assert!(
                        stats.iterative_solves > 0,
                        "auto must resolve iterative on the {p}x{p} grid: {stats:?}"
                    );
                }
            }
        }
        records.push(
            Record::new(format!("power_grid_{p}x{p}_sweep_{mode}"), ns_per_point)
                .with_solver_counters(stats.gmres_iterations, stats.preconditioner_refreshes),
        );
        timings.push((mode.to_string(), ns_per_point));
        responses.push(z);
    }

    // Same physics at every backend, to the iterative acceptance tolerance.
    let direct = &responses[0];
    for (z, (mode, _)) in responses.iter().zip(&timings).skip(1) {
        for (k, (a, b)) in direct.iter().zip(z).enumerate() {
            let scale = a.abs().max(1.0e-12);
            assert!(
                (*a - *b).abs() / scale < 1.0e-6,
                "{mode} diverged from direct at point {k}: {a:?} vs {b:?}"
            );
        }
    }

    match saved_solver {
        Some(v) => std::env::set_var(solver::SOLVER_ENV, v),
        None => std::env::remove_var(solver::SOLVER_ENV),
    }
    match saved_threads {
        Some(v) => std::env::set_var(par::THREADS_ENV, v),
        None => std::env::remove_var(par::THREADS_ENV),
    }

    let direct_ns = timings[0].1;
    let iterative_ns = timings[2].1;
    let speedup = direct_ns / iterative_ns;
    println!("power_grid_{p}x{p} iterative speedup over direct: {speedup:.2}x");
    assert_timing(
        speedup >= 2.0,
        &format!(
            "stale-preconditioned GMRES must amortize to ≥ 2x the per-point \
             refactor on the {p}x{p} grid, measured {speedup:.2}x \
             (direct {direct_ns:.0} ns/point, iterative {iterative_ns:.0} ns/point)"
        ),
    );
}

fn print_adaptive_transient(records: &mut Vec<Record>) {
    println!(
        "\n=== S8: adaptive transient — LTE-controlled steps vs the fixed grid on a stiff RC ==="
    );
    let circuit = stiff_rc_circuit();
    let op = solve_dc(&circuit).expect("operating point");
    let tau_fast = 1.0e-6;
    let tau_slow = 1.0e-2;
    // Quick mode stops at 2 ms (still 2000 fast time constants); full mode
    // rides out the slow branch to 2 tau.
    let t_stop = if quick_mode() { 2.0e-3 } else { 2.0e-2 };
    let fixed_dt = 4.0e-8;

    let fixed_start = Instant::now();
    let fixed = TransientAnalysis::new(&circuit, TransientOptions::new(fixed_dt, t_stop))
        .expect("valid options")
        .run(&op)
        .expect("fixed-grid run");
    let fixed_ns = fixed_start.elapsed().as_nanos() as f64;

    let mut options = TransientOptions::adaptive(1.0e-8, t_stop / 40.0, t_stop);
    options.reltol = 1.0e-3;
    let adaptive_start = Instant::now();
    let adaptive = TransientAnalysis::new(&circuit, options)
        .expect("valid options")
        .run(&op)
        .expect("adaptive run");
    let adaptive_ns = adaptive_start.elapsed().as_nanos() as f64;

    let err_of = |r: &TransientResult| {
        let fast = max_charge_error(
            r,
            &circuit,
            "fast",
            tau_fast,
            (10.0 * tau_fast).min(t_stop),
            200,
        );
        let slow = max_charge_error(r, &circuit, "slow", tau_slow, t_stop, 200);
        fast.max(slow)
    };
    let fixed_err = err_of(&fixed);
    let adaptive_err = err_of(&adaptive);

    let fs = *fixed.stats();
    let asts = *adaptive.stats();
    assert_eq!(
        fs.rejected_steps, 0,
        "the fixed grid never rejects a step: {fs:?}"
    );
    assert!(
        asts.max_dt > 100.0 * asts.min_dt,
        "the controller must grow dt by orders of magnitude on the stiff \
         circuit, got min {:.3e} max {:.3e}",
        asts.min_dt,
        asts.max_dt
    );
    for (label, stats, ns, err) in [
        ("fixed   ", &fs, fixed_ns, fixed_err),
        ("adaptive", &asts, adaptive_ns, adaptive_err),
    ] {
        println!(
            "{label}  dt_min {:>9.2e}  accepted {:>8}  rejected {:>5}  newton {:>8}  \
             max |err| {:>9.3e}  wall {:>8.2} ms",
            stats.min_dt,
            stats.accepted_steps,
            stats.rejected_steps,
            stats.newton_iterations,
            err,
            ns / 1.0e6,
        );
    }
    let step_ratio = fs.accepted_steps as f64 / asts.accepted_steps as f64;
    println!(
        "step ratio {step_ratio:.1}x fewer accepted steps at {} accuracy",
        if adaptive_err <= fixed_err {
            "equal-or-better"
        } else {
            "WORSE"
        }
    );

    records.push(
        Record::new(
            "tran_stiff_rc_fixed_grid",
            fixed_ns / fs.accepted_steps as f64,
        )
        .with_steps(fs.accepted_steps, fs.rejected_steps),
    );
    records.push(
        Record::new(
            "tran_stiff_rc_adaptive",
            adaptive_ns / asts.accepted_steps as f64,
        )
        .with_steps(asts.accepted_steps, asts.rejected_steps),
    );

    assert_timing(
        adaptive_err <= fixed_err,
        &format!(
            "matched accuracy: the adaptive run must be no less accurate than \
             the fixed grid, got adaptive {adaptive_err:.3e} vs fixed {fixed_err:.3e}"
        ),
    );
    assert_timing(
        fs.accepted_steps >= 5 * asts.accepted_steps,
        &format!(
            "the adaptive stepper must take ≥ 5x fewer accepted steps than the \
             fixed grid at matched accuracy, got {} vs {} ({step_ratio:.1}x)",
            asts.accepted_steps, fs.accepted_steps
        ),
    );
}

fn bench(c: &mut Criterion) {
    let mut records: Vec<Record> = Vec::new();
    if quick_mode() {
        println!("\n(BENCH_QUICK set: reduced iteration counts, same assertions)");
    }
    println!("\n=== S1: symbolic/numeric split — factor once, refactor per frequency ===");
    let (opamp, opamp_sym) = opamp_matrices();
    println!(
        "op-amp MNA: {} unknowns, {} nonzeros, {} LU pattern entries",
        opamp[0].rows(),
        opamp[0].nnz(),
        opamp_sym.fill_nnz()
    );
    print_speedup_table("opamp_mna", &opamp, &opamp_sym, iters(400), &mut records);

    for &stages in &[100usize, 400] {
        let (ladder, ladder_sym) = ladder_matrices(stages);
        print_speedup_table(
            &format!("rc_ladder_{stages}"),
            &ladder,
            &ladder_sym,
            iters(200),
            &mut records,
        );
    }
    print_sweep_counters();

    println!(
        "\n=== S2: fill-reducing ordering — min-degree + threshold pivoting vs natural order ==="
    );
    let (ladder, _) = ladder_matrices(400);
    // A tridiagonal ladder is already fill-free in natural order: the
    // ordered pattern must match it (and refactor at least as fast).
    print_ordering_table("rc_ladder_400", &ladder, iters(200), false, &mut records);
    let mesh_p = 33; // 33×33 = 1089 unknowns
    let meshes: Vec<_> = (0..16)
        .map(|k| mesh_matrix(mesh_p, 1.0e3 * 10f64.powf(k as f64 * 0.25)))
        .collect();
    println!(
        "mesh_{mesh_p}x{mesh_p}: {} unknowns, {} nonzeros",
        meshes[0].rows(),
        meshes[0].nnz()
    );
    // On a 2-D mesh the ordering must strictly beat the natural order.
    print_ordering_table(
        &format!("mesh_{mesh_p}x{mesh_p}"),
        &meshes,
        iters(40),
        true,
        &mut records,
    );

    print_thread_scaling(&mut records);

    println!(
        "\n=== S4a: block-triangular factorization — per-block LU vs whole-matrix ordering ==="
    );
    // The mesh is irreducible: BTF must degenerate to one block and cost
    // nothing (identical fill to the whole-matrix ordering).
    print_btf_table(
        &format!("mesh_{mesh_p}x{mesh_p}"),
        &meshes,
        iters(40),
        &mut records,
    );
    // The buffered op-amp cascade is the block-structured case: one block
    // per stage plus the source block, inter-stage couplings stored raw.
    let cascade_stages = 24;
    let cascade = cascade_matrices(cascade_stages);
    println!(
        "opamp_cascade_{cascade_stages}: {} unknowns, {} nonzeros",
        cascade[0].rows(),
        cascade[0].nnz()
    );
    print_btf_table(
        &format!("opamp_cascade_{cascade_stages}"),
        &cascade,
        iters(200),
        &mut records,
    );
    let (_, cascade_btf) = SparseLu::factor_with_symbolic_btf(&cascade[0]).expect("factors");
    assert!(
        cascade_btf.block_count() > cascade_stages,
        "the {cascade_stages}-stage cascade must split into more than \
         {cascade_stages} BTF blocks, found {}",
        cascade_btf.block_count()
    );

    print_blocked_scan(&mut records);

    println!(
        "\n=== S5: explicit SIMD kernels — scalar vs {} (AVX2 {}) ===",
        kernels::selected_backend(),
        if kernels::simd_available() {
            "detected"
        } else {
            "NOT available; table degenerates to scalar-vs-scalar"
        }
    );
    let (ladder_c, _) = ladder_matrices(400);
    print_kernel_table("rc_ladder_400", &ladder_c, iters(200), &mut records, true);
    print_kernel_table(
        &format!("mesh_{mesh_p}x{mesh_p}"),
        &meshes,
        iters(40),
        &mut records,
        false,
    );

    print_refinement_table(&mut records);

    print_monte_carlo_scan(&mut records);

    print_adaptive_transient(&mut records);

    print_solver_backend_scan(&mut records);
    println!();

    let mut group = c.benchmark_group("solver_refactor");
    group.sample_size(10);
    let (matrices, symbolic) = opamp_matrices();
    let mut k = 0usize;
    group.bench_function("opamp_fresh_factor", |b| {
        b.iter(|| {
            let m = &matrices[k % matrices.len()];
            k += 1;
            std::hint::black_box(SparseLu::factor(m).expect("factor"))
        })
    });
    let mut k = 0usize;
    group.bench_function("opamp_refactor", |b| {
        b.iter(|| {
            let m = &matrices[k % matrices.len()];
            k += 1;
            std::hint::black_box(SparseLu::refactor(&symbolic, m).expect("refactor"))
        })
    });
    let (ladder, ladder_sym) = ladder_matrices(400);
    let mut k = 0usize;
    group.bench_function("rc_ladder_400_fresh_factor", |b| {
        b.iter(|| {
            let m = &ladder[k % ladder.len()];
            k += 1;
            std::hint::black_box(SparseLu::factor(m).expect("factor"))
        })
    });
    let mut k = 0usize;
    group.bench_function("rc_ladder_400_refactor", |b| {
        b.iter(|| {
            let m = &ladder[k % ladder.len()];
            k += 1;
            std::hint::black_box(SparseLu::refactor(&ladder_sym, m).expect("refactor"))
        })
    });
    group.finish();

    write_bench_json(&records);
}

criterion_group!(benches, bench);
criterion_main!(benches);
