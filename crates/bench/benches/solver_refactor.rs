//! Experiment S1 — symbolic/numeric LU split: factor-once-vs-refactor on the
//! op-amp MNA matrix and on an N-stage RC ladder.
//!
//! The whole-circuit stability scan solves `Y(jω)·x = b` at hundreds of
//! frequency points with an identical sparsity pattern; this bench isolates
//! the solver-side win of reusing the pivot order and fill pattern
//! ([`loopscope_sparse::SparseLu::refactor`]) instead of running a fresh
//! pivoting factorization per point, and prints the sweep-level counters
//! proving a whole scan performs exactly one symbolic analysis.
//!
//! Regenerate with `cargo bench -p loopscope-bench --bench solver_refactor`.

use criterion::{criterion_group, criterion_main, Criterion};
use loopscope_circuits::{mos_two_stage_buffer, two_stage_buffer, OpAmpParams};
use loopscope_math::{Complex64, FrequencyGrid};
use loopscope_sparse::{CsrMatrix, SparseLu, SymbolicLu, TripletMatrix};
use loopscope_spice::ac::AcAnalysis;
use loopscope_spice::dc::solve_dc;
use std::time::Instant;

/// Builds the complex MNA admittance matrix of an N-stage RC ladder at a
/// given angular-frequency scale (same pattern for every scale).
fn rc_ladder_matrix(stages: usize, jw_scale: f64) -> CsrMatrix<Complex64> {
    let mut t = TripletMatrix::<Complex64>::new(stages, stages);
    for i in 0..stages {
        let g = 1.0e-3 * (1.0 + (i % 7) as f64 * 0.1);
        let jwc = Complex64::new(0.0, jw_scale * 1.0e-9 * (1.0 + (i % 5) as f64 * 0.2));
        let mut diag = Complex64::from_real(g) + jwc;
        if i > 0 {
            t.push(i, i - 1, Complex64::from_real(-g));
            diag += Complex64::from_real(g);
        }
        if i + 1 < stages {
            t.push(i, i + 1, Complex64::from_real(-g));
        }
        t.push(i, i, diag);
    }
    t.to_csr()
}

/// Mean wall-clock time of `f` over `iters` runs, in nanoseconds.
fn time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn print_speedup_table(
    label: &str,
    matrices: &[CsrMatrix<Complex64>],
    symbolic: &SymbolicLu,
    iters: usize,
) {
    let mut k = 0usize;
    let fresh_ns = time_ns(iters, || {
        let m = &matrices[k % matrices.len()];
        k += 1;
        std::hint::black_box(SparseLu::factor(m).expect("factor"));
    });
    let mut k = 0usize;
    let refactor_ns = time_ns(iters, || {
        let m = &matrices[k % matrices.len()];
        k += 1;
        let lu = SparseLu::refactor(symbolic, m).expect("refactor");
        assert!(lu.refactored(), "bench matrices must not force a fallback");
        std::hint::black_box(lu);
    });
    println!(
        "{label:<28} fresh factor {:>10.2} µs   refactor {:>10.2} µs   speedup {:>5.2}x",
        fresh_ns / 1.0e3,
        refactor_ns / 1.0e3,
        fresh_ns / refactor_ns
    );
}

fn opamp_matrices() -> (Vec<CsrMatrix<Complex64>>, SymbolicLu) {
    // Transistor-level op-amp: the full MOS small-signal MNA system.
    let (circuit, _nodes) = mos_two_stage_buffer(&OpAmpParams::default());
    let op = solve_dc(&circuit).expect("op-amp operating point");
    let ac = AcAnalysis::new(&circuit, &op).expect("valid analysis");
    // A decade around the loop's natural frequency, like the scan would hit.
    let freqs = FrequencyGrid::log_decade(1.0e6, 1.0e7, 16);
    let matrices: Vec<_> = freqs
        .freqs()
        .iter()
        .map(|&f| ac.admittance_matrix(f))
        .collect();
    let (_, symbolic) = SparseLu::factor_with_symbolic(&matrices[0]).expect("op-amp MNA factors");
    (matrices, symbolic)
}

fn ladder_matrices(stages: usize) -> (Vec<CsrMatrix<Complex64>>, SymbolicLu) {
    let matrices: Vec<_> = (0..16)
        .map(|k| rc_ladder_matrix(stages, 1.0e3 * 10f64.powf(k as f64 * 0.25)))
        .collect();
    let (_, symbolic) = SparseLu::factor_with_symbolic(&matrices[0]).expect("ladder factors");
    (matrices, symbolic)
}

fn print_sweep_counters() {
    let (circuit, _nodes) = two_stage_buffer(&OpAmpParams::default());
    let op = solve_dc(&circuit).expect("operating point");
    let ac = AcAnalysis::new(&circuit, &op).expect("valid analysis");
    let grid = FrequencyGrid::log_decade(1.0e3, 1.0e9, 20);
    let _ = ac
        .driving_point_all_nodes(&grid)
        .expect("all-nodes scan solves");
    let stats = ac.solve_stats();
    println!(
        "all-nodes scan over {} frequency points: {} symbolic analysis, {} numeric refactors, {} fresh fallbacks, {} in-place assemblies",
        grid.len(),
        stats.symbolic,
        stats.numeric_refactor,
        stats.fresh_fallback,
        stats.cached_assemblies
    );
    assert_eq!(
        stats.symbolic, 1,
        "a whole scan must run exactly one symbolic analysis"
    );
}

fn bench(c: &mut Criterion) {
    println!("\n=== S1: symbolic/numeric split — factor once, refactor per frequency ===");
    let (opamp, opamp_sym) = opamp_matrices();
    println!(
        "op-amp MNA: {} unknowns, {} nonzeros, {} LU pattern entries",
        opamp[0].rows(),
        opamp[0].nnz(),
        opamp_sym.fill_nnz()
    );
    print_speedup_table("opamp_mna", &opamp, &opamp_sym, 400);

    for &stages in &[100usize, 400] {
        let (ladder, ladder_sym) = ladder_matrices(stages);
        print_speedup_table(&format!("rc_ladder_{stages}"), &ladder, &ladder_sym, 200);
    }
    print_sweep_counters();
    println!();

    let mut group = c.benchmark_group("solver_refactor");
    group.sample_size(10);
    let (matrices, symbolic) = opamp_matrices();
    let mut k = 0usize;
    group.bench_function("opamp_fresh_factor", |b| {
        b.iter(|| {
            let m = &matrices[k % matrices.len()];
            k += 1;
            std::hint::black_box(SparseLu::factor(m).expect("factor"))
        })
    });
    let mut k = 0usize;
    group.bench_function("opamp_refactor", |b| {
        b.iter(|| {
            let m = &matrices[k % matrices.len()];
            k += 1;
            std::hint::black_box(SparseLu::refactor(&symbolic, m).expect("refactor"))
        })
    });
    let (ladder, ladder_sym) = ladder_matrices(400);
    let mut k = 0usize;
    group.bench_function("rc_ladder_400_fresh_factor", |b| {
        b.iter(|| {
            let m = &ladder[k % ladder.len()];
            k += 1;
            std::hint::black_box(SparseLu::factor(m).expect("factor"))
        })
    });
    let mut k = 0usize;
    group.bench_function("rc_ladder_400_refactor", |b| {
        b.iter(|| {
            let m = &ladder[k % ladder.len()];
            k += 1;
            std::hint::black_box(SparseLu::refactor(&ladder_sym, m).expect("refactor"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
