//! Experiment F3 — paper Fig. 3: open-loop gain/phase plot of the op-amp with
//! the main loop broken, showing ~20° of phase margin and locating the 0 dB
//! crossover and −180° phase crossing (the traditional AC baseline).
//!
//! Regenerate with `cargo bench -p loopscope-bench --bench fig3_bode`.

use criterion::{criterion_group, criterion_main, Criterion};
use loopscope_bench::{fmt_freq, nominal_opamp};
use loopscope_circuits::opamp::two_stage_open_loop;
use loopscope_core::baseline::open_loop_margins;
use loopscope_math::FrequencyGrid;

fn grid() -> FrequencyGrid {
    FrequencyGrid::log_decade(1.0, 100.0e6, 40)
}

fn print_fig3() {
    let (circuit, nodes) = two_stage_open_loop(&nominal_opamp());
    let margins = open_loop_margins(&circuit, nodes.output, &grid()).expect("bode baseline runs");
    println!("\n=== Fig. 3: open-loop gain/phase margins (loop broken by hand) ===");
    match margins.gain_crossover_hz {
        Some(fc) => println!("  0 dB gain crossover  : {}", fmt_freq(fc)),
        None => println!("  0 dB gain crossover  : (none in sweep)"),
    }
    match margins.phase_margin_deg {
        Some(pm) => println!("  phase margin         : {pm:.1}°"),
        None => println!("  phase margin         : (undefined)"),
    }
    match margins.phase_crossover_hz {
        Some(fp) => println!("  −180° phase crossing : {}", fmt_freq(fp)),
        None => println!("  −180° phase crossing : (none in sweep)"),
    }
    match margins.gain_margin_db {
        Some(gm) => println!("  gain margin          : {gm:.1} dB"),
        None => println!("  gain margin          : (undefined)"),
    }
    println!("  paper reference      : ≈20° phase margin, 0 dB at 2.4 MHz, −180° at 3.5 MHz\n");
}

fn bench(c: &mut Criterion) {
    print_fig3();
    let (circuit, nodes) = two_stage_open_loop(&nominal_opamp());
    let g = grid();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("open_loop_bode_baseline", |b| {
        b.iter(|| std::hint::black_box(open_loop_margins(&circuit, nodes.output, &g).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
