//! Experiment T2 — paper Table 2: stability-plot peak values for all circuit
//! nodes of the op-amp + bias circuit, grouped by loop natural frequency.
//!
//! Regenerate with `cargo bench -p loopscope-bench --bench table2`.

use criterion::{criterion_group, criterion_main, Criterion};
use loopscope_bench::{bench_options, nominal_bias, nominal_opamp};
use loopscope_circuits::opamp_with_bias;
use loopscope_core::StabilityAnalyzer;

fn analyzer() -> StabilityAnalyzer {
    let (circuit, _, _) = opamp_with_bias(&nominal_opamp(), &nominal_bias());
    StabilityAnalyzer::new(circuit, bench_options()).expect("operating point converges")
}

fn print_table2(analyzer: &StabilityAnalyzer) {
    let report = analyzer.all_nodes().expect("all-nodes scan succeeds");
    println!("\n=== Table 2: all-nodes stability report (op-amp buffer + zero-TC bias) ===");
    println!("{}", report.to_text());
    println!("detected loops (sorted by natural frequency):");
    for group in report.loops() {
        println!(
            "  loop at {:>10.3e} Hz: {} node(s), worst performance index {:.2}",
            group.natural_freq_hz,
            group.members.len(),
            group.worst_performance_index
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let analyzer = analyzer();
    print_table2(&analyzer);
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("all_nodes_scan", |b| {
        b.iter(|| std::hint::black_box(analyzer.all_nodes().unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
