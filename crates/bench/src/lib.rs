//! Shared helpers for the `loopscope` benchmark/reproduction harness.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! Criterion bench target in `benches/` (see DESIGN.md §5 for the index).
//! Each bench first *prints* the regenerated table/series — so that
//! `cargo bench` doubles as the reproduction script — and then measures the
//! runtime of the underlying analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use loopscope_circuits::{BiasParams, OpAmpParams};
use loopscope_core::{StabilityAnalyzer, StabilityOptions};

/// The sweep options used by all benches: the paper sweeps "a broad frequency
/// range"; 1 kHz – 1 GHz at 100 points/decade covers both the MHz main loop
/// and the tens-of-MHz local loops with enough resolution for the second
/// derivative.
pub fn bench_options() -> StabilityOptions {
    StabilityOptions {
        f_start: 1.0e3,
        f_stop: 1.0e9,
        points_per_decade: 100,
        ..Default::default()
    }
}

/// Nominal op-amp parameters (the paper's under-compensated buffer).
pub fn nominal_opamp() -> OpAmpParams {
    OpAmpParams::default()
}

/// Nominal bias-cell parameters (uncompensated local loop).
pub fn nominal_bias() -> BiasParams {
    BiasParams::default()
}

/// Builds a ready-to-use analyzer for the nominal op-amp buffer.
///
/// # Panics
///
/// Panics if the operating point fails to converge — that would invalidate
/// every benchmark, so failing loudly is the right behaviour here.
pub fn opamp_analyzer() -> (StabilityAnalyzer, loopscope_circuits::OpAmpNodes) {
    let (circuit, nodes) = loopscope_circuits::two_stage_buffer(&nominal_opamp());
    let analyzer = StabilityAnalyzer::new(circuit, bench_options())
        .expect("nominal op-amp must have an operating point");
    (analyzer, nodes)
}

/// Formats a frequency in engineering units for table printouts.
pub fn fmt_freq(hz: f64) -> String {
    if hz >= 1.0e6 {
        format!("{:.2} MHz", hz / 1.0e6)
    } else if hz >= 1.0e3 {
        format!("{:.2} kHz", hz / 1.0e3)
    } else {
        format!("{hz:.2} Hz")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_consistent() {
        assert_eq!(fmt_freq(3.16e6), "3.16 MHz");
        assert_eq!(fmt_freq(50.0e3), "50.00 kHz");
        assert_eq!(fmt_freq(12.0), "12.00 Hz");
        let opts = bench_options();
        assert!(opts.f_stop > opts.f_start);
    }

    #[test]
    fn opamp_analyzer_builds() {
        let (analyzer, nodes) = opamp_analyzer();
        assert!(analyzer.circuit().node_count() > 3);
        assert_eq!(analyzer.circuit().node_name(nodes.output), "out");
    }
}
