//! A self-contained, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim implements the API subset loopscope's bench
//! targets use — [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with [`BenchmarkGroup::sample_size`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! wall-clock measurement loop.
//!
//! Each benchmark is auto-calibrated so a single sample takes a measurable
//! amount of time, then `sample_size` samples are collected and the
//! mean / best / worst per-iteration times are printed. The numbers are
//! intentionally formatted one-benchmark-per-line so `cargo bench` output can
//! be diffed across commits to track the performance trajectory.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 30;
/// Target wall-clock duration of one sample during calibration.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);
/// Hard cap on total time spent per benchmark.
const MAX_BENCH_TIME: Duration = Duration::from_secs(5);

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the number of iterations chosen by the harness and
    /// records the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collected statistics for one benchmark.
#[derive(Debug, Clone, Copy)]
struct Stats {
    mean_ns: f64,
    best_ns: f64,
    worst_ns: f64,
}

fn format_time(ns: f64) -> String {
    if ns >= 1.0e9 {
        format!("{:.3} s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.3} ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.3} µs", ns / 1.0e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) -> Stats {
    // Calibration: find an iteration count whose sample takes a measurable
    // amount of wall-clock time.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 24 {
            break;
        }
        // Aim directly at the target using the observed per-iteration time.
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let needed = if per_iter > 0.0 {
            (TARGET_SAMPLE_TIME.as_secs_f64() / per_iter).ceil() as u64
        } else {
            iters * 8
        };
        iters = needed.clamp(iters + 1, iters * 16);
    }

    let budget = Instant::now();
    let mut samples_ns = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        if budget.elapsed() > MAX_BENCH_TIME {
            break;
        }
    }
    let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let best_ns = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst_ns = samples_ns.iter().cloned().fold(0.0f64, f64::max);
    let stats = Stats {
        mean_ns,
        best_ns,
        worst_ns,
    };
    println!(
        "bench {name:<48} mean {:>12}   best {:>12}   worst {:>12}   ({} iters/sample, {} samples)",
        format_time(stats.mean_ns),
        format_time(stats.best_ns),
        format_time(stats.worst_ns),
        iters,
        samples_ns.len()
    );
    stats
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Measures a single benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Measures one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Finishes the group (a no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmark registrations, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(3) * 2));
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(12.3), "12.3 ns");
        assert_eq!(format_time(1.5e3), "1.500 µs");
        assert_eq!(format_time(2.0e6), "2.000 ms");
        assert_eq!(format_time(3.0e9), "3.000 s");
    }
}
