//! Independent source specifications.
//!
//! Each independent voltage or current source carries three facets that the
//! different analyses consume:
//!
//! * a **DC** value used by the operating-point solve,
//! * an **AC** small-signal magnitude/phase used by the AC sweep (this is the
//!   facet the stability tool toggles when it injects its probe current), and
//! * an optional **transient waveform** used by the time-domain analysis
//!   (the step stimulus of the traditional overshoot method).

/// Time-domain waveform of an independent source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Waveform {
    /// Constant value equal to the DC value.
    Constant,
    /// An ideal step: `initial` before `delay`, `final_value` afterwards.
    Step {
        /// Value before the step instant.
        initial: f64,
        /// Value after the step instant.
        final_value: f64,
        /// Step instant in seconds.
        delay: f64,
    },
    /// A finite-rise pulse, SPICE `PULSE(...)`-like but without period/repeat.
    Pulse {
        /// Initial value.
        initial: f64,
        /// Pulsed value.
        pulsed: f64,
        /// Delay before the rising edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Pulse width, seconds.
        width: f64,
    },
    /// A sine wave `offset + amplitude·sin(2πf(t−delay))` for `t ≥ delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        freq_hz: f64,
        /// Start delay in seconds.
        delay: f64,
    },
}

impl Waveform {
    /// Evaluates the waveform at time `t` (seconds), given the source's DC
    /// value (used by [`Waveform::Constant`]).
    pub fn value_at(&self, t: f64, dc: f64) -> f64 {
        match *self {
            Waveform::Constant => dc,
            Waveform::Step {
                initial,
                final_value,
                delay,
            } => {
                if t < delay {
                    initial
                } else {
                    final_value
                }
            }
            Waveform::Pulse {
                initial,
                pulsed,
                delay,
                rise,
                fall,
                width,
            } => {
                if t < delay {
                    initial
                } else if t < delay + rise {
                    if rise <= 0.0 {
                        pulsed
                    } else {
                        initial + (pulsed - initial) * (t - delay) / rise
                    }
                } else if t < delay + rise + width {
                    pulsed
                } else if t < delay + rise + width + fall {
                    if fall <= 0.0 {
                        initial
                    } else {
                        pulsed + (initial - pulsed) * (t - delay - rise - width) / fall
                    }
                } else {
                    initial
                }
            }
            Waveform::Sine {
                offset,
                amplitude,
                freq_hz,
                delay,
            } => {
                if t < delay {
                    offset
                } else {
                    offset + amplitude * (2.0 * std::f64::consts::PI * freq_hz * (t - delay)).sin()
                }
            }
        }
    }

    /// Evaluates the waveform's **left limit** at time `t`: the value an
    /// instant *before* `t`. Identical to [`Waveform::value_at`] everywhere
    /// except exactly on a jump discontinuity (a [`Waveform::Step`] instant,
    /// or a [`Waveform::Pulse`] edge with zero rise/fall time), where the
    /// pre-jump value is returned instead of the post-jump one.
    ///
    /// The adaptive transient stepper lands a time point exactly on each
    /// breakpoint (see [`Waveform::breakpoints`]) and evaluates sources there
    /// by the left limit, so a discontinuity is never integrated *across*:
    /// the step ending on the breakpoint sees only the pre-jump waveform and
    /// the step starting there sees only the post-jump one.
    pub fn value_at_left(&self, t: f64, dc: f64) -> f64 {
        match *self {
            Waveform::Constant => dc,
            Waveform::Step {
                initial,
                final_value,
                delay,
            } => {
                if t <= delay {
                    initial
                } else {
                    final_value
                }
            }
            Waveform::Pulse {
                initial,
                pulsed,
                delay,
                rise,
                fall,
                width,
            } => {
                if t <= delay {
                    initial
                } else if t <= delay + rise {
                    if rise <= 0.0 {
                        pulsed
                    } else {
                        initial + (pulsed - initial) * (t - delay) / rise
                    }
                } else if t <= delay + rise + width {
                    pulsed
                } else if t <= delay + rise + width + fall {
                    if fall <= 0.0 {
                        initial
                    } else {
                        pulsed + (initial - pulsed) * (t - delay - rise - width) / fall
                    }
                } else {
                    initial
                }
            }
            Waveform::Sine {
                offset,
                amplitude,
                freq_hz,
                delay,
            } => {
                if t <= delay {
                    offset
                } else {
                    offset + amplitude * (2.0 * std::f64::consts::PI * freq_hz * (t - delay)).sin()
                }
            }
        }
    }

    /// Appends the waveform's **breakpoints** — time points where the value
    /// or its slope is discontinuous — to `out`, unsorted and unfiltered.
    /// An adaptive transient stepper must land a time point exactly on each
    /// of these (integrating across one with a smooth-solution error
    /// estimator both corrupts the step and confuses the step-size control).
    pub fn breakpoints(&self, out: &mut Vec<f64>) {
        match *self {
            Waveform::Constant => {}
            Waveform::Step { delay, .. } => out.push(delay),
            Waveform::Pulse {
                delay,
                rise,
                fall,
                width,
                ..
            } => {
                out.push(delay);
                out.push(delay + rise);
                out.push(delay + rise + width);
                out.push(delay + rise + width + fall);
            }
            // The sine itself is smooth; its slope is discontinuous where it
            // starts.
            Waveform::Sine { delay, .. } => out.push(delay),
        }
    }
}

/// Complete specification of an independent source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceSpec {
    /// DC value (volts or amperes).
    pub dc: f64,
    /// Small-signal AC magnitude (volts or amperes). Zero disables the source
    /// during AC analysis.
    pub ac_mag: f64,
    /// Small-signal AC phase in degrees.
    pub ac_phase_deg: f64,
    /// Transient waveform.
    pub waveform: Waveform,
}

impl SourceSpec {
    /// A DC-only source (no AC stimulus, constant in time).
    pub fn dc(value: f64) -> Self {
        Self {
            dc: value,
            ac_mag: 0.0,
            ac_phase_deg: 0.0,
            waveform: Waveform::Constant,
        }
    }

    /// A source with both a DC value and an AC stimulus.
    pub fn dc_ac(dc: f64, ac_mag: f64, ac_phase_deg: f64) -> Self {
        Self {
            dc,
            ac_mag,
            ac_phase_deg,
            waveform: Waveform::Constant,
        }
    }

    /// A pure AC probe with zero DC value — exactly what the stability tool
    /// injects at the node under test.
    pub fn ac_probe(ac_mag: f64) -> Self {
        Self {
            dc: 0.0,
            ac_mag,
            ac_phase_deg: 0.0,
            waveform: Waveform::Constant,
        }
    }

    /// A step source for transient analysis, holding `dc_initial` until
    /// `delay` and `dc_final` afterwards. The DC (operating-point) value is
    /// the *initial* level.
    pub fn step(dc_initial: f64, dc_final: f64, delay: f64) -> Self {
        Self {
            dc: dc_initial,
            ac_mag: 0.0,
            ac_phase_deg: 0.0,
            waveform: Waveform::Step {
                initial: dc_initial,
                final_value: dc_final,
                delay,
            },
        }
    }

    /// Returns a copy with the AC stimulus removed (magnitude forced to 0).
    ///
    /// The original tool "auto-zeroes all AC sources/stimuli in the design
    /// prior to running the analysis" so that only its own probe is active;
    /// this is the per-source primitive behind that feature.
    pub fn without_ac(mut self) -> Self {
        self.ac_mag = 0.0;
        self.ac_phase_deg = 0.0;
        self
    }

    /// Transient value at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        self.waveform.value_at(t, self.dc)
    }

    /// Transient **left-limit** value at time `t` (the value an instant
    /// before `t`) — see [`Waveform::value_at_left`].
    pub fn value_at_left(&self, t: f64) -> f64 {
        self.waveform.value_at_left(t, self.dc)
    }
}

impl Default for SourceSpec {
    fn default() -> Self {
        Self::dc(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_constructor() {
        let s = SourceSpec::dc(2.5);
        assert_eq!(s.dc, 2.5);
        assert_eq!(s.ac_mag, 0.0);
        assert_eq!(s.value_at(10.0), 2.5);
    }

    #[test]
    fn ac_probe_has_no_dc() {
        let s = SourceSpec::ac_probe(1.0);
        assert_eq!(s.dc, 0.0);
        assert_eq!(s.ac_mag, 1.0);
    }

    #[test]
    fn without_ac_zeroes_stimulus() {
        let s = SourceSpec::dc_ac(1.0, 1.0, 45.0).without_ac();
        assert_eq!(s.ac_mag, 0.0);
        assert_eq!(s.ac_phase_deg, 0.0);
        assert_eq!(s.dc, 1.0);
    }

    #[test]
    fn step_waveform() {
        let s = SourceSpec::step(1.0, 2.0, 1e-6);
        assert_eq!(s.value_at(0.0), 1.0);
        assert_eq!(s.value_at(0.9e-6), 1.0);
        assert_eq!(s.value_at(1.1e-6), 2.0);
        assert_eq!(s.dc, 1.0);
    }

    #[test]
    fn pulse_waveform_phases() {
        let w = Waveform::Pulse {
            initial: 0.0,
            pulsed: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
        };
        assert_eq!(w.value_at(0.5, 0.0), 0.0);
        assert!((w.value_at(1.5, 0.0) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.value_at(2.5, 0.0), 1.0); // flat top
        assert!((w.value_at(4.5, 0.0) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.value_at(10.0, 0.0), 0.0); // back to initial
    }

    #[test]
    fn pulse_zero_rise_fall() {
        let w = Waveform::Pulse {
            initial: 0.0,
            pulsed: 5.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 1.0,
        };
        assert_eq!(w.value_at(0.5, 0.0), 5.0);
        assert_eq!(w.value_at(1.5, 0.0), 0.0);
    }

    #[test]
    fn sine_waveform() {
        let w = Waveform::Sine {
            offset: 1.0,
            amplitude: 2.0,
            freq_hz: 1.0,
            delay: 0.0,
        };
        assert!((w.value_at(0.25, 0.0) - 3.0).abs() < 1e-12);
        assert!((w.value_at(0.0, 0.0) - 1.0).abs() < 1e-12);
        let delayed = Waveform::Sine {
            offset: 1.0,
            amplitude: 2.0,
            freq_hz: 1.0,
            delay: 5.0,
        };
        assert_eq!(delayed.value_at(1.0, 0.0), 1.0);
    }

    #[test]
    fn default_is_zero_dc() {
        assert_eq!(SourceSpec::default(), SourceSpec::dc(0.0));
    }

    #[test]
    fn left_limit_differs_only_on_jumps() {
        let s = SourceSpec::step(1.0, 2.0, 1e-6);
        // Exactly on the step instant: right limit is the final value, left
        // limit is the initial value.
        assert_eq!(s.value_at(1e-6), 2.0);
        assert_eq!(s.value_at_left(1e-6), 1.0);
        // Away from the jump the two agree.
        assert_eq!(s.value_at_left(0.5e-6), s.value_at(0.5e-6));
        assert_eq!(s.value_at_left(2e-6), s.value_at(2e-6));

        // A zero-rise pulse jumps at `delay`; a finite-rise one is continuous
        // there (left limit equals right limit at every edge).
        let sharp = Waveform::Pulse {
            initial: 0.0,
            pulsed: 5.0,
            delay: 1.0,
            rise: 0.0,
            fall: 0.0,
            width: 1.0,
        };
        assert_eq!(sharp.value_at(1.0, 0.0), 5.0);
        assert_eq!(sharp.value_at_left(1.0, 0.0), 0.0);
        assert_eq!(sharp.value_at(2.0, 0.0), 0.0);
        assert_eq!(sharp.value_at_left(2.0, 0.0), 5.0);
        let ramped = Waveform::Pulse {
            initial: 0.0,
            pulsed: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
        };
        for t in [1.0, 1.5, 2.0, 4.0, 5.0, 7.0] {
            assert!((ramped.value_at(t, 0.0) - ramped.value_at_left(t, 0.0)).abs() < 1e-15);
        }
        // The sine is continuous at its start.
        let sine = Waveform::Sine {
            offset: 1.0,
            amplitude: 2.0,
            freq_hz: 1.0,
            delay: 5.0,
        };
        assert_eq!(sine.value_at_left(5.0, 0.0), sine.value_at(5.0, 0.0));
    }

    #[test]
    fn breakpoints_cover_every_discontinuity() {
        let mut bps = Vec::new();
        Waveform::Constant.breakpoints(&mut bps);
        assert!(bps.is_empty());
        Waveform::Step {
            initial: 0.0,
            final_value: 1.0,
            delay: 2e-6,
        }
        .breakpoints(&mut bps);
        assert_eq!(bps, vec![2e-6]);
        bps.clear();
        Waveform::Pulse {
            initial: 0.0,
            pulsed: 1.0,
            delay: 1.0,
            rise: 0.5,
            fall: 0.25,
            width: 2.0,
        }
        .breakpoints(&mut bps);
        assert_eq!(bps, vec![1.0, 1.5, 3.5, 3.75]);
        bps.clear();
        Waveform::Sine {
            offset: 0.0,
            amplitude: 1.0,
            freq_hz: 1.0,
            delay: 0.5,
        }
        .breakpoints(&mut bps);
        assert_eq!(bps, vec![0.5]);
    }
}
