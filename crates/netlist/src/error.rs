//! Error type for circuit construction and netlist parsing.

use std::fmt;

/// Errors produced while building or parsing a circuit description.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// An element with this name already exists in the circuit.
    DuplicateElement(String),
    /// A referenced element (e.g. the controlling source of a CCCS) does not exist.
    UnknownElement(String),
    /// A referenced device model was never defined.
    UnknownModel(String),
    /// A numeric value could not be parsed.
    InvalidValue {
        /// The offending token.
        token: String,
        /// Netlist line number (1-based) when parsed from text, 0 otherwise.
        line: usize,
    },
    /// A netlist line is malformed.
    MalformedLine {
        /// Netlist line number (1-based).
        line: usize,
        /// Explanation of the problem.
        reason: String,
    },
    /// A component value is outside its physically meaningful range
    /// (e.g. a negative capacitance).
    InvalidParameter {
        /// Element or model name.
        name: String,
        /// Explanation of the problem.
        reason: String,
    },
    /// The circuit failed a structural validity check.
    InvalidCircuit(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateElement(name) => {
                write!(f, "element `{name}` is defined more than once")
            }
            NetlistError::UnknownElement(name) => {
                write!(f, "referenced element `{name}` does not exist")
            }
            NetlistError::UnknownModel(name) => {
                write!(f, "referenced model `{name}` does not exist")
            }
            NetlistError::InvalidValue { token, line } => {
                if *line == 0 {
                    write!(f, "invalid numeric value `{token}`")
                } else {
                    write!(f, "invalid numeric value `{token}` on line {line}")
                }
            }
            NetlistError::MalformedLine { line, reason } => {
                write!(f, "malformed netlist line {line}: {reason}")
            }
            NetlistError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter for `{name}`: {reason}")
            }
            NetlistError::InvalidCircuit(reason) => write!(f, "invalid circuit: {reason}"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            NetlistError::DuplicateElement("R1".into()).to_string(),
            "element `R1` is defined more than once"
        );
        assert_eq!(
            NetlistError::InvalidValue {
                token: "1x".into(),
                line: 3
            }
            .to_string(),
            "invalid numeric value `1x` on line 3"
        );
        assert_eq!(
            NetlistError::InvalidValue {
                token: "1x".into(),
                line: 0
            }
            .to_string(),
            "invalid numeric value `1x`"
        );
        assert_eq!(
            NetlistError::MalformedLine {
                line: 7,
                reason: "too few tokens".into()
            }
            .to_string(),
            "malformed netlist line 7: too few tokens"
        );
        assert_eq!(
            NetlistError::InvalidCircuit("no ground".into()).to_string(),
            "invalid circuit: no ground"
        );
        assert_eq!(
            NetlistError::UnknownModel("npn1".into()).to_string(),
            "referenced model `npn1` does not exist"
        );
    }
}
