//! SPICE-like netlist text parser.
//!
//! The grammar is a pragmatic subset of Berkeley SPICE decks, sufficient to
//! describe the circuits used throughout the paper's evaluation:
//!
//! ```text
//! * comment lines start with '*' (or ';')
//! R<name> n+ n- value
//! C<name> n+ n- value
//! L<name> n+ n- value
//! V<name> n+ n- [DC v] [AC mag [phase]] [STEP v0 v1 [delay]]
//! I<name> n+ n- [DC v] [AC mag [phase]] [STEP v0 v1 [delay]]
//! E<name> out+ out- ctrl+ ctrl- gain
//! G<name> out+ out- ctrl+ ctrl- gm
//! F<name> out+ out- vsource gain
//! H<name> out+ out- vsource rm
//! D<name> anode cathode model
//! Q<name> collector base emitter model
//! M<name> drain gate source model [W=value] [L=value]
//! .model <name> <D|NPN|PNP|NMOS|PMOS> [param=value ...]
//! .end
//! ```
//!
//! Values accept the usual engineering suffixes (`k`, `meg`, `u`, `n`, `p`…).

use crate::circuit::Circuit;
use crate::element::{BjtPolarity, MosfetPolarity};
use crate::error::NetlistError;
use crate::models::{BjtModel, DiodeModel, MosfetModel};
use crate::source::SourceSpec;
use crate::units::parse_value;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum ModelCard {
    Diode(DiodeModel),
    Bjt(BjtPolarity, BjtModel),
    Mosfet(MosfetPolarity, MosfetModel),
}

/// Parses a SPICE-like netlist into a [`Circuit`].
///
/// The first line is treated as the circuit title if it does not look like an
/// element, directive or comment.
///
/// # Errors
///
/// Returns a [`NetlistError`] describing the first problem encountered
/// (malformed line, unknown model, invalid value, duplicate element).
///
/// ```
/// let ckt = loopscope_netlist::parse_netlist(r"
/// simple rc
/// V1 in 0 DC 1 AC 1
/// R1 in out 1k
/// C1 out 0 100p
/// .end
/// ")?;
/// assert_eq!(ckt.title(), "simple rc");
/// assert_eq!(ckt.elements().len(), 3);
/// # Ok::<(), loopscope_netlist::NetlistError>(())
/// ```
pub fn parse_netlist(text: &str) -> Result<Circuit, NetlistError> {
    let lines: Vec<(usize, String)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim().to_string()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('*') && !l.starts_with(';'))
        .collect();

    // Pass 1: collect model cards and the title.
    let mut models: HashMap<String, ModelCard> = HashMap::new();
    let mut title = String::from("netlist");
    let mut title_line: Option<usize> = None;
    for (lineno, line) in &lines {
        let lower = line.to_ascii_lowercase();
        if lower.starts_with(".model") {
            let (name, card) = parse_model_card(*lineno, line)?;
            models.insert(name, card);
        } else if title_line.is_none() && !lower.starts_with('.') && !is_element_line(line) {
            title = line.clone();
            title_line = Some(*lineno);
        }
    }

    let mut circuit = Circuit::new(title);

    // Pass 2: elements.
    for (lineno, line) in &lines {
        let lower = line.to_ascii_lowercase();
        if lower.starts_with('.') || Some(*lineno) == title_line {
            continue;
        }
        parse_element_line(&mut circuit, &models, *lineno, line)?;
    }

    Ok(circuit)
}

fn is_element_line(line: &str) -> bool {
    matches!(
        line.chars().next().map(|c| c.to_ascii_uppercase()),
        Some('R' | 'C' | 'L' | 'V' | 'I' | 'E' | 'G' | 'F' | 'H' | 'D' | 'Q' | 'M')
    ) && line.split_whitespace().count() >= 3
}

fn value_at(tokens: &[&str], idx: usize, lineno: usize) -> Result<f64, NetlistError> {
    let token = tokens.get(idx).ok_or_else(|| NetlistError::MalformedLine {
        line: lineno,
        reason: "missing value token".to_string(),
    })?;
    parse_value(token).map_err(|_| NetlistError::InvalidValue {
        token: (*token).to_string(),
        line: lineno,
    })
}

fn parse_source_spec(tokens: &[&str], lineno: usize) -> Result<SourceSpec, NetlistError> {
    // tokens are the trailing tokens after "<name> n+ n-".
    let mut dc = 0.0;
    let mut ac_mag = 0.0;
    let mut ac_phase = 0.0;
    let mut step: Option<(f64, f64, f64)> = None;
    let mut i = 0;
    while i < tokens.len() {
        let t = tokens[i].to_ascii_lowercase();
        match t.as_str() {
            "dc" => {
                dc = value_at(tokens, i + 1, lineno)?;
                i += 2;
            }
            "ac" => {
                ac_mag = value_at(tokens, i + 1, lineno)?;
                if let Some(phase_tok) = tokens.get(i + 2) {
                    if let Ok(p) = parse_value(phase_tok) {
                        ac_phase = p;
                        i += 1;
                    }
                }
                i += 2;
            }
            "step" => {
                // STEP v0 v1 [delay] — the transient stimulus of the
                // overshoot baseline. The operating point uses v0.
                let initial = value_at(tokens, i + 1, lineno)?;
                let final_value = value_at(tokens, i + 2, lineno)?;
                let mut consumed = 3;
                let mut delay = 0.0;
                if let Some(delay_tok) = tokens.get(i + 3) {
                    if let Ok(d) = parse_value(delay_tok) {
                        delay = d;
                        consumed += 1;
                    }
                }
                step = Some((initial, final_value, delay));
                i += consumed;
            }
            _ => {
                // A bare leading number is the DC value.
                dc = value_at(tokens, i, lineno)?;
                i += 1;
            }
        }
    }
    let mut spec = SourceSpec::dc_ac(dc, ac_mag, ac_phase);
    if let Some((initial, final_value, delay)) = step {
        // The step's initial level doubles as the DC value unless an
        // explicit DC token overrode it.
        let step_spec = SourceSpec::step(initial, final_value, delay);
        spec.waveform = step_spec.waveform;
        if dc == 0.0 {
            spec.dc = initial;
        }
    }
    Ok(spec)
}

fn parse_model_card(lineno: usize, line: &str) -> Result<(String, ModelCard), NetlistError> {
    // ".model name TYPE param=value param=value ..." — parentheses optional.
    let cleaned = line.replace(['(', ')'], " ");
    let tokens: Vec<&str> = cleaned.split_whitespace().collect();
    if tokens.len() < 3 {
        return Err(NetlistError::MalformedLine {
            line: lineno,
            reason: ".model requires a name and a type".to_string(),
        });
    }
    let name = tokens[1].to_string();
    let kind = tokens[2].to_ascii_uppercase();
    let params = parse_named_params(&tokens[3..], lineno)?;
    let get = |key: &str, default: f64| params.get(key).copied().unwrap_or(default);

    let card = match kind.as_str() {
        "D" => ModelCard::Diode(DiodeModel {
            is: get("is", 1.0e-14),
            n: get("n", 1.0),
            cj0: get("cj0", 0.0),
            rs: get("rs", 0.0),
        }),
        "NPN" | "PNP" => {
            let polarity = if kind == "NPN" {
                BjtPolarity::Npn
            } else {
                BjtPolarity::Pnp
            };
            ModelCard::Bjt(
                polarity,
                BjtModel {
                    is: get("is", 1.0e-16),
                    bf: get("bf", 100.0),
                    br: get("br", 1.0),
                    vaf: get("vaf", f64::INFINITY),
                    cje: get("cje", 0.0),
                    cjc: get("cjc", 0.0),
                    tf: get("tf", 0.0),
                },
            )
        }
        "NMOS" | "PMOS" => {
            let polarity = if kind == "NMOS" {
                MosfetPolarity::Nmos
            } else {
                MosfetPolarity::Pmos
            };
            ModelCard::Mosfet(
                polarity,
                MosfetModel {
                    vto: get("vto", if kind == "NMOS" { 0.7 } else { -0.7 }),
                    kp: get("kp", 2.0e-5),
                    lambda: get("lambda", 0.02),
                    cgs: get("cgs", 0.0),
                    cgd: get("cgd", 0.0),
                    cdb: get("cdb", 0.0),
                },
            )
        }
        other => {
            return Err(NetlistError::MalformedLine {
                line: lineno,
                reason: format!("unsupported model type `{other}`"),
            })
        }
    };
    Ok((name, card))
}

fn parse_named_params(
    tokens: &[&str],
    lineno: usize,
) -> Result<HashMap<String, f64>, NetlistError> {
    let mut map = HashMap::new();
    for tok in tokens {
        let Some((key, value)) = tok.split_once('=') else {
            return Err(NetlistError::MalformedLine {
                line: lineno,
                reason: format!("expected `param=value`, got `{tok}`"),
            });
        };
        let v = parse_value(value).map_err(|_| NetlistError::InvalidValue {
            token: value.to_string(),
            line: lineno,
        })?;
        map.insert(key.to_ascii_lowercase(), v);
    }
    Ok(map)
}

fn parse_element_line(
    circuit: &mut Circuit,
    models: &HashMap<String, ModelCard>,
    lineno: usize,
    line: &str,
) -> Result<(), NetlistError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let name = tokens[0];
    let first = name.chars().next().unwrap_or(' ').to_ascii_uppercase();
    let need = |count: usize| -> Result<(), NetlistError> {
        if tokens.len() < count {
            Err(NetlistError::MalformedLine {
                line: lineno,
                reason: format!("expected at least {count} tokens, got {}", tokens.len()),
            })
        } else {
            Ok(())
        }
    };

    match first {
        'R' | 'C' | 'L' => {
            need(4)?;
            let a = circuit.node(tokens[1]);
            let b = circuit.node(tokens[2]);
            let value = value_at(&tokens, 3, lineno)?;
            let element = match first {
                'R' => {
                    if !(value.is_finite() && value > 0.0) {
                        return Err(NetlistError::InvalidParameter {
                            name: name.to_string(),
                            reason: "resistance must be positive".to_string(),
                        });
                    }
                    crate::element::Element::Resistor(crate::element::Resistor {
                        name: name.to_string(),
                        a,
                        b,
                        ohms: value,
                    })
                }
                'C' => {
                    if !(value.is_finite() && value >= 0.0) {
                        return Err(NetlistError::InvalidParameter {
                            name: name.to_string(),
                            reason: "capacitance must be non-negative".to_string(),
                        });
                    }
                    crate::element::Element::Capacitor(crate::element::Capacitor {
                        name: name.to_string(),
                        a,
                        b,
                        farads: value,
                    })
                }
                _ => {
                    if !(value.is_finite() && value > 0.0) {
                        return Err(NetlistError::InvalidParameter {
                            name: name.to_string(),
                            reason: "inductance must be positive".to_string(),
                        });
                    }
                    crate::element::Element::Inductor(crate::element::Inductor {
                        name: name.to_string(),
                        a,
                        b,
                        henries: value,
                    })
                }
            };
            circuit.try_add(element)
        }
        'V' | 'I' => {
            need(3)?;
            let plus = circuit.node(tokens[1]);
            let minus = circuit.node(tokens[2]);
            let spec = parse_source_spec(&tokens[3..], lineno)?;
            let element = if first == 'V' {
                crate::element::Element::Vsource(crate::element::Vsource {
                    name: name.to_string(),
                    plus,
                    minus,
                    spec,
                })
            } else {
                crate::element::Element::Isource(crate::element::Isource {
                    name: name.to_string(),
                    plus,
                    minus,
                    spec,
                })
            };
            circuit.try_add(element)
        }
        'E' | 'G' => {
            need(6)?;
            let out_plus = circuit.node(tokens[1]);
            let out_minus = circuit.node(tokens[2]);
            let ctrl_plus = circuit.node(tokens[3]);
            let ctrl_minus = circuit.node(tokens[4]);
            let value = value_at(&tokens, 5, lineno)?;
            let element = if first == 'E' {
                crate::element::Element::Vcvs(crate::element::Vcvs {
                    name: name.to_string(),
                    out_plus,
                    out_minus,
                    ctrl_plus,
                    ctrl_minus,
                    gain: value,
                })
            } else {
                crate::element::Element::Vccs(crate::element::Vccs {
                    name: name.to_string(),
                    out_plus,
                    out_minus,
                    ctrl_plus,
                    ctrl_minus,
                    gm: value,
                })
            };
            circuit.try_add(element)
        }
        'F' | 'H' => {
            need(5)?;
            let out_plus = circuit.node(tokens[1]);
            let out_minus = circuit.node(tokens[2]);
            let ctrl = tokens[3].to_string();
            let value = value_at(&tokens, 4, lineno)?;
            let element = if first == 'F' {
                crate::element::Element::Cccs(crate::element::Cccs {
                    name: name.to_string(),
                    out_plus,
                    out_minus,
                    ctrl_vsource: ctrl,
                    gain: value,
                })
            } else {
                crate::element::Element::Ccvs(crate::element::Ccvs {
                    name: name.to_string(),
                    out_plus,
                    out_minus,
                    ctrl_vsource: ctrl,
                    rm: value,
                })
            };
            circuit.try_add(element)
        }
        'D' => {
            need(4)?;
            let anode = circuit.node(tokens[1]);
            let cathode = circuit.node(tokens[2]);
            let model = match models.get(tokens[3]) {
                Some(ModelCard::Diode(m)) => *m,
                Some(_) => {
                    return Err(NetlistError::MalformedLine {
                        line: lineno,
                        reason: format!("model `{}` is not a diode model", tokens[3]),
                    })
                }
                None => return Err(NetlistError::UnknownModel(tokens[3].to_string())),
            };
            circuit.try_add(crate::element::Element::Diode(crate::element::Diode {
                name: name.to_string(),
                anode,
                cathode,
                model,
            }))
        }
        'Q' => {
            need(5)?;
            let collector = circuit.node(tokens[1]);
            let base = circuit.node(tokens[2]);
            let emitter = circuit.node(tokens[3]);
            let (polarity, model) = match models.get(tokens[4]) {
                Some(ModelCard::Bjt(p, m)) => (*p, *m),
                Some(_) => {
                    return Err(NetlistError::MalformedLine {
                        line: lineno,
                        reason: format!("model `{}` is not a BJT model", tokens[4]),
                    })
                }
                None => return Err(NetlistError::UnknownModel(tokens[4].to_string())),
            };
            circuit.try_add(crate::element::Element::Bjt(crate::element::Bjt {
                name: name.to_string(),
                collector,
                base,
                emitter,
                polarity,
                model,
            }))
        }
        'M' => {
            need(5)?;
            let drain = circuit.node(tokens[1]);
            let gate = circuit.node(tokens[2]);
            let source = circuit.node(tokens[3]);
            let (polarity, model) = match models.get(tokens[4]) {
                Some(ModelCard::Mosfet(p, m)) => (*p, *m),
                Some(_) => {
                    return Err(NetlistError::MalformedLine {
                        line: lineno,
                        reason: format!("model `{}` is not a MOSFET model", tokens[4]),
                    })
                }
                None => return Err(NetlistError::UnknownModel(tokens[4].to_string())),
            };
            let geom = parse_named_params(&tokens[5..], lineno)?;
            let width = geom.get("w").copied().unwrap_or(10.0e-6);
            let length = geom.get("l").copied().unwrap_or(1.0e-6);
            if width <= 0.0 || length <= 0.0 {
                return Err(NetlistError::InvalidParameter {
                    name: name.to_string(),
                    reason: "W and L must be positive".to_string(),
                });
            }
            circuit.try_add(crate::element::Element::Mosfet(crate::element::Mosfet {
                name: name.to_string(),
                drain,
                gate,
                source,
                polarity,
                width,
                length,
                model,
            }))
        }
        other => Err(NetlistError::MalformedLine {
            line: lineno,
            reason: format!("unknown element prefix `{other}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::source::Waveform;

    #[test]
    fn parses_rc_lowpass() {
        let ckt =
            parse_netlist("rc lowpass\nV1 in 0 DC 1 AC 1\nR1 in out 1k\nC1 out 0 100p\n.end\n")
                .unwrap();
        assert_eq!(ckt.title(), "rc lowpass");
        assert_eq!(ckt.elements().len(), 3);
        assert_eq!(ckt.node_count(), 3);
        match ckt.element("C1").unwrap() {
            Element::Capacitor(c) => assert!((c.farads - 1e-10).abs() < 1e-22),
            _ => panic!("wrong element type"),
        }
        ckt.validate().unwrap();
    }

    #[test]
    fn parses_source_variants() {
        let ckt = parse_netlist(
            "sources\nV1 a 0 5\nV2 b 0 DC 2 AC 1 45\nI1 0 c AC 1\nR1 a b 1\nR2 b c 1\nR3 c 0 1\n",
        )
        .unwrap();
        match ckt.element("V1").unwrap() {
            Element::Vsource(v) => {
                assert_eq!(v.spec.dc, 5.0);
                assert_eq!(v.spec.ac_mag, 0.0);
            }
            _ => panic!(),
        }
        match ckt.element("V2").unwrap() {
            Element::Vsource(v) => {
                assert_eq!(v.spec.dc, 2.0);
                assert_eq!(v.spec.ac_mag, 1.0);
                assert_eq!(v.spec.ac_phase_deg, 45.0);
            }
            _ => panic!(),
        }
        match ckt.element("I1").unwrap() {
            Element::Isource(i) => {
                assert_eq!(i.spec.dc, 0.0);
                assert_eq!(i.spec.ac_mag, 1.0);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_step_sources() {
        let ckt = parse_netlist(
            "steps\nV1 a 0 STEP 0 1\nV2 b 0 STEP 1 5 2u\nI1 0 c STEP 0 1m\nR1 a 0 1k\nR2 b 0 1k\nR3 c 0 1k\n",
        )
        .unwrap();
        match ckt.element("V1").unwrap() {
            Element::Vsource(v) => {
                assert_eq!(v.spec.dc, 0.0);
                assert_eq!(
                    v.spec.waveform,
                    Waveform::Step {
                        initial: 0.0,
                        final_value: 1.0,
                        delay: 0.0
                    }
                );
                // The operating point sees the pre-step level, the
                // transient stamps the post-delay value.
                assert_eq!(v.spec.value_at(0.0), 1.0);
            }
            _ => panic!(),
        }
        match ckt.element("V2").unwrap() {
            Element::Vsource(v) => {
                // The step's initial level doubles as the DC value.
                assert_eq!(v.spec.dc, 1.0);
                assert_eq!(v.spec.value_at(1e-6), 1.0);
                assert_eq!(v.spec.value_at(3e-6), 5.0);
            }
            _ => panic!(),
        }
        match ckt.element("I1").unwrap() {
            Element::Isource(i) => {
                assert_eq!(i.spec.dc, 0.0);
                assert_eq!(i.spec.value_at(1.0), 1e-3);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn step_rejects_missing_levels() {
        let err = parse_netlist("bad\nV1 a 0 STEP 1\nR1 a 0 1k\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn errors_report_physical_line_numbers() {
        // Comments and blank lines still count toward the reported position:
        // the bad resistor value sits on physical line 6.
        let err = parse_netlist(
            "title line\n* comment\n\nV1 a 0 DC 1\n; another comment\nR1 a 0 bogus\n",
        )
        .unwrap_err();
        match err {
            NetlistError::InvalidValue { ref token, line } => {
                assert_eq!(token, "bogus");
                assert_eq!(line, 6);
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        // Too few tokens on physical line 3.
        let err = parse_netlist("title line\nV1 a 0 DC 1\nR1 a 0\n").unwrap_err();
        match err {
            NetlistError::MalformedLine { line, .. } => assert_eq!(line, 3),
            other => panic!("expected MalformedLine, got {other:?}"),
        }
    }

    #[test]
    fn bare_model_cards_use_library_defaults() {
        // A .model line with no parameters must behave exactly like the
        // models module's Default impls (vto/kp/lambda for NMOS).
        let ckt = parse_netlist("defaults\n.model mn NMOS\nV1 d 0 DC 2\nM1 d d 0 mn\nR1 d 0 10k\n")
            .unwrap();
        match ckt.element("M1").unwrap() {
            Element::Mosfet(m) => {
                assert_eq!(m.model, crate::models::MosfetModel::default());
                assert!(m.width > 0.0 && m.length > 0.0);
            }
            _ => panic!("wrong element type"),
        }
        // PMOS flips the default threshold sign.
        let ckt =
            parse_netlist("defaults\n.model mp PMOS\nV1 d 0 DC -2\nM1 d d 0 mp\nR1 d 0 10k\n")
                .unwrap();
        match ckt.element("M1").unwrap() {
            Element::Mosfet(m) => assert_eq!(m.model.vto, -0.7),
            _ => panic!("wrong element type"),
        }
    }

    #[test]
    fn parses_controlled_sources() {
        let ckt = parse_netlist(
            "ctrl\nV1 in 0 DC 1\nR1 in x 1k\nE1 y 0 x 0 10\nR2 y 0 1k\nG1 0 z x 0 1m\nR3 z 0 2k\nF1 0 w V1 2\nR4 w 0 1k\nH1 u 0 V1 50\nR5 u 0 1k\nR6 x 0 1k\n",
        )
        .unwrap();
        assert!(matches!(ckt.element("E1"), Some(Element::Vcvs(_))));
        assert!(matches!(ckt.element("G1"), Some(Element::Vccs(_))));
        assert!(matches!(ckt.element("F1"), Some(Element::Cccs(_))));
        assert!(matches!(ckt.element("H1"), Some(Element::Ccvs(_))));
        ckt.validate().unwrap();
    }

    #[test]
    fn parses_semiconductors_with_models() {
        let ckt = parse_netlist(
            r"
semis
.model dio D (IS=2e-14 N=1.1 CJ0=1p)
.model qn NPN (IS=1e-16 BF=150 VAF=80 CJE=0.5p CJC=0.3p TF=100p)
.model mn NMOS (VTO=0.6 KP=50u LAMBDA=0.05 CGS=10f CGD=5f)
V1 vdd 0 DC 3
D1 vdd a dio
Q1 b a 0 qn
M1 c b 0 mn W=20u L=2u
R1 a 0 10k
R2 b vdd 10k
R3 c vdd 10k
.end
",
        )
        .unwrap();
        match ckt.element("D1").unwrap() {
            Element::Diode(d) => {
                assert_eq!(d.model.is, 2e-14);
                assert_eq!(d.model.n, 1.1);
            }
            _ => panic!(),
        }
        match ckt.element("Q1").unwrap() {
            Element::Bjt(q) => {
                assert_eq!(q.polarity, BjtPolarity::Npn);
                assert_eq!(q.model.bf, 150.0);
                assert_eq!(q.model.vaf, 80.0);
            }
            _ => panic!(),
        }
        match ckt.element("M1").unwrap() {
            Element::Mosfet(m) => {
                assert_eq!(m.polarity, MosfetPolarity::Nmos);
                assert!((m.width - 20e-6).abs() < 1e-12);
                assert!((m.length - 2e-6).abs() < 1e-12);
                assert!((m.model.kp - 50e-6).abs() < 1e-12);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let ckt =
            parse_netlist("* a comment\n\n; another comment\nR1 a 0 1k\nC1 a 0 1p\n").unwrap();
        assert_eq!(ckt.elements().len(), 2);
        // No explicit title line: default is used.
        assert_eq!(ckt.title(), "netlist");
    }

    #[test]
    fn unknown_model_is_an_error() {
        let err = parse_netlist("t\nD1 a 0 nomodel\nR1 a 0 1k\n").unwrap_err();
        assert!(matches!(err, NetlistError::UnknownModel(_)));
    }

    #[test]
    fn wrong_model_kind_is_an_error() {
        let err =
            parse_netlist("t\n.model nm NMOS\nQ1 a b 0 nm\nR1 a 0 1k\nR2 b 0 1k\n").unwrap_err();
        assert!(matches!(err, NetlistError::MalformedLine { .. }));
    }

    #[test]
    fn malformed_lines_reported_with_line_number() {
        let err = parse_netlist("t\nR1 a 0\n").unwrap_err();
        match err {
            NetlistError::MalformedLine { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_value_reported() {
        let err = parse_netlist("t\nR1 a 0 abc\n").unwrap_err();
        assert!(matches!(err, NetlistError::InvalidValue { .. }));
    }

    #[test]
    fn negative_resistance_rejected() {
        let err = parse_netlist("t\nR1 a 0 -5\n").unwrap_err();
        assert!(matches!(err, NetlistError::InvalidParameter { .. }));
    }

    #[test]
    fn unknown_prefix_rejected() {
        let err = parse_netlist("t\nX1 a b c sub\n").unwrap_err();
        assert!(matches!(err, NetlistError::MalformedLine { .. }));
    }

    #[test]
    fn duplicate_element_rejected() {
        let err = parse_netlist("t\nR1 a 0 1k\nR1 a 0 2k\n").unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateElement(_)));
    }

    #[test]
    fn model_card_without_type_is_error() {
        let err = parse_netlist("t\n.model broken\nR1 a 0 1k\n").unwrap_err();
        assert!(matches!(err, NetlistError::MalformedLine { .. }));
    }
}
