//! Circuit representation for the `loopscope` toolkit.
//!
//! This crate models the *input* to the simulator: nodes, circuit elements,
//! device model parameters, independent-source waveforms, and a SPICE-like
//! text netlist parser. The simulation engine itself lives in
//! `loopscope-spice`; the stability methodology on top of it lives in
//! `loopscope-core`.
//!
//! The original tool of Milev & Burt reads circuits from Cadence Composer
//! schematics. Here a circuit is either built programmatically through
//! [`Circuit`]'s builder-style methods or parsed from a SPICE-like netlist
//! with [`parse_netlist`].
//!
//! # Example
//!
//! ```
//! use loopscope_netlist::{Circuit, SourceSpec};
//!
//! let mut ckt = Circuit::new("rc lowpass");
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::dc_ac(1.0, 1.0, 0.0));
//! ckt.add_resistor("R1", vin, vout, 1.0e3);
//! ckt.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-9);
//! assert_eq!(ckt.node_count(), 3); // ground + in + out
//! assert_eq!(ckt.elements().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod element;
mod error;
mod models;
mod parser;
mod source;
mod units;

pub use circuit::{Circuit, NodeId};
pub use element::{
    Bjt, BjtPolarity, Capacitor, Cccs, Ccvs, Diode, Element, ElementKind, Inductor, Isource,
    Mosfet, MosfetPolarity, Resistor, Vccs, Vcvs, Vsource,
};
pub use error::NetlistError;
pub use models::{BjtModel, DiodeModel, MosfetModel};
pub use parser::parse_netlist;
pub use source::{SourceSpec, Waveform};
pub use units::parse_value;
