//! Device model parameter sets.
//!
//! The original methodology runs on full foundry PDK models inside Spectre.
//! Loop stability, however, is governed by the small-signal quantities the
//! operating point produces — transconductance, output conductance and node
//! capacitances — so simplified standard models (Shockley diode, Ebers-Moll
//! style BJT with Early effect, Shichman-Hodges level-1 MOSFET) are used
//! here. See DESIGN.md §2 for the substitution rationale.

use crate::error::NetlistError;

/// Shockley diode model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeModel {
    /// Saturation current `IS` in amperes.
    pub is: f64,
    /// Emission coefficient `N`.
    pub n: f64,
    /// Zero-bias junction capacitance `CJ0` in farads.
    pub cj0: f64,
    /// Ohmic series resistance `RS` in ohms.
    pub rs: f64,
}

impl Default for DiodeModel {
    fn default() -> Self {
        Self {
            is: 1.0e-14,
            n: 1.0,
            cj0: 0.0,
            rs: 0.0,
        }
    }
}

impl DiodeModel {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] when a parameter is outside
    /// its physical range.
    pub fn validate(&self, name: &str) -> Result<(), NetlistError> {
        if self.is <= 0.0 {
            return Err(NetlistError::InvalidParameter {
                name: name.to_string(),
                reason: format!("saturation current must be positive, got {}", self.is),
            });
        }
        if self.n <= 0.0 {
            return Err(NetlistError::InvalidParameter {
                name: name.to_string(),
                reason: format!("emission coefficient must be positive, got {}", self.n),
            });
        }
        if self.cj0 < 0.0 || self.rs < 0.0 {
            return Err(NetlistError::InvalidParameter {
                name: name.to_string(),
                reason: "capacitance and resistance must be non-negative".to_string(),
            });
        }
        Ok(())
    }
}

/// Simplified Gummel-Poon / Ebers-Moll BJT model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BjtModel {
    /// Transport saturation current `IS` in amperes.
    pub is: f64,
    /// Forward current gain `BF`.
    pub bf: f64,
    /// Reverse current gain `BR`.
    pub br: f64,
    /// Forward Early voltage `VAF` in volts (∞ disables the Early effect).
    pub vaf: f64,
    /// Zero-bias base-emitter junction capacitance `CJE` in farads.
    pub cje: f64,
    /// Zero-bias base-collector junction capacitance `CJC` in farads.
    pub cjc: f64,
    /// Forward transit time `TF` in seconds (diffusion capacitance).
    pub tf: f64,
}

impl Default for BjtModel {
    fn default() -> Self {
        Self {
            is: 1.0e-16,
            bf: 100.0,
            br: 1.0,
            vaf: f64::INFINITY,
            cje: 0.0,
            cjc: 0.0,
            tf: 0.0,
        }
    }
}

impl BjtModel {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] when a parameter is outside
    /// its physical range.
    pub fn validate(&self, name: &str) -> Result<(), NetlistError> {
        if self.is <= 0.0 || self.bf <= 0.0 || self.br <= 0.0 {
            return Err(NetlistError::InvalidParameter {
                name: name.to_string(),
                reason: "IS, BF and BR must be positive".to_string(),
            });
        }
        if self.vaf <= 0.0 {
            return Err(NetlistError::InvalidParameter {
                name: name.to_string(),
                reason: format!("Early voltage must be positive, got {}", self.vaf),
            });
        }
        if self.cje < 0.0 || self.cjc < 0.0 || self.tf < 0.0 {
            return Err(NetlistError::InvalidParameter {
                name: name.to_string(),
                reason: "CJE, CJC and TF must be non-negative".to_string(),
            });
        }
        Ok(())
    }
}

/// Shichman-Hodges (SPICE level-1) MOSFET model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetModel {
    /// Threshold voltage `VTO` in volts (positive for enhancement NMOS; the
    /// same magnitude convention as SPICE is used for PMOS, i.e. negative).
    pub vto: f64,
    /// Transconductance parameter `KP = µ·Cox` in A/V².
    pub kp: f64,
    /// Channel-length modulation `LAMBDA` in 1/V.
    pub lambda: f64,
    /// Gate-source overlap/intrinsic capacitance per instance in farads.
    pub cgs: f64,
    /// Gate-drain overlap capacitance per instance in farads.
    pub cgd: f64,
    /// Drain/source junction capacitance to bulk per instance in farads.
    pub cdb: f64,
}

impl Default for MosfetModel {
    fn default() -> Self {
        Self {
            vto: 0.7,
            kp: 2.0e-5,
            lambda: 0.02,
            cgs: 0.0,
            cgd: 0.0,
            cdb: 0.0,
        }
    }
}

impl MosfetModel {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] when a parameter is outside
    /// its physical range.
    pub fn validate(&self, name: &str) -> Result<(), NetlistError> {
        if self.kp <= 0.0 {
            return Err(NetlistError::InvalidParameter {
                name: name.to_string(),
                reason: format!("KP must be positive, got {}", self.kp),
            });
        }
        if self.lambda < 0.0 {
            return Err(NetlistError::InvalidParameter {
                name: name.to_string(),
                reason: format!("LAMBDA must be non-negative, got {}", self.lambda),
            });
        }
        if self.cgs < 0.0 || self.cgd < 0.0 || self.cdb < 0.0 {
            return Err(NetlistError::InvalidParameter {
                name: name.to_string(),
                reason: "capacitances must be non-negative".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        DiodeModel::default().validate("d").unwrap();
        BjtModel::default().validate("q").unwrap();
        MosfetModel::default().validate("m").unwrap();
    }

    #[test]
    fn diode_rejects_bad_is() {
        let m = DiodeModel {
            is: 0.0,
            ..Default::default()
        };
        assert!(m.validate("d1").is_err());
        let m = DiodeModel {
            n: -1.0,
            ..Default::default()
        };
        assert!(m.validate("d1").is_err());
        let m = DiodeModel {
            cj0: -1.0,
            ..Default::default()
        };
        assert!(m.validate("d1").is_err());
    }

    #[test]
    fn bjt_rejects_bad_params() {
        let m = BjtModel {
            bf: 0.0,
            ..Default::default()
        };
        assert!(m.validate("q1").is_err());
        let m = BjtModel {
            vaf: -10.0,
            ..Default::default()
        };
        assert!(m.validate("q1").is_err());
        let m = BjtModel {
            tf: -1.0,
            ..Default::default()
        };
        assert!(m.validate("q1").is_err());
    }

    #[test]
    fn mosfet_rejects_bad_params() {
        let m = MosfetModel {
            kp: 0.0,
            ..Default::default()
        };
        assert!(m.validate("m1").is_err());
        let m = MosfetModel {
            lambda: -0.1,
            ..Default::default()
        };
        assert!(m.validate("m1").is_err());
        let m = MosfetModel {
            cgd: -1e-15,
            ..Default::default()
        };
        assert!(m.validate("m1").is_err());
    }

    #[test]
    fn error_message_mentions_name() {
        let m = MosfetModel {
            kp: -1.0,
            ..Default::default()
        };
        let err = m.validate("mload").unwrap_err();
        assert!(err.to_string().contains("mload"));
    }
}
