//! Circuit element (device instance) definitions.

use crate::circuit::NodeId;
use crate::models::{BjtModel, DiodeModel, MosfetModel};
use crate::source::SourceSpec;

/// A linear resistor.
#[derive(Debug, Clone, PartialEq)]
pub struct Resistor {
    /// Instance name, e.g. `"R1"`.
    pub name: String,
    /// First terminal.
    pub a: NodeId,
    /// Second terminal.
    pub b: NodeId,
    /// Resistance in ohms (must be positive).
    pub ohms: f64,
}

/// A linear capacitor.
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    /// Instance name, e.g. `"C1"`.
    pub name: String,
    /// First terminal.
    pub a: NodeId,
    /// Second terminal.
    pub b: NodeId,
    /// Capacitance in farads (must be non-negative).
    pub farads: f64,
}

/// A linear inductor.
#[derive(Debug, Clone, PartialEq)]
pub struct Inductor {
    /// Instance name, e.g. `"L1"`.
    pub name: String,
    /// First terminal.
    pub a: NodeId,
    /// Second terminal.
    pub b: NodeId,
    /// Inductance in henries (must be positive).
    pub henries: f64,
}

/// An independent voltage source (from `plus` to `minus`).
#[derive(Debug, Clone, PartialEq)]
pub struct Vsource {
    /// Instance name, e.g. `"V1"`.
    pub name: String,
    /// Positive terminal.
    pub plus: NodeId,
    /// Negative terminal.
    pub minus: NodeId,
    /// DC / AC / transient specification.
    pub spec: SourceSpec,
}

/// An independent current source; positive current flows from `plus` through
/// the source to `minus` (i.e. it is *injected into* the `minus` node).
#[derive(Debug, Clone, PartialEq)]
pub struct Isource {
    /// Instance name, e.g. `"I1"`.
    pub name: String,
    /// Terminal the current leaves the external circuit from.
    pub plus: NodeId,
    /// Terminal the current is injected into.
    pub minus: NodeId,
    /// DC / AC / transient specification.
    pub spec: SourceSpec,
}

/// Voltage-controlled voltage source (SPICE `E`): `v(out) = gain·v(ctrl)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Vcvs {
    /// Instance name, e.g. `"E1"`.
    pub name: String,
    /// Positive output terminal.
    pub out_plus: NodeId,
    /// Negative output terminal.
    pub out_minus: NodeId,
    /// Positive controlling terminal.
    pub ctrl_plus: NodeId,
    /// Negative controlling terminal.
    pub ctrl_minus: NodeId,
    /// Voltage gain (dimensionless).
    pub gain: f64,
}

/// Voltage-controlled current source (SPICE `G`): `i(out) = gm·v(ctrl)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Vccs {
    /// Instance name, e.g. `"G1"`.
    pub name: String,
    /// Terminal current flows out of (into the circuit).
    pub out_plus: NodeId,
    /// Terminal current flows into.
    pub out_minus: NodeId,
    /// Positive controlling terminal.
    pub ctrl_plus: NodeId,
    /// Negative controlling terminal.
    pub ctrl_minus: NodeId,
    /// Transconductance in siemens.
    pub gm: f64,
}

/// Current-controlled current source (SPICE `F`): `i(out) = gain·i(Vctrl)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cccs {
    /// Instance name, e.g. `"F1"`.
    pub name: String,
    /// Terminal current flows out of.
    pub out_plus: NodeId,
    /// Terminal current flows into.
    pub out_minus: NodeId,
    /// Name of the voltage source whose current is the controlling quantity.
    pub ctrl_vsource: String,
    /// Current gain (dimensionless).
    pub gain: f64,
}

/// Current-controlled voltage source (SPICE `H`): `v(out) = rm·i(Vctrl)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ccvs {
    /// Instance name, e.g. `"H1"`.
    pub name: String,
    /// Positive output terminal.
    pub out_plus: NodeId,
    /// Negative output terminal.
    pub out_minus: NodeId,
    /// Name of the voltage source whose current is the controlling quantity.
    pub ctrl_vsource: String,
    /// Transresistance in ohms.
    pub rm: f64,
}

/// A junction diode (anode → cathode).
#[derive(Debug, Clone, PartialEq)]
pub struct Diode {
    /// Instance name, e.g. `"D1"`.
    pub name: String,
    /// Anode terminal.
    pub anode: NodeId,
    /// Cathode terminal.
    pub cathode: NodeId,
    /// Model parameters.
    pub model: DiodeModel,
}

/// BJT polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BjtPolarity {
    /// NPN transistor.
    Npn,
    /// PNP transistor.
    Pnp,
}

/// A bipolar junction transistor.
#[derive(Debug, Clone, PartialEq)]
pub struct Bjt {
    /// Instance name, e.g. `"Q1"`.
    pub name: String,
    /// Collector terminal.
    pub collector: NodeId,
    /// Base terminal.
    pub base: NodeId,
    /// Emitter terminal.
    pub emitter: NodeId,
    /// NPN or PNP.
    pub polarity: BjtPolarity,
    /// Model parameters.
    pub model: BjtModel,
}

/// MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosfetPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// A MOSFET (level-1 model, bulk tied implicitly).
#[derive(Debug, Clone, PartialEq)]
pub struct Mosfet {
    /// Instance name, e.g. `"M1"`.
    pub name: String,
    /// Drain terminal.
    pub drain: NodeId,
    /// Gate terminal.
    pub gate: NodeId,
    /// Source terminal.
    pub source: NodeId,
    /// N-channel or P-channel.
    pub polarity: MosfetPolarity,
    /// Channel width in metres.
    pub width: f64,
    /// Channel length in metres.
    pub length: f64,
    /// Model parameters.
    pub model: MosfetModel,
}

impl Mosfet {
    /// The geometric gain factor `β = KP·W/L` in A/V².
    pub fn beta(&self) -> f64 {
        self.model.kp * self.width / self.length
    }
}

/// Any circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor.
    Resistor(Resistor),
    /// Linear capacitor.
    Capacitor(Capacitor),
    /// Linear inductor.
    Inductor(Inductor),
    /// Independent voltage source.
    Vsource(Vsource),
    /// Independent current source.
    Isource(Isource),
    /// Voltage-controlled voltage source.
    Vcvs(Vcvs),
    /// Voltage-controlled current source.
    Vccs(Vccs),
    /// Current-controlled current source.
    Cccs(Cccs),
    /// Current-controlled voltage source.
    Ccvs(Ccvs),
    /// Junction diode.
    Diode(Diode),
    /// Bipolar junction transistor.
    Bjt(Bjt),
    /// MOSFET.
    Mosfet(Mosfet),
}

/// Coarse element classification, useful for reports and filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// Resistor.
    Resistor,
    /// Capacitor.
    Capacitor,
    /// Inductor.
    Inductor,
    /// Independent voltage source.
    Vsource,
    /// Independent current source.
    Isource,
    /// Voltage-controlled voltage source.
    Vcvs,
    /// Voltage-controlled current source.
    Vccs,
    /// Current-controlled current source.
    Cccs,
    /// Current-controlled voltage source.
    Ccvs,
    /// Diode.
    Diode,
    /// BJT.
    Bjt,
    /// MOSFET.
    Mosfet,
}

impl Element {
    /// The instance name of the element.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor(e) => &e.name,
            Element::Capacitor(e) => &e.name,
            Element::Inductor(e) => &e.name,
            Element::Vsource(e) => &e.name,
            Element::Isource(e) => &e.name,
            Element::Vcvs(e) => &e.name,
            Element::Vccs(e) => &e.name,
            Element::Cccs(e) => &e.name,
            Element::Ccvs(e) => &e.name,
            Element::Diode(e) => &e.name,
            Element::Bjt(e) => &e.name,
            Element::Mosfet(e) => &e.name,
        }
    }

    /// The coarse kind of the element.
    pub fn kind(&self) -> ElementKind {
        match self {
            Element::Resistor(_) => ElementKind::Resistor,
            Element::Capacitor(_) => ElementKind::Capacitor,
            Element::Inductor(_) => ElementKind::Inductor,
            Element::Vsource(_) => ElementKind::Vsource,
            Element::Isource(_) => ElementKind::Isource,
            Element::Vcvs(_) => ElementKind::Vcvs,
            Element::Vccs(_) => ElementKind::Vccs,
            Element::Cccs(_) => ElementKind::Cccs,
            Element::Ccvs(_) => ElementKind::Ccvs,
            Element::Diode(_) => ElementKind::Diode,
            Element::Bjt(_) => ElementKind::Bjt,
            Element::Mosfet(_) => ElementKind::Mosfet,
        }
    }

    /// The node identifiers this element connects to.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Element::Resistor(e) => vec![e.a, e.b],
            Element::Capacitor(e) => vec![e.a, e.b],
            Element::Inductor(e) => vec![e.a, e.b],
            Element::Vsource(e) => vec![e.plus, e.minus],
            Element::Isource(e) => vec![e.plus, e.minus],
            Element::Vcvs(e) => vec![e.out_plus, e.out_minus, e.ctrl_plus, e.ctrl_minus],
            Element::Vccs(e) => vec![e.out_plus, e.out_minus, e.ctrl_plus, e.ctrl_minus],
            Element::Cccs(e) => vec![e.out_plus, e.out_minus],
            Element::Ccvs(e) => vec![e.out_plus, e.out_minus],
            Element::Diode(e) => vec![e.anode, e.cathode],
            Element::Bjt(e) => vec![e.collector, e.base, e.emitter],
            Element::Mosfet(e) => vec![e.drain, e.gate, e.source],
        }
    }

    /// Returns `true` when the element is a nonlinear device that requires a
    /// Newton-Raphson operating-point solve.
    pub fn is_nonlinear(&self) -> bool {
        matches!(
            self,
            Element::Diode(_) | Element::Bjt(_) | Element::Mosfet(_)
        )
    }

    /// Returns `true` for independent sources (the ones whose AC stimuli the
    /// tool auto-zeroes before injecting its own probe).
    pub fn is_independent_source(&self) -> bool {
        matches!(self, Element::Vsource(_) | Element::Isource(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn two_nodes() -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        let b = c.node("b");
        (c, a, b)
    }

    #[test]
    fn element_name_and_kind() {
        let (_, a, b) = two_nodes();
        let e = Element::Resistor(Resistor {
            name: "R1".into(),
            a,
            b,
            ohms: 10.0,
        });
        assert_eq!(e.name(), "R1");
        assert_eq!(e.kind(), ElementKind::Resistor);
        assert!(!e.is_nonlinear());
        assert!(!e.is_independent_source());
        assert_eq!(e.nodes(), vec![a, b]);
    }

    #[test]
    fn nonlinear_classification() {
        let (_, a, b) = two_nodes();
        let d = Element::Diode(Diode {
            name: "D1".into(),
            anode: a,
            cathode: b,
            model: DiodeModel::default(),
        });
        assert!(d.is_nonlinear());
        let q = Element::Bjt(Bjt {
            name: "Q1".into(),
            collector: a,
            base: b,
            emitter: b,
            polarity: BjtPolarity::Npn,
            model: BjtModel::default(),
        });
        assert!(q.is_nonlinear());
        assert_eq!(q.nodes().len(), 3);
    }

    #[test]
    fn source_classification() {
        let (_, a, b) = two_nodes();
        let v = Element::Vsource(Vsource {
            name: "V1".into(),
            plus: a,
            minus: b,
            spec: SourceSpec::dc(1.0),
        });
        assert!(v.is_independent_source());
        let g = Element::Vccs(Vccs {
            name: "G1".into(),
            out_plus: a,
            out_minus: b,
            ctrl_plus: a,
            ctrl_minus: b,
            gm: 1e-3,
        });
        assert!(!g.is_independent_source());
        assert_eq!(g.nodes().len(), 4);
    }

    #[test]
    fn mosfet_beta() {
        let (_, a, b) = two_nodes();
        let m = Mosfet {
            name: "M1".into(),
            drain: a,
            gate: b,
            source: b,
            polarity: MosfetPolarity::Nmos,
            width: 10e-6,
            length: 1e-6,
            model: MosfetModel {
                kp: 2e-5,
                ..Default::default()
            },
        };
        assert!((m.beta() - 2e-4).abs() < 1e-18);
    }
}
