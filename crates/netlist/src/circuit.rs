//! The circuit container: node interning plus an element list.

use crate::element::{
    Bjt, BjtPolarity, Capacitor, Cccs, Ccvs, Diode, Element, Inductor, Isource, Mosfet,
    MosfetPolarity, Resistor, Vccs, Vcvs, Vsource,
};
use crate::error::NetlistError;
use crate::models::{BjtModel, DiodeModel, MosfetModel};
use crate::source::SourceSpec;
use std::collections::HashMap;

/// Identifier of a circuit node (net).
///
/// Node 0 is always the ground/reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// The raw index of the node (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a node identifier from a raw index previously obtained
    /// from [`NodeId::index`]. Index 0 is the ground node.
    ///
    /// This is intended for analysis code that stores results in flat arrays
    /// indexed by node; passing an index that does not belong to the circuit
    /// the identifier is later used with will cause lookups to panic there.
    pub fn from_index(idx: usize) -> NodeId {
        NodeId(idx)
    }

    /// Returns `true` when this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A complete circuit: named nodes and an ordered list of elements.
///
/// Nodes are interned by name; node `"0"` / `"gnd"` is the ground node.
/// Elements are added through the `add_*` methods which validate values and
/// reject duplicate names.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    title: String,
    node_names: Vec<String>,
    node_index: HashMap<String, NodeId>,
    elements: Vec<Element>,
    element_index: HashMap<String, usize>,
}

impl Circuit {
    /// The ground (reference) node, always present.
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Creates an empty circuit with the given title.
    pub fn new(title: impl Into<String>) -> Self {
        let mut node_index = HashMap::new();
        node_index.insert("0".to_string(), NodeId::GROUND);
        Self {
            title: title.into(),
            node_names: vec!["0".to_string()],
            node_index,
            elements: Vec::new(),
            element_index: HashMap::new(),
        }
    }

    /// The circuit title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Returns the node with the given name, creating it if necessary.
    ///
    /// The names `"0"`, `"gnd"` and `"GND"` all refer to the ground node.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = Self::canonical_node_name(name);
        if let Some(&id) = self.node_index.get(&key) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(key.clone());
        self.node_index.insert(key, id);
        id
    }

    /// Looks up an existing node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_index
            .get(&Self::canonical_node_name(name))
            .copied()
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// All non-ground nodes, in creation order.
    pub fn signal_nodes(&self) -> Vec<NodeId> {
        self.signal_nodes_iter().collect()
    }

    /// Iterator form of [`signal_nodes`](Circuit::signal_nodes), for hot
    /// loops that must not allocate (MNA stamping runs once per Newton
    /// iteration of every transient timestep and once per sweep point).
    pub fn signal_nodes_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.node_names.len()).map(NodeId)
    }

    /// The ordered list of elements.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Looks up an element by instance name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.element_index.get(name).map(|&i| &self.elements[i])
    }

    /// Position of the named element in [`elements`](Circuit::elements)
    /// order, letting callers address an element without repeating the name
    /// lookup (batched sweeps resolve their tolerance rules once and then
    /// refer to elements by index for every variant).
    pub fn element_position(&self, name: &str) -> Option<usize> {
        self.element_index.get(name).copied()
    }

    /// Mutable access to an element by instance name (used, for example, to
    /// zero AC stimuli or retune a compensation component between runs).
    pub fn element_mut(&mut self, name: &str) -> Option<&mut Element> {
        let idx = *self.element_index.get(name)?;
        Some(&mut self.elements[idx])
    }

    fn canonical_node_name(name: &str) -> String {
        let lower = name.to_ascii_lowercase();
        if lower == "gnd" || lower == "0" {
            "0".to_string()
        } else {
            name.to_string()
        }
    }

    fn insert(&mut self, element: Element) -> Result<(), NetlistError> {
        let name = element.name().to_string();
        if self.element_index.contains_key(&name) {
            return Err(NetlistError::DuplicateElement(name));
        }
        self.element_index.insert(name, self.elements.len());
        self.elements.push(element);
        Ok(())
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is not positive and finite, or if the name is
    /// a duplicate. Use [`try_add`](Self::try_add) for fallible insertion.
    pub fn add_resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> &mut Self {
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistor {name}: resistance must be positive and finite"
        );
        self.insert(Element::Resistor(Resistor {
            name: name.to_string(),
            a,
            b,
            ohms,
        }))
        .expect("duplicate element name");
        self
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is negative or the name is a duplicate.
    pub fn add_capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) -> &mut Self {
        assert!(
            farads.is_finite() && farads >= 0.0,
            "capacitor {name}: capacitance must be non-negative and finite"
        );
        self.insert(Element::Capacitor(Capacitor {
            name: name.to_string(),
            a,
            b,
            farads,
        }))
        .expect("duplicate element name");
        self
    }

    /// Adds an inductor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the inductance is not positive or the name is a duplicate.
    pub fn add_inductor(&mut self, name: &str, a: NodeId, b: NodeId, henries: f64) -> &mut Self {
        assert!(
            henries.is_finite() && henries > 0.0,
            "inductor {name}: inductance must be positive and finite"
        );
        self.insert(Element::Inductor(Inductor {
            name: name.to_string(),
            a,
            b,
            henries,
        }))
        .expect("duplicate element name");
        self
    }

    /// Adds an independent voltage source from `plus` to `minus`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn add_vsource(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        spec: SourceSpec,
    ) -> &mut Self {
        self.insert(Element::Vsource(Vsource {
            name: name.to_string(),
            plus,
            minus,
            spec,
        }))
        .expect("duplicate element name");
        self
    }

    /// Adds an independent current source (current flows from `plus` to
    /// `minus` through the source).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn add_isource(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        spec: SourceSpec,
    ) -> &mut Self {
        self.insert(Element::Isource(Isource {
            name: name.to_string(),
            plus,
            minus,
            spec,
        }))
        .expect("duplicate element name");
        self
    }

    /// Adds a voltage-controlled voltage source.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn add_vcvs(
        &mut self,
        name: &str,
        out_plus: NodeId,
        out_minus: NodeId,
        ctrl_plus: NodeId,
        ctrl_minus: NodeId,
        gain: f64,
    ) -> &mut Self {
        self.insert(Element::Vcvs(Vcvs {
            name: name.to_string(),
            out_plus,
            out_minus,
            ctrl_plus,
            ctrl_minus,
            gain,
        }))
        .expect("duplicate element name");
        self
    }

    /// Adds a voltage-controlled current source.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn add_vccs(
        &mut self,
        name: &str,
        out_plus: NodeId,
        out_minus: NodeId,
        ctrl_plus: NodeId,
        ctrl_minus: NodeId,
        gm: f64,
    ) -> &mut Self {
        self.insert(Element::Vccs(Vccs {
            name: name.to_string(),
            out_plus,
            out_minus,
            ctrl_plus,
            ctrl_minus,
            gm,
        }))
        .expect("duplicate element name");
        self
    }

    /// Adds a current-controlled current source whose controlling current is
    /// the current through the voltage source `ctrl_vsource`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn add_cccs(
        &mut self,
        name: &str,
        out_plus: NodeId,
        out_minus: NodeId,
        ctrl_vsource: &str,
        gain: f64,
    ) -> &mut Self {
        self.insert(Element::Cccs(Cccs {
            name: name.to_string(),
            out_plus,
            out_minus,
            ctrl_vsource: ctrl_vsource.to_string(),
            gain,
        }))
        .expect("duplicate element name");
        self
    }

    /// Adds a current-controlled voltage source whose controlling current is
    /// the current through the voltage source `ctrl_vsource`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn add_ccvs(
        &mut self,
        name: &str,
        out_plus: NodeId,
        out_minus: NodeId,
        ctrl_vsource: &str,
        rm: f64,
    ) -> &mut Self {
        self.insert(Element::Ccvs(Ccvs {
            name: name.to_string(),
            out_plus,
            out_minus,
            ctrl_vsource: ctrl_vsource.to_string(),
            rm,
        }))
        .expect("duplicate element name");
        self
    }

    /// Adds a junction diode.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or invalid model.
    pub fn add_diode(
        &mut self,
        name: &str,
        anode: NodeId,
        cathode: NodeId,
        model: DiodeModel,
    ) -> &mut Self {
        model.validate(name).expect("invalid diode model");
        self.insert(Element::Diode(Diode {
            name: name.to_string(),
            anode,
            cathode,
            model,
        }))
        .expect("duplicate element name");
        self
    }

    /// Adds a bipolar transistor.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or invalid model.
    pub fn add_bjt(
        &mut self,
        name: &str,
        collector: NodeId,
        base: NodeId,
        emitter: NodeId,
        polarity: BjtPolarity,
        model: BjtModel,
    ) -> &mut Self {
        model.validate(name).expect("invalid BJT model");
        self.insert(Element::Bjt(Bjt {
            name: name.to_string(),
            collector,
            base,
            emitter,
            polarity,
            model,
        }))
        .expect("duplicate element name");
        self
    }

    /// Adds a MOSFET.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name, invalid model, or non-positive geometry.
    #[allow(clippy::too_many_arguments)] // mirrors the SPICE card: M d g s type w l model
    pub fn add_mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        polarity: MosfetPolarity,
        width: f64,
        length: f64,
        model: MosfetModel,
    ) -> &mut Self {
        model.validate(name).expect("invalid MOSFET model");
        assert!(
            width > 0.0 && length > 0.0,
            "mosfet {name}: width and length must be positive"
        );
        self.insert(Element::Mosfet(Mosfet {
            name: name.to_string(),
            drain,
            gate,
            source,
            polarity,
            width,
            length,
            model,
        }))
        .expect("duplicate element name");
        self
    }

    /// Fallible element insertion, used by the netlist parser.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateElement`] when an element of the same
    /// name already exists.
    pub fn try_add(&mut self, element: Element) -> Result<(), NetlistError> {
        self.insert(element)
    }

    /// Zeroes the AC stimulus of every independent source, mirroring the
    /// original tool's "auto-zero all AC sources/stimuli in design prior to
    /// running the analysis" feature. Returns the number of sources changed.
    pub fn zero_ac_sources(&mut self) -> usize {
        let mut changed = 0;
        for el in &mut self.elements {
            match el {
                Element::Vsource(v) if v.spec.ac_mag != 0.0 => {
                    v.spec = v.spec.without_ac();
                    changed += 1;
                }
                Element::Isource(i) if i.spec.ac_mag != 0.0 => {
                    i.spec = i.spec.without_ac();
                    changed += 1;
                }
                _ => {}
            }
        }
        changed
    }

    /// Performs structural sanity checks:
    ///
    /// * every node (other than ground) is connected to at least two element
    ///   terminals, so no node is left floating;
    /// * at least one element connects to ground;
    /// * every CCCS/CCVS controlling source exists and is a voltage source.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidCircuit`] or
    /// [`NetlistError::UnknownElement`] describing the first problem found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut degree = vec![0usize; self.node_count()];
        let mut ground_touched = false;
        for el in &self.elements {
            for node in el.nodes() {
                degree[node.0] += 1;
                if node.is_ground() {
                    ground_touched = true;
                }
            }
            match el {
                Element::Cccs(c) => self.check_ctrl_source(&c.ctrl_vsource)?,
                Element::Ccvs(c) => self.check_ctrl_source(&c.ctrl_vsource)?,
                _ => {}
            }
        }
        if !self.elements.is_empty() && !ground_touched {
            return Err(NetlistError::InvalidCircuit(
                "no element connects to the ground node".to_string(),
            ));
        }
        for (idx, &deg) in degree.iter().enumerate().skip(1) {
            if deg == 0 {
                return Err(NetlistError::InvalidCircuit(format!(
                    "node `{}` is not connected to any element",
                    self.node_names[idx]
                )));
            }
            if deg == 1 {
                return Err(NetlistError::InvalidCircuit(format!(
                    "node `{}` is connected to only one element terminal (floating)",
                    self.node_names[idx]
                )));
            }
        }
        Ok(())
    }

    fn check_ctrl_source(&self, name: &str) -> Result<(), NetlistError> {
        match self.element(name) {
            Some(Element::Vsource(_)) => Ok(()),
            Some(_) => Err(NetlistError::InvalidCircuit(format!(
                "controlling element `{name}` is not a voltage source"
            ))),
            None => Err(NetlistError::UnknownElement(name.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new("t");
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("GND"), Circuit::GROUND);
        assert_eq!(c.node_count(), 1);
    }

    #[test]
    fn node_interning_is_stable() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        let b = c.node("b");
        assert_ne!(a, b);
        assert_eq!(c.node("a"), a);
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.find_node("missing"), None);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.signal_nodes(), vec![a, b]);
    }

    #[test]
    fn builder_adds_elements() {
        let mut c = Circuit::new("rc");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, SourceSpec::dc_ac(1.0, 1.0, 0.0));
        c.add_resistor("R1", vin, vout, 1e3);
        c.add_capacitor("C1", vout, Circuit::GROUND, 1e-9);
        assert_eq!(c.elements().len(), 3);
        assert!(c.element("R1").is_some());
        assert!(c.element("R9").is_none());
        c.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn rejects_nonpositive_resistor() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate element name")]
    fn rejects_duplicate_names() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0);
        c.add_resistor("R1", a, Circuit::GROUND, 2.0);
    }

    #[test]
    fn validate_detects_floating_node() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0);
        // b connected to only one terminal:
        c.add_capacitor("C1", b, Circuit::GROUND, 1e-12);
        // Wait: that gives b degree 1 → floating error expected.
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("only one element terminal"));
    }

    #[test]
    fn validate_detects_missing_ground() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor("R1", a, b, 1.0);
        c.add_capacitor("C1", a, b, 1e-12);
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("ground"));
    }

    #[test]
    fn validate_checks_controlled_source_references() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0);
        c.add_resistor("R2", b, Circuit::GROUND, 1.0);
        c.add_resistor("R3", a, b, 1.0);
        c.add_cccs("F1", a, b, "Vmissing", 2.0);
        assert!(matches!(c.validate(), Err(NetlistError::UnknownElement(_))));
    }

    #[test]
    fn zero_ac_sources_only_touches_ac() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc_ac(1.0, 1.0, 0.0));
        c.add_isource("I1", b, Circuit::GROUND, SourceSpec::ac_probe(1.0));
        c.add_vsource("V2", b, a, SourceSpec::dc(5.0));
        assert_eq!(c.zero_ac_sources(), 2);
        assert_eq!(c.zero_ac_sources(), 0);
        match c.element("V1").unwrap() {
            Element::Vsource(v) => assert_eq!(v.spec.ac_mag, 0.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn element_mut_allows_retuning() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        c.add_capacitor("Ccomp", a, Circuit::GROUND, 1e-12);
        if let Some(Element::Capacitor(cap)) = c.element_mut("Ccomp") {
            cap.farads = 2e-12;
        }
        match c.element("Ccomp").unwrap() {
            Element::Capacitor(cap) => assert_eq!(cap.farads, 2e-12),
            _ => unreachable!(),
        }
    }

    #[test]
    fn node_display() {
        assert_eq!(Circuit::GROUND.to_string(), "n0");
        assert!(Circuit::GROUND.is_ground());
        assert_eq!(NodeId(3).index(), 3);
    }
}
