//! SPICE-style numeric value parsing with engineering suffixes.

use crate::error::NetlistError;

/// Parses a SPICE-style numeric token such as `10k`, `2.2u`, `1meg`, `5p` or
/// a plain number. Suffixes are case-insensitive; any trailing unit letters
/// after a recognized suffix are ignored (`10pF`, `1kOhm`).
///
/// | suffix | scale |
/// |--------|-------|
/// | `t`    | 1e12  |
/// | `g`    | 1e9   |
/// | `meg`  | 1e6   |
/// | `k`    | 1e3   |
/// | `m`    | 1e-3  |
/// | `u`    | 1e-6  |
/// | `n`    | 1e-9  |
/// | `p`    | 1e-12 |
/// | `f`    | 1e-15 |
///
/// # Errors
///
/// Returns [`NetlistError::InvalidValue`] when the token has no leading
/// numeric part.
///
/// ```
/// use loopscope_netlist::parse_value;
/// assert_eq!(parse_value("10k").unwrap(), 1.0e4);
/// assert_eq!(parse_value("2.5MEG").unwrap(), 2.5e6);
/// assert_eq!(parse_value("100pF").unwrap(), 1.0e-10);
/// assert_eq!(parse_value("-3.3").unwrap(), -3.3);
/// assert!(parse_value("abc").is_err());
/// ```
pub fn parse_value(token: &str) -> Result<f64, NetlistError> {
    let token_trimmed = token.trim();
    let lower = token_trimmed.to_ascii_lowercase();
    let bytes = lower.as_bytes();

    // Split numeric head from the alphabetic tail.
    let mut split = bytes.len();
    for (i, &b) in bytes.iter().enumerate() {
        let c = b as char;
        let numeric = c.is_ascii_digit()
            || c == '.'
            || c == '-'
            || c == '+'
            || (c == 'e'
                && i > 0
                && bytes
                    .get(i + 1)
                    .is_some_and(|&n| (n as char).is_ascii_digit() || n == b'-' || n == b'+'));
        if !numeric {
            split = i;
            break;
        }
    }
    let (head, tail) = lower.split_at(split);
    let base: f64 = head.parse().map_err(|_| NetlistError::InvalidValue {
        token: token_trimmed.to_string(),
        line: 0,
    })?;

    let scale = if tail.starts_with("meg") {
        1e6
    } else {
        match tail.chars().next() {
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            _ => 1.0,
        }
    };
    Ok(base * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_value("42").unwrap(), 42.0);
        assert_eq!(parse_value("-1.5").unwrap(), -1.5);
        assert_eq!(parse_value("3e6").unwrap(), 3.0e6);
        assert_eq!(parse_value("1.2e-9").unwrap(), 1.2e-9);
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * b.abs().max(1.0)
    }

    #[test]
    fn engineering_suffixes() {
        assert!(close(parse_value("10K").unwrap(), 1.0e4));
        assert!(close(parse_value("1meg").unwrap(), 1.0e6));
        assert!(close(parse_value("1MEG").unwrap(), 1.0e6));
        assert!(close(parse_value("2g").unwrap(), 2.0e9));
        assert!(close(parse_value("1t").unwrap(), 1.0e12));
        assert!(close(parse_value("5m").unwrap(), 5.0e-3));
        assert!(close(parse_value("5u").unwrap(), 5.0e-6));
        assert!(close(parse_value("5n").unwrap(), 5.0e-9));
        assert!(close(parse_value("5p").unwrap(), 5.0e-12));
        assert!(close(parse_value("5f").unwrap(), 5.0e-15));
    }

    #[test]
    fn unit_tails_are_ignored() {
        assert!(close(parse_value("10pF").unwrap(), 1.0e-11));
        assert!(close(parse_value("1kOhm").unwrap(), 1.0e3));
        assert!(close(parse_value("2.5Volts").unwrap(), 2.5));
    }

    #[test]
    fn milli_vs_mega_disambiguation() {
        assert!(close(parse_value("1m").unwrap(), 1.0e-3));
        assert!(close(parse_value("1meg").unwrap(), 1.0e6));
        // "mA" is milli-amps, not mega.
        assert!(close(parse_value("1mA").unwrap(), 1.0e-3));
        // SPICE is case-insensitive: uppercase M is STILL milli, only the
        // three-letter MEG (any case) means 1e6.
        assert!(close(parse_value("1M").unwrap(), 1.0e-3));
        assert!(close(parse_value("1MeG").unwrap(), 1.0e6));
        assert!(close(parse_value("2.2MegOhm").unwrap(), 2.2e6));
        // "me" is not "meg": falls back to the single-letter milli rule.
        assert!(close(parse_value("1me").unwrap(), 1.0e-3));
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(parse_value(" 10k ").unwrap(), 1.0e4);
    }

    #[test]
    fn invalid_tokens_rejected() {
        assert!(parse_value("abc").is_err());
        assert!(parse_value("").is_err());
        assert!(parse_value("k10").is_err());
    }

    #[test]
    fn scientific_with_suffix_tail() {
        // Exponent form followed by a unit letter.
        assert_eq!(parse_value("1e3V").unwrap(), 1.0e3);
    }
}
