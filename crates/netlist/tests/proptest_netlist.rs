//! Property-based tests for the circuit model and netlist parser.

use loopscope_netlist::{parse_netlist, parse_value, Circuit, Element, SourceSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Engineering-notation parsing agrees with plain scientific notation for
    /// every suffix and a wide range of mantissas.
    #[test]
    fn value_parsing_matches_scientific(
        mantissa in 0.001f64..9999.0,
        suffix_idx in 0usize..9,
    ) {
        let (suffix, scale) = [
            ("t", 1e12), ("g", 1e9), ("meg", 1e6), ("k", 1e3), ("", 1.0),
            ("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12),
        ][suffix_idx];
        let token = format!("{mantissa}{suffix}");
        let parsed = parse_value(&token).expect("valid token");
        let expected = mantissa * scale;
        prop_assert!((parsed - expected).abs() <= 1e-9 * expected.abs());
    }

    /// A generated resistor/capacitor ladder netlist round-trips through the
    /// text parser: same element count, same node count, same values.
    #[test]
    fn ladder_netlist_roundtrip(
        sections in 1usize..12,
        r_ohms in 1.0f64..1.0e6,
        c_farads in 1.0e-15f64..1.0e-6,
    ) {
        let mut text = String::from("generated ladder\nV1 in 0 DC 1\n");
        for k in 1..=sections {
            let prev = if k == 1 { "in".to_string() } else { format!("n{}", k - 1) };
            text.push_str(&format!("R{k} {prev} n{k} {r_ohms:.6e}\n"));
            text.push_str(&format!("C{k} n{k} 0 {c_farads:.6e}\n"));
        }
        let circuit = parse_netlist(&text).expect("generated netlist parses");
        prop_assert_eq!(circuit.elements().len(), 1 + 2 * sections);
        prop_assert_eq!(circuit.node_count(), 2 + sections); // ground + in + n1..nN
        circuit.validate().expect("ladder is structurally valid");
        for k in 1..=sections {
            match circuit.element(&format!("R{k}")).unwrap() {
                Element::Resistor(r) => prop_assert!((r.ohms - r_ohms).abs() <= 1e-6 * r_ohms),
                _ => prop_assert!(false, "wrong element kind"),
            }
            match circuit.element(&format!("C{k}")).unwrap() {
                Element::Capacitor(c) => prop_assert!((c.farads - c_farads).abs() <= 1e-6 * c_farads),
                _ => prop_assert!(false, "wrong element kind"),
            }
        }
    }

    /// Node interning is stable and name lookups agree with handles for any
    /// set of distinct names.
    #[test]
    fn node_interning_is_consistent(names in prop::collection::hash_set("[a-z][a-z0-9_]{0,8}", 1..20)) {
        let mut circuit = Circuit::new("interning");
        let mut handles = Vec::new();
        for name in &names {
            handles.push((name.clone(), circuit.node(name)));
        }
        for (name, handle) in &handles {
            prop_assert_eq!(circuit.node(name), *handle);
            prop_assert_eq!(circuit.find_node(name), Some(*handle));
            if name != "gnd" {
                prop_assert_eq!(circuit.node_name(*handle), name.as_str());
            }
        }
        let expected_ground_aliases = names.contains("gnd") as usize;
        prop_assert_eq!(circuit.node_count(), 1 + names.len() - expected_ground_aliases);
    }

    /// Zeroing AC sources is idempotent and never touches DC values.
    #[test]
    fn zero_ac_sources_idempotent(
        dc in -10.0f64..10.0,
        ac in 0.0f64..5.0,
        phase in -180.0f64..180.0,
    ) {
        let mut circuit = Circuit::new("zero ac");
        let a = circuit.node("a");
        circuit.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc_ac(dc, ac, phase));
        circuit.add_resistor("R1", a, Circuit::GROUND, 1.0e3);
        let first = circuit.zero_ac_sources();
        prop_assert_eq!(first, usize::from(ac != 0.0));
        prop_assert_eq!(circuit.zero_ac_sources(), 0);
        match circuit.element("V1").unwrap() {
            Element::Vsource(v) => {
                prop_assert_eq!(v.spec.dc, dc);
                prop_assert_eq!(v.spec.ac_mag, 0.0);
            }
            _ => prop_assert!(false),
        }
    }
}
