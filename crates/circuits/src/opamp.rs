//! The paper's "simple 2 MHz op-amp connected as a buffer" (Fig. 1).
//!
//! Two flavours are provided:
//!
//! * [`two_stage_buffer`] — a behavioural two-stage macromodel
//!   (transconductor → Miller-compensated gain stage → capacitive load)
//!   whose GBW and phase margin follow directly from the element values.
//!   With the default parameters the unity-gain buffer has roughly 2 MHz of
//!   gain-bandwidth and about 20° of phase margin, matching the paper's
//!   nominal `rzero` / `cload` / `C1` setting.
//! * [`mos_two_stage_buffer`] — a transistor-level CMOS two-stage Miller
//!   op-amp biased from ideal current sources, used to exercise the nonlinear
//!   operating-point and small-signal machinery end to end.
//!
//! Both are connected in unity feedback (output tied to the inverting input),
//! so the main loop is closed exactly as in the paper and must be analysed
//! without breaking it.

use crate::bias::{zero_tc_bias, BiasParams};
use loopscope_netlist::{Circuit, MosfetModel, MosfetPolarity, NodeId, SourceSpec};

/// Parameters of the behavioural two-stage op-amp buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpAmpParams {
    /// First-stage transconductance in siemens.
    pub gm1: f64,
    /// First-stage output resistance in ohms.
    pub r1: f64,
    /// Parasitic capacitance at the first-stage output in farads.
    pub c1_parasitic: f64,
    /// Second-stage transconductance in siemens.
    pub gm2: f64,
    /// Second-stage output resistance in ohms.
    pub r2: f64,
    /// Miller compensation capacitor `C1` in farads (paper knob).
    pub c1: f64,
    /// Series zero-setting resistor `rzero` in ohms (paper knob).
    pub rzero: f64,
    /// Output load capacitance `cload` in farads (paper knob).
    pub cload: f64,
    /// DC input common-mode voltage in volts.
    pub input_dc: f64,
}

impl Default for OpAmpParams {
    fn default() -> Self {
        // Tuned so that the nominal unity-gain buffer mirrors the paper's
        // example: unity-gain crossover in the low-MHz range, a stability-plot
        // peak of roughly −29 near 3.2 MHz (ζ ≈ 0.19), about 20° of phase
        // margin and ~55 % step overshoot. The second pole gm2/(2π·cload) is
        // deliberately placed low (under-compensated), exactly the situation
        // the paper diagnoses.
        Self {
            gm1: 130.0e-6,
            r1: 10.0e6,
            c1_parasitic: 90.0e-15,
            gm2: 2.0e-3,
            r2: 100.0e3,
            c1: 2.3e-12,
            rzero: 200.0,
            cload: 250.0e-12,
            input_dc: 1.5,
        }
    }
}

/// Node handles of the op-amp buffer circuits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpAmpNodes {
    /// Non-inverting input node (driven by the source).
    pub input: NodeId,
    /// First-stage (high-impedance) internal node.
    pub stage1: NodeId,
    /// Output node (also the inverting input through the unity feedback).
    pub output: NodeId,
    /// Internal node between `rzero` and the Miller capacitor.
    pub comp: NodeId,
}

/// Builds the behavioural two-stage op-amp connected as a unity-gain buffer.
///
/// The input source carries both a DC level and a small step (for transient
/// overshoot measurements); its AC magnitude is zero so that stability probes
/// injected by the analysis tool are the only AC stimulus.
///
/// ```
/// use loopscope_circuits::{two_stage_buffer, OpAmpParams};
/// let (circuit, nodes) = two_stage_buffer(&OpAmpParams::default());
/// assert!(circuit.elements().len() >= 8);
/// assert!(circuit.find_node("out") == Some(nodes.output));
/// ```
pub fn two_stage_buffer(params: &OpAmpParams) -> (Circuit, OpAmpNodes) {
    let mut c = Circuit::new("two-stage op-amp buffer (2 MHz)");
    let input = c.node("in");
    let stage1 = c.node("stage1");
    let output = c.node("out");
    let comp = c.node("comp");

    // Input step source: 10 mV step used by the transient-overshoot baseline.
    c.add_vsource(
        "Vin",
        input,
        Circuit::GROUND,
        SourceSpec::step(params.input_dc, params.input_dc + 10.0e-3, 1.0e-6),
    );

    // Stage 1: differential pair macromodel. The differential input is
    // (v_in − v_out) because the buffer ties the inverting input to the
    // output. The stage is inverting (current is pulled out of the stage-1
    // node for a positive differential input), and so is stage 2, making the
    // overall forward path non-inverting and the feedback negative.
    c.add_vccs("Ggm1", stage1, Circuit::GROUND, input, output, params.gm1);
    c.add_resistor("R1", stage1, Circuit::GROUND, params.r1);
    c.add_capacitor("Cpar1", stage1, Circuit::GROUND, params.c1_parasitic);

    // Stage 2: inverting transconductor loaded by r2 ∥ cload.
    c.add_vccs(
        "Ggm2",
        output,
        Circuit::GROUND,
        stage1,
        Circuit::GROUND,
        params.gm2,
    );
    c.add_resistor("R2", output, Circuit::GROUND, params.r2);
    c.add_capacitor("Cload", output, Circuit::GROUND, params.cload);

    // Miller compensation: C1 in series with rzero from stage 1 to the output.
    c.add_resistor("Rzero", stage1, comp, params.rzero.max(1.0e-3));
    c.add_capacitor("C1", comp, output, params.c1);

    (
        c,
        OpAmpNodes {
            input,
            stage1,
            output,
            comp,
        },
    )
}

/// Builds the same two-stage amplifier with the main loop **broken** for the
/// traditional open-loop Bode analysis of the paper's Fig. 3: the inverting
/// input is driven by an AC source instead of the output, while the DC
/// operating point is preserved by biasing both inputs at the same level.
///
/// Returns the circuit and the node whose response is the open-loop gain.
pub fn two_stage_open_loop(params: &OpAmpParams) -> (Circuit, OpAmpNodes) {
    let mut c = Circuit::new("two-stage op-amp, loop broken for Bode analysis");
    let input = c.node("in");
    let fb = c.node("fb");
    let stage1 = c.node("stage1");
    let output = c.node("out");
    let comp = c.node("comp");

    // The AC perturbation enters through the non-inverting input so that the
    // measured output is the open-loop gain A(s) with zero low-frequency
    // phase; the feedback node is held at the same DC level but carries no
    // AC signal (the loop is broken for small signals).
    c.add_vsource(
        "Vin",
        input,
        Circuit::GROUND,
        SourceSpec::dc_ac(params.input_dc, 1.0, 0.0),
    );
    c.add_vsource("Vfb", fb, Circuit::GROUND, SourceSpec::dc(params.input_dc));

    c.add_vccs("Ggm1", stage1, Circuit::GROUND, input, fb, params.gm1);
    c.add_resistor("R1", stage1, Circuit::GROUND, params.r1);
    c.add_capacitor("Cpar1", stage1, Circuit::GROUND, params.c1_parasitic);

    c.add_vccs(
        "Ggm2",
        output,
        Circuit::GROUND,
        stage1,
        Circuit::GROUND,
        params.gm2,
    );
    c.add_resistor("R2", output, Circuit::GROUND, params.r2);
    c.add_capacitor("Cload", output, Circuit::GROUND, params.cload);

    c.add_resistor("Rzero", stage1, comp, params.rzero.max(1.0e-3));
    c.add_capacitor("C1", comp, output, params.c1);

    (
        c,
        OpAmpNodes {
            input,
            stage1,
            output,
            comp,
        },
    )
}

/// Node handles of the transistor-level CMOS op-amp buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MosOpAmpNodes {
    /// Non-inverting input.
    pub input: NodeId,
    /// Output node (tied back to the inverting gate).
    pub output: NodeId,
    /// First-stage output (drain of the input pair / mirror).
    pub stage1: NodeId,
    /// Tail node of the differential pair.
    pub tail: NodeId,
    /// Positive supply node.
    pub vdd: NodeId,
}

/// Builds a transistor-level CMOS two-stage Miller op-amp in unity feedback.
///
/// The bias currents come from ideal current sources so that the circuit
/// isolates the *amplifier* loops; combine with [`zero_tc_bias`] through
/// [`opamp_with_bias`] to add realistic bias-circuit loops.
pub fn mos_two_stage_buffer(params: &OpAmpParams) -> (Circuit, MosOpAmpNodes) {
    let mut c = Circuit::new("CMOS two-stage op-amp buffer");
    let vdd = c.node("vdd");
    let input = c.node("in");
    let output = c.node("out");
    let stage1 = c.node("stage1");
    let mirror = c.node("mirror");
    let tail = c.node("tail");

    let nmos = MosfetModel {
        vto: 0.7,
        kp: 100.0e-6,
        lambda: 0.04,
        cgs: 50.0e-15,
        cgd: 10.0e-15,
        cdb: 20.0e-15,
    };
    let pmos = MosfetModel {
        vto: -0.7,
        kp: 40.0e-6,
        lambda: 0.05,
        cgs: 60.0e-15,
        cgd: 12.0e-15,
        cdb: 25.0e-15,
    };

    c.add_vsource("VDD", vdd, Circuit::GROUND, SourceSpec::dc(3.3));
    c.add_vsource(
        "Vin",
        input,
        Circuit::GROUND,
        SourceSpec::step(1.5, 1.51, 1.0e-6),
    );

    // Tail current source of the input pair (20 µA pulled from the tail node).
    c.add_isource("Itail", tail, Circuit::GROUND, SourceSpec::dc(20.0e-6));

    // NMOS differential pair. The mirror-side gate (M1) is the inverting
    // input and is tied to the output; the stage-1-side gate (M2) is the
    // non-inverting input driven by the source.
    c.add_mosfet(
        "M1",
        mirror,
        output,
        tail,
        MosfetPolarity::Nmos,
        40.0e-6,
        2.0e-6,
        nmos,
    );
    c.add_mosfet(
        "M2",
        stage1,
        input,
        tail,
        MosfetPolarity::Nmos,
        40.0e-6,
        2.0e-6,
        nmos,
    );

    // PMOS mirror load.
    c.add_mosfet(
        "M3",
        mirror,
        mirror,
        vdd,
        MosfetPolarity::Pmos,
        80.0e-6,
        2.0e-6,
        pmos,
    );
    c.add_mosfet(
        "M4",
        stage1,
        mirror,
        vdd,
        MosfetPolarity::Pmos,
        80.0e-6,
        2.0e-6,
        pmos,
    );

    // Second stage: PMOS common-source device driven from stage1, loaded by an
    // ideal 200 µA sink.
    c.add_mosfet(
        "M6",
        output,
        stage1,
        vdd,
        MosfetPolarity::Pmos,
        400.0e-6,
        1.0e-6,
        pmos,
    );
    c.add_isource("Ibias2", output, Circuit::GROUND, SourceSpec::dc(200.0e-6));

    // Compensation and load — the paper's three knobs.
    let comp = c.node("comp");
    c.add_resistor("Rzero", stage1, comp, params.rzero.max(1.0e-3));
    c.add_capacitor("C1", comp, output, params.c1);
    c.add_capacitor("Cload", output, Circuit::GROUND, params.cload);

    (
        c,
        MosOpAmpNodes {
            input,
            output,
            stage1,
            tail,
            vdd,
        },
    )
}

/// Combines the behavioural op-amp buffer with the zero-TC bias cell in one
/// netlist so that an "All Nodes" stability scan sees both the ~MHz main loop
/// and the tens-of-MHz local bias loop — the situation of the paper's Table 2.
///
/// Returns the circuit, the op-amp nodes and the bias-cell nodes.
pub fn opamp_with_bias(
    opamp: &OpAmpParams,
    bias: &BiasParams,
) -> (Circuit, OpAmpNodes, crate::bias::BiasNodes) {
    let (mut c, nodes) = two_stage_buffer(opamp);
    let bias_nodes = crate::bias::add_zero_tc_bias(&mut c, bias);
    (c, nodes, bias_nodes)
}

/// Convenience wrapper returning the standalone bias circuit (paper Fig. 5).
pub fn bias_only(params: &BiasParams) -> (Circuit, crate::bias::BiasNodes) {
    zero_tc_bias(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_math::FrequencyGrid;
    use loopscope_spice::ac::AcAnalysis;
    use loopscope_spice::dc::solve_dc;
    use loopscope_spice::measure::{bode_margins, unwrap_phase_deg};

    #[test]
    fn buffer_dc_follows_input() {
        let (c, nodes) = two_stage_buffer(&OpAmpParams::default());
        let op = solve_dc(&c).unwrap();
        // High loop gain forces the output to track the 1.5 V input closely.
        assert!((op.voltage(nodes.output) - 1.5).abs() < 0.01);
    }

    #[test]
    fn open_loop_gain_and_crossover() {
        let params = OpAmpParams::default();
        let (c, nodes) = two_stage_open_loop(&params);
        let op = solve_dc(&c).unwrap();
        let ac = AcAnalysis::new(&c, &op).unwrap();
        let grid = FrequencyGrid::log_decade(1.0, 100.0e6, 30);
        let sweep = ac.sweep(&grid).unwrap();
        let gain_db = sweep.magnitude_db(nodes.output);
        // DC open-loop gain = gm1·r1·gm2·r2 = 0.5·10⁶ = 100 dB.
        assert!(gain_db[0] > 95.0, "dc gain {} dB", gain_db[0]);
        let phase = unwrap_phase_deg(&sweep.phase_deg(nodes.output));
        let margins = bode_margins(grid.freqs(), &gain_db, &phase);
        let fc = margins.gain_crossover_hz.unwrap();
        assert!(fc > 1.0e6 && fc < 4.0e6, "crossover {fc}");
        let pm = margins.phase_margin_deg.unwrap();
        assert!(pm > 5.0 && pm < 45.0, "phase margin {pm}");
    }

    #[test]
    fn mos_opamp_bias_point_is_sane() {
        let (c, nodes) = mos_two_stage_buffer(&OpAmpParams::default());
        let op = solve_dc(&c).unwrap();
        let vout = op.voltage(nodes.output);
        // The buffer output should sit within the rails, near the input level.
        assert!(vout > 0.5 && vout < 3.0, "vout = {vout}");
        let vtail = op.voltage(nodes.tail);
        assert!(vtail > 0.2 && vtail < 1.4, "vtail = {vtail}");
    }

    #[test]
    fn combined_circuit_validates() {
        let (c, _, _) = opamp_with_bias(&OpAmpParams::default(), &BiasParams::default());
        c.validate().unwrap();
        assert!(c.node_count() > 8);
        let op = solve_dc(&c).unwrap();
        assert!(op.iterations() >= 1);
    }
}
