//! Small reference blocks with exactly known pole/zero structure.
//!
//! These circuits back the ablation studies (real-pole rejection, known-ζ
//! validation) and provide additional realistic scenarios — source followers
//! and current mirrors are exactly the "local loops that otherwise go
//! undetected" the paper's introduction motivates.

use loopscope_netlist::{Circuit, MosfetModel, MosfetPolarity, NodeId, SourceSpec};

/// Builds an `n`-section RC ladder driven from an ideal source.
///
/// All of its poles are real, so a stability scan must report **no**
/// significant negative peaks anywhere — this is the paper's claim that the
/// double differentiation of the stability plot "filters out the effects of
/// the real poles and zeros".
///
/// Returns the circuit and the ladder nodes in order from the source.
///
/// # Panics
///
/// Panics if `sections == 0`.
pub fn rc_ladder(sections: usize, r_ohms: f64, c_farads: f64) -> (Circuit, Vec<NodeId>) {
    assert!(sections > 0, "need at least one RC section");
    let mut c = Circuit::new(format!("{sections}-section RC ladder"));
    let input = c.node("in");
    c.add_vsource("Vin", input, Circuit::GROUND, SourceSpec::dc(1.0));
    let mut prev = input;
    let mut nodes = Vec::with_capacity(sections);
    for k in 1..=sections {
        let n = c.node(&format!("n{k}"));
        c.add_resistor(&format!("R{k}"), prev, n, r_ohms);
        c.add_capacitor(&format!("C{k}"), n, Circuit::GROUND, c_farads);
        nodes.push(n);
        prev = n;
    }
    (c, nodes)
}

/// Builds a cascade of `stages` buffered two-pole op-amp gain cells — the
/// canonical **block-structured** circuit: signal flows strictly forward.
///
/// Each stage is an ideal-input amplifier (a VCVS sensing the previous
/// stage's output without loading it) driving two cascaded RC poles. The
/// VCVS input draws no current, so no stage ever couples back into the one
/// before it: the MNA admittance matrix is block upper-triangular with one
/// strongly coupled diagonal block per stage (plus the source block), and
/// the BTF analysis (`loopscope-sparse`'s `btf` module) recovers exactly that
/// partition. This is the scenario where KLU-style block factorization
/// beats whole-matrix ordering: every block factors independently and the
/// inter-stage couplings contribute zero fill.
///
/// The RC values are staggered per stage so the matrix values (not just
/// the pattern) differ from block to block.
///
/// Returns the circuit and each stage's output node, in signal order.
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn opamp_cascade(stages: usize) -> (Circuit, Vec<NodeId>) {
    assert!(stages > 0, "need at least one gain stage");
    let mut c = Circuit::new(format!("{stages}-stage buffered op-amp cascade"));
    let input = c.node("in");
    c.add_vsource(
        "Vin",
        input,
        Circuit::GROUND,
        SourceSpec::dc_ac(0.0, 1.0, 0.0),
    );
    let mut prev_out = input;
    let mut outputs = Vec::with_capacity(stages);
    for k in 0..stages {
        let drive = c.node(&format!("s{k}_drive"));
        let mid = c.node(&format!("s{k}_mid"));
        let out = c.node(&format!("s{k}_out"));
        // Ideal-input gain element: senses `prev_out` without loading it.
        c.add_vcvs(
            &format!("E{k}"),
            drive,
            Circuit::GROUND,
            prev_out,
            Circuit::GROUND,
            2.0,
        );
        // Two staggered RC poles per stage.
        let r = 1.0e3 * (1.0 + 0.1 * (k % 7) as f64);
        let cap = 1.0e-9 * (1.0 + 0.2 * (k % 5) as f64);
        c.add_resistor(&format!("R{k}a"), drive, mid, r);
        c.add_capacitor(&format!("C{k}a"), mid, Circuit::GROUND, cap);
        c.add_resistor(&format!("R{k}b"), mid, out, 2.0 * r);
        c.add_capacitor(&format!("C{k}b"), out, Circuit::GROUND, 0.5 * cap);
        outputs.push(out);
        prev_out = out;
    }
    (c, outputs)
}

/// Builds a series RLC divider (output across the capacitor): the canonical
/// second-order low-pass with
///
/// * natural frequency `f_n = 1/(2π√(LC))` and
/// * damping ratio `ζ = (R/2)·√(C/L)`.
///
/// The exact ζ makes this the quantitative ground truth for the stability
/// plot: its peak must read `−1/ζ²` at `f_n`.
///
/// Returns the circuit and the output node.
pub fn series_rlc(r_ohms: f64, l_henries: f64, c_farads: f64) -> (Circuit, NodeId) {
    let mut c = Circuit::new("series RLC divider");
    let input = c.node("in");
    let mid = c.node("mid");
    let out = c.node("out");
    c.add_vsource(
        "Vin",
        input,
        Circuit::GROUND,
        SourceSpec::step(0.0, 1.0, 0.0),
    );
    c.add_resistor("R1", input, mid, r_ohms);
    c.add_inductor("L1", mid, out, l_henries);
    c.add_capacitor("C1", out, Circuit::GROUND, c_farads);
    (c, out)
}

/// Damping ratio of the [`series_rlc`] divider for the given element values.
pub fn series_rlc_damping(r_ohms: f64, l_henries: f64, c_farads: f64) -> f64 {
    0.5 * r_ohms * (c_farads / l_henries).sqrt()
}

/// Natural frequency (hertz) of the [`series_rlc`] divider.
pub fn series_rlc_natural_freq(l_henries: f64, c_farads: f64) -> f64 {
    1.0 / (2.0 * std::f64::consts::PI * (l_henries * c_farads).sqrt())
}

/// Builds an NMOS source follower driving a capacitive load through its own
/// output impedance, fed from a source with series resistance and inductive
/// wiring — a classic local-ringing scenario in the paper's list of circuits
/// (emitter/source followers) that black-box analysis misses.
///
/// Returns the circuit and the follower output node.
pub fn source_follower(cload_farads: f64, l_wire_henries: f64) -> (Circuit, NodeId) {
    let mut c = Circuit::new("source follower with capacitive load");
    let vdd = c.node("vdd");
    let sig = c.node("sig");
    let gate = c.node("gate");
    let out = c.node("out");

    c.add_vsource("VDD", vdd, Circuit::GROUND, SourceSpec::dc(3.3));
    c.add_vsource("Vsig", sig, Circuit::GROUND, SourceSpec::dc(2.0));
    c.add_resistor("Rsig", sig, gate, 1.0e3);
    if l_wire_henries > 0.0 {
        let mid = c.node("lw");
        c.add_inductor("Lwire", gate, mid, l_wire_henries);
        c.add_mosfet(
            "M1",
            vdd,
            mid,
            out,
            MosfetPolarity::Nmos,
            100.0e-6,
            1.0e-6,
            follower_model(),
        );
    } else {
        c.add_mosfet(
            "M1",
            vdd,
            gate,
            out,
            MosfetPolarity::Nmos,
            100.0e-6,
            1.0e-6,
            follower_model(),
        );
    }
    c.add_isource("Ibias", out, Circuit::GROUND, SourceSpec::dc(200.0e-6));
    c.add_capacitor("Cload", out, Circuit::GROUND, cload_farads);
    (c, out)
}

fn follower_model() -> MosfetModel {
    MosfetModel {
        vto: 0.7,
        kp: 120.0e-6,
        lambda: 0.02,
        cgs: 0.6e-12,
        cgd: 0.1e-12,
        cdb: 0.05e-12,
    }
}

/// Builds an NMOS current mirror whose output drives a capacitive load; the
/// mirror's diode-connected input node and the output node form another local
/// structure the "All Nodes" scan should classify as well damped (no complex
/// pole peak beyond the threshold) unless wiring inductance is added.
///
/// Returns the circuit, the mirror input (diode) node and the output node.
pub fn current_mirror(cload_farads: f64) -> (Circuit, NodeId, NodeId) {
    let mut c = Circuit::new("NMOS current mirror");
    let vdd = c.node("vdd");
    let diode = c.node("diode");
    let out = c.node("out");

    let nmos = MosfetModel {
        vto: 0.7,
        kp: 100.0e-6,
        lambda: 0.03,
        cgs: 0.2e-12,
        cgd: 0.05e-12,
        cdb: 0.05e-12,
    };

    c.add_vsource("VDD", vdd, Circuit::GROUND, SourceSpec::dc(3.3));
    c.add_isource("Iref", diode, Circuit::GROUND, SourceSpec::dc(100.0e-6));
    c.add_resistor("Rref", vdd, diode, 15.0e3);
    c.add_mosfet(
        "M1",
        diode,
        diode,
        Circuit::GROUND,
        MosfetPolarity::Nmos,
        20.0e-6,
        1.0e-6,
        nmos,
    );
    c.add_mosfet(
        "M2",
        out,
        diode,
        Circuit::GROUND,
        MosfetPolarity::Nmos,
        40.0e-6,
        1.0e-6,
        nmos,
    );
    c.add_resistor("Rload", vdd, out, 10.0e3);
    c.add_capacitor("Cload", out, Circuit::GROUND, cload_farads);
    (c, diode, out)
}

/// Builds a `rows × cols` on-chip power-distribution grid: a 2-D resistive
/// mesh (5-point stencil) with a decoupling capacitor from every grid node
/// to ground, driven by a supply at the `(0, 0)` corner through a small
/// series resistance.
///
/// This is the canonical **fill-heavy** pattern: unlike the block-structured
/// MNA systems of op-amp circuits, a 2-D mesh has no useful BTF partition
/// and its LU factors fill in superlinearly, which is exactly the regime the
/// iterative (`LOOPSCOPE_SOLVER=iterative` / `auto`) solver backend exists
/// for. Conductances and capacitances carry a small deterministic positional
/// variation so matrix *values* (not just the pattern) differ across the
/// grid.
///
/// Returns the circuit and the grid nodes in row-major order
/// (`nodes[i * cols + j]` is grid position `(i, j)`; the far corner — the
/// natural probe for a driving-point sweep — is `nodes[rows * cols - 1]`).
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn power_grid(rows: usize, cols: usize) -> (Circuit, Vec<NodeId>) {
    assert!(rows > 0 && cols > 0, "need a non-empty grid");
    let mut c = Circuit::new(format!("{rows}x{cols} power grid"));
    // Per-edge conductance and per-node capacitance with deterministic
    // positional variation (same recipe at any grid size).
    let r_of = |i: usize, j: usize| 1.0e3 / (1.0 + ((i + j) % 5) as f64 * 0.1);
    let c_of = |i: usize, j: usize| 1.0e-9 * (1.0 + ((i * j) % 3) as f64 * 0.2);

    let nodes: Vec<NodeId> = (0..rows)
        .flat_map(|i| (0..cols).map(move |j| (i, j)))
        .map(|(i, j)| c.node(&format!("g{i}_{j}")))
        .collect();
    for i in 0..rows {
        for j in 0..cols {
            let u = nodes[i * cols + j];
            if j + 1 < cols {
                c.add_resistor(
                    &format!("Rh{i}_{j}"),
                    u,
                    nodes[i * cols + j + 1],
                    r_of(i, j),
                );
            }
            if i + 1 < rows {
                c.add_resistor(
                    &format!("Rv{i}_{j}"),
                    u,
                    nodes[(i + 1) * cols + j],
                    r_of(i, j),
                );
            }
            c.add_capacitor(&format!("C{i}_{j}"), u, Circuit::GROUND, c_of(i, j));
        }
    }
    // Corner drive: the supply enters at (0, 0) through a package/bump
    // resistance, so every grid node keeps a nonzero driving-point
    // impedance.
    let supply = c.node("supply");
    c.add_vsource(
        "Vdd",
        supply,
        Circuit::GROUND,
        SourceSpec::dc_ac(1.0, 1.0, 0.0),
    );
    c.add_resistor("Rdrive", supply, nodes[0], 10.0);
    (c, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_spice::dc::solve_dc;

    #[test]
    fn rc_ladder_structure() {
        let (c, nodes) = rc_ladder(5, 1.0e3, 1.0e-9);
        assert_eq!(nodes.len(), 5);
        assert_eq!(c.elements().len(), 1 + 2 * 5);
        c.validate().unwrap();
        let op = solve_dc(&c).unwrap();
        // No DC drop through the ladder (capacitors block any current).
        for n in nodes {
            assert!((op.voltage(n) - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one RC section")]
    fn rc_ladder_rejects_zero_sections() {
        rc_ladder(0, 1.0, 1.0);
    }

    #[test]
    fn series_rlc_parameters() {
        // 1 mH, 1 nF → fn ≈ 159 kHz; R = 2ζ√(L/C) = 400 Ω gives ζ = 0.2.
        let l = 1.0e-3;
        let cap = 1.0e-9;
        assert!((series_rlc_damping(400.0, l, cap) - 0.2).abs() < 1e-12);
        assert!((series_rlc_natural_freq(l, cap) - 159.155e3).abs() / 159.155e3 < 1e-3);
        let (c, out) = series_rlc(400.0, l, cap);
        c.validate().unwrap();
        let op = solve_dc(&c).unwrap();
        assert!(op.voltage(out).abs() < 1e-6);
    }

    #[test]
    fn source_follower_bias() {
        let (c, out) = source_follower(10.0e-12, 0.0);
        let op = solve_dc(&c).unwrap();
        let vo = op.voltage(out);
        // Output sits roughly a Vgs below the 2 V input.
        assert!(vo > 0.7 && vo < 1.6, "vout = {vo}");
        let (c2, out2) = source_follower(10.0e-12, 50.0e-9);
        let op2 = solve_dc(&c2).unwrap();
        assert!((op2.voltage(out2) - vo).abs() < 0.05);
    }

    #[test]
    fn opamp_cascade_is_block_structured() {
        use loopscope_spice::ac::AcAnalysis;

        let stages = 4;
        let (c, outs) = opamp_cascade(stages);
        c.validate().unwrap();
        assert_eq!(outs.len(), stages);
        let op = solve_dc(&c).unwrap();
        // Zero DC input: the whole cascade idles at 0 V.
        for &o in &outs {
            assert!(op.voltage(o).abs() < 1e-9);
        }
        // The admittance pattern must split into one block per stage plus
        // the source block — the structure the bench's BTF scenario relies
        // on.
        let ac = AcAnalysis::new(&c, &op).unwrap();
        let structure = ac.solver_structure(1.0e3).unwrap();
        assert!(
            structure.block_count > stages,
            "expected more than {stages} BTF blocks, found {}",
            structure.block_count
        );
    }

    #[test]
    fn power_grid_counts_and_dc_level() {
        let (rows, cols) = (4, 6);
        let (c, nodes) = power_grid(rows, cols);
        c.validate().unwrap();
        assert_eq!(nodes.len(), rows * cols);
        // Grid nodes plus the supply node (ground is not counted as a node
        // here; node_count includes ground slot 0).
        assert_eq!(c.node_count(), rows * cols + 2);
        // Elements: horizontal + vertical mesh resistors, one cap per grid
        // node, the supply source and its series resistor.
        let resistors = rows * (cols - 1) + (rows - 1) * cols + 1;
        let caps = rows * cols;
        assert_eq!(c.elements().len(), resistors + caps + 1);
        // At DC the caps are open and the mesh carries no current: every
        // node floats to the supply.
        let op = solve_dc(&c).unwrap();
        for &n in &nodes {
            assert!((op.voltage(n) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty grid")]
    fn power_grid_rejects_empty() {
        power_grid(3, 0);
    }

    #[test]
    fn current_mirror_copies_current() {
        let (c, diode, out) = current_mirror(1.0e-12);
        let op = solve_dc(&c).unwrap();
        let vd = op.voltage(diode);
        assert!(vd > 0.8 && vd < 1.6, "vdiode = {vd}");
        // Output current ≈ 2× reference (W ratio) → drop across 10 kΩ load.
        let vout = op.voltage(out);
        assert!(vout < 3.3 && vout > 0.1, "vout = {vout}");
    }
}
