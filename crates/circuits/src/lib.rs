//! Example circuit library for the `loopscope` evaluation.
//!
//! The paper's experiments revolve around two circuits:
//!
//! * a "simple 2 MHz op-amp connected as a buffer" (Fig. 1) whose main loop
//!   has roughly 20° of phase margin with nominal `rzero`, `cload` and `C1`
//!   compensation values — reproduced here both as a behavioural two-stage
//!   macromodel ([`opamp`]) and as a transistor-level CMOS two-stage
//!   amplifier ([`opamp::mos_two_stage_buffer`]);
//! * a "zero-TC bias circuit" (Fig. 5) containing a *local* feedback loop in
//!   the tens of MHz that goes undetected by black-box analysis
//!   ([`bias::zero_tc_bias`]).
//!
//! Additional small blocks ([`blocks`]) — RC ladders, RLC resonators, source
//! followers and current mirrors — are used by the ablation studies and by
//! tests that need circuits with exactly known pole locations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bias;
pub mod blocks;
pub mod opamp;

pub use bias::{zero_tc_bias, BiasNodes, BiasParams};
pub use blocks::power_grid;
pub use opamp::{mos_two_stage_buffer, opamp_with_bias, two_stage_buffer, OpAmpNodes, OpAmpParams};
