//! Run-mode drivers: "Single Node" and "All Nodes" analyses.
//!
//! These mirror the run modes of the original DFII tool (paper §4.1): the
//! user either selects one net on the schematic and gets its stability plot
//! plus estimated phase margin, or scans every node of the circuit and gets a
//! report sorted by loop natural frequency.

use crate::error::StabilityError;
use crate::plot::StabilityPlot;
use crate::report::AllNodesReport;
use crate::result::NodeStabilityResult;
use loopscope_math::FrequencyGrid;
use loopscope_netlist::{Circuit, NodeId};
use loopscope_spice::ac::AcAnalysis;
use loopscope_spice::dc::{solve_dc, OperatingPoint};
use loopscope_spice::SolverBackend;

/// Options for a stability analysis run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityOptions {
    /// Sweep start frequency in hertz.
    pub f_start: f64,
    /// Sweep stop frequency in hertz.
    pub f_stop: f64,
    /// Frequency resolution in points per decade; the stability plot is a
    /// second derivative, so it needs a denser grid than a plain Bode plot.
    pub points_per_decade: usize,
    /// Peaks shallower than this value are ignored. The default of `−1`
    /// corresponds to ζ = 1 (critically damped): anything above it cannot be
    /// an under-damped loop.
    pub peak_threshold: f64,
    /// Relative tolerance used to cluster nodes into loops by natural
    /// frequency in the all-nodes report.
    pub group_tolerance: f64,
    /// Zero out the AC stimulus of every pre-existing independent source
    /// before probing (the tool's "auto-zero all AC sources" feature). The
    /// probe itself is injected by the analysis and is unaffected.
    pub zero_existing_ac: bool,
}

impl Default for StabilityOptions {
    fn default() -> Self {
        Self {
            f_start: 1.0e3,
            f_stop: 1.0e9,
            points_per_decade: 100,
            peak_threshold: -1.0,
            group_tolerance: 0.2,
            zero_existing_ac: true,
        }
    }
}

impl StabilityOptions {
    fn validate(&self) -> Result<(), StabilityError> {
        if !(self.f_start > 0.0 && self.f_stop > self.f_start) {
            return Err(StabilityError::InvalidOptions(
                "frequency sweep bounds must satisfy 0 < start < stop".to_string(),
            ));
        }
        if self.points_per_decade < 10 {
            return Err(StabilityError::InvalidOptions(
                "at least 10 points per decade are required for a usable second derivative"
                    .to_string(),
            ));
        }
        if self.peak_threshold >= 0.0 {
            return Err(StabilityError::InvalidOptions(
                "the peak threshold must be negative".to_string(),
            ));
        }
        if !(self.group_tolerance > 0.0 && self.group_tolerance < 1.0) {
            return Err(StabilityError::InvalidOptions(
                "the loop-grouping tolerance must be in (0, 1)".to_string(),
            ));
        }
        Ok(())
    }

    /// The frequency grid realized from these options.
    pub fn grid(&self) -> FrequencyGrid {
        FrequencyGrid::log_decade(self.f_start, self.f_stop, self.points_per_decade)
    }
}

/// The stability analyzer: owns a copy of the circuit, its DC operating point
/// and the sweep options, and runs single-node or all-nodes scans against it.
#[derive(Debug)]
pub struct StabilityAnalyzer {
    circuit: Circuit,
    op: OperatingPoint,
    options: StabilityOptions,
    zeroed_sources: usize,
    solver_backend: Option<SolverBackend>,
}

impl StabilityAnalyzer {
    /// Prepares the analyzer: optionally zeroes pre-existing AC stimuli,
    /// validates the circuit and solves its DC operating point.
    ///
    /// # Errors
    ///
    /// Returns [`StabilityError::InvalidOptions`] for inconsistent sweep
    /// options and [`StabilityError::Spice`] when the circuit fails
    /// validation or its operating point cannot be found.
    pub fn new(mut circuit: Circuit, options: StabilityOptions) -> Result<Self, StabilityError> {
        options.validate()?;
        let zeroed_sources = if options.zero_existing_ac {
            circuit.zero_ac_sources()
        } else {
            0
        };
        let op = solve_dc(&circuit)?;
        Ok(Self {
            circuit,
            op,
            options,
            zeroed_sources,
            solver_backend: None,
        })
    }

    /// Pins the linear-solver backend every subsequent run uses, overriding
    /// the `LOOPSCOPE_SOLVER` environment selection. Intended for tests and
    /// harnesses that must compare runs engine-coherently (e.g. a serial
    /// reference against the always-direct batched sweep) without mutating
    /// process-global state.
    pub fn set_solver_backend(&mut self, backend: SolverBackend) {
        self.solver_backend = Some(backend);
    }

    /// Builds the small-signal analysis, applying a pinned backend if any.
    fn ac_analysis(&self) -> Result<AcAnalysis<'_>, StabilityError> {
        let ac = AcAnalysis::new(&self.circuit, &self.op)?;
        if let Some(backend) = self.solver_backend {
            ac.set_solver_backend(backend);
        }
        Ok(ac)
    }

    /// The circuit under analysis (with AC sources possibly zeroed).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The DC operating point the small-signal analysis is linearized around.
    pub fn operating_point(&self) -> &OperatingPoint {
        &self.op
    }

    /// The analysis options.
    pub fn options(&self) -> &StabilityOptions {
        &self.options
    }

    /// Number of independent sources whose AC stimulus was zeroed during
    /// preparation.
    pub fn zeroed_sources(&self) -> usize {
        self.zeroed_sources
    }

    /// Builds a stability plot from a driving-point magnitude response,
    /// guarding against nodes with (numerically) zero response — e.g. nets
    /// pinned by ideal voltage sources, whose driving-point impedance is zero.
    /// Such samples are clamped to a tiny floor so the plot stays defined and
    /// simply shows no peak there.
    pub(crate) fn plot_from_response(freqs: &[f64], mags: Vec<f64>) -> StabilityPlot {
        let max = mags.iter().cloned().fold(0.0f64, f64::max);
        let floor = (max * 1.0e-15).max(1.0e-30);
        let clamped: Vec<f64> = mags.into_iter().map(|m| m.max(floor)).collect();
        StabilityPlot::from_magnitude(freqs.to_vec(), clamped)
    }

    fn check_node(&self, node: NodeId) -> Result<(), StabilityError> {
        if node.is_ground() {
            return Err(StabilityError::UnknownNode(
                "the ground node cannot be probed".to_string(),
            ));
        }
        if node.index() >= self.circuit.node_count() {
            return Err(StabilityError::UnknownNode(format!(
                "node index {} does not exist in this circuit",
                node.index()
            )));
        }
        Ok(())
    }

    /// "Single Node" run mode: probes one node and returns its stability plot,
    /// dominant peak and estimated loop characteristics.
    ///
    /// # Errors
    ///
    /// Returns [`StabilityError::UnknownNode`] for ground or foreign nodes and
    /// [`StabilityError::Spice`] for simulation failures.
    pub fn single_node(&self, node: NodeId) -> Result<NodeStabilityResult, StabilityError> {
        self.check_node(node)?;
        let grid = self.options.grid();
        let ac = self.ac_analysis()?;
        let response = ac.driving_point_response(node, &grid)?;
        let mags: Vec<f64> = response.iter().map(|v| v.abs()).collect();
        let plot = Self::plot_from_response(grid.freqs(), mags);
        Ok(NodeStabilityResult::from_plot(
            node,
            self.circuit.node_name(node),
            plot,
            self.options.peak_threshold,
        ))
    }

    /// Convenience wrapper of [`single_node`](Self::single_node) addressing
    /// the node by its net name.
    ///
    /// # Errors
    ///
    /// Returns [`StabilityError::UnknownNode`] when no net of that name exists.
    pub fn single_node_by_name(&self, name: &str) -> Result<NodeStabilityResult, StabilityError> {
        let node = self
            .circuit
            .find_node(name)
            .ok_or_else(|| StabilityError::UnknownNode(name.to_string()))?;
        self.single_node(node)
    }

    /// "All Nodes" run mode: probes every non-ground node, groups the detected
    /// peaks into loops by natural frequency and returns the full report
    /// (paper Table 2).
    ///
    /// # Errors
    ///
    /// Returns [`StabilityError::Spice`] for simulation failures.
    pub fn all_nodes(&self) -> Result<AllNodesReport, StabilityError> {
        let grid = self.options.grid();
        let ac = self.ac_analysis()?;
        let responses = ac.driving_point_all_nodes(&grid)?;
        let nodes = self.circuit.signal_nodes();
        let mut entries = Vec::with_capacity(nodes.len());
        for (node, response) in nodes.into_iter().zip(responses) {
            let mags: Vec<f64> = response.iter().map(|v| v.abs()).collect();
            let plot = Self::plot_from_response(grid.freqs(), mags);
            entries.push(NodeStabilityResult::from_plot(
                node,
                self.circuit.node_name(node),
                plot,
                self.options.peak_threshold,
            ));
        }
        Ok(AllNodesReport::new(entries, self.options.group_tolerance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_circuits::blocks::{
        rc_ladder, series_rlc, series_rlc_damping, series_rlc_natural_freq,
    };
    use loopscope_circuits::{two_stage_buffer, OpAmpParams};

    fn fast_options() -> StabilityOptions {
        StabilityOptions {
            f_start: 1.0e3,
            f_stop: 1.0e8,
            points_per_decade: 60,
            ..Default::default()
        }
    }

    #[test]
    fn options_validation() {
        let o = StabilityOptions {
            f_start: -1.0,
            ..Default::default()
        };
        assert!(StabilityAnalyzer::new(Circuit::new("x"), o).is_err());
        let o = StabilityOptions {
            points_per_decade: 2,
            ..Default::default()
        };
        assert!(matches!(
            StabilityAnalyzer::new(Circuit::new("x"), o),
            Err(StabilityError::InvalidOptions(_))
        ));
        let o = StabilityOptions {
            peak_threshold: 0.5,
            ..Default::default()
        };
        assert!(StabilityAnalyzer::new(Circuit::new("x"), o).is_err());
        let o = StabilityOptions {
            group_tolerance: 1.5,
            ..Default::default()
        };
        assert!(StabilityAnalyzer::new(Circuit::new("x"), o).is_err());
    }

    #[test]
    fn known_damping_series_rlc() {
        // ζ = 0.25 at 159 kHz: the estimate must recover both.
        let l: f64 = 1.0e-3;
        let cap: f64 = 1.0e-9;
        let r = 2.0 * 0.25 * (l / cap).sqrt();
        let (circuit, out) = series_rlc(r, l, cap);
        let zeta = series_rlc_damping(r, l, cap);
        let fnat = series_rlc_natural_freq(l, cap);
        let options = StabilityOptions {
            f_start: 1.0e3,
            f_stop: 1.0e7,
            points_per_decade: 120,
            ..Default::default()
        };
        let analyzer = StabilityAnalyzer::new(circuit, options).unwrap();
        let result = analyzer.single_node(out).unwrap();
        let est = result.estimate.expect("complex pole pair expected");
        assert!(
            (est.damping_ratio - zeta).abs() < 0.02,
            "ζ = {}",
            est.damping_ratio
        );
        assert!(
            (est.natural_freq_hz - fnat).abs() / fnat < 0.03,
            "fn = {}",
            est.natural_freq_hz
        );
    }

    #[test]
    fn rc_ladder_reports_no_loops() {
        let (circuit, nodes) = rc_ladder(4, 1.0e3, 1.0e-9);
        let analyzer = StabilityAnalyzer::new(circuit, fast_options()).unwrap();
        for node in nodes {
            let r = analyzer.single_node(node).unwrap();
            assert!(
                r.estimate.is_none(),
                "real-pole ladder must not report a loop at {}",
                r.node_name
            );
        }
    }

    #[test]
    fn opamp_buffer_main_loop_detected() {
        let (circuit, nodes) = two_stage_buffer(&OpAmpParams::default());
        let analyzer = StabilityAnalyzer::new(circuit, fast_options()).unwrap();
        let result = analyzer.single_node(nodes.output).unwrap();
        let est = result.estimate.expect("under-compensated buffer must peak");
        assert!(est.natural_freq_hz > 5.0e5 && est.natural_freq_hz < 1.0e7);
        assert!(est.damping_ratio < 0.5);
        // The probe injection never altered the stored circuit.
        assert_eq!(analyzer.circuit().elements().len(), 9);
    }

    #[test]
    fn single_node_by_name_and_errors() {
        let (circuit, _) = two_stage_buffer(&OpAmpParams::default());
        let analyzer = StabilityAnalyzer::new(circuit, fast_options()).unwrap();
        assert!(analyzer.single_node_by_name("out").is_ok());
        assert!(matches!(
            analyzer.single_node_by_name("not_a_net"),
            Err(StabilityError::UnknownNode(_))
        ));
        assert!(matches!(
            analyzer.single_node(Circuit::GROUND),
            Err(StabilityError::UnknownNode(_))
        ));
        assert!(matches!(
            analyzer.single_node(NodeId::from_index(999)),
            Err(StabilityError::UnknownNode(_))
        ));
    }

    #[test]
    fn ac_sources_are_zeroed_by_default() {
        use loopscope_netlist::SourceSpec;
        let mut circuit = Circuit::new("with ac");
        let a = circuit.node("a");
        circuit.add_vsource("V1", a, Circuit::GROUND, SourceSpec::dc_ac(1.0, 1.0, 0.0));
        circuit.add_resistor("R1", a, Circuit::GROUND, 1.0e3);
        circuit.add_capacitor("C1", a, Circuit::GROUND, 1.0e-12);
        let analyzer = StabilityAnalyzer::new(circuit.clone(), fast_options()).unwrap();
        assert_eq!(analyzer.zeroed_sources(), 1);
        let keep = StabilityOptions {
            zero_existing_ac: false,
            ..fast_options()
        };
        let analyzer2 = StabilityAnalyzer::new(circuit, keep).unwrap();
        assert_eq!(analyzer2.zeroed_sources(), 0);
    }
}
