//! Per-node analysis results and loop estimates.

use crate::plot::StabilityPlot;
use loopscope_math::peaks::{Peak, PeakKind};
use loopscope_math::SecondOrder;
use loopscope_netlist::NodeId;

/// Second-order loop characteristics recovered from a stability-plot peak —
/// the per-loop quantities of the paper's Table 1 mapped through Eq. 1.4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopEstimate {
    /// The performance index `P(ω_n)` (the negative peak value).
    pub performance_index: f64,
    /// The loop's natural frequency in hertz (peak location).
    pub natural_freq_hz: f64,
    /// Damping ratio `ζ = √(−1/P)`.
    pub damping_ratio: f64,
    /// Estimated phase margin in degrees (`≈ 100·ζ`, as tabulated by the paper).
    pub phase_margin_deg: f64,
    /// Exact second-order phase margin in degrees.
    pub phase_margin_exact_deg: f64,
    /// Equivalent transient step overshoot in percent.
    pub percent_overshoot: f64,
    /// Maximum closed-loop magnitude `M_p`.
    pub max_magnitude: f64,
}

impl LoopEstimate {
    /// Builds the estimate from a (negative) stability-plot peak.
    ///
    /// Returns `None` when the peak value is not negative — no complex pole
    /// pair, hence nothing to estimate.
    pub fn from_peak(peak: &Peak) -> Option<Self> {
        let sys = SecondOrder::from_performance_index(peak.y, peak.x.max(f64::MIN_POSITIVE))?;
        Some(Self {
            performance_index: peak.y,
            natural_freq_hz: peak.x,
            damping_ratio: sys.damping_ratio(),
            phase_margin_deg: sys.phase_margin_approx_deg(),
            phase_margin_exact_deg: sys.phase_margin_deg(),
            percent_overshoot: sys.percent_overshoot(),
            max_magnitude: sys.max_magnitude(),
        })
    }
}

/// The complete stability result for one circuit node.
#[derive(Debug, Clone)]
pub struct NodeStabilityResult {
    /// The analysed node.
    pub node: NodeId,
    /// Human-readable node (net) name from the schematic/netlist.
    pub node_name: String,
    /// The stability plot computed at this node.
    pub plot: StabilityPlot,
    /// The dominant negative peak, if any point of the plot fell below the
    /// detection threshold.
    pub peak: Option<Peak>,
    /// Second-order loop characteristics derived from the peak (absent when
    /// no usable negative peak was found).
    pub estimate: Option<LoopEstimate>,
}

impl NodeStabilityResult {
    /// Builds a result from a plot by extracting the dominant peak and the
    /// derived loop estimate.
    pub fn from_plot(
        node: NodeId,
        node_name: impl Into<String>,
        plot: StabilityPlot,
        threshold: f64,
    ) -> Self {
        let peak = plot.dominant_peak(threshold);
        let estimate = peak
            .filter(|p| p.kind != PeakKind::MinMax)
            .and_then(|p| LoopEstimate::from_peak(&p));
        Self {
            node,
            node_name: node_name.into(),
            plot,
            peak,
            estimate,
        }
    }

    /// The stability-peak magnitude reported by the original tool: the
    /// absolute value of the dominant negative peak (e.g. `28.88` for the
    /// paper's output node), or `None` when no peak was found.
    pub fn stability_peak(&self) -> Option<f64> {
        self.peak.map(|p| -p.y)
    }

    /// The natural frequency (hertz) of the dominant loop seen from this node.
    pub fn natural_freq_hz(&self) -> Option<f64> {
        self.peak.map(|p| p.x)
    }

    /// Whether the peak is one of the "special cases" the tool flags:
    /// end-of-range or plain min/max.
    pub fn is_special_case(&self) -> bool {
        matches!(
            self.peak.map(|p| p.kind),
            Some(PeakKind::EndOfRange) | Some(PeakKind::MinMax)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_math::{logspace, SecondOrder};

    fn make_plot(zeta: f64, fn_hz: f64) -> StabilityPlot {
        let sys = SecondOrder::from_damping(zeta, fn_hz);
        let freqs = logspace(fn_hz / 1.0e3, fn_hz * 1.0e3, 1801);
        let mags: Vec<f64> = freqs.iter().map(|&f| sys.magnitude(f)).collect();
        StabilityPlot::from_magnitude(freqs, mags)
    }

    #[test]
    fn estimate_recovers_damping_and_margin() {
        let plot = make_plot(0.2, 3.16e6);
        let result = NodeStabilityResult::from_plot(NodeId::from_index(1), "Output", plot, -1.0);
        let est = result.estimate.unwrap();
        assert!((est.damping_ratio - 0.2).abs() < 0.005);
        assert!((est.phase_margin_deg - 20.0).abs() < 0.6);
        assert!((est.percent_overshoot - 52.7).abs() < 1.5);
        assert!((est.natural_freq_hz - 3.16e6).abs() / 3.16e6 < 0.03);
        assert!(est.max_magnitude > 2.0);
        assert!((result.stability_peak().unwrap() - 25.0).abs() < 1.0);
        assert!(!result.is_special_case());
    }

    #[test]
    fn paper_fig4_example_numbers() {
        // The paper reads a peak of −28.9 at 3.16 MHz and quotes "slightly
        // below 20 degrees" of phase margin and ~53 % overshoot.
        let peak = Peak {
            index: 0,
            x: 3.16e6,
            y: -28.9,
            kind: PeakKind::Interior,
        };
        let est = LoopEstimate::from_peak(&peak).unwrap();
        assert!(est.phase_margin_deg < 20.0 && est.phase_margin_deg > 15.0);
        assert!(est.percent_overshoot > 50.0 && est.percent_overshoot < 60.0);
        assert!((est.damping_ratio - 0.186).abs() < 0.003);
    }

    #[test]
    fn positive_peak_yields_no_estimate() {
        let peak = Peak {
            index: 0,
            x: 1.0e6,
            y: 4.0,
            kind: PeakKind::Interior,
        };
        assert!(LoopEstimate::from_peak(&peak).is_none());
    }

    #[test]
    fn well_damped_node_has_no_estimate() {
        // ζ = 0.9: the peak is above the default −1 threshold → no peak at all.
        let plot = make_plot(0.9, 1.0e6);
        let result = NodeStabilityResult::from_plot(NodeId::from_index(2), "n2", plot, -1.0);
        assert!(result.peak.is_none() || result.estimate.is_some());
        // With the more permissive threshold the peak appears and the damping
        // is recovered.
        let plot = make_plot(0.9, 1.0e6);
        let result = NodeStabilityResult::from_plot(NodeId::from_index(2), "n2", plot, -0.5);
        if let Some(est) = result.estimate {
            assert!((est.damping_ratio - 0.9).abs() < 0.05);
        }
    }
}
