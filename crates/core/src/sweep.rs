//! Corner and parameter sweeps (paper §4.2 "features in development").
//!
//! The original tool lists "in-tool corners setup" and "in-tool sweeps (TEMP
//! etc.)" as features under development: run the same stability analysis over
//! a set of circuit variants — process corners, temperatures, component
//! spreads — and report how the loop characteristics move. This module
//! implements that workflow on top of [`StabilityAnalyzer`]: the caller
//! supplies labelled circuit variants (each already reflecting its corner:
//! scaled model parameters, retuned component values, …) and gets back one
//! [`SweepPoint`] per variant plus worst-case helpers.

use crate::analysis::{StabilityAnalyzer, StabilityOptions};
use crate::error::StabilityError;
use crate::result::LoopEstimate;
use loopscope_netlist::Circuit;

/// The outcome of one sweep/corner point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Caller-supplied label of the variant (e.g. `"T=125C"`, `"cload=1nF"`).
    pub label: String,
    /// The probed node's loop estimate, or `None` when the node shows no
    /// under-damped loop at this corner.
    pub estimate: Option<LoopEstimate>,
}

/// Results of a corner/parameter sweep of a single node.
#[derive(Debug, Clone)]
pub struct NodeSweep {
    /// Name of the probed node.
    pub node_name: String,
    /// One entry per analysed variant, in input order.
    pub points: Vec<SweepPoint>,
}

impl NodeSweep {
    /// The corner with the least-damped loop (lowest damping ratio), if any
    /// corner shows a loop at all.
    pub fn worst_case(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.estimate.is_some())
            .min_by(|a, b| {
                let za = a.estimate.expect("filtered").damping_ratio;
                let zb = b.estimate.expect("filtered").damping_ratio;
                za.partial_cmp(&zb).expect("finite damping")
            })
    }

    /// Returns `true` when every corner meets the given minimum phase margin
    /// (corners with no detected loop trivially pass).
    pub fn meets_phase_margin(&self, min_margin_deg: f64) -> bool {
        self.points.iter().all(|p| {
            p.estimate
                .is_none_or(|e| e.phase_margin_exact_deg >= min_margin_deg)
        })
    }

    /// Renders the sweep as a small text table.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "corner sweep of node `{}`\n{:<20} {:>12} {:>14} {:>10} {:>12}\n",
            self.node_name, "corner", "peak", "fn [Hz]", "ζ", "PM [deg]"
        );
        for p in &self.points {
            match p.estimate {
                Some(e) => out.push_str(&format!(
                    "{:<20} {:>12.2} {:>14.4e} {:>10.3} {:>12.1}\n",
                    p.label,
                    e.performance_index,
                    e.natural_freq_hz,
                    e.damping_ratio,
                    e.phase_margin_exact_deg
                )),
                None => out.push_str(&format!("{:<20} {:>12}\n", p.label, "(no loop)")),
            }
        }
        out
    }
}

/// Runs the single-node stability analysis on every labelled circuit variant.
///
/// Each variant is analysed independently (its own operating point, its own
/// sweep), exactly as the original tool re-runs the simulation per corner —
/// which makes corners embarrassingly parallel: the variants are chunked
/// across worker threads through the same executor the frequency sweeps use
/// ([`loopscope_spice::par::sweep_chunks`], `LOOPSCOPE_THREADS` knob).
/// Results come back in input order and are identical at any worker count.
///
/// # Errors
///
/// Returns the first (in input order) [`StabilityError`] encountered; a
/// corner whose circuit fails to converge aborts the sweep so the failure is
/// not silently dropped.
pub fn sweep_node<I>(
    variants: I,
    node_name: &str,
    options: StabilityOptions,
) -> Result<NodeSweep, StabilityError>
where
    I: IntoIterator<Item = (String, Circuit)>,
{
    let variants: Vec<(String, Circuit)> = variants.into_iter().collect();
    let (points, _) = loopscope_spice::par::sweep_chunks_owned(
        variants,
        || (),
        |(), _idx, (label, circuit)| -> Result<SweepPoint, StabilityError> {
            let analyzer = StabilityAnalyzer::new(circuit, options)?;
            let result = analyzer.single_node_by_name(node_name)?;
            Ok(SweepPoint {
                label,
                estimate: result.estimate,
            })
        },
    );
    Ok(NodeSweep {
        node_name: node_name.to_string(),
        points: points?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_circuits::{two_stage_buffer, OpAmpParams};

    fn options() -> StabilityOptions {
        StabilityOptions {
            f_start: 1.0e3,
            f_stop: 1.0e8,
            points_per_decade: 60,
            ..Default::default()
        }
    }

    fn variants() -> Vec<(String, loopscope_netlist::Circuit)> {
        // A load-capacitance sweep: heavier loads push the output pole down
        // and reduce the phase margin.
        [100.0e-12, 250.0e-12, 600.0e-12]
            .into_iter()
            .map(|cload| {
                let params = OpAmpParams {
                    cload,
                    ..Default::default()
                };
                let (circuit, _) = two_stage_buffer(&params);
                (format!("cload={:.0}pF", cload * 1.0e12), circuit)
            })
            .collect()
    }

    #[test]
    fn cload_sweep_orders_damping() {
        let sweep = sweep_node(variants(), "out", options()).unwrap();
        assert_eq!(sweep.points.len(), 3);
        let zetas: Vec<f64> = sweep
            .points
            .iter()
            .map(|p| p.estimate.map(|e| e.damping_ratio).unwrap_or(1.0))
            .collect();
        // Heavier load ⇒ less damping.
        assert!(
            zetas[0] > zetas[1] && zetas[1] > zetas[2],
            "zetas {zetas:?}"
        );
        let worst = sweep.worst_case().unwrap();
        assert_eq!(worst.label, "cload=600pF");
        assert!(!sweep.meets_phase_margin(60.0));
        assert!(sweep.meets_phase_margin(1.0));
        let text = sweep.to_text();
        assert!(text.contains("cload=100pF"));
        assert!(text.contains("out"));
    }

    #[test]
    fn sweep_propagates_failures() {
        // An invalid circuit (floating node) must abort the sweep.
        let mut bad = loopscope_netlist::Circuit::new("bad");
        let a = bad.node("a");
        let b = bad.node("b");
        bad.add_resistor("R1", a, b, 1.0);
        let result = sweep_node(vec![("broken".to_string(), bad)], "a", options());
        assert!(result.is_err());
    }
}
