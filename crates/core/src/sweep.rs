//! Corner and parameter sweeps (paper §4.2 "features in development").
//!
//! The original tool lists "in-tool corners setup" and "in-tool sweeps (TEMP
//! etc.)" as features under development: run the same stability analysis over
//! a set of circuit variants — process corners, temperatures, component
//! spreads — and report how the loop characteristics move. This module
//! implements that workflow on top of [`StabilityAnalyzer`]: the caller
//! supplies labelled circuit variants (each already reflecting its corner:
//! scaled model parameters, retuned component values, …) and gets back one
//! [`SweepPoint`] per variant plus worst-case helpers.

use crate::analysis::{StabilityAnalyzer, StabilityOptions};
use crate::error::StabilityError;
use crate::result::{LoopEstimate, NodeStabilityResult};
use loopscope_netlist::{Circuit, NodeId};
use loopscope_spice::batch::{driving_point_batch, BatchVariant};
use loopscope_spice::mna::MnaLayout;

/// The outcome of one sweep/corner point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Caller-supplied label of the variant (e.g. `"T=125C"`, `"cload=1nF"`).
    pub label: String,
    /// The probed node's loop estimate, or `None` when the node shows no
    /// under-damped loop at this corner.
    pub estimate: Option<LoopEstimate>,
}

/// Results of a corner/parameter sweep of a single node.
#[derive(Debug, Clone)]
pub struct NodeSweep {
    /// Name of the probed node.
    pub node_name: String,
    /// One entry per analysed variant, in input order.
    pub points: Vec<SweepPoint>,
}

impl NodeSweep {
    /// The corner with the least-damped loop (lowest damping ratio), if any
    /// corner shows a loop at all.
    pub fn worst_case(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.estimate.is_some())
            .min_by(|a, b| {
                let za = a.estimate.expect("filtered").damping_ratio;
                let zb = b.estimate.expect("filtered").damping_ratio;
                za.partial_cmp(&zb).expect("finite damping")
            })
    }

    /// Returns `true` when every corner meets the given minimum phase margin
    /// (corners with no detected loop trivially pass).
    pub fn meets_phase_margin(&self, min_margin_deg: f64) -> bool {
        self.points.iter().all(|p| {
            p.estimate
                .is_none_or(|e| e.phase_margin_exact_deg >= min_margin_deg)
        })
    }

    /// Renders the sweep as a small text table.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "corner sweep of node `{}`\n{:<20} {:>12} {:>14} {:>10} {:>12}\n",
            self.node_name, "corner", "peak", "fn [Hz]", "ζ", "PM [deg]"
        );
        for p in &self.points {
            match p.estimate {
                Some(e) => out.push_str(&format!(
                    "{:<20} {:>12.2} {:>14.4e} {:>10.3} {:>12.1}\n",
                    p.label,
                    e.performance_index,
                    e.natural_freq_hz,
                    e.damping_ratio,
                    e.phase_margin_exact_deg
                )),
                None => out.push_str(&format!("{:<20} {:>12}\n", p.label, "(no loop)")),
            }
        }
        out
    }
}

/// Runs the single-node stability analysis on every labelled circuit variant.
///
/// Corner variants share the circuit *topology* — they differ only in
/// component values — so the frequency sweeps of all variants run through
/// the batched engine ([`loopscope_spice::batch`]): **one** symbolic
/// analysis serves the entire sweep, variants are packed
/// [`LOOPSCOPE_BATCH`](loopscope_spice::batch::BATCH_ENV) lanes wide through
/// the batched refactor/solve, and variant groups × frequency points are
/// chunked across worker threads (`LOOPSCOPE_THREADS`). Each variant still
/// gets its own DC operating point. Results are in input order and bitwise
/// identical to analysing each variant independently, at any worker count,
/// panel width, kernel backend and batch lane width.
///
/// Variants whose topology differs from the first variant's (different
/// nodes, different system dimension) are analysed per-variant through
/// [`StabilityAnalyzer::single_node`] instead — same results, without the
/// shared-plan amortization.
///
/// # Errors
///
/// Returns the first (in input order) [`StabilityError`] encountered; a
/// corner whose circuit fails to converge aborts the sweep so the failure is
/// not silently dropped.
pub fn sweep_node<I>(
    variants: I,
    node_name: &str,
    options: StabilityOptions,
) -> Result<NodeSweep, StabilityError>
where
    I: IntoIterator<Item = (String, Circuit)>,
{
    let variants: Vec<(String, Circuit)> = variants.into_iter().collect();
    // Per-variant preparation (validation, AC-source zeroing, DC operating
    // point), chunked across workers; the lowest-index failure aborts.
    let (prepared, _) = loopscope_spice::par::sweep_chunks_owned(
        variants,
        || (),
        |(), _idx, (label, circuit)| -> Result<(String, StabilityAnalyzer), StabilityError> {
            let analyzer = StabilityAnalyzer::new(circuit, options)?;
            Ok((label, analyzer))
        },
    );
    let prepared = prepared?;
    if prepared.is_empty() {
        return Ok(NodeSweep {
            node_name: node_name.to_string(),
            points: Vec::new(),
        });
    }

    let base = prepared[0].1.circuit();
    let node = base
        .find_node(node_name)
        .ok_or_else(|| StabilityError::UnknownNode(node_name.to_string()))?;
    let base_dim = MnaLayout::new(base).dim();
    let homogeneous = prepared.iter().all(|(_, a)| {
        a.circuit().node_count() == base.node_count()
            && a.circuit().find_node(node_name) == Some(node)
            && MnaLayout::new(a.circuit()).dim() == base_dim
    });
    let points = if homogeneous {
        sweep_batched(&prepared, node, options)?
    } else {
        sweep_per_variant(&prepared, node_name)?
    };
    Ok(NodeSweep {
        node_name: node_name.to_string(),
        points,
    })
}

/// The batched path: one shared symbolic analysis, variant-lane solves.
fn sweep_batched(
    prepared: &[(String, StabilityAnalyzer)],
    node: NodeId,
    options: StabilityOptions,
) -> Result<Vec<SweepPoint>, StabilityError> {
    let grid = options.grid();
    let batch: Vec<BatchVariant<'_>> = prepared
        .iter()
        .map(|(label, analyzer)| BatchVariant {
            label,
            circuit: analyzer.circuit(),
            op: analyzer.operating_point(),
        })
        .collect();
    let sweep = driving_point_batch(&batch, node, &grid)?;
    let mut points = Vec::with_capacity(prepared.len());
    for ((label, analyzer), outcome) in prepared.iter().zip(sweep.outcomes()) {
        // A per-variant failure aborts the sweep, first input index wins —
        // the historical contract of the per-variant path.
        if let Some(e) = &outcome.error {
            return Err(StabilityError::Spice(e.clone()));
        }
        let response = outcome.response.as_ref().expect("converged outcome");
        let mags: Vec<f64> = response.iter().map(|v| v.abs()).collect();
        let plot = StabilityAnalyzer::plot_from_response(grid.freqs(), mags);
        let result = NodeStabilityResult::from_plot(
            node,
            analyzer.circuit().node_name(node),
            plot,
            options.peak_threshold,
        );
        points.push(SweepPoint {
            label: label.clone(),
            estimate: result.estimate,
        });
    }
    Ok(points)
}

/// Fallback for heterogeneous variants: independent per-variant analyses.
fn sweep_per_variant(
    prepared: &[(String, StabilityAnalyzer)],
    node_name: &str,
) -> Result<Vec<SweepPoint>, StabilityError> {
    let (points, _) = loopscope_spice::par::sweep_chunks(
        prepared,
        || (),
        |(), _idx, (label, analyzer)| -> Result<SweepPoint, StabilityError> {
            let result = analyzer.single_node_by_name(node_name)?;
            Ok(SweepPoint {
                label: label.clone(),
                estimate: result.estimate,
            })
        },
    );
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_circuits::{two_stage_buffer, OpAmpParams};

    fn options() -> StabilityOptions {
        StabilityOptions {
            f_start: 1.0e3,
            f_stop: 1.0e8,
            points_per_decade: 60,
            ..Default::default()
        }
    }

    fn variants() -> Vec<(String, loopscope_netlist::Circuit)> {
        // A load-capacitance sweep: heavier loads push the output pole down
        // and reduce the phase margin.
        [100.0e-12, 250.0e-12, 600.0e-12]
            .into_iter()
            .map(|cload| {
                let params = OpAmpParams {
                    cload,
                    ..Default::default()
                };
                let (circuit, _) = two_stage_buffer(&params);
                (format!("cload={:.0}pF", cload * 1.0e12), circuit)
            })
            .collect()
    }

    #[test]
    fn cload_sweep_orders_damping() {
        let sweep = sweep_node(variants(), "out", options()).unwrap();
        assert_eq!(sweep.points.len(), 3);
        let zetas: Vec<f64> = sweep
            .points
            .iter()
            .map(|p| p.estimate.map(|e| e.damping_ratio).unwrap_or(1.0))
            .collect();
        // Heavier load ⇒ less damping.
        assert!(
            zetas[0] > zetas[1] && zetas[1] > zetas[2],
            "zetas {zetas:?}"
        );
        let worst = sweep.worst_case().unwrap();
        assert_eq!(worst.label, "cload=600pF");
        assert!(!sweep.meets_phase_margin(60.0));
        assert!(sweep.meets_phase_margin(1.0));
        let text = sweep.to_text();
        assert!(text.contains("cload=100pF"));
        assert!(text.contains("out"));
    }

    #[test]
    fn batched_sweep_matches_per_variant_reference_bitwise() {
        // Regression contract of the batched migration: the shared-plan
        // lane-batched sweep must reproduce the old per-variant path (an
        // independent analysis per corner) bit for bit.
        let sweep = sweep_node(variants(), "out", options()).unwrap();
        assert_eq!(sweep.points.len(), 3);
        for ((label, circuit), point) in variants().into_iter().zip(&sweep.points) {
            let mut analyzer = StabilityAnalyzer::new(circuit, options()).unwrap();
            // The batched engine always runs the direct SoA path; pin the
            // serial reference direct too so the comparison stays
            // engine-coherent under any `LOOPSCOPE_SOLVER` setting.
            analyzer.set_solver_backend(loopscope_spice::SolverBackend::Direct);
            let reference = analyzer.single_node_by_name("out").unwrap();
            assert_eq!(point.label, label);
            match (reference.estimate, point.estimate) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.natural_freq_hz.to_bits(), b.natural_freq_hz.to_bits());
                    assert_eq!(a.damping_ratio.to_bits(), b.damping_ratio.to_bits());
                    assert_eq!(a.performance_index.to_bits(), b.performance_index.to_bits());
                    assert_eq!(
                        a.phase_margin_exact_deg.to_bits(),
                        b.phase_margin_exact_deg.to_bits()
                    );
                }
                (None, None) => {}
                (a, b) => panic!("estimate presence diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn heterogeneous_variants_fall_back_to_per_variant_analyses() {
        // A topology mismatch (different node sets) cannot share one plan;
        // the sweep must still succeed via the per-variant fallback.
        let mut rc = loopscope_netlist::Circuit::new("rc");
        let out = rc.node("out");
        rc.add_resistor("R1", out, loopscope_netlist::Circuit::GROUND, 1.0e3);
        rc.add_capacitor("C1", out, loopscope_netlist::Circuit::GROUND, 1.0e-9);
        let mut all = variants();
        all.push(("rc".to_string(), rc));
        let sweep = sweep_node(all, "out", options()).unwrap();
        assert_eq!(sweep.points.len(), 4);
        assert_eq!(sweep.points[3].label, "rc");
    }

    #[test]
    fn sweep_propagates_failures() {
        // An invalid circuit (floating node) must abort the sweep.
        let mut bad = loopscope_netlist::Circuit::new("bad");
        let a = bad.node("a");
        let b = bad.node("b");
        bad.add_resistor("R1", a, b, 1.0);
        let result = sweep_node(vec![("broken".to_string(), bad)], "a", options());
        assert!(result.is_err());
    }
}
