//! The stability plot (paper Eq. 1.3) and its peak analysis.

use loopscope_math::diff::log_log_curvature;
use loopscope_math::peaks::{dominant_minimum, local_maxima, local_minima, Peak};

/// A computed stability plot: the node's AC magnitude response and the
/// normalized second derivative `P(ω) = d²ln|T|/d(lnω)²` evaluated on the
/// same frequency grid.
///
/// Negative peaks mark complex pole pairs (potentially under-damped loops);
/// positive peaks mark complex zeros, which do not directly threaten
/// stability (paper §2, footnote 2) but are reported for completeness.
///
/// ```
/// use loopscope_core::StabilityPlot;
/// use loopscope_math::{logspace, SecondOrder};
///
/// // Magnitude response of an ideal second-order system with ζ = 0.25.
/// let sys = SecondOrder::from_damping(0.25, 1.0e6);
/// let freqs = logspace(1.0e3, 1.0e9, 1801);
/// let mags: Vec<f64> = freqs.iter().map(|&f| sys.magnitude(f)).collect();
/// let plot = StabilityPlot::from_magnitude(freqs, mags);
/// let peak = plot.dominant_peak(-1.0).unwrap();
/// // Peak depth −1/ζ² = −16 at the natural frequency.
/// assert!((peak.y - (-16.0)).abs() < 0.3);
/// assert!((peak.x - 1.0e6).abs() / 1.0e6 < 0.03);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityPlot {
    freqs: Vec<f64>,
    magnitude: Vec<f64>,
    values: Vec<f64>,
}

impl StabilityPlot {
    /// Computes the stability plot from a sampled magnitude response.
    ///
    /// # Panics
    ///
    /// Panics if the series differ in length, contain fewer than three
    /// samples, or contain non-positive frequencies/magnitudes (a physical
    /// driving-point response to a nonzero probe is strictly positive).
    pub fn from_magnitude(freqs: Vec<f64>, magnitude: Vec<f64>) -> Self {
        assert_eq!(
            freqs.len(),
            magnitude.len(),
            "frequency and magnitude series must match"
        );
        assert!(freqs.len() >= 3, "need at least three sweep points");
        let values = log_log_curvature(&freqs, &magnitude);
        Self {
            freqs,
            magnitude,
            values,
        }
    }

    /// The frequency grid in hertz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// The underlying magnitude response `|T(jω)|`.
    pub fn magnitude(&self) -> &[f64] {
        &self.magnitude
    }

    /// The stability-plot values `P(ω)`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Returns `true` if the plot holds no samples (never the case for a
    /// successfully constructed plot).
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// The dominant (deepest) negative peak below `threshold`, classified as
    /// interior, end-of-range or plain min/max — the quantity reported per
    /// node by the original tool.
    pub fn dominant_peak(&self, threshold: f64) -> Option<Peak> {
        dominant_minimum(&self.freqs, &self.values, threshold)
    }

    /// All interior negative peaks below `threshold` (one per detected
    /// complex pole pair), ordered by frequency.
    pub fn negative_peaks(&self, threshold: f64) -> Vec<Peak> {
        local_minima(&self.freqs, &self.values, threshold)
    }

    /// All interior positive peaks above `-threshold` (complex zeros),
    /// ordered by frequency.
    pub fn positive_peaks(&self, threshold: f64) -> Vec<Peak> {
        local_maxima(&self.freqs, &self.values, -threshold)
    }

    /// Renders the plot as simple tab-separated text (`freq\tmagnitude\tP`),
    /// convenient for piping into external plotting tools.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("freq_hz\tmagnitude\tstability\n");
        for i in 0..self.freqs.len() {
            out.push_str(&format!(
                "{:.6e}\t{:.6e}\t{:.6e}\n",
                self.freqs[i], self.magnitude[i], self.values[i]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_math::peaks::PeakKind;
    use loopscope_math::poly::RationalTf;
    use loopscope_math::{logspace, Complex64, SecondOrder};

    fn second_order_plot(zeta: f64, fn_hz: f64) -> StabilityPlot {
        let sys = SecondOrder::from_damping(zeta, fn_hz);
        let freqs = logspace(fn_hz / 1.0e3, fn_hz * 1.0e3, 2401);
        let mags: Vec<f64> = freqs.iter().map(|&f| sys.magnitude(f)).collect();
        StabilityPlot::from_magnitude(freqs, mags)
    }

    #[test]
    fn peak_depth_equals_performance_index() {
        for zeta in [0.1, 0.2, 0.3, 0.5] {
            let plot = second_order_plot(zeta, 3.2e6);
            let peak = plot.dominant_peak(-1.0).unwrap();
            let expected = -1.0 / (zeta * zeta);
            assert!(
                (peak.y - expected).abs() < 0.02 * expected.abs(),
                "zeta {zeta}: peak {} expected {expected}",
                peak.y
            );
            assert_eq!(peak.kind, PeakKind::Interior);
            assert!((peak.x - 3.2e6).abs() / 3.2e6 < 0.03);
        }
    }

    #[test]
    fn real_poles_produce_no_peaks() {
        // Three real poles, well separated: the plot must stay above the
        // ζ = 1 threshold (−1) everywhere except transition curvature, and
        // produce no interior peak below the default threshold.
        let tf = RationalTf::from_poles_zeros(
            1.0e3,
            &[
                Complex64::new(-2.0 * std::f64::consts::PI * 1.0e3, 0.0),
                Complex64::new(-2.0 * std::f64::consts::PI * 1.0e5, 0.0),
                Complex64::new(-2.0 * std::f64::consts::PI * 1.0e7, 0.0),
            ],
            &[],
        );
        let freqs = logspace(1.0, 1.0e9, 1801);
        let mags = tf.magnitude_series(&freqs);
        let plot = StabilityPlot::from_magnitude(freqs, mags);
        assert!(plot.negative_peaks(-1.0).is_empty());
        // A single real pole contributes at most −0.5 of curvature.
        let min = plot.values().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > -0.9, "min curvature {min}");
    }

    #[test]
    fn complex_zero_produces_positive_peak() {
        // A notch (complex zero pair) ahead of a real pole.
        let wz = 2.0 * std::f64::consts::PI * 1.0e5;
        let zeta_z = 0.2;
        let tf = RationalTf::new_with_gain(
            1.0,
            vec![
                Complex64::new(-2.0 * std::f64::consts::PI * 1.0e7, 0.0),
                Complex64::new(-2.0 * std::f64::consts::PI * 1.0e7, 0.0),
            ],
            vec![
                Complex64::new(-zeta_z * wz, wz * (1.0 - zeta_z * zeta_z).sqrt()),
                Complex64::new(-zeta_z * wz, -wz * (1.0 - zeta_z * zeta_z).sqrt()),
            ],
        );
        let freqs = logspace(1.0e2, 1.0e9, 2401);
        let mags = tf.magnitude_series(&freqs);
        let plot = StabilityPlot::from_magnitude(freqs, mags);
        let pos = plot.positive_peaks(1.0);
        assert!(!pos.is_empty());
        let tallest = pos
            .iter()
            .max_by(|a, b| a.y.partial_cmp(&b.y).unwrap())
            .unwrap();
        assert!((tallest.x - 1.0e5).abs() / 1.0e5 < 0.05);
        // Positive peak height mirrors the pole relation: +1/ζ².
        assert!((tallest.y - 25.0).abs() < 1.0, "peak {}", tallest.y);
        // The zero's negative side lobes are far shallower than its positive
        // peak, so it is never mistaken for an under-damped pole of similar
        // severity.
        let deepest_negative = plot.values().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(deepest_negative.abs() < 0.5 * tallest.y);
    }

    #[test]
    fn two_separated_loops_both_detected() {
        // Product of two second-order responses at 3.2 MHz (ζ=0.2) and 50 MHz
        // (ζ=0.45) — the paper's main loop plus a local bias loop.
        let a = SecondOrder::from_damping(0.2, 3.2e6);
        let b = SecondOrder::from_damping(0.45, 50.0e6);
        let freqs = logspace(1.0e4, 1.0e10, 3001);
        let mags: Vec<f64> = freqs
            .iter()
            .map(|&f| a.magnitude(f) * b.magnitude(f))
            .collect();
        let plot = StabilityPlot::from_magnitude(freqs, mags);
        let peaks = plot.negative_peaks(-1.0);
        assert_eq!(peaks.len(), 2, "peaks: {peaks:?}");
        assert!((peaks[0].x - 3.2e6).abs() / 3.2e6 < 0.05);
        assert!((peaks[0].y + 25.0).abs() < 1.5);
        assert!((peaks[1].x - 50.0e6).abs() / 50.0e6 < 0.05);
        assert!((peaks[1].y + 1.0 / (0.45 * 0.45)).abs() < 0.5);
    }

    #[test]
    fn tsv_rendering() {
        let plot = second_order_plot(0.5, 1.0e6);
        let tsv = plot.to_tsv();
        assert!(tsv.starts_with("freq_hz\tmagnitude\tstability\n"));
        assert_eq!(tsv.lines().count(), plot.len() + 1);
    }

    #[test]
    fn accessors_consistent() {
        let plot = second_order_plot(0.3, 2.0e6);
        assert_eq!(plot.freqs().len(), plot.values().len());
        assert_eq!(plot.magnitude().len(), plot.len());
        assert!(!plot.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn rejects_tiny_series() {
        StabilityPlot::from_magnitude(vec![1.0, 2.0], vec![1.0, 1.0]);
    }
}
