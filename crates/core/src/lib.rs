//! AC-stability analysis of continuous-time closed-loop circuits **without
//! breaking the loop** — a Rust reproduction of the methodology and tool of
//! Milev & Burt, *"A Tool and Methodology for AC-Stability Analysis of
//! Continuous-Time Closed-Loop Systems"*, DATE 2005.
//!
//! # The method in one paragraph
//!
//! An AC current probe is attached to a circuit node (nothing else in the
//! circuit is modified), the small-signal response at that same node is swept
//! over a broad frequency range, and the **stability plot**
//!
//! `P(ω) = d² ln|T(jω)| / d(ln ω)²`
//!
//! is computed (paper Eq. 1.3 — a doubly frequency- and magnitude-normalized
//! second derivative). Real poles and zeros produce no signature, while every
//! complex pole pair produces a *negative* peak at its natural frequency
//! whose depth is the **performance index** `P(ω_n) = −1/ζ²` (Eq. 1.4). From
//! the peak one reads the loop's damping ratio, estimated phase margin and
//! equivalent step overshoot (paper Table 1). Scanning *all* nodes finds not
//! only the main loop but also local loops in bias cells, mirrors and
//! followers that black-box analysis misses (paper Table 2, Fig. 5).
//!
//! # Quick start
//!
//! ```
//! use loopscope_circuits::{two_stage_buffer, OpAmpParams};
//! use loopscope_core::{StabilityAnalyzer, StabilityOptions};
//!
//! // The paper's 2 MHz op-amp connected as a buffer, nominal compensation.
//! let (circuit, nodes) = two_stage_buffer(&OpAmpParams::default());
//! let analyzer = StabilityAnalyzer::new(circuit, StabilityOptions::default())?;
//! let result = analyzer.single_node(nodes.output)?;
//! let est = result.estimate.expect("main loop has a complex pole pair");
//! // Natural frequency of the main loop is a few MHz, phase margin well
//! // below 45 degrees for the nominal (under-compensated) values.
//! assert!(est.natural_freq_hz > 1.0e6 && est.natural_freq_hz < 6.0e6);
//! assert!(est.phase_margin_deg < 45.0);
//! # Ok::<(), loopscope_core::StabilityError>(())
//! ```
//!
//! The "all nodes" mode and report generation are in [`report`]; the
//! traditional baselines (transient overshoot, open-loop Bode margins) the
//! paper compares against are in [`baseline`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod error;
pub mod plot;
pub mod report;
pub mod result;
pub mod sweep;

pub use analysis::{StabilityAnalyzer, StabilityOptions};
pub use error::StabilityError;
pub use plot::StabilityPlot;
pub use report::{AllNodesReport, LoopGroup};
pub use result::{LoopEstimate, NodeStabilityResult};
pub use sweep::{sweep_node, NodeSweep, SweepPoint};

pub use loopscope_math::peaks::{Peak, PeakKind};
pub use loopscope_math::second_order::{table1, Table1Row};
