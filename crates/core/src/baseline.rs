//! Traditional "black-box" stability baselines the paper compares against:
//!
//! * **transient step overshoot** (paper Fig. 2) — apply a small step to the
//!   closed-loop circuit, measure the percent overshoot of the response and
//!   map it back to an equivalent damping ratio;
//! * **open-loop Bode gain/phase margins** (paper Fig. 3) — break the loop,
//!   sweep the open-loop gain and read the crossover frequencies and margins.
//!
//! Both require either long simulations or circuit surgery (breaking the
//! loop), which is exactly the pain point the stability-plot method avoids;
//! they are retained here as the reference the new method is validated
//! against in the benchmark harness.

use crate::error::StabilityError;
use loopscope_math::FrequencyGrid;
use loopscope_netlist::{Circuit, NodeId};
use loopscope_spice::ac::AcAnalysis;
use loopscope_spice::dc::solve_dc;
use loopscope_spice::measure::{bode_margins, overshoot_percent, settled_value, unwrap_phase_deg};
use loopscope_spice::tran::{TransientAnalysis, TransientOptions};

pub use loopscope_spice::measure::BodeMargins;

/// Result of the transient-overshoot baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OvershootResult {
    /// Measured percent overshoot of the step response.
    pub percent_overshoot: f64,
    /// Equivalent second-order damping ratio implied by the overshoot.
    pub equivalent_damping: f64,
    /// Initial (pre-step) settled value of the node, volts.
    pub initial_value: f64,
    /// Final settled value of the node, volts.
    pub final_value: f64,
}

/// Runs the transient step-response baseline on `node`.
///
/// The circuit must already contain a step stimulus (see
/// [`loopscope_netlist::SourceSpec::step`]); the function simulates
/// `t_stop` seconds with step `dt`, measures the overshoot at `node` relative
/// to its initial and settled values, and converts it to an equivalent
/// damping ratio via the standard second-order relation.
///
/// # Errors
///
/// Returns [`StabilityError::Spice`] when the operating point or transient
/// simulation fails.
pub fn transient_overshoot(
    circuit: &Circuit,
    node: NodeId,
    dt: f64,
    t_stop: f64,
) -> Result<OvershootResult, StabilityError> {
    let op = solve_dc(circuit)?;
    let tran = TransientAnalysis::new(circuit, TransientOptions::new(dt, t_stop))?;
    let result = tran.run(&op)?;
    let wave = result.waveform(node)?;
    let initial = wave.first().copied().unwrap_or(0.0);
    let final_value = settled_value(&wave, 0.05);
    let percent = overshoot_percent(&wave, initial, final_value);
    Ok(OvershootResult {
        percent_overshoot: percent,
        equivalent_damping: damping_from_overshoot(percent),
        initial_value: initial,
        final_value,
    })
}

/// Converts a percent overshoot into the equivalent second-order damping
/// ratio (the inverse of the overshoot column of the paper's Table 1).
///
/// Returns 1.0 for non-positive overshoot and 0.0 for overshoot ≥ 100 %.
///
/// ```
/// let zeta = loopscope_core::baseline::damping_from_overshoot(52.7);
/// assert!((zeta - 0.2).abs() < 0.005);
/// ```
pub fn damping_from_overshoot(percent: f64) -> f64 {
    if percent <= 0.0 {
        return 1.0;
    }
    if percent >= 100.0 {
        return 0.0;
    }
    let ln_os = (percent / 100.0).ln();
    let denom = (std::f64::consts::PI * std::f64::consts::PI + ln_os * ln_os).sqrt();
    -ln_os / denom
}

/// Runs the open-loop Bode baseline: sweeps the circuit's own AC sources and
/// extracts gain/phase margins from the response at `output`.
///
/// The circuit must already have its loop broken and an AC source applied
/// (e.g. `loopscope_circuits::opamp::two_stage_open_loop`, which is a
/// dev-dependency here and therefore not linkable); this mirrors
/// the manual effort the traditional flow requires.
///
/// # Errors
///
/// Returns [`StabilityError::Spice`] when the operating point or the AC sweep
/// fails.
pub fn open_loop_margins(
    circuit: &Circuit,
    output: NodeId,
    grid: &FrequencyGrid,
) -> Result<BodeMargins, StabilityError> {
    let op = solve_dc(circuit)?;
    let ac = AcAnalysis::new(circuit, &op)?;
    let sweep = ac.sweep(grid)?;
    let gain_db = sweep.magnitude_db(output);
    let phase = unwrap_phase_deg(&sweep.phase_deg(output));
    Ok(bode_margins(grid.freqs(), &gain_db, &phase))
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_circuits::blocks::{series_rlc, series_rlc_damping};
    use loopscope_circuits::opamp::{two_stage_open_loop, OpAmpParams};

    #[test]
    fn damping_overshoot_roundtrip() {
        for zeta in [0.1, 0.2, 0.45, 0.7] {
            let sys = loopscope_math::SecondOrder::from_damping(zeta, 1.0);
            let back = damping_from_overshoot(sys.percent_overshoot());
            assert!((back - zeta).abs() < 1e-6, "zeta {zeta} → {back}");
        }
        assert_eq!(damping_from_overshoot(0.0), 1.0);
        assert_eq!(damping_from_overshoot(150.0), 0.0);
    }

    #[test]
    fn rlc_step_overshoot_matches_theory() {
        // ζ = 0.25 → 44.4 % overshoot.
        let l: f64 = 1.0e-3;
        let cap: f64 = 1.0e-9;
        let r = 2.0 * 0.25 * (l / cap).sqrt();
        let (circuit, out) = series_rlc(r, l, cap);
        let zeta = series_rlc_damping(r, l, cap);
        let expected = loopscope_math::SecondOrder::from_damping(zeta, 1.0).percent_overshoot();
        let result = transient_overshoot(&circuit, out, 20.0e-9, 60.0e-6).unwrap();
        assert!(
            (result.percent_overshoot - expected).abs() < 2.5,
            "overshoot {} vs {expected}",
            result.percent_overshoot
        );
        assert!((result.equivalent_damping - zeta).abs() < 0.03);
        assert!((result.final_value - 1.0).abs() < 0.02);
    }

    #[test]
    fn open_loop_margins_of_opamp() {
        let (circuit, nodes) = two_stage_open_loop(&OpAmpParams::default());
        let grid = FrequencyGrid::log_decade(1.0, 100.0e6, 30);
        let margins = open_loop_margins(&circuit, nodes.output, &grid).unwrap();
        let fc = margins.gain_crossover_hz.expect("gain crossover exists");
        assert!(fc > 1.0e6 && fc < 4.0e6, "crossover {fc}");
        let pm = margins.phase_margin_deg.expect("phase margin exists");
        assert!(pm > 5.0 && pm < 45.0, "phase margin {pm}");
    }
}
