//! The "All Nodes" report: loop grouping, text rendering and schematic
//! annotation (paper Table 2 and Fig. 5).

use crate::result::NodeStabilityResult;
use loopscope_math::peaks::PeakKind;

/// A group of nodes whose stability peaks share (within tolerance) the same
/// natural frequency — i.e. nodes that belong to the same feedback loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopGroup {
    /// Representative natural frequency of the loop in hertz (mean of the
    /// member peaks).
    pub natural_freq_hz: f64,
    /// Indices into [`AllNodesReport::entries`] of the member nodes.
    pub members: Vec<usize>,
    /// The deepest performance index among the members (most pessimistic
    /// estimate of the loop's damping).
    pub worst_performance_index: f64,
}

/// Result of an "All Nodes" stability scan.
#[derive(Debug, Clone)]
pub struct AllNodesReport {
    entries: Vec<NodeStabilityResult>,
    groups: Vec<LoopGroup>,
}

impl AllNodesReport {
    /// Builds the report: clusters the per-node peaks into loops whose natural
    /// frequencies agree within `group_tolerance` (relative).
    pub fn new(entries: Vec<NodeStabilityResult>, group_tolerance: f64) -> Self {
        // Collect (entry index, natural frequency, performance index) for
        // nodes with a usable (non-min/max) peak.
        let mut peaked: Vec<(usize, f64, f64)> = entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                let p = e.peak?;
                if p.kind == PeakKind::MinMax {
                    None
                } else {
                    Some((i, p.x, p.y))
                }
            })
            .collect();
        peaked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite frequencies"));

        let mut groups: Vec<LoopGroup> = Vec::new();
        for (idx, freq, perf) in peaked {
            match groups.last_mut() {
                Some(group)
                    if (freq - group.natural_freq_hz).abs()
                        <= group_tolerance * group.natural_freq_hz =>
                {
                    let n = group.members.len() as f64;
                    group.natural_freq_hz = (group.natural_freq_hz * n + freq) / (n + 1.0);
                    group.worst_performance_index = group.worst_performance_index.min(perf);
                    group.members.push(idx);
                }
                _ => groups.push(LoopGroup {
                    natural_freq_hz: freq,
                    members: vec![idx],
                    worst_performance_index: perf,
                }),
            }
        }

        Self { entries, groups }
    }

    /// All per-node results, in circuit node order.
    pub fn entries(&self) -> &[NodeStabilityResult] {
        &self.entries
    }

    /// The detected loops, sorted by ascending natural frequency.
    pub fn loops(&self) -> &[LoopGroup] {
        &self.groups
    }

    /// The node with the deepest (most negative) stability peak — the
    /// circuit's most oscillation-prone spot.
    pub fn worst(&self) -> Option<&NodeStabilityResult> {
        self.entries
            .iter()
            .filter(|e| e.peak.is_some() && !e.is_special_case())
            .min_by(|a, b| {
                a.peak
                    .unwrap()
                    .y
                    .partial_cmp(&b.peak.unwrap().y)
                    .expect("finite peaks")
            })
    }

    /// Schematic-annotation data: `(node name, stability peak, natural
    /// frequency in hertz)` for every node with a detected peak — the values
    /// the original tool back-annotates onto the schematic (paper Fig. 5).
    pub fn annotations(&self) -> Vec<(String, f64, f64)> {
        self.entries
            .iter()
            .filter_map(|e| {
                let peak = e.stability_peak()?;
                let freq = e.natural_freq_hz()?;
                if e.is_special_case() && e.estimate.is_none() {
                    return None;
                }
                Some((e.node_name.clone(), peak, freq))
            })
            .collect()
    }

    /// Renders the report as text in the style of the paper's Table 2: nodes
    /// grouped by loop, sorted by natural frequency, with special-case
    /// notices (end-of-range, min/max) appended.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("Stability Plot peak values for all circuit nodes, grouped by loop\n");
        out.push_str("natural frequency (paper Table 2 format)\n");
        out.push_str(&format!(
            "{:<16} {:>16} {:>20}\n",
            "Node", "Stability Peak", "Natural Frequency, Hz"
        ));

        for group in &self.groups {
            out.push_str(&format!(
                "-- Loop at {} --\n",
                format_frequency(group.natural_freq_hz)
            ));
            for &idx in &group.members {
                let e = &self.entries[idx];
                let peak = e.stability_peak().unwrap_or(f64::NAN);
                let freq = e.natural_freq_hz().unwrap_or(f64::NAN);
                out.push_str(&format!(
                    "{:<16} {:>16.6} {:>20.3e}\n",
                    e.node_name, peak, freq
                ));
            }
        }

        let quiet: Vec<&NodeStabilityResult> = self
            .entries
            .iter()
            .filter(|e| e.peak.is_none() || e.peak.map(|p| p.kind) == Some(PeakKind::MinMax))
            .collect();
        if !quiet.is_empty() {
            out.push_str("-- Nodes with no detected complex pole (well damped or min/max) --\n");
            for e in quiet {
                out.push_str(&format!("{:<16} (no loop detected)\n", e.node_name));
            }
        }

        let special: Vec<&NodeStabilityResult> = self
            .entries
            .iter()
            .filter(|e| e.peak.map(|p| p.kind) == Some(PeakKind::EndOfRange))
            .collect();
        if !special.is_empty() {
            out.push_str("-- Notices --\n");
            for e in special {
                out.push_str(&format!(
                    "{:<16} end-of-range peak: the loop's natural frequency may lie outside the swept range\n",
                    e.node_name
                ));
            }
        }
        out
    }
}

fn format_frequency(freq_hz: f64) -> String {
    if freq_hz >= 1.0e9 {
        format!("{:.1} GHz", freq_hz / 1.0e9)
    } else if freq_hz >= 1.0e6 {
        format!("{:.1} MHz", freq_hz / 1.0e6)
    } else if freq_hz >= 1.0e3 {
        format!("{:.1} kHz", freq_hz / 1.0e3)
    } else {
        format!("{freq_hz:.1} Hz")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plot::StabilityPlot;
    use loopscope_math::{logspace, SecondOrder};
    use loopscope_netlist::NodeId;

    fn entry(name: &str, idx: usize, zeta: f64, fn_hz: f64) -> NodeStabilityResult {
        let sys = SecondOrder::from_damping(zeta, fn_hz);
        let freqs = logspace(1.0e3, 1.0e9, 1801);
        let mags: Vec<f64> = freqs.iter().map(|&f| sys.magnitude(f)).collect();
        let plot = StabilityPlot::from_magnitude(freqs, mags);
        NodeStabilityResult::from_plot(NodeId::from_index(idx), name, plot, -1.0)
    }

    fn quiet_entry(name: &str, idx: usize) -> NodeStabilityResult {
        // A single real pole: no loop signature.
        let freqs = logspace(1.0e3, 1.0e9, 1801);
        let mags: Vec<f64> = freqs.iter().map(|&f| 1.0 / (1.0 + f / 1.0e5)).collect();
        let plot = StabilityPlot::from_magnitude(freqs, mags);
        NodeStabilityResult::from_plot(NodeId::from_index(idx), name, plot, -1.0)
    }

    fn sample_report() -> AllNodesReport {
        let entries = vec![
            entry("Output", 1, 0.2, 3.16e6),
            entry("net052", 2, 0.2, 3.2e6),
            entry("net136", 3, 0.21, 3.1e6),
            entry("net81", 4, 0.42, 4.79e7),
            entry("net056", 5, 0.45, 4.8e7),
            quiet_entry("vdd", 6),
        ];
        AllNodesReport::new(entries, 0.2)
    }

    #[test]
    fn groups_by_natural_frequency() {
        let report = sample_report();
        assert_eq!(report.loops().len(), 2);
        let low = &report.loops()[0];
        let high = &report.loops()[1];
        assert!(low.natural_freq_hz < high.natural_freq_hz);
        assert_eq!(low.members.len(), 3);
        assert_eq!(high.members.len(), 2);
        // The low-frequency loop is the least damped.
        assert!(low.worst_performance_index < high.worst_performance_index);
    }

    #[test]
    fn worst_node_is_main_loop_member() {
        let report = sample_report();
        let worst = report.worst().unwrap();
        assert!(["Output", "net052", "net136"].contains(&worst.node_name.as_str()));
    }

    #[test]
    fn text_report_structure() {
        let report = sample_report();
        let text = report.to_text();
        assert!(text.contains("Loop at 3.2 MHz") || text.contains("Loop at 3.1 MHz"));
        assert!(text.contains("Loop at 47.") || text.contains("Loop at 48."));
        assert!(text.contains("Output"));
        assert!(text.contains("no loop detected"));
        // Sorted: the MHz loop section appears before the 47 MHz one.
        let pos_main = text.find("Output").unwrap();
        let pos_local = text.find("net81").unwrap();
        assert!(pos_main < pos_local);
    }

    #[test]
    fn annotations_cover_peaked_nodes() {
        let report = sample_report();
        let ann = report.annotations();
        assert_eq!(ann.len(), 5);
        let (name, peak, freq) = &ann[0];
        assert_eq!(name, "Output");
        assert!((*peak - 25.0).abs() < 1.0);
        assert!((*freq - 3.16e6).abs() / 3.16e6 < 0.05);
    }

    #[test]
    fn empty_report() {
        let report = AllNodesReport::new(Vec::new(), 0.2);
        assert!(report.loops().is_empty());
        assert!(report.worst().is_none());
        assert!(report.annotations().is_empty());
        assert!(report.to_text().contains("Stability Plot"));
    }

    #[test]
    fn frequency_formatting() {
        assert_eq!(format_frequency(3.2e6), "3.2 MHz");
        assert_eq!(format_frequency(47.9e6), "47.9 MHz");
        assert_eq!(format_frequency(1.5e3), "1.5 kHz");
        assert_eq!(format_frequency(2.0e9), "2.0 GHz");
        assert_eq!(format_frequency(12.0), "12.0 Hz");
    }
}
