//! Error type for the stability analysis tool.

use loopscope_netlist::NetlistError;
use loopscope_spice::SpiceError;
use std::fmt;

/// Errors produced by the stability analyzer.
#[derive(Debug, Clone, PartialEq)]
pub enum StabilityError {
    /// The underlying circuit simulation failed.
    Spice(SpiceError),
    /// The circuit description itself is invalid.
    Netlist(NetlistError),
    /// The analysis was asked about a node that does not exist (or is ground).
    UnknownNode(String),
    /// The sweep options are inconsistent.
    InvalidOptions(String),
}

impl fmt::Display for StabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StabilityError::Spice(e) => write!(f, "simulation failed: {e}"),
            StabilityError::Netlist(e) => write!(f, "invalid circuit: {e}"),
            StabilityError::UnknownNode(name) => write!(f, "unknown or unusable node `{name}`"),
            StabilityError::InvalidOptions(reason) => {
                write!(f, "invalid stability-analysis options: {reason}")
            }
        }
    }
}

impl std::error::Error for StabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StabilityError::Spice(e) => Some(e),
            StabilityError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceError> for StabilityError {
    fn from(e: SpiceError) -> Self {
        StabilityError::Spice(e)
    }
}

impl From<NetlistError> for StabilityError {
    fn from(e: NetlistError) -> Self {
        StabilityError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_conversion() {
        let e = StabilityError::UnknownNode("x7".into());
        assert!(e.to_string().contains("x7"));
        assert!(e.source().is_none());

        let s: StabilityError = SpiceError::InvalidOptions("dt".into()).into();
        assert!(matches!(s, StabilityError::Spice(_)));
        assert!(s.source().is_some());

        let n: StabilityError = NetlistError::InvalidCircuit("no ground".into()).into();
        assert!(n.to_string().contains("no ground"));

        assert!(StabilityError::InvalidOptions("bad sweep".into())
            .to_string()
            .contains("bad sweep"));
    }
}
