//! Runs the checked-in golden corpus end to end — the same thing
//! `cargo run -p loopscope-validate` and CI do, as a plain `cargo test`.

use loopscope_validate::{default_data_dir, load_dir, run_corpus, write_report, Counts, Outcome};

#[test]
fn golden_corpus_is_green() {
    let dir = default_data_dir();
    let cases = load_dir(&dir).expect("load golden corpus");
    assert!(
        cases.len() >= 10,
        "corpus must hold at least 10 scenarios, found {} in {}",
        cases.len(),
        dir.display()
    );

    let reports = run_corpus(&cases);
    for report in &reports {
        assert!(
            report.outcome.is_ok(),
            "golden case '{}' is {:?}: error={:?} mismatches={:?}",
            report.name,
            report.outcome,
            report.error,
            report.mismatches
        );
    }

    let counts = Counts::from_reports(&reports);
    assert!(counts.is_ok());
    assert_eq!(counts.total(), cases.len());
    assert!(counts.passed >= 9, "expected >= 9 passing cases");

    // The corpus must span every analysis kind the simulator offers.
    for kind in ["dc", "ac", "driving_point", "tran"] {
        assert!(
            reports.iter().any(|r| r.kinds.contains(kind)),
            "no golden case exercises the '{kind}' analysis"
        );
    }

    // At least one case asserts BTF multi-block structure.
    assert!(
        reports
            .iter()
            .any(|r| r.structure.is_some_and(|s| s.pass && s.got_blocks > 1)),
        "no golden case asserts a multi-block BTF structure"
    );
}

#[test]
fn near_singular_case_fails_with_structured_mismatch() {
    let cases = load_dir(&default_data_dir()).expect("load golden corpus");
    let xfail = cases
        .iter()
        .find(|c| c.expect_failure)
        .expect("corpus must hold an expect_failure scenario");

    let report = loopscope_validate::run_case(xfail);
    assert_eq!(report.outcome, Outcome::ExpectedFailure);
    assert!(
        report.error.is_none(),
        "xfail must fail by mismatch, not error"
    );

    // The mismatch is structured and names the offending unknown through
    // MnaLayout conventions, like the solver's own diagnostics.
    let m = &report.mismatches[0];
    assert_eq!(m.quantity, "V(mid)");
    assert_eq!(m.at, "dc");
    assert!(
        m.got.abs() < 1e-3,
        "GMIN should pin the floating node near 0"
    );
    assert_eq!(m.want, 0.5);
    let text = m.to_string();
    assert!(text.contains("V(mid)"), "{text}");
    assert!(text.contains("dc"), "{text}");
}

#[test]
fn report_artifact_round_trips() {
    let cases = load_dir(&default_data_dir()).expect("load golden corpus");
    let reports = run_corpus(&cases);

    let dir = std::env::temp_dir().join("loopscope_validate_corpus_report");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("VALIDATE_report.json");
    let written = write_report(&reports, Some(&path)).unwrap();
    assert_eq!(written, path);

    let text = std::fs::read_to_string(&path).unwrap();
    let doc = loopscope_validate::json::parse(&text).unwrap();
    assert_eq!(doc.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        doc.get("total").and_then(|v| v.as_f64()),
        Some(cases.len() as f64)
    );
    let arr = doc.get("cases").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(arr.len(), cases.len());
    std::fs::remove_dir_all(&dir).unwrap();
}
