//! The golden-case schema: loading, validation and `--bless` rewriting.
//!
//! A golden file is a JSON document pinning reference values for one circuit
//! under one or more analyses. The format is versioned (`schema_version`)
//! and every check carries its own absolute/relative tolerance, so each
//! quantity states how exact its reference is — analytic DC answers pin
//! nine digits while integrated transient samples allow truncation error.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::compare::Tolerance;
use crate::json::{self, Json, JsonError};

/// The golden-file format version this harness reads and writes.
pub const SCHEMA_VERSION: f64 = 1.0;

/// Errors raised while loading, interpreting or rewriting golden files.
#[derive(Debug)]
pub enum GoldenError {
    /// Filesystem failure reading or writing a golden file.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error message.
        msg: String,
    },
    /// The file is not syntactically valid JSON.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// The JSON syntax error with position.
        err: JsonError,
    },
    /// The JSON is well-formed but violates the golden schema.
    Schema {
        /// The file involved.
        path: PathBuf,
        /// What is wrong, with a JSON-path-style context prefix.
        msg: String,
    },
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::Io { path, msg } => write!(f, "{}: {msg}", path.display()),
            GoldenError::Parse { path, err } => write!(f, "{}: {err}", path.display()),
            GoldenError::Schema { path, msg } => {
                write!(f, "{}: schema error: {msg}", path.display())
            }
        }
    }
}

impl std::error::Error for GoldenError {}

/// How the scenario's circuit is constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitSpec {
    /// SPICE netlist text (stored as an array of lines in the JSON).
    Netlist(String),
    /// A named builder from `loopscope-circuits` plus numeric parameters.
    Builtin {
        /// Builder id, e.g. `"opamp_cascade"`.
        id: String,
        /// Builder parameters by name, e.g. `stages`, `r_ohms`.
        params: Vec<(String, f64)>,
    },
}

/// The measured quantity of a DC check.
#[derive(Debug, Clone, PartialEq)]
pub enum DcQuantity {
    /// A node voltage, by node name.
    NodeVoltage(String),
    /// A branch current, by element name (voltage sources, inductors, VCVS).
    BranchCurrent(String),
}

/// One pinned DC operating-point value.
#[derive(Debug, Clone, PartialEq)]
pub struct DcCheck {
    /// What is measured.
    pub quantity: DcQuantity,
    /// The reference value.
    pub want: f64,
    /// Acceptance band.
    pub tol: Tolerance,
}

/// The measured quantity of an AC (or driving-point) check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcQuantity {
    /// Magnitude of the complex response.
    Magnitude,
    /// Phase of the complex response in degrees, wrapped to ±180°.
    PhaseDeg,
}

impl AcQuantity {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "magnitude" => Some(AcQuantity::Magnitude),
            "phase_deg" => Some(AcQuantity::PhaseDeg),
            _ => None,
        }
    }
}

/// One pinned AC value at an exact frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct AcCheck {
    /// The observed node, by name.
    pub node: String,
    /// The pinned frequency in hertz — the runner solves exactly here.
    pub freq_hz: f64,
    /// Magnitude or phase.
    pub quantity: AcQuantity,
    /// The reference value.
    pub want: f64,
    /// Acceptance band.
    pub tol: Tolerance,
}

/// One pinned driving-point impedance value at an exact frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct DrivingPointCheck {
    /// The pinned frequency in hertz.
    pub freq_hz: f64,
    /// Magnitude or phase of the impedance.
    pub quantity: AcQuantity,
    /// The reference value.
    pub want: f64,
    /// Acceptance band.
    pub tol: Tolerance,
}

/// One pinned transient node voltage at an exact time.
#[derive(Debug, Clone, PartialEq)]
pub struct TranCheck {
    /// The observed node, by name.
    pub node: String,
    /// The pinned time in seconds (choose multiples of `dt` so the value
    /// is a solved sample, not an interpolation).
    pub time: f64,
    /// The reference value.
    pub want: f64,
    /// Acceptance band.
    pub tol: Tolerance,
}

/// Adaptive-stepping parameters of a transient golden (schema fields
/// `dt_min`, `dt_max`, `reltol`, `abstol`, active when `"adaptive": true`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranAdaptive {
    /// Smallest step the ladder may take, seconds.
    pub dt_min: f64,
    /// Largest step the controller may grow to, seconds.
    pub dt_max: f64,
    /// Relative LTE tolerance (dimensionless).
    pub reltol: f64,
    /// Absolute LTE tolerance, volts.
    pub abstol: f64,
}

/// One tolerance rule of a Monte Carlo analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct McRule {
    /// The perturbed element, by name.
    pub element: String,
    /// `"gaussian"` or `"uniform"`.
    pub dist: String,
    /// Relative tolerance (one σ for gaussian, half-span for uniform).
    pub tolerance: f64,
}

/// The measured quantity of a Monte Carlo check — statistics of the batch's
/// per-variant peak driving-point magnitudes, all of which are pinned by the
/// seed (the variant streams are deterministic, so the references are exact
/// up to solver rounding).
#[derive(Debug, Clone, PartialEq)]
pub enum McQuantity {
    /// Number of converged variants.
    Yield,
    /// Index of the worst-case variant (largest peak magnitude).
    WorstCaseIndex,
    /// Peak magnitude of the worst-case variant.
    WorstCasePeak,
    /// The `q`-quantile of the converged variants' peak magnitudes.
    PeakQuantile(f64),
    /// Peak magnitude of one pinned variant, by batch index.
    VariantPeak(usize),
}

/// One pinned Monte Carlo statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct McCheck {
    /// What is measured.
    pub quantity: McQuantity,
    /// The reference value.
    pub want: f64,
    /// Acceptance band.
    pub tol: Tolerance,
}

/// One analysis to run for a scenario, with its pinned checks.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisCase {
    /// DC operating point.
    Dc {
        /// Pinned node voltages / branch currents.
        checks: Vec<DcCheck>,
    },
    /// AC sweep using the circuit's own AC sources.
    Ac {
        /// Pinned magnitude/phase values.
        checks: Vec<AcCheck>,
    },
    /// Driving-point impedance scan (unit current injection) at one node.
    DrivingPoint {
        /// The injection node, by name.
        node: String,
        /// Pinned impedance values.
        checks: Vec<DrivingPointCheck>,
    },
    /// Transient integration — fixed grid, or adaptive when `adaptive` is
    /// set.
    Tran {
        /// Fixed time step in seconds (equal to `dt_min` for an adaptive
        /// case, where the grid spacing is controlled by the LTE ladder).
        dt: f64,
        /// Stop time in seconds.
        t_stop: f64,
        /// `"trapezoidal"` (default) or `"backward_euler"`.
        method: String,
        /// Adaptive stepping parameters; `None` selects the fixed grid.
        adaptive: Option<TranAdaptive>,
        /// Pinned waveform samples.
        checks: Vec<TranCheck>,
    },
    /// Seeded Monte Carlo driving-point sweep through the batched engine.
    MonteCarlo {
        /// The injection node, by name.
        node: String,
        /// Seed of the variation streams — pins every variant's values.
        seed: u64,
        /// Number of variants.
        count: usize,
        /// The exact sweep frequencies in hertz.
        freqs: Vec<f64>,
        /// Per-element tolerance rules, in application order.
        rules: Vec<McRule>,
        /// Pinned batch statistics.
        checks: Vec<McCheck>,
    },
}

impl AnalysisCase {
    /// Short kind tag for tables and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisCase::Dc { .. } => "dc",
            AnalysisCase::Ac { .. } => "ac",
            AnalysisCase::DrivingPoint { .. } => "driving_point",
            AnalysisCase::Tran { .. } => "tran",
            AnalysisCase::MonteCarlo { .. } => "monte_carlo",
        }
    }

    /// Number of pinned checks in this analysis.
    pub fn check_count(&self) -> usize {
        match self {
            AnalysisCase::Dc { checks } => checks.len(),
            AnalysisCase::Ac { checks } => checks.len(),
            AnalysisCase::DrivingPoint { checks, .. } => checks.len(),
            AnalysisCase::Tran { checks, .. } => checks.len(),
            AnalysisCase::MonteCarlo { checks, .. } => checks.len(),
        }
    }
}

/// Optional solver-backend pin of a golden scenario (document-level
/// `"solver"` field).
///
/// When present, the runner pins the AC-path analyses (`ac`,
/// `driving_point`, and the BTF structure probe) to the named backend
/// instead of letting the ambient `LOOPSCOPE_SOLVER` configuration decide,
/// so one circuit can be blessed once and certified under both solve
/// paths. DC, transient and Monte Carlo cases are unaffected: DC and
/// transient follow the ambient configuration, and the batched Monte Carlo
/// engine always runs direct (its lane amortization already plays the role
/// the stale preconditioner plays for sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverChoice {
    /// The exact sparse-LU path with verified refinement.
    Direct,
    /// Restarted GMRES with stale-LU preconditioning (direct-ladder
    /// fallback on a miss).
    Iterative,
}

impl SolverChoice {
    /// The schema token, `"direct"` or `"iterative"`.
    pub fn tag(&self) -> &'static str {
        match self {
            SolverChoice::Direct => "direct",
            SolverChoice::Iterative => "iterative",
        }
    }
}

/// A fully parsed golden scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenCase {
    /// Scenario id (unique across the corpus; defaults from the file stem).
    pub name: String,
    /// Human-oriented one-liner.
    pub description: String,
    /// Where the reference values come from (analytic derivation or the
    /// external simulator + version). Required — an unexplained golden is
    /// unreviewable.
    pub provenance: String,
    /// When `true` the scenario must FAIL validation; it proves the harness
    /// catches regressions rather than only confirming passes.
    pub expect_failure: bool,
    /// How to construct the circuit.
    pub circuit: CircuitSpec,
    /// Optional structural assertion: the AC solver's BTF decomposition
    /// must find at least this many diagonal blocks.
    pub min_btf_blocks: Option<usize>,
    /// Optional solver-backend pin for the AC-path analyses. `None` leaves
    /// the ambient `LOOPSCOPE_SOLVER` configuration in charge.
    pub solver: Option<SolverChoice>,
    /// The analyses to run, in file order.
    pub analyses: Vec<AnalysisCase>,
    /// Source file the case was loaded from.
    pub path: PathBuf,
}

impl GoldenCase {
    /// Total number of pinned checks across all analyses.
    pub fn check_count(&self) -> usize {
        self.analyses.iter().map(AnalysisCase::check_count).sum()
    }

    /// The analysis kinds in file order, joined with `+` (e.g. `"dc+ac"`).
    pub fn kinds(&self) -> String {
        let mut kinds: Vec<&str> = Vec::new();
        for a in &self.analyses {
            if !kinds.contains(&a.kind()) {
                kinds.push(a.kind());
            }
        }
        kinds.join("+")
    }

    /// Parses one golden document.
    pub fn parse(path: &Path, text: &str) -> Result<Self, GoldenError> {
        let doc = json::parse(text).map_err(|err| GoldenError::Parse {
            path: path.to_path_buf(),
            err,
        })?;
        let schema = |msg: String| GoldenError::Schema {
            path: path.to_path_buf(),
            msg,
        };

        let version = doc
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or_else(|| schema("missing numeric 'schema_version'".into()))?;
        if version != SCHEMA_VERSION {
            return Err(schema(format!(
                "schema_version {version} is not supported (this harness reads {SCHEMA_VERSION})"
            )));
        }

        let default_name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .unwrap_or(default_name);
        let description = req_str(&doc, "description", &schema)?;
        let provenance = req_str(&doc, "provenance", &schema)?;
        let expect_failure = doc
            .get("expect_failure")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let min_btf_blocks = match doc.get("min_btf_blocks") {
            None => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| schema("'min_btf_blocks' must be a number".into()))?
                    as usize,
            ),
        };
        let solver = match doc.get("solver") {
            None => None,
            Some(v) => match v.as_str() {
                Some("direct") => Some(SolverChoice::Direct),
                Some("iterative") => Some(SolverChoice::Iterative),
                _ => {
                    return Err(schema(
                        "'solver' must be \"direct\" or \"iterative\"".into(),
                    ))
                }
            },
        };

        let circuit_obj = doc
            .get("circuit")
            .ok_or_else(|| schema("missing 'circuit'".into()))?;
        let circuit = parse_circuit(circuit_obj, &schema)?;

        let analyses_arr = doc
            .get("analyses")
            .and_then(Json::as_arr)
            .ok_or_else(|| schema("missing 'analyses' array".into()))?;
        if analyses_arr.is_empty() {
            return Err(schema("'analyses' must not be empty".into()));
        }
        let mut analyses = Vec::with_capacity(analyses_arr.len());
        for (i, a) in analyses_arr.iter().enumerate() {
            analyses.push(parse_analysis(a, i, &schema)?);
        }

        Ok(GoldenCase {
            name,
            description,
            provenance,
            expect_failure,
            circuit,
            min_btf_blocks,
            solver,
            analyses,
            path: path.to_path_buf(),
        })
    }

    /// Loads one golden file.
    pub fn load(path: &Path) -> Result<Self, GoldenError> {
        let text = std::fs::read_to_string(path).map_err(|e| GoldenError::Io {
            path: path.to_path_buf(),
            msg: e.to_string(),
        })?;
        Self::parse(path, &text)
    }
}

/// Loads every `*.json` golden in `dir`, sorted by file name so corpus
/// order (and therefore report and bless order) is deterministic.
pub fn load_dir(dir: &Path) -> Result<Vec<GoldenCase>, GoldenError> {
    let entries = std::fs::read_dir(dir).map_err(|e| GoldenError::Io {
        path: dir.to_path_buf(),
        msg: e.to_string(),
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut cases = Vec::with_capacity(paths.len());
    for p in &paths {
        cases.push(GoldenCase::load(p)?);
    }
    Ok(cases)
}

/// The repo-relative default corpus directory, `tests/golden_data/`.
///
/// Resolved from this crate's manifest at compile time (the same idiom the
/// bench JSON writer uses for `target/`), overridable at run time with the
/// `LOOPSCOPE_GOLDEN_DIR` environment variable.
pub fn default_data_dir() -> PathBuf {
    std::env::var("LOOPSCOPE_GOLDEN_DIR")
        .unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden_data").to_string()
        })
        .into()
}

fn req_str(
    doc: &Json,
    key: &str,
    schema: &impl Fn(String) -> GoldenError,
) -> Result<String, GoldenError> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| schema(format!("missing string '{key}'")))
}

fn parse_circuit(
    v: &Json,
    schema: &impl Fn(String) -> GoldenError,
) -> Result<CircuitSpec, GoldenError> {
    if let Some(lines) = v.get("netlist") {
        let lines = lines
            .as_arr()
            .ok_or_else(|| schema("circuit.netlist must be an array of lines".into()))?;
        let mut text = String::new();
        for (i, line) in lines.iter().enumerate() {
            let s = line
                .as_str()
                .ok_or_else(|| schema(format!("circuit.netlist[{i}] must be a string")))?;
            text.push_str(s);
            text.push('\n');
        }
        return Ok(CircuitSpec::Netlist(text));
    }
    if let Some(id) = v.get("builtin") {
        let id = id
            .as_str()
            .ok_or_else(|| schema("circuit.builtin must be a string".into()))?
            .to_owned();
        let mut params = Vec::new();
        if let Some(p) = v.get("params") {
            let entries = p
                .as_obj()
                .ok_or_else(|| schema("circuit.params must be an object".into()))?;
            for (k, val) in entries {
                let num = val
                    .as_f64()
                    .ok_or_else(|| schema(format!("circuit.params.{k} must be a number")))?;
                params.push((k.clone(), num));
            }
        }
        return Ok(CircuitSpec::Builtin { id, params });
    }
    Err(schema(
        "circuit needs either 'netlist' (array of lines) or 'builtin' (+ optional 'params')".into(),
    ))
}

fn parse_tol(
    v: &Json,
    ctx: &str,
    schema: &impl Fn(String) -> GoldenError,
) -> Result<Tolerance, GoldenError> {
    let atol = v.get("atol").and_then(Json::as_f64);
    let rtol = v.get("rtol").and_then(Json::as_f64);
    if atol.is_none() && rtol.is_none() {
        return Err(schema(format!(
            "{ctx}: every check must state 'atol' and/or 'rtol'"
        )));
    }
    let (atol, rtol) = (atol.unwrap_or(0.0), rtol.unwrap_or(0.0));
    if !(atol.is_finite() && rtol.is_finite() && atol >= 0.0 && rtol >= 0.0) {
        return Err(schema(format!(
            "{ctx}: tolerances must be finite and non-negative"
        )));
    }
    if atol == 0.0 && rtol == 0.0 {
        return Err(schema(format!(
            "{ctx}: at least one of atol/rtol must be positive"
        )));
    }
    Ok(Tolerance::new(atol, rtol))
}

fn req_num(
    v: &Json,
    key: &str,
    ctx: &str,
    schema: &impl Fn(String) -> GoldenError,
) -> Result<f64, GoldenError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| schema(format!("{ctx}: missing numeric '{key}'")))
}

fn req_check_str(
    v: &Json,
    key: &str,
    ctx: &str,
    schema: &impl Fn(String) -> GoldenError,
) -> Result<String, GoldenError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| schema(format!("{ctx}: missing string '{key}'")))
}

fn checks_arr<'a>(
    v: &'a Json,
    ctx: &str,
    schema: &impl Fn(String) -> GoldenError,
) -> Result<&'a [Json], GoldenError> {
    let arr = v
        .get("checks")
        .and_then(Json::as_arr)
        .ok_or_else(|| schema(format!("{ctx}: missing 'checks' array")))?;
    if arr.is_empty() {
        return Err(schema(format!("{ctx}: 'checks' must not be empty")));
    }
    Ok(arr)
}

fn parse_ac_quantity(
    v: &Json,
    ctx: &str,
    schema: &impl Fn(String) -> GoldenError,
) -> Result<AcQuantity, GoldenError> {
    let q = req_check_str(v, "quantity", ctx, schema)?;
    AcQuantity::parse(&q).ok_or_else(|| {
        schema(format!(
            "{ctx}: unknown quantity '{q}' (expected 'magnitude' or 'phase_deg')"
        ))
    })
}

fn parse_analysis(
    v: &Json,
    index: usize,
    schema: &impl Fn(String) -> GoldenError,
) -> Result<AnalysisCase, GoldenError> {
    let ctx = format!("analyses[{index}]");
    let kind = req_check_str(v, "kind", &ctx, schema)?;
    match kind.as_str() {
        "dc" => {
            let mut checks = Vec::new();
            for (i, c) in checks_arr(v, &ctx, schema)?.iter().enumerate() {
                let cctx = format!("{ctx}.checks[{i}]");
                let quantity = if let Some(node) = c.get("node").and_then(Json::as_str) {
                    DcQuantity::NodeVoltage(node.to_owned())
                } else if let Some(el) = c.get("branch").and_then(Json::as_str) {
                    DcQuantity::BranchCurrent(el.to_owned())
                } else {
                    return Err(schema(format!("{cctx}: needs 'node' or 'branch'")));
                };
                checks.push(DcCheck {
                    quantity,
                    want: req_num(c, "want", &cctx, schema)?,
                    tol: parse_tol(c, &cctx, schema)?,
                });
            }
            Ok(AnalysisCase::Dc { checks })
        }
        "ac" => {
            let mut checks = Vec::new();
            for (i, c) in checks_arr(v, &ctx, schema)?.iter().enumerate() {
                let cctx = format!("{ctx}.checks[{i}]");
                checks.push(AcCheck {
                    node: req_check_str(c, "node", &cctx, schema)?,
                    freq_hz: req_num(c, "freq_hz", &cctx, schema)?,
                    quantity: parse_ac_quantity(c, &cctx, schema)?,
                    want: req_num(c, "want", &cctx, schema)?,
                    tol: parse_tol(c, &cctx, schema)?,
                });
            }
            Ok(AnalysisCase::Ac { checks })
        }
        "driving_point" => {
            let node = req_check_str(v, "node", &ctx, schema)?;
            let mut checks = Vec::new();
            for (i, c) in checks_arr(v, &ctx, schema)?.iter().enumerate() {
                let cctx = format!("{ctx}.checks[{i}]");
                checks.push(DrivingPointCheck {
                    freq_hz: req_num(c, "freq_hz", &cctx, schema)?,
                    quantity: parse_ac_quantity(c, &cctx, schema)?,
                    want: req_num(c, "want", &cctx, schema)?,
                    tol: parse_tol(c, &cctx, schema)?,
                });
            }
            Ok(AnalysisCase::DrivingPoint { node, checks })
        }
        "tran" => {
            let t_stop = req_num(v, "t_stop", &ctx, schema)?;
            let method = v
                .get("method")
                .and_then(Json::as_str)
                .unwrap_or("trapezoidal")
                .to_owned();
            if method != "trapezoidal" && method != "backward_euler" {
                return Err(schema(format!(
                    "{ctx}: unknown method '{method}' (expected 'trapezoidal' or 'backward_euler')"
                )));
            }
            // `"adaptive": true` selects the LTE-controlled stepper and
            // requires `dt_min`/`dt_max` (with optional `reltol`/`abstol`
            // tolerances); a fixed-grid case requires `dt` as before.
            let is_adaptive = v.get("adaptive").and_then(Json::as_bool).unwrap_or(false);
            let (dt, adaptive) = if is_adaptive {
                let dt_min = req_num(v, "dt_min", &ctx, schema)?;
                let dt_max = req_num(v, "dt_max", &ctx, schema)?;
                if dt_max < dt_min {
                    return Err(schema(format!("{ctx}: dt_max must be at least dt_min")));
                }
                let reltol = match v.get("reltol") {
                    Some(r) => r
                        .as_f64()
                        .ok_or_else(|| schema(format!("{ctx}: 'reltol' must be a number")))?,
                    None => 1.0e-3,
                };
                let abstol = match v.get("abstol") {
                    Some(a) => a
                        .as_f64()
                        .ok_or_else(|| schema(format!("{ctx}: 'abstol' must be a number")))?,
                    None => 1.0e-6,
                };
                (
                    dt_min,
                    Some(TranAdaptive {
                        dt_min,
                        dt_max,
                        reltol,
                        abstol,
                    }),
                )
            } else {
                (req_num(v, "dt", &ctx, schema)?, None)
            };
            let mut checks = Vec::new();
            for (i, c) in checks_arr(v, &ctx, schema)?.iter().enumerate() {
                let cctx = format!("{ctx}.checks[{i}]");
                checks.push(TranCheck {
                    node: req_check_str(c, "node", &cctx, schema)?,
                    time: req_num(c, "time", &cctx, schema)?,
                    want: req_num(c, "want", &cctx, schema)?,
                    tol: parse_tol(c, &cctx, schema)?,
                });
            }
            Ok(AnalysisCase::Tran {
                dt,
                t_stop,
                method,
                adaptive,
                checks,
            })
        }
        "monte_carlo" => {
            let node = req_check_str(v, "node", &ctx, schema)?;
            let seed = req_num(v, "seed", &ctx, schema)?;
            if seed < 0.0 || seed.fract() != 0.0 {
                return Err(schema(format!(
                    "{ctx}: 'seed' must be a non-negative integer"
                )));
            }
            let count = req_num(v, "count", &ctx, schema)?;
            if count < 1.0 || count.fract() != 0.0 {
                return Err(schema(format!("{ctx}: 'count' must be a positive integer")));
            }
            let freqs_arr = v
                .get("freqs")
                .and_then(Json::as_arr)
                .ok_or_else(|| schema(format!("{ctx}: missing 'freqs' array")))?;
            let mut freqs = Vec::with_capacity(freqs_arr.len());
            for (i, f) in freqs_arr.iter().enumerate() {
                freqs.push(
                    f.as_f64()
                        .ok_or_else(|| schema(format!("{ctx}.freqs[{i}] must be a number")))?,
                );
            }
            if freqs.is_empty() {
                return Err(schema(format!("{ctx}: 'freqs' must not be empty")));
            }
            let rules_arr = v
                .get("rules")
                .and_then(Json::as_arr)
                .ok_or_else(|| schema(format!("{ctx}: missing 'rules' array")))?;
            let mut rules = Vec::with_capacity(rules_arr.len());
            for (i, r) in rules_arr.iter().enumerate() {
                let rctx = format!("{ctx}.rules[{i}]");
                let dist = req_check_str(r, "dist", &rctx, schema)?;
                if dist != "gaussian" && dist != "uniform" {
                    return Err(schema(format!(
                        "{rctx}: unknown dist '{dist}' (expected 'gaussian' or 'uniform')"
                    )));
                }
                rules.push(McRule {
                    element: req_check_str(r, "element", &rctx, schema)?,
                    dist,
                    tolerance: req_num(r, "tolerance", &rctx, schema)?,
                });
            }
            let mut checks = Vec::new();
            for (i, c) in checks_arr(v, &ctx, schema)?.iter().enumerate() {
                let cctx = format!("{ctx}.checks[{i}]");
                let q = req_check_str(c, "quantity", &cctx, schema)?;
                let quantity = match q.as_str() {
                    "yield" => McQuantity::Yield,
                    "worst_case_index" => McQuantity::WorstCaseIndex,
                    "worst_case_peak" => McQuantity::WorstCasePeak,
                    "peak_quantile" => McQuantity::PeakQuantile(req_num(c, "q", &cctx, schema)?),
                    "variant_peak" => {
                        McQuantity::VariantPeak(req_num(c, "index", &cctx, schema)? as usize)
                    }
                    other => {
                        return Err(schema(format!(
                            "{cctx}: unknown quantity '{other}' (expected yield, \
                             worst_case_index, worst_case_peak, peak_quantile or variant_peak)"
                        )))
                    }
                };
                checks.push(McCheck {
                    quantity,
                    want: req_num(c, "want", &cctx, schema)?,
                    tol: parse_tol(c, &cctx, schema)?,
                });
            }
            Ok(AnalysisCase::MonteCarlo {
                node,
                seed: seed as u64,
                count: count as usize,
                freqs,
                rules,
                checks,
            })
        }
        other => Err(schema(format!(
            "{ctx}: unknown analysis kind '{other}' (expected dc, ac, driving_point, tran \
             or monte_carlo)"
        ))),
    }
}

/// One `want` value rewritten by a bless pass.
#[derive(Debug, Clone, PartialEq)]
pub struct BlessedChange {
    /// JSON-path-style location of the check, e.g. `analyses[1].checks[0]`.
    pub location: String,
    /// The value that was checked in before.
    pub old: f64,
    /// The freshly measured value now recorded.
    pub new: f64,
}

/// Rewrites a golden file's `want` fields from freshly measured values.
///
/// `got` must hold one entry per check in **runner order** (analyses in
/// file order, checks in file order within each analysis) — exactly what
/// the runner's check records provide. Only changed values are reported;
/// the file is rewritten in place with key order preserved.
pub fn bless_file(path: &Path, got: &[f64]) -> Result<Vec<BlessedChange>, GoldenError> {
    let text = std::fs::read_to_string(path).map_err(|e| GoldenError::Io {
        path: path.to_path_buf(),
        msg: e.to_string(),
    })?;
    let mut doc = json::parse(&text).map_err(|err| GoldenError::Parse {
        path: path.to_path_buf(),
        err,
    })?;
    let schema = |msg: String| GoldenError::Schema {
        path: path.to_path_buf(),
        msg,
    };

    let mut changes = Vec::new();
    let mut next = 0usize;
    {
        let analyses = doc
            .get_mut("analyses")
            .and_then(|v| match v {
                Json::Arr(items) => Some(items),
                _ => None,
            })
            .ok_or_else(|| schema("missing 'analyses' array".into()))?;
        for (ai, analysis) in analyses.iter_mut().enumerate() {
            let checks = analysis
                .get_mut("checks")
                .and_then(|v| match v {
                    Json::Arr(items) => Some(items),
                    _ => None,
                })
                .ok_or_else(|| schema(format!("analyses[{ai}]: missing 'checks'")))?;
            for (ci, check) in checks.iter_mut().enumerate() {
                let fresh = *got.get(next).ok_or_else(|| {
                    schema(format!(
                        "bless has {} measured values but the file holds more checks",
                        got.len()
                    ))
                })?;
                next += 1;
                let want = check.get_mut("want").ok_or_else(|| {
                    schema(format!("analyses[{ai}].checks[{ci}]: missing 'want'"))
                })?;
                let old = want.as_f64().ok_or_else(|| {
                    schema(format!(
                        "analyses[{ai}].checks[{ci}]: 'want' must be a number"
                    ))
                })?;
                if old != fresh {
                    changes.push(BlessedChange {
                        location: format!("analyses[{ai}].checks[{ci}]"),
                        old,
                        new: fresh,
                    });
                    *want = Json::Num(fresh);
                }
            }
        }
    }
    if next != got.len() {
        return Err(schema(format!(
            "bless has {} measured values but the file holds {next} checks",
            got.len()
        )));
    }
    std::fs::write(path, doc.pretty()).map_err(|e| GoldenError::Io {
        path: path.to_path_buf(),
        msg: e.to_string(),
    })?;
    Ok(changes)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
      "schema_version": 1,
      "name": "unit",
      "description": "d",
      "provenance": "p",
      "circuit": {"netlist": ["t", "V1 in 0 DC 1", "R1 in 0 1k", ".end"]},
      "analyses": [
        {"kind": "dc", "checks": [{"node": "in", "want": 1.0, "atol": 1e-9}]}
      ]
    }"#;

    #[test]
    fn parses_minimal_case() {
        let case = GoldenCase::parse(Path::new("unit.json"), MINIMAL).unwrap();
        assert_eq!(case.name, "unit");
        assert!(!case.expect_failure);
        assert_eq!(case.check_count(), 1);
        assert_eq!(case.kinds(), "dc");
        match &case.analyses[0] {
            AnalysisCase::Dc { checks } => {
                assert_eq!(checks[0].quantity, DcQuantity::NodeVoltage("in".into()));
                assert_eq!(checks[0].want, 1.0);
            }
            other => panic!("wrong analysis: {other:?}"),
        }
    }

    #[test]
    fn parses_optional_solver_pin() {
        let case = GoldenCase::parse(Path::new("unit.json"), MINIMAL).unwrap();
        assert_eq!(case.solver, None);
        let text = MINIMAL.replace(
            "\"name\": \"unit\",",
            "\"name\": \"unit\", \"solver\": \"iterative\",",
        );
        let case = GoldenCase::parse(Path::new("unit.json"), &text).unwrap();
        assert_eq!(case.solver, Some(SolverChoice::Iterative));
        assert_eq!(case.solver.unwrap().tag(), "iterative");
        let text = MINIMAL.replace(
            "\"name\": \"unit\",",
            "\"name\": \"unit\", \"solver\": \"direct\",",
        );
        let case = GoldenCase::parse(Path::new("unit.json"), &text).unwrap();
        assert_eq!(case.solver, Some(SolverChoice::Direct));
    }

    #[test]
    fn rejects_unknown_solver_pin() {
        let text = MINIMAL.replace(
            "\"name\": \"unit\",",
            "\"name\": \"unit\", \"solver\": \"quantum\",",
        );
        let err = GoldenCase::parse(Path::new("x.json"), &text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("direct"), "{msg}");
        assert!(msg.contains("iterative"), "{msg}");
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let text = MINIMAL.replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = GoldenCase::parse(Path::new("x.json"), &text).unwrap_err();
        assert!(err.to_string().contains("not supported"), "{err}");
    }

    #[test]
    fn rejects_check_without_tolerance() {
        let text = MINIMAL.replace(", \"atol\": 1e-9", "");
        let err = GoldenCase::parse(Path::new("x.json"), &text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("analyses[0].checks[0]"), "{msg}");
        assert!(msg.contains("atol"), "{msg}");
    }

    #[test]
    fn parses_monte_carlo_case() {
        let text = r#"{
          "schema_version": 1, "name": "mc", "description": "d", "provenance": "p",
          "circuit": {"netlist": ["t", "R1 tank 0 1k", "C1 tank 0 1n", ".end"]},
          "analyses": [
            {"kind": "monte_carlo", "node": "tank", "seed": 42, "count": 4,
             "freqs": [1.0e3, 1.0e4],
             "rules": [{"element": "R1", "dist": "gaussian", "tolerance": 0.05}],
             "checks": [
               {"quantity": "yield", "want": 4.0, "atol": 0.5},
               {"quantity": "peak_quantile", "q": 0.5, "want": 1.0e3, "rtol": 0.5},
               {"quantity": "variant_peak", "index": 2, "want": 1.0e3, "rtol": 0.5}
             ]}
          ]
        }"#;
        let case = GoldenCase::parse(Path::new("mc.json"), text).unwrap();
        assert_eq!(case.kinds(), "monte_carlo");
        assert_eq!(case.check_count(), 3);
        match &case.analyses[0] {
            AnalysisCase::MonteCarlo {
                node,
                seed,
                count,
                freqs,
                rules,
                checks,
            } => {
                assert_eq!(node, "tank");
                assert_eq!(*seed, 42);
                assert_eq!(*count, 4);
                assert_eq!(freqs.len(), 2);
                assert_eq!(rules[0].element, "R1");
                assert_eq!(checks[1].quantity, McQuantity::PeakQuantile(0.5));
                assert_eq!(checks[2].quantity, McQuantity::VariantPeak(2));
            }
            other => panic!("wrong analysis: {other:?}"),
        }
    }

    #[test]
    fn monte_carlo_rejects_unknown_dist_and_quantity() {
        let base = r#"{
          "schema_version": 1, "description": "d", "provenance": "p",
          "circuit": {"netlist": ["t", "R1 tank 0 1k", "C1 tank 0 1n", ".end"]},
          "analyses": [
            {"kind": "monte_carlo", "node": "tank", "seed": 1, "count": 2,
             "freqs": [1.0e3],
             "rules": [{"element": "R1", "dist": "gaussian", "tolerance": 0.05}],
             "checks": [{"quantity": "yield", "want": 2.0, "atol": 0.5}]}
          ]
        }"#;
        let bad_dist = base.replace("\"dist\": \"gaussian\"", "\"dist\": \"cauchy\"");
        let err = GoldenCase::parse(Path::new("x.json"), &bad_dist).unwrap_err();
        assert!(err.to_string().contains("unknown dist"), "{err}");
        let bad_q = base.replace("\"quantity\": \"yield\"", "\"quantity\": \"sigma\"");
        let err = GoldenCase::parse(Path::new("x.json"), &bad_q).unwrap_err();
        assert!(err.to_string().contains("unknown quantity"), "{err}");
    }

    #[test]
    fn rejects_unknown_analysis_kind() {
        let text = MINIMAL.replace("\"kind\": \"dc\"", "\"kind\": \"noise\"");
        let err = GoldenCase::parse(Path::new("x.json"), &text).unwrap_err();
        assert!(err.to_string().contains("unknown analysis kind"), "{err}");
    }

    #[test]
    fn bless_rewrites_wants_in_order() {
        let dir = std::env::temp_dir().join("loopscope_validate_bless_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.json");
        std::fs::write(&path, MINIMAL).unwrap();
        let changes = bless_file(&path, &[0.75]).unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].old, 1.0);
        assert_eq!(changes[0].new, 0.75);
        let reread = GoldenCase::load(&path).unwrap();
        match &reread.analyses[0] {
            AnalysisCase::Dc { checks } => assert_eq!(checks[0].want, 0.75),
            other => panic!("wrong analysis: {other:?}"),
        }
        // A second bless with the same values is a no-op.
        assert!(bless_file(&path, &[0.75]).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bless_rejects_count_mismatch() {
        let dir = std::env::temp_dir().join("loopscope_validate_bless_count");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.json");
        std::fs::write(&path, MINIMAL).unwrap();
        assert!(bless_file(&path, &[1.0, 2.0]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
