//! Machine-readable corpus report, mirroring the `BENCH_solver.json` flow.
//!
//! The binary (and CI) write `target/VALIDATE_report.json` so golden runs
//! leave the same kind of artifact trail the solver benches do; CI uploads
//! it next to the bench JSON.

use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::runner::{CaseReport, Outcome};

/// Summary counts over a corpus run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counts {
    /// Cases with [`Outcome::Pass`].
    pub passed: usize,
    /// Cases with [`Outcome::Fail`].
    pub failed: usize,
    /// Cases with [`Outcome::ExpectedFailure`].
    pub expected_failures: usize,
    /// Cases with [`Outcome::UnexpectedPass`].
    pub unexpected_passes: usize,
    /// Cases with [`Outcome::Error`].
    pub errors: usize,
}

impl Counts {
    /// Tallies the outcomes of a corpus run.
    pub fn from_reports(reports: &[CaseReport]) -> Self {
        let mut c = Counts::default();
        for r in reports {
            match r.outcome {
                Outcome::Pass => c.passed += 1,
                Outcome::Fail => c.failed += 1,
                Outcome::ExpectedFailure => c.expected_failures += 1,
                Outcome::UnexpectedPass => c.unexpected_passes += 1,
                Outcome::Error => c.errors += 1,
            }
        }
        c
    }

    /// Total number of cases.
    pub fn total(&self) -> usize {
        self.passed + self.failed + self.expected_failures + self.unexpected_passes + self.errors
    }

    /// Whether the corpus is green: every case passed or failed exactly as
    /// its `expect_failure` flag demands.
    pub fn is_ok(&self) -> bool {
        self.failed == 0 && self.unexpected_passes == 0 && self.errors == 0
    }
}

/// Builds the report document for a corpus run.
pub fn report_json(reports: &[CaseReport]) -> Json {
    let counts = Counts::from_reports(reports);
    let env_str = |key: &str| {
        std::env::var(key)
            .map(Json::Str)
            .unwrap_or(Json::Str("default".into()))
    };
    let cases: Vec<Json> = reports
        .iter()
        .map(|r| {
            let mismatches: Vec<Json> = r
                .mismatches
                .iter()
                .map(|m| {
                    Json::Obj(vec![
                        ("quantity".into(), Json::Str(m.quantity.clone())),
                        ("at".into(), Json::Str(m.at.clone())),
                        ("got".into(), Json::Num(m.got)),
                        ("want".into(), Json::Num(m.want)),
                        ("tol".into(), Json::Num(m.tol)),
                    ])
                })
                .collect();
            let mut entries = vec![
                ("name".into(), Json::Str(r.name.clone())),
                ("analyses".into(), Json::Str(r.kinds.clone())),
                ("outcome".into(), Json::Str(r.outcome.tag().into())),
                ("checks".into(), Json::Num(r.checks.len() as f64)),
                ("mismatches".into(), Json::Arr(mismatches)),
            ];
            if let Some(s) = r.structure {
                entries.push((
                    "btf_blocks".into(),
                    Json::Obj(vec![
                        ("min".into(), Json::Num(s.min_blocks as f64)),
                        ("got".into(), Json::Num(s.got_blocks as f64)),
                    ]),
                ));
            }
            entries.push((
                "error".into(),
                r.error
                    .as_ref()
                    .map(|e| Json::Str(e.clone()))
                    .unwrap_or(Json::Null),
            ));
            Json::Obj(entries)
        })
        .collect();
    Json::Obj(vec![
        ("schema_version".into(), Json::Num(1.0)),
        ("tool".into(), Json::Str("loopscope-validate".into())),
        ("threads".into(), env_str("LOOPSCOPE_THREADS")),
        ("kernel".into(), env_str("LOOPSCOPE_KERNEL")),
        ("total".into(), Json::Num(counts.total() as f64)),
        ("passed".into(), Json::Num(counts.passed as f64)),
        ("failed".into(), Json::Num(counts.failed as f64)),
        (
            "expected_failures".into(),
            Json::Num(counts.expected_failures as f64),
        ),
        (
            "unexpected_passes".into(),
            Json::Num(counts.unexpected_passes as f64),
        ),
        ("errors".into(), Json::Num(counts.errors as f64)),
        ("ok".into(), Json::Bool(counts.is_ok())),
        ("cases".into(), Json::Arr(cases)),
    ])
}

/// The default report path: `$CARGO_TARGET_DIR/VALIDATE_report.json`, or the
/// workspace `target/` next to this crate when the variable is unset — the
/// same resolution the solver bench uses for `BENCH_solver.json`.
pub fn default_report_path() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target").to_string());
    Path::new(&target).join("VALIDATE_report.json")
}

/// Writes the report JSON, creating parent directories as needed.
/// Returns the path written.
pub fn write_report(reports: &[CaseReport], path: Option<&Path>) -> io::Result<PathBuf> {
    let path = path
        .map(Path::to_path_buf)
        .unwrap_or_else(default_report_path);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&path, report_json(reports).pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::Mismatch;

    fn report(name: &str, outcome: Outcome, mismatches: Vec<Mismatch>) -> CaseReport {
        CaseReport {
            name: name.into(),
            kinds: "dc".into(),
            expect_failure: matches!(outcome, Outcome::ExpectedFailure | Outcome::UnexpectedPass),
            checks: Vec::new(),
            mismatches,
            structure: None,
            error: None,
            outcome,
        }
    }

    #[test]
    fn counts_and_ok_flag() {
        let reports = vec![
            report("a", Outcome::Pass, vec![]),
            report(
                "b",
                Outcome::ExpectedFailure,
                vec![Mismatch {
                    quantity: "V(x)".into(),
                    at: "dc".into(),
                    got: 0.0,
                    want: 1.0,
                    tol: 1e-9,
                }],
            ),
        ];
        let counts = Counts::from_reports(&reports);
        assert_eq!(counts.total(), 2);
        assert!(counts.is_ok());
        let doc = report_json(&reports);
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        let cases = doc.get("cases").and_then(Json::as_arr).unwrap();
        assert_eq!(cases.len(), 2);
        let m = cases[1].get("mismatches").and_then(Json::as_arr).unwrap();
        assert_eq!(m[0].get("quantity").and_then(Json::as_str), Some("V(x)"));
    }

    #[test]
    fn failures_flip_ok() {
        let reports = vec![report("a", Outcome::UnexpectedPass, vec![])];
        assert!(!Counts::from_reports(&reports).is_ok());
        let doc = report_json(&reports);
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    }
}
