//! Executes golden cases against the simulator and collects results.
//!
//! The runner goes through the same public entry points the rest of the
//! workspace uses — `solve_dc`, [`AcAnalysis::sweep`] /
//! [`AcAnalysis::driving_point_response`] (the `SweepPlan` parallel path)
//! and [`TransientAnalysis::run`] (the `CachedMna` path) — so a golden pass
//! certifies the code users actually call, under whatever
//! `LOOPSCOPE_THREADS` / `LOOPSCOPE_KERNEL` configuration is active.
//!
//! AC checks pin exact frequencies: the sweep grid is built from the pinned
//! values themselves via [`FrequencyGrid::from_points`], so comparisons
//! carry no interpolation error. Transient checks should pin multiples of
//! `dt` for the same reason.

use loopscope_math::FrequencyGrid;
use loopscope_netlist::{Circuit, NodeId};
use loopscope_spice::ac::AcAnalysis;
use loopscope_spice::batch::{driving_point_monte_carlo, ParameterVariation};
use loopscope_spice::dc::solve_dc;
use loopscope_spice::mna::MnaLayout;
use loopscope_spice::tran::{Integration, TransientAnalysis, TransientOptions};

use loopscope_spice::SolverBackend;

use crate::compare::Mismatch;
use crate::golden::{AcQuantity, AnalysisCase, DcQuantity, GoldenCase, McQuantity, SolverChoice};
use crate::json::format_number;

/// One evaluated check: what was measured and whether it passed.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckRecord {
    /// Quantity name through `MnaLayout` conventions, e.g. `"V(out)"`.
    pub quantity: String,
    /// Evaluation point, e.g. `"dc"`, `"f = 159.2 Hz"`.
    pub at: String,
    /// Measured value.
    pub got: f64,
    /// Golden reference.
    pub want: f64,
    /// Effective absolute tolerance applied.
    pub tol: f64,
    /// Whether the check passed.
    pub pass: bool,
}

/// Result of the optional BTF structure assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureCheck {
    /// Required minimum number of BTF diagonal blocks.
    pub min_blocks: usize,
    /// What the solver's symbolic analysis found.
    pub got_blocks: usize,
    /// Whether the requirement held.
    pub pass: bool,
}

/// Aggregate outcome of one golden case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// All checks passed (and the case did not expect failure).
    Pass,
    /// At least one mismatch in a case that expected to pass.
    Fail,
    /// A case marked `expect_failure` that did fail — the desired result.
    ExpectedFailure,
    /// A case marked `expect_failure` whose checks all passed; the harness
    /// self-test is broken, so this is an overall failure.
    UnexpectedPass,
    /// The case could not be evaluated at all (build/solve/schema error).
    Error,
}

impl Outcome {
    /// Stable lower-snake tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Pass => "pass",
            Outcome::Fail => "fail",
            Outcome::ExpectedFailure => "expected_failure",
            Outcome::UnexpectedPass => "unexpected_pass",
            Outcome::Error => "error",
        }
    }

    /// Whether this outcome keeps the corpus green.
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Pass | Outcome::ExpectedFailure)
    }
}

/// Full evaluation record of one golden case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Scenario name.
    pub name: String,
    /// Analysis kinds, e.g. `"dc+ac"`.
    pub kinds: String,
    /// Whether the golden declares it must fail.
    pub expect_failure: bool,
    /// Every evaluated check in runner order.
    pub checks: Vec<CheckRecord>,
    /// The failed comparisons, in evaluation order.
    pub mismatches: Vec<Mismatch>,
    /// Result of the `min_btf_blocks` assertion, when requested.
    pub structure: Option<StructureCheck>,
    /// Fatal error that stopped evaluation, if any.
    pub error: Option<String>,
    /// Aggregate outcome.
    pub outcome: Outcome,
}

impl CaseReport {
    /// The measured values in runner order — the input `--bless` needs.
    pub fn measured(&self) -> Vec<f64> {
        self.checks.iter().map(|c| c.got).collect()
    }
}

/// Runs one golden case end to end.
pub fn run_case(case: &GoldenCase) -> CaseReport {
    let mut report = CaseReport {
        name: case.name.clone(),
        kinds: case.kinds(),
        expect_failure: case.expect_failure,
        checks: Vec::with_capacity(case.check_count()),
        mismatches: Vec::new(),
        structure: None,
        error: None,
        outcome: Outcome::Error,
    };
    if let Err(msg) = run_case_inner(case, &mut report) {
        report.error = Some(msg);
    }
    let failed = !report.mismatches.is_empty() || report.structure.is_some_and(|s| !s.pass);
    report.outcome = match (report.error.is_some(), case.expect_failure, failed) {
        (true, _, _) => Outcome::Error,
        (false, false, false) => Outcome::Pass,
        (false, false, true) => Outcome::Fail,
        (false, true, true) => Outcome::ExpectedFailure,
        (false, true, false) => Outcome::UnexpectedPass,
    };
    report
}

/// Runs every case of a corpus, in order.
pub fn run_corpus(cases: &[GoldenCase]) -> Vec<CaseReport> {
    cases.iter().map(run_case).collect()
}

fn find_node(circuit: &Circuit, name: &str) -> Result<NodeId, String> {
    circuit
        .find_node(name)
        .ok_or_else(|| format!("golden references unknown node '{name}'"))
}

/// Resolves the `MnaLayout` display name for a node, e.g. `"V(out)"`.
fn voltage_name(layout: &MnaLayout, circuit: &Circuit, name: &str) -> Result<String, String> {
    let node = find_node(circuit, name)?;
    let var = layout
        .node_var(node)
        .ok_or_else(|| format!("node '{name}' is ground; it has no unknown to check"))?;
    Ok(layout.unknown_name(var))
}

fn freq_at(freq_hz: f64) -> String {
    format!("f = {} Hz", format_number(freq_hz))
}

fn run_case_inner(case: &GoldenCase, report: &mut CaseReport) -> Result<(), String> {
    let circuit = crate::circuits::build_circuit(&case.circuit)?;
    let layout = MnaLayout::new(&circuit);
    let op = solve_dc(&circuit).map_err(|e| format!("dc operating point: {e}"))?;

    // The AC analysis is shared by sweeps, driving-point scans and the BTF
    // structure assertion; build it lazily once.
    let needs_ac = case.min_btf_blocks.is_some()
        || case.analyses.iter().any(|a| {
            matches!(
                a,
                AnalysisCase::Ac { .. } | AnalysisCase::DrivingPoint { .. }
            )
        });
    let ac = if needs_ac {
        let ac = AcAnalysis::new(&circuit, &op).map_err(|e| format!("ac setup: {e}"))?;
        // An explicit `"solver"` pin overrides the ambient `LOOPSCOPE_SOLVER`
        // configuration for every AC-path solve of this case; it must land
        // before the first solve, which is why it sits here and not deeper.
        if let Some(choice) = case.solver {
            ac.set_solver_backend(match choice {
                SolverChoice::Direct => SolverBackend::Direct,
                SolverChoice::Iterative => SolverBackend::iterative_default(),
            });
        }
        Some(ac)
    } else {
        None
    };

    if let Some(min_blocks) = case.min_btf_blocks {
        let ac = ac.as_ref().expect("needs_ac covers min_btf_blocks");
        let rep_freq = case
            .analyses
            .iter()
            .find_map(|a| match a {
                AnalysisCase::Ac { checks } => checks.first().map(|c| c.freq_hz),
                AnalysisCase::DrivingPoint { checks, .. } => checks.first().map(|c| c.freq_hz),
                _ => None,
            })
            .unwrap_or(1.0e3);
        let structure = ac
            .solver_structure(rep_freq)
            .map_err(|e| format!("solver structure: {e}"))?;
        report.structure = Some(StructureCheck {
            min_blocks,
            got_blocks: structure.block_count,
            pass: structure.block_count >= min_blocks,
        });
        if structure.block_count < min_blocks {
            report.mismatches.push(Mismatch {
                quantity: "btf diagonal blocks".into(),
                at: freq_at(rep_freq),
                got: structure.block_count as f64,
                want: min_blocks as f64,
                tol: 0.0,
            });
        }
    }

    for analysis in &case.analyses {
        match analysis {
            AnalysisCase::Dc { checks } => {
                for check in checks {
                    let (quantity, got) = match &check.quantity {
                        DcQuantity::NodeVoltage(name) => {
                            let q = voltage_name(&layout, &circuit, name)?;
                            let node = find_node(&circuit, name)?;
                            (q, op.voltage(node))
                        }
                        DcQuantity::BranchCurrent(element) => {
                            let var = layout.branch_var(element).ok_or_else(|| {
                                format!("element '{element}' carries no branch current unknown")
                            })?;
                            let got = op.branch_current(element).ok_or_else(|| {
                                format!("no branch current recorded for '{element}'")
                            })?;
                            (layout.unknown_name(var), got)
                        }
                    };
                    record(report, &quantity, "dc", got, check.want, check.tol);
                }
            }
            AnalysisCase::Ac { checks } => {
                let ac = ac.as_ref().expect("needs_ac covers ac analyses");
                let grid = pinned_grid(checks.iter().map(|c| c.freq_hz))?;
                let sweep = ac.sweep(&grid).map_err(|e| format!("ac sweep: {e}"))?;
                for check in checks {
                    let vname = voltage_name(&layout, &circuit, &check.node)?;
                    let node = find_node(&circuit, &check.node)?;
                    let idx = grid_index(&grid, check.freq_hz);
                    let response = sweep.response(node)[idx];
                    let (quantity, got) = match check.quantity {
                        AcQuantity::Magnitude => (format!("|{vname}|"), response.abs()),
                        AcQuantity::PhaseDeg => (format!("arg {vname} [deg]"), response.arg_deg()),
                    };
                    record(
                        report,
                        &quantity,
                        &freq_at(check.freq_hz),
                        got,
                        check.want,
                        check.tol,
                    );
                }
            }
            AnalysisCase::DrivingPoint { node, checks } => {
                let ac = ac.as_ref().expect("needs_ac covers driving_point");
                let node_id = find_node(&circuit, node)?;
                // Validate the node has an unknown (same error text as AC).
                voltage_name(&layout, &circuit, node)?;
                let grid = pinned_grid(checks.iter().map(|c| c.freq_hz))?;
                let responses = ac
                    .driving_point_response(node_id, &grid)
                    .map_err(|e| format!("driving-point scan: {e}"))?;
                for check in checks {
                    let idx = grid_index(&grid, check.freq_hz);
                    let z = responses[idx];
                    let (quantity, got) = match check.quantity {
                        AcQuantity::Magnitude => (format!("|Z({node})|"), z.abs()),
                        AcQuantity::PhaseDeg => (format!("arg Z({node}) [deg]"), z.arg_deg()),
                    };
                    record(
                        report,
                        &quantity,
                        &freq_at(check.freq_hz),
                        got,
                        check.want,
                        check.tol,
                    );
                }
            }
            AnalysisCase::Tran {
                dt,
                t_stop,
                method,
                adaptive,
                checks,
            } => {
                let mut options = match adaptive {
                    Some(a) => {
                        let mut o = TransientOptions::adaptive(a.dt_min, a.dt_max, *t_stop);
                        o.reltol = a.reltol;
                        o.abstol = a.abstol;
                        o
                    }
                    None => TransientOptions::new(*dt, *t_stop),
                };
                options.method = match method.as_str() {
                    "backward_euler" => Integration::BackwardEuler,
                    _ => Integration::Trapezoidal,
                };
                let tran = TransientAnalysis::new(&circuit, options)
                    .map_err(|e| format!("transient setup: {e}"))?;
                let result = tran.run(&op).map_err(|e| format!("transient run: {e}"))?;
                for check in checks {
                    let vname = voltage_name(&layout, &circuit, &check.node)?;
                    let node = find_node(&circuit, &check.node)?;
                    let got = result
                        .value_at(node, check.time)
                        .map_err(|e| format!("transient waveform: {e}"))?;
                    record(
                        report,
                        &vname,
                        &format!("t = {} s", format_number(check.time)),
                        got,
                        check.want,
                        check.tol,
                    );
                }
            }
            AnalysisCase::MonteCarlo {
                node,
                seed,
                count,
                freqs,
                rules,
                checks,
            } => {
                let node_id = find_node(&circuit, node)?;
                // Validate the node has an unknown (same error text as AC).
                voltage_name(&layout, &circuit, node)?;
                let grid = pinned_grid(freqs.iter().copied())?;
                let mut variation = ParameterVariation::new(*seed);
                for rule in rules {
                    variation = match rule.dist.as_str() {
                        "gaussian" => variation.gaussian(&rule.element, rule.tolerance),
                        _ => variation.uniform(&rule.element, rule.tolerance),
                    };
                }
                let sweep =
                    driving_point_monte_carlo(&circuit, &op, node_id, &grid, &variation, *count)
                        .map_err(|e| format!("monte carlo sweep: {e}"))?;
                let at = format!("{count} variants, seed {seed}");
                let peaks = sweep.peak_magnitudes();
                for check in checks {
                    let (quantity, got) = match &check.quantity {
                        McQuantity::Yield => ("mc yield".to_string(), sweep.yield_count() as f64),
                        McQuantity::WorstCaseIndex => {
                            let (idx, _) = sweep
                                .worst_case_peak()
                                .ok_or_else(|| "monte carlo: no variant converged".to_string())?;
                            ("worst-case variant index".to_string(), idx as f64)
                        }
                        McQuantity::WorstCasePeak => {
                            let (_, peak) = sweep
                                .worst_case_peak()
                                .ok_or_else(|| "monte carlo: no variant converged".to_string())?;
                            (format!("worst-case peak |Z({node})|"), peak)
                        }
                        McQuantity::PeakQuantile(q) => {
                            let value = sweep
                                .peak_quantile(*q)
                                .ok_or_else(|| "monte carlo: no variant converged".to_string())?;
                            (format!("q={q} peak |Z({node})|"), value)
                        }
                        McQuantity::VariantPeak(index) => {
                            let peak = peaks.get(*index).copied().flatten().ok_or_else(|| {
                                format!("monte carlo: variant {index} has no converged peak")
                            })?;
                            (format!("mc#{index} peak |Z({node})|"), peak)
                        }
                    };
                    record(report, &quantity, &at, got, check.want, check.tol);
                }
            }
        }
    }
    Ok(())
}

fn record(
    report: &mut CaseReport,
    quantity: &str,
    at: &str,
    got: f64,
    want: f64,
    tol: crate::compare::Tolerance,
) {
    let result = tol.check(quantity, at, got, want);
    report.checks.push(CheckRecord {
        quantity: quantity.to_string(),
        at: at.to_string(),
        got,
        want,
        tol: tol.effective(want),
        pass: result.is_ok(),
    });
    if let Err(m) = result {
        report.mismatches.push(m);
    }
}

/// Builds the exact-solve grid for a set of pinned frequencies.
fn pinned_grid(freqs: impl Iterator<Item = f64>) -> Result<FrequencyGrid, String> {
    let mut points: Vec<f64> = freqs.collect();
    points.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
    points.dedup();
    if points.iter().any(|f| !f.is_finite() || *f <= 0.0) {
        return Err("pinned frequencies must be finite and positive".into());
    }
    Ok(FrequencyGrid::from_points(points))
}

/// Index of a pinned frequency in the grid built from the same values —
/// exact float equality holds by construction.
fn grid_index(grid: &FrequencyGrid, freq_hz: f64) -> usize {
    grid.freqs()
        .iter()
        .position(|f| *f == freq_hz)
        .expect("grid was built from the checks' own frequencies")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::GoldenCase;
    use std::path::Path;

    fn case_from(text: &str) -> GoldenCase {
        GoldenCase::parse(Path::new("inline.json"), text).unwrap()
    }

    #[test]
    fn divider_case_passes_and_records_layout_names() {
        let case = case_from(
            r#"{
              "schema_version": 1, "name": "div", "description": "d", "provenance": "p",
              "circuit": {"netlist": ["divider", "V1 in 0 DC 10", "R1 in out 1k", "R2 out 0 1k", ".end"]},
              "analyses": [{"kind": "dc", "checks": [
                {"node": "out", "want": 5.0, "atol": 1e-6},
                {"branch": "V1", "want": -5.0e-3, "atol": 1e-9}
              ]}]
            }"#,
        );
        let report = run_case(&case);
        assert_eq!(report.outcome, Outcome::Pass, "{:?}", report.mismatches);
        assert_eq!(report.checks[0].quantity, "V(out)");
        assert_eq!(report.checks[1].quantity, "I(V1)");
        assert_eq!(report.checks[0].at, "dc");
    }

    #[test]
    fn wrong_want_produces_structured_mismatch() {
        let case = case_from(
            r#"{
              "schema_version": 1, "name": "bad", "description": "d", "provenance": "p",
              "circuit": {"netlist": ["divider", "V1 in 0 DC 10", "R1 in out 1k", "R2 out 0 1k", ".end"]},
              "analyses": [{"kind": "dc", "checks": [
                {"node": "out", "want": 7.5, "atol": 1e-6}
              ]}]
            }"#,
        );
        let report = run_case(&case);
        assert_eq!(report.outcome, Outcome::Fail);
        let m = &report.mismatches[0];
        assert_eq!(m.quantity, "V(out)");
        assert_eq!(m.at, "dc");
        assert!((m.got - 5.0).abs() < 1e-6);
        assert_eq!(m.want, 7.5);
    }

    #[test]
    fn unknown_node_is_an_error_not_a_mismatch() {
        let case = case_from(
            r#"{
              "schema_version": 1, "name": "missing", "description": "d", "provenance": "p",
              "circuit": {"netlist": ["t", "V1 in 0 DC 1", "R1 in 0 1k", ".end"]},
              "analyses": [{"kind": "dc", "checks": [
                {"node": "nope", "want": 0.0, "atol": 1e-6}
              ]}]
            }"#,
        );
        let report = run_case(&case);
        assert_eq!(report.outcome, Outcome::Error);
        assert!(report.error.as_deref().unwrap().contains("'nope'"));
    }

    #[test]
    fn monte_carlo_case_runs_the_batched_engine() {
        // Below the RC corner (fc = 15.9 kHz) the tank's |Z| tracks R, so a
        // 5% gaussian rule keeps every variant's peak within a loose band of
        // the nominal 10 kΩ; the seed pins the exact values.
        let case = case_from(
            r#"{
              "schema_version": 1, "name": "mc", "description": "d", "provenance": "p",
              "circuit": {"netlist": ["tank", "R1 tank 0 10k", "C1 tank 0 1n", ".end"]},
              "analyses": [
                {"kind": "monte_carlo", "node": "tank", "seed": 7, "count": 3,
                 "freqs": [1.0e3],
                 "rules": [{"element": "R1", "dist": "gaussian", "tolerance": 0.05}],
                 "checks": [
                   {"quantity": "yield", "want": 3.0, "atol": 0.5},
                   {"quantity": "worst_case_peak", "want": 1.0e4, "rtol": 0.25},
                   {"quantity": "peak_quantile", "q": 1.0, "want": 1.0e4, "rtol": 0.25}
                 ]}
              ]
            }"#,
        );
        let report = run_case(&case);
        assert_eq!(
            report.outcome,
            Outcome::Pass,
            "{:?} {:?}",
            report.error,
            report.mismatches
        );
        assert_eq!(report.kinds, "monte_carlo");
        assert_eq!(report.checks[0].quantity, "mc yield");
        assert_eq!(report.checks[0].got, 3.0);
        assert_eq!(report.checks[1].quantity, "worst-case peak |Z(tank)|");
        // Worst case dominates every quantile, including q = 1.
        assert_eq!(report.checks[1].got, report.checks[2].got);
    }

    #[test]
    fn expect_failure_flips_outcomes() {
        let failing = r#"{
          "schema_version": 1, "name": "xf", "description": "d", "provenance": "p",
          "expect_failure": true,
          "circuit": {"netlist": ["t", "V1 in 0 DC 1", "R1 in 0 1k", ".end"]},
          "analyses": [{"kind": "dc", "checks": [{"node": "in", "want": 2.0, "atol": 1e-9}]}]
        }"#;
        let report = run_case(&case_from(failing));
        assert_eq!(report.outcome, Outcome::ExpectedFailure);
        assert!(report.outcome.is_ok());
        let passing = failing.replace("\"want\": 2.0", "\"want\": 1.0");
        let report = run_case(&case_from(&passing));
        assert_eq!(report.outcome, Outcome::UnexpectedPass);
        assert!(!report.outcome.is_ok());
    }
}
