//! Tolerance-band comparison and the structured [`Mismatch`] report.
//!
//! Every golden check runs through one comparator so the acceptance rule is
//! identical everywhere: a measured value passes when
//! `|got − want| ≤ atol + rtol·|want|` **and** is finite. Non-finite output
//! always fails — a NaN must never satisfy a golden.

use std::fmt;

/// An absolute + relative tolerance band.
///
/// ```
/// use loopscope_validate::Tolerance;
/// let tol = Tolerance::new(1.0e-9, 1.0e-6);
/// assert!(tol.accepts(1.0000005, 1.0));
/// assert!(!tol.accepts(1.01, 1.0));
/// assert!(!tol.accepts(f64::NAN, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute tolerance floor.
    pub atol: f64,
    /// Relative tolerance, scaled by `|want|`.
    pub rtol: f64,
}

impl Tolerance {
    /// Creates a tolerance band from absolute and relative parts.
    ///
    /// # Panics
    ///
    /// Panics if either part is negative or non-finite, or both are zero
    /// (an empty band can never accept floating-point output).
    pub fn new(atol: f64, rtol: f64) -> Self {
        assert!(
            atol.is_finite() && rtol.is_finite() && atol >= 0.0 && rtol >= 0.0,
            "tolerances must be finite and non-negative (atol = {atol}, rtol = {rtol})"
        );
        assert!(
            atol > 0.0 || rtol > 0.0,
            "at least one of atol/rtol must be positive"
        );
        Self { atol, rtol }
    }

    /// A purely absolute band.
    pub fn absolute(atol: f64) -> Self {
        Self::new(atol, 0.0)
    }

    /// A purely relative band.
    pub fn relative(rtol: f64) -> Self {
        Self::new(0.0, rtol)
    }

    /// The effective absolute window around `want`: `atol + rtol·|want|`.
    pub fn effective(&self, want: f64) -> f64 {
        self.atol + self.rtol * want.abs()
    }

    /// Whether `got` lies within the band around `want`. Non-finite `got`
    /// is always rejected.
    pub fn accepts(&self, got: f64, want: f64) -> bool {
        got.is_finite() && (got - want).abs() <= self.effective(want)
    }

    /// Compares and produces a structured [`Mismatch`] on failure.
    ///
    /// `quantity` names what was measured (e.g. `"V(out)"`, `"|V(n2)|"`)
    /// and `at` names where (e.g. `"dc"`, `"f = 159.2 Hz"`).
    pub fn check(
        &self,
        quantity: impl Into<String>,
        at: impl Into<String>,
        got: f64,
        want: f64,
    ) -> Result<(), Mismatch> {
        if self.accepts(got, want) {
            Ok(())
        } else {
            Err(Mismatch {
                quantity: quantity.into(),
                at: at.into(),
                got,
                want,
                tol: self.effective(want),
            })
        }
    }

    /// Panicking form of [`Tolerance::check`] for use in test assertions;
    /// the panic message is the [`Mismatch`] display.
    ///
    /// # Panics
    ///
    /// Panics when the comparison fails.
    #[track_caller]
    pub fn assert_close(&self, quantity: &str, at: &str, got: f64, want: f64) {
        if let Err(m) = self.check(quantity, at, got, want) {
            panic!("{m}");
        }
    }
}

/// One failed golden comparison: what was measured, where, and by how much
/// it missed. Quantities are named through `MnaLayout` conventions
/// (`V(node)`, `I(element)`) exactly like the solver's structured errors.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// The measured quantity, e.g. `"V(out)"` or `"arg V(out) [deg]"`.
    pub quantity: String,
    /// The evaluation point, e.g. `"dc"`, `"f = 159.2 Hz"`, `"t = 1e-6 s"`.
    pub at: String,
    /// The simulator's value.
    pub got: f64,
    /// The golden reference value.
    pub want: f64,
    /// The effective absolute tolerance that was applied.
    pub tol: f64,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {}: got {:.9e}, want {:.9e} (|Δ| = {:.3e} > tol {:.3e})",
            self.quantity,
            self.at,
            self.got,
            self.want,
            (self.got - self.want).abs(),
            self.tol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_combines_absolute_and_relative() {
        let tol = Tolerance::new(1.0e-3, 1.0e-2);
        assert_eq!(tol.effective(100.0), 1.0e-3 + 1.0);
        assert!(tol.accepts(100.9, 100.0));
        assert!(!tol.accepts(101.1, 100.0));
        // Near zero only the absolute floor is active.
        assert!(tol.accepts(5.0e-4, 0.0));
        assert!(!tol.accepts(2.0e-3, 0.0));
    }

    #[test]
    fn non_finite_always_fails() {
        let tol = Tolerance::absolute(1.0e30);
        assert!(!tol.accepts(f64::NAN, 0.0));
        assert!(!tol.accepts(f64::INFINITY, 0.0));
        let m = tol.check("V(out)", "dc", f64::NAN, 0.0).unwrap_err();
        assert_eq!(m.quantity, "V(out)");
    }

    #[test]
    fn mismatch_display_names_quantity_and_location() {
        let m = Tolerance::absolute(1.0e-6)
            .check("V(out)", "f = 159.2 Hz", 0.8, 0.75)
            .unwrap_err();
        let text = m.to_string();
        assert!(text.contains("V(out)"), "{text}");
        assert!(text.contains("f = 159.2 Hz"), "{text}");
        assert!(text.contains("tol"), "{text}");
    }

    #[test]
    #[should_panic(expected = "V(out) at dc")]
    fn assert_close_panics_with_report() {
        Tolerance::absolute(1.0e-9).assert_close("V(out)", "dc", 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one of atol/rtol")]
    fn empty_band_is_rejected() {
        Tolerance::new(0.0, 0.0);
    }
}
