//! A minimal JSON parser and pretty-printer for the golden-data files.
//!
//! The workspace is built offline with no third-party dependencies, so the
//! harness carries its own JSON layer instead of `serde`. It supports the
//! full JSON value grammar with two deliberate restrictions that match the
//! golden-file format:
//!
//! * numbers are `f64` (goldens hold measured physical quantities),
//! * objects preserve **insertion order** (so `--bless` rewrites files
//!   without reshuffling keys, keeping diffs reviewable).

use std::fmt;

/// A parsed JSON value. Objects keep their key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable lookup of `key` in an object.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(entries) => entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline, keeping
    /// object key order. Numbers are printed in shortest round-trip form
    /// (exponent notation outside `[1e-4, 1e15)`), so a parse → print cycle
    /// is value-preserving.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Formats a finite `f64` as a JSON number that parses back to the same bits.
///
/// # Panics
///
/// Panics on non-finite values — goldens only hold finite quantities.
pub fn format_number(n: f64) -> String {
    assert!(n.is_finite(), "golden JSON cannot represent {n}");
    let a = n.abs();
    let s = if a != 0.0 && !(1.0e-4..1.0e15).contains(&a) {
        format!("{n:e}")
    } else {
        let plain = format!("{n}");
        // `{}` on an integral f64 prints without any fractional marker;
        // keep it a valid JSON float but make the type visually obvious.
        if plain.contains(['.', 'e', 'E']) {
            plain
        } else {
            format!("{plain}.0")
        }
    };
    debug_assert_eq!(s.parse::<f64>().ok(), Some(n), "round-trip of {n}");
    s
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON error at line {}:{}: {}",
            self.line, self.col, self.msg
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing content is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not needed by the golden format.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid utf-8");
                    let ch = rest.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e-3").unwrap(), Json::Num(-2.5e-3));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structure_preserving_key_order() {
        let doc = parse(r#"{"z": [1, 2.5, {"k": "v"}], "a": false}"#).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj[0].0, "z");
        assert_eq!(obj[1].0, "a");
        let arr = doc.get("z").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("k").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn pretty_round_trips() {
        let doc = parse(
            r#"{"name": "rc", "vals": [1.0, 1.5915494309189535e5, -0.25], "flag": true, "none": null}"#,
        )
        .unwrap();
        let printed = doc.pretty();
        assert_eq!(parse(&printed).unwrap(), doc);
        // Key order survives the round trip.
        assert!(printed.find("\"name\"").unwrap() < printed.find("\"vals\"").unwrap());
    }

    #[test]
    fn number_formatting_round_trips_extremes() {
        for &n in &[
            0.0,
            -0.0,
            1.0,
            -3.0,
            159.15494309189535,
            1.0e-12,
            -2.220446049250313e-16,
            9.99e14,
            1.0e15,
            f64::MIN_POSITIVE,
        ] {
            let s = format_number(n);
            assert_eq!(s.parse::<f64>().unwrap(), n, "{s}");
        }
        assert_eq!(format_number(2.0), "2.0");
        assert_eq!(format_number(1.0e-12), "1e-12");
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("{\n  \"a\": 1,\n  \"a\": 2\n}").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("duplicate key"));
        let err = parse("[1, 2").unwrap_err();
        assert!(err.msg.contains("expected ',' or ']'"));
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(parse("{} x").unwrap_err().msg.contains("trailing"));
    }
}
