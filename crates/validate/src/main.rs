//! `loopscope-validate` — run the golden-data corpus and report.
//!
//! ```text
//! loopscope-validate [--data-dir DIR] [--bless] [FILTER]
//! ```
//!
//! * With no arguments: loads `tests/golden_data/`, runs every case, prints
//!   a pass/fail table, writes `target/VALIDATE_report.json` and exits
//!   non-zero on any failure (mismatch in a non-`expect_failure` case, an
//!   `expect_failure` case that passed, or an evaluation error).
//! * `FILTER` restricts to cases whose name contains the substring.
//! * `--bless` rewrites the `want` fields of passing-eligible cases from
//!   current simulator output, printing every changed value. It refuses to
//!   run unless `LOOPSCOPE_BLESS=1` is set, and never touches
//!   `expect_failure` cases (their wrong values are the point).

use std::path::PathBuf;
use std::process::ExitCode;

use loopscope_validate::{
    bless_file, default_data_dir, load_dir, run_case, CaseReport, Counts, GoldenCase, Outcome,
};

struct Args {
    data_dir: PathBuf,
    bless: bool,
    filter: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data_dir: default_data_dir(),
        bless: false,
        filter: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bless" => args.bless = true,
            "--data-dir" => {
                args.data_dir = it
                    .next()
                    .ok_or_else(|| "--data-dir needs a path".to_string())?
                    .into();
            }
            "--help" | "-h" => {
                return Err("usage: loopscope-validate [--data-dir DIR] [--bless] [FILTER]".into())
            }
            other if !other.starts_with('-') && args.filter.is_none() => {
                args.filter = Some(other.to_string());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn outcome_cell(report: &CaseReport) -> String {
    match report.outcome {
        Outcome::Pass => "pass".into(),
        Outcome::Fail => format!("FAIL ({} mismatch(es))", report.mismatches.len()),
        Outcome::ExpectedFailure => {
            format!("xfail ({} expected mismatch(es))", report.mismatches.len())
        }
        Outcome::UnexpectedPass => "UNEXPECTED PASS (expect_failure case passed)".into(),
        Outcome::Error => "ERROR".into(),
    }
}

fn print_table(reports: &[CaseReport]) {
    let name_w = reports
        .iter()
        .map(|r| r.name.len())
        .chain(["case".len()])
        .max()
        .unwrap_or(4);
    let kinds_w = reports
        .iter()
        .map(|r| r.kinds.len())
        .chain(["analyses".len()])
        .max()
        .unwrap_or(8);
    println!(
        "{:<name_w$}  {:<kinds_w$}  {:>6}  result",
        "case", "analyses", "checks"
    );
    for r in reports {
        println!(
            "{:<name_w$}  {:<kinds_w$}  {:>6}  {}",
            r.name,
            r.kinds,
            r.checks.len(),
            outcome_cell(r)
        );
    }
}

fn print_failures(reports: &[CaseReport]) {
    for r in reports {
        if r.outcome.is_ok() {
            continue;
        }
        println!("\n--- {} ({}) ---", r.name, outcome_cell(r));
        if let Some(err) = &r.error {
            println!("  error: {err}");
        }
        for m in &r.mismatches {
            println!("  {m}");
        }
        if let Some(s) = r.structure {
            if !s.pass {
                println!(
                    "  btf structure: found {} diagonal blocks, golden requires >= {}",
                    s.got_blocks, s.min_blocks
                );
            }
        }
    }
}

fn bless(cases: &[GoldenCase], reports: &[CaseReport]) -> Result<usize, String> {
    if std::env::var("LOOPSCOPE_BLESS").as_deref() != Ok("1") {
        return Err(
            "refusing to rewrite goldens: set LOOPSCOPE_BLESS=1 to confirm (bless overwrites \
             checked-in reference values)"
                .into(),
        );
    }
    let mut rewritten = 0;
    for (case, report) in cases.iter().zip(reports) {
        if case.expect_failure {
            println!(
                "bless: skipping '{}' (expect_failure cases keep their intentionally wrong values)",
                case.name
            );
            continue;
        }
        if report.error.is_some() {
            println!(
                "bless: skipping '{}' (evaluation errored; fix the case first)",
                case.name
            );
            continue;
        }
        let changes = bless_file(&case.path, &report.measured())
            .map_err(|e| format!("bless '{}': {e}", case.name))?;
        if changes.is_empty() {
            continue;
        }
        rewritten += 1;
        println!(
            "blessed {} ({} value(s) changed):",
            case.path.display(),
            changes.len()
        );
        for ch in &changes {
            println!("  {}: want {} -> {}", ch.location, ch.old, ch.new);
        }
    }
    Ok(rewritten)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut cases = match load_dir(&args.data_dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to load golden corpus: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(filter) = &args.filter {
        cases.retain(|c| c.name.contains(filter.as_str()));
    }
    if cases.is_empty() {
        eprintln!(
            "no golden cases found in {} (filter: {:?})",
            args.data_dir.display(),
            args.filter
        );
        return ExitCode::FAILURE;
    }

    println!(
        "golden validation corpus: {} ({} case(s))\n",
        args.data_dir.display(),
        cases.len()
    );
    let reports: Vec<CaseReport> = cases.iter().map(run_case).collect();
    print_table(&reports);
    print_failures(&reports);

    if args.bless {
        match bless(&cases, &reports) {
            Ok(n) => {
                println!("\nbless complete: {n} file(s) rewritten");
                // Bless does not write a report or gate on mismatches: the
                // rewritten values become the new reference.
                return ExitCode::SUCCESS;
            }
            Err(msg) => {
                eprintln!("\n{msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    let counts = Counts::from_reports(&reports);
    println!(
        "\n{} case(s): {} passed, {} failed, {} expected failure(s), {} unexpected pass(es), {} error(s)",
        counts.total(),
        counts.passed,
        counts.failed,
        counts.expected_failures,
        counts.unexpected_passes,
        counts.errors
    );
    match loopscope_validate::write_report(&reports, None) {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => {
            eprintln!("failed to write report: {e}");
            return ExitCode::FAILURE;
        }
    }
    if counts.is_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
