//! Golden-data validation harness for the `loopscope` workspace.
//!
//! The solver pipeline asserts internal bitwise invariants everywhere
//! (refactor-vs-fresh, scalar-vs-SIMD, thread-count determinism), but those
//! only prove self-consistency. This crate checks the *answers*: a corpus
//! of JSON golden files under `tests/golden_data/` pins reference values —
//! DC node voltages, AC magnitude/phase at exact frequencies, transient
//! samples at exact times — derived offline from closed-form analytic
//! solutions (each file's `provenance` field records the derivation), so CI
//! validates against an external reference with no network.
//!
//! The layers:
//!
//! * [`golden`] — the versioned [`golden::GoldenCase`] schema, loader and
//!   the `--bless` rewriter;
//! * [`compare`] — the shared [`Tolerance`] comparator producing structured
//!   [`Mismatch`] reports that name quantities through `MnaLayout`
//!   conventions (`V(out)`, `I(V1)`) like the solver's own errors;
//! * [`runner`] — drives `spice::{dc, ac, tran}` through the public
//!   `CachedMna`/`SweepPlan` entry points and compares under tolerance;
//! * [`report`] — the `target/VALIDATE_report.json` artifact, mirroring the
//!   bench JSON flow.
//!
//! Run the corpus with `cargo run -p loopscope-validate`; regenerate goldens
//! after an intentional numerics change with
//! `LOOPSCOPE_BLESS=1 cargo run -p loopscope-validate -- --bless` (the env
//! guard keeps a stray flag from silently rewriting references).
//!
//! ```
//! use loopscope_validate::{GoldenCase, run_case, Outcome};
//! use std::path::Path;
//!
//! let text = r#"{
//!   "schema_version": 1,
//!   "description": "1:1 resistive divider",
//!   "provenance": "analytic: V(out) = 10 * R2/(R1+R2) = 5",
//!   "circuit": {"netlist": ["div", "V1 in 0 DC 10", "R1 in out 1k", "R2 out 0 1k", ".end"]},
//!   "analyses": [{"kind": "dc", "checks": [{"node": "out", "want": 5.0, "atol": 1e-6}]}]
//! }"#;
//! let case = GoldenCase::parse(Path::new("divider.json"), text)?;
//! let report = run_case(&case);
//! assert_eq!(report.outcome, Outcome::Pass);
//! # Ok::<(), loopscope_validate::GoldenError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuits;
pub mod compare;
pub mod golden;
pub mod json;
pub mod report;
pub mod runner;

pub use compare::{Mismatch, Tolerance};
pub use golden::{
    bless_file, default_data_dir, load_dir, AnalysisCase, BlessedChange, CircuitSpec, GoldenCase,
    GoldenError, SCHEMA_VERSION,
};
pub use report::{default_report_path, report_json, write_report, Counts};
pub use runner::{run_case, run_corpus, CaseReport, CheckRecord, Outcome, StructureCheck};
