//! Building a scenario's circuit from its [`CircuitSpec`].
//!
//! Netlist scenarios go through the `loopscope-netlist` text parser (so the
//! corpus also exercises the front-end); builtin scenarios call the named
//! reference builders in `loopscope-circuits`, which is how block-structured
//! and transistor-level cases are expressed without duplicating their
//! construction in JSON.

use loopscope_circuits::blocks;
use loopscope_netlist::{parse_netlist, Circuit};

use crate::golden::CircuitSpec;

/// Builds the circuit for a golden scenario.
///
/// # Errors
///
/// Returns a human-readable message when the netlist fails to parse, the
/// builtin id is unknown, or a required builtin parameter is missing.
pub fn build_circuit(spec: &CircuitSpec) -> Result<Circuit, String> {
    let circuit = match spec {
        CircuitSpec::Netlist(text) => parse_netlist(text).map_err(|e| format!("netlist: {e}"))?,
        CircuitSpec::Builtin { id, params } => build_builtin(id, params)?,
    };
    circuit.validate().map_err(|e| format!("circuit: {e}"))?;
    Ok(circuit)
}

fn param(params: &[(String, f64)], key: &str, builtin: &str) -> Result<f64, String> {
    params
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| format!("builtin '{builtin}' needs numeric param '{key}'"))
}

fn count_param(params: &[(String, f64)], key: &str, builtin: &str) -> Result<usize, String> {
    let v = param(params, key, builtin)?;
    if v < 1.0 || v.fract() != 0.0 {
        return Err(format!(
            "builtin '{builtin}' param '{key}' must be a positive integer, got {v}"
        ));
    }
    Ok(v as usize)
}

fn build_builtin(id: &str, params: &[(String, f64)]) -> Result<Circuit, String> {
    match id {
        "rc_ladder" => {
            let sections = count_param(params, "sections", id)?;
            let r = param(params, "r_ohms", id)?;
            let c = param(params, "c_farads", id)?;
            Ok(blocks::rc_ladder(sections, r, c).0)
        }
        "opamp_cascade" => {
            let stages = count_param(params, "stages", id)?;
            Ok(blocks::opamp_cascade(stages).0)
        }
        "series_rlc" => {
            let r = param(params, "r_ohms", id)?;
            let l = param(params, "l_henries", id)?;
            let c = param(params, "c_farads", id)?;
            Ok(blocks::series_rlc(r, l, c).0)
        }
        "source_follower" => {
            let cload = param(params, "cload_farads", id)?;
            let lwire = param(params, "l_wire_henries", id)?;
            Ok(blocks::source_follower(cload, lwire).0)
        }
        "current_mirror" => {
            let cload = param(params, "cload_farads", id)?;
            Ok(blocks::current_mirror(cload).0)
        }
        "power_grid" => {
            let rows = count_param(params, "rows", id)?;
            let cols = count_param(params, "cols", id)?;
            Ok(blocks::power_grid(rows, cols).0)
        }
        other => Err(format!(
            "unknown builtin '{other}' (known: rc_ladder, opamp_cascade, series_rlc, \
             source_follower, current_mirror, power_grid)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_netlist_spec() {
        let spec = CircuitSpec::Netlist("t\nV1 in 0 DC 1\nR1 in 0 1k\n.end\n".into());
        let c = build_circuit(&spec).unwrap();
        assert_eq!(c.elements().len(), 2);
    }

    #[test]
    fn builds_builtin_with_params() {
        let spec = CircuitSpec::Builtin {
            id: "rc_ladder".into(),
            params: vec![
                ("sections".into(), 3.0),
                ("r_ohms".into(), 1.0e3),
                ("c_farads".into(), 1.0e-9),
            ],
        };
        let c = build_circuit(&spec).unwrap();
        assert_eq!(c.elements().len(), 1 + 2 * 3);
    }

    #[test]
    fn builds_power_grid_builtin() {
        let spec = CircuitSpec::Builtin {
            id: "power_grid".into(),
            params: vec![("rows".into(), 4.0), ("cols".into(), 3.0)],
        };
        let c = build_circuit(&spec).unwrap();
        // 4x3 mesh: (4*2 + 3*3) resistors + 12 caps + Rdrive + Vdd.
        assert_eq!(c.elements().len(), 17 + 12 + 2);
    }

    #[test]
    fn missing_param_is_named() {
        let spec = CircuitSpec::Builtin {
            id: "opamp_cascade".into(),
            params: vec![],
        };
        let err = build_circuit(&spec).unwrap_err();
        assert!(err.contains("stages"), "{err}");
    }

    #[test]
    fn unknown_builtin_lists_known_ids() {
        let spec = CircuitSpec::Builtin {
            id: "nonsense".into(),
            params: vec![],
        };
        let err = build_circuit(&spec).unwrap_err();
        assert!(err.contains("rc_ladder"), "{err}");
    }

    #[test]
    fn netlist_errors_surface_parser_message() {
        let spec = CircuitSpec::Netlist("t\nR1 in\n.end\n".into());
        let err = build_circuit(&spec).unwrap_err();
        assert!(err.starts_with("netlist:"), "{err}");
    }
}
