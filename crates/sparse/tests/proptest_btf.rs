//! Property-based tests for the block-triangular (BTF) factorization path
//! and the blocked multi-RHS solve.
//!
//! Three invariant families:
//!
//! 1. **The BTF partition is a genuine block upper-triangular permutation**:
//!    row/column permutations are bijections, the block pointer is a
//!    monotone cover of the dimension, and no stored entry of the permuted
//!    matrix falls below its diagonal block.
//! 2. **BTF-factored solves are correct**: against a dense partial-pivoting
//!    reference over the same values, on randomly generated (and randomly
//!    scrambled) block-structured systems, real and complex, through both
//!    the fresh factorization and the numeric-only refactorization.
//! 3. **The blocked panel solve is the same computation**:
//!    [`SparseLu::solve_block_into`] must be *bitwise* identical, column
//!    for column, to independent [`SparseLu::solve_into`] calls at every
//!    panel width — the determinism contract the all-nodes scan's batching
//!    relies on.

use loopscope_math::dense::{CMatrix, DMatrix};
use loopscope_math::Complex64;
use loopscope_sparse::{btf, CsrMatrix, LuWorkspace, SparseLu, TripletMatrix};
use proptest::prelude::*;

/// Specification of one random cascade: per-block sizes (clamped to 1..=4)
/// plus flat lists of in-block and cross-block (strictly upward) couplings.
type CascadeSpec = (
    Vec<usize>,
    Vec<(usize, usize, f64)>,
    Vec<(usize, usize, f64)>,
);

/// Builds a block-structured matrix from a cascade spec: diagonally
/// dominant blocks on the diagonal, couplings from later blocks' rows into
/// earlier blocks' columns (one-way, so the block partition is recoverable),
/// then an optional row/column scramble. Off-diagonal values scale with
/// `scale` while the pattern stays fixed.
fn build_cascade(spec: &CascadeSpec, scale: f64, scramble: bool) -> CsrMatrix<f64> {
    let (block_sizes, in_block, cross_block) = spec;
    let sizes: Vec<usize> = block_sizes.iter().map(|&s| s.clamp(1, 4)).collect();
    // Block start offsets.
    let mut starts = Vec::with_capacity(sizes.len());
    let mut total = 0usize;
    for &s in &sizes {
        starts.push(total);
        total += s;
    }
    let n = total;
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    // Dense-ish diagonal blocks: diagonal plus the requested couplings.
    for (b, &s) in sizes.iter().enumerate() {
        let base = starts[b];
        for i in 0..s {
            entries.push((base + i, base + i, 0.0)); // diagonal placeholder
        }
        for &(r, c, v) in in_block {
            let (r, c) = (base + r % s, base + c % s);
            if r != c {
                entries.push((r, c, v * scale));
            }
        }
    }
    // One-way couplings: a LATER block's row reads an EARLIER block's
    // column (never the reverse), so the blocks stay separate SCCs.
    if sizes.len() > 1 {
        for &(i, j, v) in cross_block {
            let from_block = 1 + i % (sizes.len() - 1); // 1..len
            let to_block = j % from_block; // strictly earlier
            let r = starts[from_block] + i % sizes[from_block];
            let c = starts[to_block] + j % sizes[to_block];
            entries.push((r, c, v * scale));
        }
    }
    // Make every row strictly diagonally dominant so the system is
    // invertible and refactorization never needs the pivoting fallback.
    let mut row_sum = vec![0.0f64; n];
    for &(r, c, v) in &entries {
        if r != c {
            row_sum[r] += v.abs();
        }
    }
    // The affine maps below are bijections iff their multipliers are
    // coprime with n; fall back to identity when they are not.
    let do_scramble = scramble && gcd(5, n) == 1 && gcd(7, n) == 1;
    let srow = |r: usize| if do_scramble { (5 * r + 3) % n } else { r };
    let scol = |c: usize| if do_scramble { (7 * c + 1) % n } else { c };
    let mut t = TripletMatrix::<f64>::new(n, n);
    for &(r, c, v) in &entries {
        if r == c {
            t.push(srow(r), scol(c), row_sum[r] + 1.0 + 0.01 * r as f64);
        } else {
            t.push(srow(r), scol(c), v);
        }
    }
    t.to_csr()
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn dense_reference(a: &CsrMatrix<f64>, b: &[f64]) -> Vec<f64> {
    let n = a.rows();
    let mut dense = DMatrix::zeros(n, n);
    for (r, c, v) in a.iter() {
        dense[(r, c)] = v;
    }
    dense.solve(b).expect("dense reference must factor")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The partition returned by `btf::analyze` is a valid permutation to
    /// block upper-triangular form on arbitrary zero-free-diagonal patterns.
    #[test]
    fn btf_partition_is_a_valid_block_upper_permutation(
        n in 1usize..20,
        entries in prop::collection::vec((0usize..20, 0usize..20, 0.1f64..5.0), 0..80),
    ) {
        let mut t = TripletMatrix::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0); // zero-free diagonal ⇒ structurally nonsingular
        }
        for &(r, c, v) in &entries {
            t.push(r % n, c % n, v);
        }
        let m = t.to_csr();
        let form = btf::analyze(&m).expect("zero-free diagonal must match");

        // Permutations are bijections.
        let mut seen_r = vec![false; n];
        let mut seen_c = vec![false; n];
        prop_assert_eq!(form.row_perm().len(), n);
        prop_assert_eq!(form.col_perm().len(), n);
        for k in 0..n {
            prop_assert!(!seen_r[form.row_perm()[k]]);
            seen_r[form.row_perm()[k]] = true;
            prop_assert!(!seen_c[form.col_perm()[k]]);
            seen_c[form.col_perm()[k]] = true;
        }
        // The block pointer is a strictly monotone cover of 0..n.
        let bp = form.block_ptr();
        prop_assert_eq!(bp[0], 0);
        prop_assert_eq!(*bp.last().unwrap(), n);
        prop_assert!(bp.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(form.block_count() + 1, bp.len());

        // No entry below its diagonal block.
        let mut rpos = vec![0usize; n];
        let mut cpos = vec![0usize; n];
        for (k, &r) in form.row_perm().iter().enumerate() { rpos[r] = k; }
        for (k, &c) in form.col_perm().iter().enumerate() { cpos[c] = k; }
        let mut block_of = vec![0usize; n];
        for b in 0..form.block_count() {
            for p in form.block_range(b) { block_of[p] = b; }
        }
        for (r, c, _) in m.iter() {
            prop_assert!(
                block_of[rpos[r]] <= block_of[cpos[c]],
                "entry ({}, {}) falls below its diagonal block", r, c
            );
        }
    }

    /// A BTF factorization of a (scrambled) cascade solves identically to a
    /// dense partial-pivoting reference, and the partition really is
    /// multi-block when the cascade has several blocks.
    #[test]
    fn btf_factored_solve_matches_dense_reference(
        spec in (
            prop::collection::vec(1usize..5, 1..5),
            prop::collection::vec((0usize..8, 0usize..8, -3.0f64..3.0), 0..24),
            prop::collection::vec((0usize..8, 0usize..8, -3.0f64..3.0), 0..12),
        ),
        xseed in prop::collection::vec(-5.0f64..5.0, 20),
        scramble_sel in 0usize..2,
    ) {
        let scramble = scramble_sel == 1;
        let a = build_cascade(&spec, 1.0, scramble);
        let n = a.rows();
        let (lu, symbolic) = SparseLu::factor_with_symbolic_btf(&a)
            .expect("diagonally dominant cascade must factor");
        // Cross-block coupling is strictly one-way, so no SCC can span two
        // generated blocks: the partition is at least as fine as generated.
        prop_assert!(symbolic.block_count() >= spec.0.len(),
            "found {} blocks for a {}-block cascade",
            symbolic.block_count(), spec.0.len());
        let x_true: Vec<f64> = (0..n).map(|i| xseed[i % xseed.len()]).collect();
        let b = a.mul_vec(&x_true);
        let x = lu.solve(&b).expect("solve");
        let reference = dense_reference(&a, &b);
        for ((xi, ri), ti) in x.iter().zip(&reference).zip(&x_true) {
            prop_assert!((xi - ri).abs() < 1e-8 * (1.0 + ri.abs()),
                "BTF vs dense: {} vs {}", xi, ri);
            prop_assert!((xi - ti).abs() < 1e-8 * (1.0 + ti.abs()),
                "BTF vs truth: {} vs {}", xi, ti);
        }
    }

    /// The complex-field version (the AC-analysis scalar): a block-diagonal
    /// complex cascade with one-way coupling, BTF-factored, against the
    /// dense complex reference.
    #[test]
    fn btf_complex_solve_matches_dense_reference(
        sizes in prop::collection::vec(1usize..4, 1..5),
        coupling in prop::collection::vec((0usize..6, 0usize..6, -2.0f64..2.0, -2.0f64..2.0), 0..16),
        bseed in prop::collection::vec((-3.0f64..3.0, -3.0f64..3.0), 16),
    ) {
        let mut starts = Vec::new();
        let mut n = 0usize;
        for &s in &sizes { starts.push(n); n += s; }
        let mut t = TripletMatrix::<Complex64>::new(n, n);
        let mut row_sum = vec![0.0f64; n];
        // Strongly coupled complex blocks.
        for (b, &s) in sizes.iter().enumerate() {
            let base = starts[b];
            for i in 0..s {
                for j in 0..s {
                    if i != j {
                        let v = Complex64::new(0.5 + 0.1 * i as f64, -0.3 + 0.1 * j as f64);
                        t.push(base + i, base + j, v);
                        row_sum[base + i] += v.abs();
                    }
                }
            }
        }
        // One-way cross-block coupling (later row reads earlier column).
        if sizes.len() > 1 {
            for &(i, j, re, im) in &coupling {
                let fb = 1 + i % (sizes.len() - 1);
                let tb = j % fb;
                let r = starts[fb] + i % sizes[fb];
                let c = starts[tb] + j % sizes[tb];
                let v = Complex64::new(re, im);
                t.push(r, c, v);
                row_sum[r] += v.abs();
            }
        }
        for (i, s) in row_sum.iter().enumerate() {
            t.push(i, i, Complex64::new(s + 1.0 + 0.01 * i as f64, 0.7));
        }
        let a = t.to_csr();
        let lu = SparseLu::factor_btf(&a).expect("must factor");
        let b: Vec<Complex64> = (0..n).map(|i| {
            let (re, im) = bseed[i % bseed.len()];
            Complex64::new(re, im)
        }).collect();
        let x = lu.solve(&b).expect("solve");
        let mut dense = CMatrix::zeros(n, n);
        for (r, c, v) in a.iter() {
            dense[(r, c)] = v;
        }
        let reference = dense.solve(&b).expect("dense reference must factor");
        for (xi, ri) in x.iter().zip(&reference) {
            prop_assert!((*xi - *ri).abs() < 1e-8 * (1.0 + ri.abs()),
                "{:?} vs {:?}", xi, ri);
        }
    }

    /// Numeric-only refactorization over a BTF symbolic analysis matches a
    /// fresh BTF factorization of the same values — through the in-place,
    /// allocation-free path.
    #[test]
    fn btf_refactor_into_matches_fresh_btf_factor(
        spec in (
            prop::collection::vec(1usize..5, 1..4),
            prop::collection::vec((0usize..8, 0usize..8, -3.0f64..3.0), 0..20),
            prop::collection::vec((0usize..8, 0usize..8, -3.0f64..3.0), 0..10),
        ),
        scale in 0.25f64..4.0,
        xseed in prop::collection::vec(-5.0f64..5.0, 16),
    ) {
        let first = build_cascade(&spec, 1.0, false);
        let n = first.rows();
        let (mut lu, symbolic) = SparseLu::factor_with_symbolic_btf(&first)
            .expect("must factor");
        let second = build_cascade(&spec, scale, false);
        prop_assert!(first.same_pattern(&second));
        let mut ws = LuWorkspace::for_dim(n);
        lu.refactor_into(&symbolic, &second, &mut ws).expect("refactor");
        prop_assert!(lu.refactored(), "dominant cascade must not fall back");
        let fresh = SparseLu::factor_btf(&second).expect("fresh factor");
        let x_true: Vec<f64> = (0..n).map(|i| xseed[i % xseed.len()]).collect();
        let b = second.mul_vec(&x_true);
        let mut x_re = b.clone();
        let mut work = vec![0.0; n];
        lu.solve_into(&mut x_re, &mut work).expect("solve");
        let x_fresh = fresh.solve(&b).expect("solve");
        for (a, b) in x_re.iter().zip(&x_fresh) {
            prop_assert!(*a == *b,
                "refactor and fresh BTF factor must agree bitwise: {} vs {}", a, b);
        }
    }

    /// `solve_block_into` is bitwise identical, column for column, to
    /// independent `solve_into` calls — at every panel width, over both
    /// multi-block (BTF) and single-block factorizations.
    #[test]
    fn solve_block_into_is_bitwise_identical_to_independent_solves(
        spec in (
            prop::collection::vec(1usize..5, 1..4),
            prop::collection::vec((0usize..8, 0usize..8, -3.0f64..3.0), 0..20),
            prop::collection::vec((0usize..8, 0usize..8, -3.0f64..3.0), 0..10),
        ),
        k in 1usize..7,
        rhs_seed in prop::collection::vec(-10.0f64..10.0, 24),
        use_btf_sel in 0usize..2,
    ) {
        let use_btf = use_btf_sel == 1;
        let a = build_cascade(&spec, 1.0, false);
        let n = a.rows();
        let lu = if use_btf {
            SparseLu::factor_btf(&a).expect("must factor")
        } else {
            SparseLu::factor(&a).expect("must factor")
        };
        let mut panel: Vec<f64> = (0..n * k)
            .map(|i| rhs_seed[i % rhs_seed.len()] + (i / rhs_seed.len()) as f64)
            .collect();
        let reference: Vec<Vec<f64>> = (0..k).map(|j| {
            let mut rhs = panel[j * n..(j + 1) * n].to_vec();
            let mut work = vec![0.0; n];
            lu.solve_into(&mut rhs, &mut work).expect("solve");
            rhs
        }).collect();
        let mut work = vec![0.0; n * k];
        lu.solve_block_into(&mut panel, k, &mut work).expect("blocked solve");
        for (j, reference_col) in reference.iter().enumerate() {
            for (a, b) in panel[j * n..(j + 1) * n].iter().zip(reference_col) {
                prop_assert!(*a == *b,
                    "panel width {}, column {}: {} vs {}", k, j, a, b);
            }
        }
    }
}
