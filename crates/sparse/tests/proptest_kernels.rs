//! Property-based proof of the kernel layer's bitwise contract: the SIMD
//! backend must produce **bit-identical** results to the portable scalar
//! reference — same IEEE operations, same per-element order, no FMA, no
//! reassociation — on random real and complex data, both at the primitive
//! level and through the full refactor/solve pipeline at panel widths
//! 1/3/16/64.
//!
//! On hardware without AVX2 the SIMD comparisons degrade to scalar-vs-scalar
//! (trivially true) instead of being skipped silently, so the suite runs
//! everywhere.

use loopscope_math::Complex64;
use loopscope_sparse::kernels::{self, KernelBackend};
use loopscope_sparse::{LuWorkspace, SparseLu, TripletMatrix};
use proptest::prelude::*;

/// The backend to pit against [`KernelBackend::Scalar`]: AVX2 when the CPU
/// has it, scalar otherwise (so every assertion below stays meaningful and
/// none silently vanish on non-AVX2 hardware).
fn simd_or_scalar() -> KernelBackend {
    if kernels::simd_available() {
        KernelBackend::Avx2
    } else {
        KernelBackend::Scalar
    }
}

fn c64(pair: (f64, f64)) -> Complex64 {
    Complex64::new(pair.0, pair.1)
}

fn assert_bits_f64(a: &[f64], b: &[f64], what: &str) -> Result<(), String> {
    prop_assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{} diverges at {}: {} vs {}",
            what,
            i,
            x,
            y
        );
    }
    Ok(())
}

fn assert_bits_c64(a: &[Complex64], b: &[Complex64], what: &str) -> Result<(), String> {
    prop_assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert_eq!(
            (x.re.to_bits(), x.im.to_bits()),
            (y.re.to_bits(), y.im.to_bits()),
            "{} diverges at {}: {} vs {}",
            what,
            i,
            x,
            y
        );
    }
    Ok(())
}

/// The panel widths the blocked solve runs at in practice: the per-RHS
/// degenerate case, an odd width exercising every tail path, the default,
/// and a wide panel.
const PANEL_WIDTHS: [usize; 4] = [1, 3, 16, 64];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Primitive level, complex lanes: axpy / fold / panel ops bit-agree
    /// between the scalar reference and the SIMD backend on random data
    /// (duplicate scatter targets included).
    #[test]
    fn complex_primitives_bit_agree(
        mult in (-3.0f64..3.0, -3.0f64..3.0),
        vals in prop::collection::vec((-4.0f64..4.0, -4.0f64..4.0), 0..40),
        cols_seed in prop::collection::vec(0usize..64, 0..40),
        work_seed in prop::collection::vec((-8.0f64..8.0, -8.0f64..8.0), 64),
    ) {
        let simd = simd_or_scalar();
        let mult = c64(mult);
        let vals: Vec<Complex64> = vals.into_iter().map(c64).collect();
        let n = vals.len().min(cols_seed.len());
        let cols: Vec<usize> = cols_seed[..n].to_vec();
        let base: Vec<Complex64> = work_seed.into_iter().map(c64).collect();

        let mut w_scalar = base.clone();
        let mut w_simd = base.clone();
        kernels::axpy_indexed_c64(KernelBackend::Scalar, mult, &vals[..n], &cols, &mut w_scalar);
        kernels::axpy_indexed_c64(simd, mult, &vals[..n], &cols, &mut w_simd);
        assert_bits_c64(&w_scalar, &w_simd, "axpy_indexed_c64")?;

        let acc_scalar = kernels::fold_sub_indexed_c64(
            KernelBackend::Scalar, mult, &vals[..n], &cols, &w_scalar);
        let acc_simd = kernels::fold_sub_indexed_c64(simd, mult, &vals[..n], &cols, &w_scalar);
        assert_bits_c64(&[acc_scalar], &[acc_simd], "fold_sub_indexed_c64")?;
    }

    /// Primitive level, real lanes.
    #[test]
    fn real_primitives_bit_agree(
        mult in -3.0f64..3.0,
        vals in prop::collection::vec(-4.0f64..4.0, 0..40),
        cols_seed in prop::collection::vec(0usize..64, 0..40),
        work_seed in prop::collection::vec(-8.0f64..8.0, 64),
    ) {
        let simd = simd_or_scalar();
        let n = vals.len().min(cols_seed.len());
        let cols: Vec<usize> = cols_seed[..n].to_vec();

        let mut w_scalar = work_seed.clone();
        let mut w_simd = work_seed.clone();
        kernels::axpy_indexed_f64(KernelBackend::Scalar, mult, &vals[..n], &cols, &mut w_scalar);
        kernels::axpy_indexed_f64(simd, mult, &vals[..n], &cols, &mut w_simd);
        assert_bits_f64(&w_scalar, &w_simd, "axpy_indexed_f64")?;

        let acc_scalar = kernels::fold_sub_indexed_f64(
            KernelBackend::Scalar, mult, &vals[..n], &cols, &w_scalar);
        let acc_simd = kernels::fold_sub_indexed_f64(simd, mult, &vals[..n], &cols, &w_scalar);
        assert_bits_f64(&[acc_scalar], &[acc_simd], "fold_sub_indexed_f64")?;
    }

    /// Panel primitives at the practical widths 1/3/16/64 (lane = RHS
    /// column), complex and real.
    #[test]
    fn panel_primitives_bit_agree_at_all_widths(
        v in (-3.0f64..3.0, -3.0f64..3.0),
        diag in (0.5f64..3.0, -2.0f64..2.0),
        src_seed in prop::collection::vec((-6.0f64..6.0, -6.0f64..6.0), 64),
        dst_seed in prop::collection::vec((-6.0f64..6.0, -6.0f64..6.0), 64),
    ) {
        let simd = simd_or_scalar();
        let vc = c64(v);
        let dc = c64(diag);
        let src: Vec<Complex64> = src_seed.iter().copied().map(c64).collect();
        let base: Vec<Complex64> = dst_seed.iter().copied().map(c64).collect();
        let src_re: Vec<f64> = src_seed.iter().map(|p| p.0).collect();
        let base_re: Vec<f64> = dst_seed.iter().map(|p| p.0).collect();

        for &k in &PANEL_WIDTHS {
            let mut a = base[..k].to_vec();
            let mut b = base[..k].to_vec();
            kernels::panel_axpy_c64(KernelBackend::Scalar, vc, &src[..k], &mut a);
            kernels::panel_axpy_c64(simd, vc, &src[..k], &mut b);
            assert_bits_c64(&a, &b, "panel_axpy_c64")?;
            kernels::panel_div_c64(KernelBackend::Scalar, dc, &mut a);
            kernels::panel_div_c64(simd, dc, &mut b);
            assert_bits_c64(&a, &b, "panel_div_c64")?;

            let mut a = base_re[..k].to_vec();
            let mut b = base_re[..k].to_vec();
            kernels::panel_axpy_f64(KernelBackend::Scalar, v.0, &src_re[..k], &mut a);
            kernels::panel_axpy_f64(simd, v.0, &src_re[..k], &mut b);
            assert_bits_f64(&a, &b, "panel_axpy_f64")?;
            kernels::panel_div_f64(KernelBackend::Scalar, diag.0, &mut a);
            kernels::panel_div_f64(simd, diag.0, &mut b);
            assert_bits_f64(&a, &b, "panel_div_f64")?;
        }
    }

    /// Full pipeline, complex: a BTF factorization refactored and
    /// panel-solved on a scalar-pinned and a SIMD-pinned copy of the same
    /// symbolic analysis must produce bit-identical factors and solutions
    /// at every panel width.
    #[test]
    fn complex_refactor_and_panel_solve_bit_agree(
        n in 2usize..12,
        entries in prop::collection::vec(
            (0usize..12, 0usize..12, -3.0f64..3.0, -3.0f64..3.0), 0..60),
        rhs_seed in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 12 * 64),
        scale in 0.2f64..5.0,
    ) {
        let build = |s: f64| {
            let mut t = TripletMatrix::<Complex64>::new(n, n);
            let mut row_sum = vec![0.0; n];
            for &(r, c, re, im) in &entries {
                let (r, c) = (r % n, c % n);
                if r == c { continue; }
                let v = Complex64::new(re * s, im * s);
                t.push(r, c, v);
                row_sum[r] += v.abs();
            }
            for (i, sum) in row_sum.iter().enumerate() {
                t.push(i, i, Complex64::new(sum + 1.0 + i as f64 * 0.01, 0.5));
            }
            t.to_csr()
        };
        let first = build(1.0);
        let (_, symbolic) = SparseLu::factor_with_symbolic_btf(&first)
            .expect("diagonally dominant matrix must factor");
        let sym_scalar = symbolic.with_kernel_backend(KernelBackend::Scalar);
        let sym_simd = symbolic.with_kernel_backend(simd_or_scalar());

        let second = build(scale);
        let mut ws = LuWorkspace::for_dim(n);
        let mut lu_scalar = SparseLu::from_symbolic(&sym_scalar);
        lu_scalar.refactor_into(&sym_scalar, &second, &mut ws).expect("refactor");
        prop_assert!(lu_scalar.refactored());
        let mut lu_simd = SparseLu::from_symbolic(&sym_simd);
        lu_simd.refactor_into(&sym_simd, &second, &mut ws).expect("refactor");
        prop_assert!(lu_simd.refactored());
        prop_assert_eq!(lu_scalar.kernel_backend(), KernelBackend::Scalar);

        for &k in &PANEL_WIDTHS {
            let panel: Vec<Complex64> = rhs_seed[..n * k].iter().copied().map(c64).collect();
            let mut work = vec![Complex64::ZERO; n * k];
            let mut a = panel.clone();
            lu_scalar.solve_block_into(&mut a, k, &mut work).expect("solve");
            let mut b = panel.clone();
            lu_simd.solve_block_into(&mut b, k, &mut work).expect("solve");
            assert_bits_c64(&a, &b, "solve_block_into (complex)")?;

            // The single-RHS path must agree column for column, too.
            let mut col0: Vec<Complex64> = panel[..n].to_vec();
            lu_simd.solve_into(&mut col0, &mut work[..n]).expect("solve");
            assert_bits_c64(&col0, &a[..n], "solve_into vs panel column 0")?;
        }
    }

    /// Full pipeline, real lanes (the DC/transient scalar field).
    #[test]
    fn real_refactor_and_panel_solve_bit_agree(
        n in 2usize..16,
        entries in prop::collection::vec((0usize..16, 0usize..16, -4.0f64..4.0), 0..80),
        rhs_seed in prop::collection::vec(-5.0f64..5.0, 16 * 64),
        scale in 0.2f64..5.0,
    ) {
        let build = |s: f64| {
            let mut t = TripletMatrix::<f64>::new(n, n);
            let mut row_sum = vec![0.0; n];
            for &(r, c, v) in &entries {
                let (r, c) = (r % n, c % n);
                if r == c { continue; }
                t.push(r, c, v * s);
                row_sum[r] += (v * s).abs();
            }
            for (i, sum) in row_sum.iter().enumerate() {
                t.push(i, i, sum + 1.0 + i as f64 * 0.01);
            }
            t.to_csr()
        };
        let first = build(1.0);
        let (_, symbolic) = SparseLu::factor_with_symbolic_btf(&first)
            .expect("diagonally dominant matrix must factor");
        let sym_scalar = symbolic.with_kernel_backend(KernelBackend::Scalar);
        let sym_simd = symbolic.with_kernel_backend(simd_or_scalar());

        let second = build(scale);
        let mut ws = LuWorkspace::for_dim(n);
        let mut lu_scalar = SparseLu::from_symbolic(&sym_scalar);
        lu_scalar.refactor_into(&sym_scalar, &second, &mut ws).expect("refactor");
        prop_assert!(lu_scalar.refactored());
        let mut lu_simd = SparseLu::from_symbolic(&sym_simd);
        lu_simd.refactor_into(&sym_simd, &second, &mut ws).expect("refactor");
        prop_assert!(lu_simd.refactored());

        for &k in &PANEL_WIDTHS {
            let panel: Vec<f64> = rhs_seed[..n * k].to_vec();
            let mut work = vec![0.0f64; n * k];
            let mut a = panel.clone();
            lu_scalar.solve_block_into(&mut a, k, &mut work).expect("solve");
            let mut b = panel.clone();
            lu_simd.solve_block_into(&mut b, k, &mut work).expect("solve");
            assert_bits_f64(&a, &b, "solve_block_into (real)")?;
        }
    }
}

/// Backend selection must be stable for the whole process: every symbolic
/// analysis built under one environment records the same backend, and it is
/// consistent with what `selected_backend` reports.
#[test]
fn backend_selection_is_deterministic_per_process() {
    let expected = kernels::selected_backend();
    for trial in 0..20 {
        assert_eq!(kernels::selected_backend(), expected, "trial {trial}");
        let mut t = TripletMatrix::<f64>::new(2, 2);
        t.push(0, 0, 2.0 + trial as f64);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 3.0);
        let (lu, symbolic) = SparseLu::factor_with_symbolic_btf(&t.to_csr()).expect("factors");
        assert_eq!(symbolic.kernel_backend(), expected);
        assert_eq!(lu.kernel_backend(), expected);
    }
    // The environment knob's pure selection rule: `scalar` always wins, and
    // feeding the live environment back through it reproduces the selection
    // (whatever LOOPSCOPE_KERNEL this process runs under).
    assert_eq!(
        kernels::backend_for(Some("scalar"), kernels::simd_available()),
        KernelBackend::Scalar
    );
    assert_eq!(
        kernels::backend_for(
            std::env::var(kernels::KERNEL_ENV).ok().as_deref(),
            kernels::simd_available()
        ),
        expected
    );
}

/// Pinning a backend never mutates the original analysis.
#[test]
fn with_kernel_backend_copies_not_shares() {
    let mut t = TripletMatrix::<f64>::new(2, 2);
    t.push(0, 0, 2.0);
    t.push(0, 1, 1.0);
    t.push(1, 0, 1.0);
    t.push(1, 1, 3.0);
    let (_, symbolic) = SparseLu::factor_with_symbolic_btf(&t.to_csr()).expect("factors");
    let original = symbolic.kernel_backend();
    let pinned = symbolic.with_kernel_backend(KernelBackend::Scalar);
    assert_eq!(pinned.kernel_backend(), KernelBackend::Scalar);
    assert_eq!(symbolic.kernel_backend(), original);
    assert_eq!(pinned.dim(), symbolic.dim());
    assert_eq!(pinned.fill_nnz(), symbolic.fill_nnz());
}
