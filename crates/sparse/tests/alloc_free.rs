//! Counting-allocator proof that the refactor/solve hot path — the inner
//! loop of the all-nodes stability scan (one `refactor_into` per frequency,
//! one `solve_into` per node) — performs **zero heap allocations** once the
//! buffers are warm.
//!
//! A wrapper around the system allocator counts every `alloc`/`realloc`
//! call; the test warms the workspace with one refactor + solve, then runs
//! many more and asserts the counter did not move.

use loopscope_sparse::{ordering, CsrMatrix, LuWorkspace, SparseLu, TripletMatrix};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator with a global allocation counter.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// An N-stage RC-ladder-like tridiagonal matrix with a value knob — the same
/// shape the AC sweep refactors at every frequency point.
fn ladder(stages: usize, scale: f64) -> CsrMatrix<f64> {
    let mut t = TripletMatrix::<f64>::new(stages, stages);
    for i in 0..stages {
        let g = 1.0e-3 * (1.0 + (i % 7) as f64 * 0.1) * scale;
        let mut diag = g + 1.0e-9;
        if i > 0 {
            t.push(i, i - 1, -g);
            diag += g;
        }
        if i + 1 < stages {
            t.push(i, i + 1, -g);
        }
        t.push(i, i, diag);
    }
    t.to_csr()
}

// NOTE: this file must hold exactly ONE #[test] touching the counter: tests
// in one binary run on parallel threads, and a sibling test allocating
// between this test's before/after reads would make the zero-allocation
// assertion flaky. The counter sanity-check therefore lives at the end of
// the same test, not in its own #[test].
#[test]
fn refactor_and_solve_hot_loop_is_allocation_free() {
    let n = 200;
    let first = ladder(n, 1.0);
    let order = ordering::min_degree_order(&first);
    let (mut lu, symbolic) =
        SparseLu::factor_with_symbolic_ordered(&first, &order).expect("ladder factors");
    let mut ws = LuWorkspace::new();

    // Pre-build the matrices the loop will consume (assembly caches do the
    // analogous restamp-in-place) and the solve buffers.
    let matrices: Vec<CsrMatrix<f64>> = (0..8).map(|k| ladder(n, 1.0 + 0.3 * k as f64)).collect();
    let mut rhs = vec![0.0f64; n];
    let mut work = vec![0.0f64; n];

    // Warm-up: the first refactor sizes the workspace buffers.
    lu.refactor_into(&symbolic, &matrices[0], &mut ws)
        .expect("refactor");
    assert!(lu.refactored());
    rhs[0] = 1.0;
    lu.solve_into(&mut rhs, &mut work).expect("solve");

    // The measured loop: one refactor per "frequency", many solves per
    // "node", exactly like `driving_point_all_nodes`.
    let before = allocation_count();
    for m in &matrices {
        lu.refactor_into(&symbolic, m, &mut ws).expect("refactor");
        assert!(lu.refactored(), "hot loop must not fall back");
        for node in 0..n {
            rhs.fill(0.0);
            rhs[node] = 1.0;
            lu.solve_into(&mut rhs, &mut work).expect("solve");
            assert!(rhs[node].is_finite());
        }
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "refactor_into + solve_into hot loop must not allocate \
         ({} allocations over {} refactors / {} solves)",
        after - before,
        matrices.len(),
        matrices.len() * n
    );

    // The plan/context split of the parallel sweep executor: a worker mints
    // a `SparseLu` shell from the shared symbolic analysis plus a pre-sized
    // workspace (the mint cost, paid once per worker, outside the loop), and
    // its ENTIRE loop — including the very first refactor, which fills the
    // pre-allocated shell buffers — must not allocate.
    let mut worker_lu = SparseLu::from_symbolic(&symbolic);
    let mut worker_ws = LuWorkspace::for_dim(n);
    let before = allocation_count();
    for m in &matrices {
        worker_lu
            .refactor_into(&symbolic, m, &mut worker_ws)
            .expect("refactor");
        assert!(worker_lu.refactored(), "worker loop must not fall back");
        for node in 0..n {
            rhs.fill(0.0);
            rhs[node] = 1.0;
            worker_lu.solve_into(&mut rhs, &mut work).expect("solve");
            assert!(rhs[node].is_finite());
        }
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "a freshly minted worker context must run its whole sweep loop \
         (first refactor included) without allocating, saw {} allocations",
        after - before
    );

    // The blocked multi-RHS path of the all-nodes scan: one refactor per
    // "frequency", then the injections batched into panels of K solved by
    // one `solve_block_into` traversal each. Panel and scratch are minted
    // once (context mint time); the loop itself — fill, blocked solve,
    // gather, including the final short panel — must not allocate.
    // 200 % 16 != 0, so the loop also covers the final SHORT panel, which
    // reuses the same buffers sliced down.
    let panel_k = 16;
    let mut panel = vec![0.0f64; n * panel_k];
    let mut panel_work = vec![0.0f64; n * panel_k];
    let nodes: Vec<usize> = (0..n).collect();
    let before = allocation_count();
    for m in &matrices {
        worker_lu
            .refactor_into(&symbolic, m, &mut worker_ws)
            .expect("refactor");
        assert!(worker_lu.refactored(), "panel loop must not fall back");
        for chunk in nodes.chunks(panel_k) {
            let cols = chunk.len();
            let active = &mut panel[..n * cols];
            active.fill(0.0);
            for (j, &node) in chunk.iter().enumerate() {
                active[j * n + node] = 1.0;
            }
            worker_lu
                .solve_block_into(active, cols, &mut panel_work[..n * cols])
                .expect("blocked solve");
            for (j, &node) in chunk.iter().enumerate() {
                assert!(active[j * n + node].is_finite());
            }
        }
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "the blocked panel loop (refactor_into + solve_block_into) must not \
         allocate, saw {} allocations",
        after - before
    );

    // Sanity-check that the counter really counts (the allocating
    // convenience `solve` must bump it), so the zero above is meaningful.
    let probe = allocation_count();
    let x = lu.solve(&rhs).expect("solve");
    assert!(x[0].is_finite());
    assert!(
        allocation_count() > probe,
        "the allocating convenience path should have bumped the counter"
    );
}
