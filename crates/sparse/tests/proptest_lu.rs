//! Property-based tests for the sparse LU solver.
//!
//! The key invariant: for any reasonably conditioned matrix `A` and vector
//! `x`, factoring `A` and solving against `b = A·x` recovers `x`, and the
//! residual `A·x̂ − b` is small. Diagonal dominance is enforced on the random
//! matrices to keep the condition number bounded so the tolerance can be tight.

use loopscope_math::dense::{CMatrix, DMatrix};
use loopscope_math::Complex64;
use loopscope_sparse::{
    ordering::min_degree_order, solve_once, CsrMatrix, LuWorkspace, SparseLu, TripletMatrix,
};
use proptest::prelude::*;

/// Builds a random, diagonally dominant sparse matrix from proptest inputs.
fn build_real(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix<f64> {
    build_real_scaled(n, entries, 1.0)
}

/// Like [`build_real`] but with every off-diagonal value multiplied by
/// `scale` — same sparsity pattern for any scale, different numerics.
fn build_real_scaled(n: usize, entries: &[(usize, usize, f64)], scale: f64) -> CsrMatrix<f64> {
    let mut t = TripletMatrix::new(n, n);
    let mut row_sum = vec![0.0; n];
    for &(r, c, v) in entries {
        let (r, c) = (r % n, c % n);
        if r == c {
            continue;
        }
        t.push(r, c, v * scale);
        row_sum[r] += (v * scale).abs();
    }
    for (i, s) in row_sum.iter().enumerate() {
        // Strict diagonal dominance keeps the matrix invertible.
        t.push(i, i, s + 1.0 + i as f64 * 0.01);
    }
    t.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn real_solve_recovers_solution(
        n in 2usize..24,
        entries in prop::collection::vec((0usize..24, 0usize..24, -5.0f64..5.0), 0..120),
        xseed in prop::collection::vec(-10.0f64..10.0, 24),
    ) {
        let a = build_real(n, &entries);
        let x_true: Vec<f64> = xseed.iter().take(n).copied().collect();
        let b = a.mul_vec(&x_true);
        let x = solve_once(&a, &b).expect("diagonally dominant matrix must factor");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8 * (1.0 + ti.abs()));
        }
    }

    #[test]
    fn residual_is_small(
        n in 2usize..16,
        entries in prop::collection::vec((0usize..16, 0usize..16, -3.0f64..3.0), 0..80),
        bseed in prop::collection::vec(-10.0f64..10.0, 16),
    ) {
        let a = build_real(n, &entries);
        let b: Vec<f64> = bseed.iter().take(n).copied().collect();
        let x = solve_once(&a, &b).expect("must factor");
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8 * (1.0 + bi.abs()));
        }
    }

    #[test]
    fn complex_solve_recovers_solution(
        n in 2usize..12,
        entries in prop::collection::vec(
            (0usize..12, 0usize..12, -3.0f64..3.0, -3.0f64..3.0), 0..60),
        xseed in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 12),
    ) {
        let mut t = TripletMatrix::<Complex64>::new(n, n);
        let mut row_sum = vec![0.0; n];
        for &(r, c, re, im) in &entries {
            let (r, c) = (r % n, c % n);
            if r == c { continue; }
            let v = Complex64::new(re, im);
            t.push(r, c, v);
            row_sum[r] += v.abs();
        }
        for (i, s) in row_sum.iter().enumerate() {
            t.push(i, i, Complex64::new(s + 1.0, 0.5));
        }
        let a = t.to_csr();
        let x_true: Vec<Complex64> = xseed.iter().take(n)
            .map(|&(re, im)| Complex64::new(re, im)).collect();
        let b = a.mul_vec(&x_true);
        let lu = SparseLu::factor(&a).expect("must factor");
        let x = lu.solve(&b).expect("rhs length matches");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((*xi - *ti).abs() < 1e-8 * (1.0 + ti.abs()));
        }
    }

    /// Refactorization over a reused symbolic pattern must agree with a
    /// fresh pivoting factorization on any same-pattern real system.
    #[test]
    fn real_refactor_matches_fresh_factor(
        n in 2usize..20,
        entries in prop::collection::vec((0usize..20, 0usize..20, -4.0f64..4.0), 0..100),
        xseed in prop::collection::vec(-10.0f64..10.0, 20),
        scale in 0.2f64..5.0,
    ) {
        let first = build_real(n, &entries);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&first)
            .expect("diagonally dominant matrix must factor");
        // Same pattern, different values.
        let second = build_real_scaled(n, &entries, scale);
        prop_assert!(first.same_pattern(&second));
        let x_true: Vec<f64> = xseed.iter().take(n).copied().collect();
        let b = second.mul_vec(&x_true);
        let lu = SparseLu::refactor(&symbolic, &second).expect("refactor must succeed");
        prop_assert!(lu.refactored(), "diagonally dominant refactor must not fall back");
        let x = lu.solve(&b).expect("solve");
        let fresh = solve_once(&second, &b).expect("fresh factor");
        for ((xi, fi), ti) in x.iter().zip(&fresh).zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8 * (1.0 + ti.abs()),
                "refactor vs truth: {} vs {}", xi, ti);
            prop_assert!((xi - fi).abs() < 1e-8 * (1.0 + fi.abs()),
                "refactor vs fresh: {} vs {}", xi, fi);
        }
    }

    /// The same property over the complex field (the AC-analysis scalar).
    #[test]
    fn complex_refactor_matches_fresh_factor(
        n in 2usize..12,
        entries in prop::collection::vec(
            (0usize..12, 0usize..12, -3.0f64..3.0, -3.0f64..3.0), 0..60),
        xseed in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 12),
        phase in 0.1f64..6.2,
    ) {
        let build = |rot: Complex64| {
            let mut t = TripletMatrix::<Complex64>::new(n, n);
            let mut row_sum = vec![0.0; n];
            for &(r, c, re, im) in &entries {
                let (r, c) = (r % n, c % n);
                if r == c { continue; }
                let v = Complex64::new(re, im) * rot;
                t.push(r, c, v);
                row_sum[r] += v.abs();
            }
            for (i, s) in row_sum.iter().enumerate() {
                t.push(i, i, Complex64::new(s + 1.0, 0.5));
            }
            t.to_csr()
        };
        let first = build(Complex64::ONE);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&first).expect("must factor");
        // Rotate all off-diagonal values in the complex plane: same pattern,
        // different numbers — like re-stamping jωC at a new frequency.
        let second = build(Complex64::from_polar(1.0, phase));
        prop_assert!(first.same_pattern(&second));
        let x_true: Vec<Complex64> = xseed.iter().take(n)
            .map(|&(re, im)| Complex64::new(re, im)).collect();
        let b = second.mul_vec(&x_true);
        let lu = SparseLu::refactor(&symbolic, &second).expect("refactor");
        prop_assert!(lu.refactored());
        let x = lu.solve(&b).expect("solve");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((*xi - *ti).abs() < 1e-8 * (1.0 + ti.abs()),
                "{:?} vs {:?}", xi, ti);
        }
    }

    /// A refactorization handed a matrix whose pattern does not match the
    /// symbolic analysis must still produce a correct factorization (via the
    /// pivoting fallback), never a wrong answer.
    #[test]
    fn refactor_pattern_mismatch_falls_back_correctly(
        n in 2usize..12,
        entries_a in prop::collection::vec((0usize..12, 0usize..12, -3.0f64..3.0), 0..40),
        entries_b in prop::collection::vec((0usize..12, 0usize..12, -3.0f64..3.0), 0..40),
        xseed in prop::collection::vec(-5.0f64..5.0, 12),
    ) {
        let a = build_real(n, &entries_a);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&a).expect("must factor");
        let b_mat = build_real(n, &entries_b);
        let x_true: Vec<f64> = xseed.iter().take(n).copied().collect();
        let rhs = b_mat.mul_vec(&x_true);
        let lu = SparseLu::refactor(&symbolic, &b_mat).expect("refactor or fallback");
        let x = lu.solve(&rhs).expect("solve");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8 * (1.0 + ti.abs()));
        }
    }

    /// The fill-reducing ordered, threshold-pivoted factorization must agree
    /// with a dense partial-pivoting reference solve on any reasonably
    /// conditioned real system.
    #[test]
    fn ordered_real_factor_matches_dense_reference(
        n in 2usize..20,
        entries in prop::collection::vec((0usize..20, 0usize..20, -4.0f64..4.0), 0..100),
        xseed in prop::collection::vec(-10.0f64..10.0, 20),
    ) {
        let a = build_real(n, &entries);
        let order = min_degree_order(&a);
        let (lu, symbolic) = SparseLu::factor_with_symbolic_ordered(&a, &order)
            .expect("diagonally dominant matrix must factor");
        prop_assert_eq!(symbolic.column_order(), &order[..]);
        let x_true: Vec<f64> = xseed.iter().take(n).copied().collect();
        let b = a.mul_vec(&x_true);
        let x = lu.solve(&b).expect("solve");
        // Dense reference over the same values.
        let mut dense = DMatrix::zeros(n, n);
        for (r, c, v) in a.iter() {
            dense[(r, c)] = v;
        }
        let reference = dense.solve(&b).expect("dense reference must factor");
        for ((xi, ri), ti) in x.iter().zip(&reference).zip(&x_true) {
            prop_assert!((xi - ri).abs() < 1e-8 * (1.0 + ri.abs()),
                "ordered vs dense: {} vs {}", xi, ri);
            prop_assert!((xi - ti).abs() < 1e-8 * (1.0 + ti.abs()),
                "ordered vs truth: {} vs {}", xi, ti);
        }
    }

    /// The same property over the complex field (the AC-analysis scalar).
    #[test]
    fn ordered_complex_factor_matches_dense_reference(
        n in 2usize..12,
        entries in prop::collection::vec(
            (0usize..12, 0usize..12, -3.0f64..3.0, -3.0f64..3.0), 0..60),
        bseed in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 12),
    ) {
        let mut t = TripletMatrix::<Complex64>::new(n, n);
        let mut row_sum = vec![0.0; n];
        for &(r, c, re, im) in &entries {
            let (r, c) = (r % n, c % n);
            if r == c { continue; }
            let v = Complex64::new(re, im);
            t.push(r, c, v);
            row_sum[r] += v.abs();
        }
        for (i, s) in row_sum.iter().enumerate() {
            t.push(i, i, Complex64::new(s + 1.0, 0.5));
        }
        let a = t.to_csr();
        let order = min_degree_order(&a);
        let lu = SparseLu::factor_ordered(&a, &order).expect("must factor");
        let b: Vec<Complex64> = bseed.iter().take(n)
            .map(|&(re, im)| Complex64::new(re, im)).collect();
        let x = lu.solve(&b).expect("solve");
        let mut dense = CMatrix::zeros(n, n);
        for (r, c, v) in a.iter() {
            dense[(r, c)] = v;
        }
        let reference = dense.solve(&b).expect("dense reference must factor");
        for (xi, ri) in x.iter().zip(&reference) {
            prop_assert!((*xi - *ri).abs() < 1e-8 * (1.0 + ri.abs()),
                "{:?} vs {:?}", xi, ri);
        }
    }

    /// Refactorization over an *ordered* symbolic pattern (the production
    /// configuration of `CachedMna`) must match a fresh factorization on any
    /// same-pattern system, through the allocation-free in-place path.
    #[test]
    fn ordered_refactor_into_matches_fresh_factor(
        n in 2usize..20,
        entries in prop::collection::vec((0usize..20, 0usize..20, -4.0f64..4.0), 0..100),
        xseed in prop::collection::vec(-10.0f64..10.0, 20),
        scale in 0.2f64..5.0,
    ) {
        let first = build_real(n, &entries);
        let order = min_degree_order(&first);
        let (mut lu, symbolic) = SparseLu::factor_with_symbolic_ordered(&first, &order)
            .expect("diagonally dominant matrix must factor");
        let second = build_real_scaled(n, &entries, scale);
        prop_assert!(first.same_pattern(&second));
        let mut ws = LuWorkspace::new();
        lu.refactor_into(&symbolic, &second, &mut ws).expect("refactor");
        prop_assert!(lu.refactored(), "diagonally dominant refactor must not fall back");
        let x_true: Vec<f64> = xseed.iter().take(n).copied().collect();
        let b = second.mul_vec(&x_true);
        let mut rhs = b.clone();
        let mut work = vec![0.0; n];
        lu.solve_into(&mut rhs, &mut work).expect("solve");
        let fresh = solve_once(&second, &b).expect("fresh factor");
        for ((xi, fi), ti) in rhs.iter().zip(&fresh).zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8 * (1.0 + ti.abs()),
                "refactor vs truth: {} vs {}", xi, ti);
            prop_assert!((xi - fi).abs() < 1e-8 * (1.0 + fi.abs()),
                "refactor vs fresh: {} vs {}", xi, fi);
        }
    }

    /// `solve_into` and the allocating `solve` are the same computation.
    #[test]
    fn solve_into_matches_solve(
        n in 2usize..16,
        entries in prop::collection::vec((0usize..16, 0usize..16, -3.0f64..3.0), 0..80),
        bseed in prop::collection::vec(-10.0f64..10.0, 16),
    ) {
        let a = build_real(n, &entries);
        let lu = SparseLu::factor(&a).expect("must factor");
        let b: Vec<f64> = bseed.iter().take(n).copied().collect();
        let alloc = lu.solve(&b).expect("solve");
        let mut rhs = b.clone();
        let mut work = vec![0.0; n];
        lu.solve_into(&mut rhs, &mut work).expect("solve_into");
        for (a, b) in alloc.iter().zip(&rhs) {
            prop_assert!((a - b).abs() == 0.0, "identical sweeps must agree bitwise");
        }
    }

    #[test]
    fn triplet_accumulation_matches_sum(
        pushes in prop::collection::vec((0usize..6, 0usize..6, -2.0f64..2.0), 1..40),
    ) {
        let mut t = TripletMatrix::<f64>::new(6, 6);
        let mut dense = [[0.0f64; 6]; 6];
        for &(r, c, v) in &pushes {
            t.push(r, c, v);
            dense[r][c] += v;
        }
        let m = t.to_csr();
        for (r, row) in dense.iter().enumerate() {
            for (c, want) in row.iter().enumerate() {
                prop_assert!((m.get(r, c) - want).abs() < 1e-12);
            }
        }
    }
}
