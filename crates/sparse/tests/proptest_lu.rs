//! Property-based tests for the sparse LU solver.
//!
//! The key invariant: for any reasonably conditioned matrix `A` and vector
//! `x`, factoring `A` and solving against `b = A·x` recovers `x`, and the
//! residual `A·x̂ − b` is small. Diagonal dominance is enforced on the random
//! matrices to keep the condition number bounded so the tolerance can be tight.

use loopscope_math::Complex64;
use loopscope_sparse::{solve_once, CsrMatrix, SparseLu, TripletMatrix};
use proptest::prelude::*;

/// Builds a random, diagonally dominant sparse matrix from proptest inputs.
fn build_real(
    n: usize,
    entries: &[(usize, usize, f64)],
) -> CsrMatrix<f64> {
    let mut t = TripletMatrix::new(n, n);
    let mut row_sum = vec![0.0; n];
    for &(r, c, v) in entries {
        let (r, c) = (r % n, c % n);
        if r == c {
            continue;
        }
        t.push(r, c, v);
        row_sum[r] += v.abs();
    }
    for (i, s) in row_sum.iter().enumerate() {
        // Strict diagonal dominance keeps the matrix invertible.
        t.push(i, i, s + 1.0 + i as f64 * 0.01);
    }
    t.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn real_solve_recovers_solution(
        n in 2usize..24,
        entries in prop::collection::vec((0usize..24, 0usize..24, -5.0f64..5.0), 0..120),
        xseed in prop::collection::vec(-10.0f64..10.0, 24),
    ) {
        let a = build_real(n, &entries);
        let x_true: Vec<f64> = xseed.iter().take(n).copied().collect();
        let b = a.mul_vec(&x_true);
        let x = solve_once(&a, &b).expect("diagonally dominant matrix must factor");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8 * (1.0 + ti.abs()));
        }
    }

    #[test]
    fn residual_is_small(
        n in 2usize..16,
        entries in prop::collection::vec((0usize..16, 0usize..16, -3.0f64..3.0), 0..80),
        bseed in prop::collection::vec(-10.0f64..10.0, 16),
    ) {
        let a = build_real(n, &entries);
        let b: Vec<f64> = bseed.iter().take(n).copied().collect();
        let x = solve_once(&a, &b).expect("must factor");
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8 * (1.0 + bi.abs()));
        }
    }

    #[test]
    fn complex_solve_recovers_solution(
        n in 2usize..12,
        entries in prop::collection::vec(
            (0usize..12, 0usize..12, -3.0f64..3.0, -3.0f64..3.0), 0..60),
        xseed in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 12),
    ) {
        let mut t = TripletMatrix::<Complex64>::new(n, n);
        let mut row_sum = vec![0.0; n];
        for &(r, c, re, im) in &entries {
            let (r, c) = (r % n, c % n);
            if r == c { continue; }
            let v = Complex64::new(re, im);
            t.push(r, c, v);
            row_sum[r] += v.abs();
        }
        for (i, s) in row_sum.iter().enumerate() {
            t.push(i, i, Complex64::new(s + 1.0, 0.5));
        }
        let a = t.to_csr();
        let x_true: Vec<Complex64> = xseed.iter().take(n)
            .map(|&(re, im)| Complex64::new(re, im)).collect();
        let b = a.mul_vec(&x_true);
        let lu = SparseLu::factor(&a).expect("must factor");
        let x = lu.solve(&b).expect("rhs length matches");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((*xi - *ti).abs() < 1e-8 * (1.0 + ti.abs()));
        }
    }

    #[test]
    fn triplet_accumulation_matches_sum(
        pushes in prop::collection::vec((0usize..6, 0usize..6, -2.0f64..2.0), 1..40),
    ) {
        let mut t = TripletMatrix::<f64>::new(6, 6);
        let mut dense = [[0.0f64; 6]; 6];
        for &(r, c, v) in &pushes {
            t.push(r, c, v);
            dense[r][c] += v;
        }
        let m = t.to_csr();
        for r in 0..6 {
            for c in 0..6 {
                prop_assert!((m.get(r, c) - dense[r][c]).abs() < 1e-12);
            }
        }
    }
}
