//! Property-based tests for iterative refinement
//! ([`SparseLu::solve_refined_into`]): on any reasonably conditioned random
//! system the refined solve must converge to a tiny backward error, and its
//! residual must never exceed the plain (unrefined) solve's — the rollback
//! rule guarantees refinement is monotone, not just usually helpful.

use loopscope_math::Complex64;
use loopscope_sparse::{
    CsrMatrix, RefineWorkspace, SparseLu, TripletMatrix, REFINE_BACKWARD_TOLERANCE,
};
use proptest::prelude::*;

/// Builds a random, strictly diagonally dominant real matrix (invertible,
/// bounded condition number) from proptest inputs.
fn build_real(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix<f64> {
    let mut t = TripletMatrix::new(n, n);
    let mut row_sum = vec![0.0; n];
    for &(r, c, v) in entries {
        let (r, c) = (r % n, c % n);
        if r == c {
            continue;
        }
        t.push(r, c, v);
        row_sum[r] += v.abs();
    }
    for (i, s) in row_sum.iter().enumerate() {
        t.push(i, i, s + 1.0 + i as f64 * 0.01);
    }
    t.to_csr()
}

/// Complex analogue of [`build_real`]: off-diagonals dominated by the
/// diagonal modulus.
fn build_complex(n: usize, entries: &[(usize, usize, f64, f64)]) -> CsrMatrix<Complex64> {
    let mut t = TripletMatrix::<Complex64>::new(n, n);
    let mut row_sum = vec![0.0; n];
    for &(r, c, re, im) in entries {
        let (r, c) = (r % n, c % n);
        if r == c {
            continue;
        }
        let v = Complex64::new(re, im);
        t.push(r, c, v);
        row_sum[r] += v.abs();
    }
    for (i, s) in row_sum.iter().enumerate() {
        t.push(i, i, Complex64::new(s + 1.0 + i as f64 * 0.01, 0.25));
    }
    t.to_csr()
}

/// ∞-norm of the residual `A·x − b`.
fn residual_inf_real(a: &CsrMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
    a.mul_vec(x)
        .iter()
        .zip(b)
        .map(|(ri, bi)| (ri - bi).abs())
        .fold(0.0, f64::max)
}

fn residual_inf_complex(a: &CsrMatrix<Complex64>, x: &[Complex64], b: &[Complex64]) -> f64 {
    a.mul_vec(x)
        .iter()
        .zip(b)
        .map(|(ri, bi)| (*ri - *bi).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn real_refined_solve_converges_and_never_beats_plain(
        n in 2usize..20,
        entries in prop::collection::vec((0usize..20, 0usize..20, -4.0f64..4.0), 0..100),
        bseed in prop::collection::vec(-10.0f64..10.0, 20),
    ) {
        let a = build_real(n, &entries);
        let b: Vec<f64> = bseed.iter().take(n).copied().collect();
        let lu = SparseLu::factor(&a).expect("diagonally dominant matrix must factor");

        let plain = lu.solve(&b).expect("plain solve");
        let plain_res = residual_inf_real(&a, &plain, &b);

        let mut refined = b.clone();
        let mut ws = RefineWorkspace::new();
        let quality = lu
            .solve_refined_into(&a, &mut refined, &mut ws)
            .expect("refined solve");

        // Well-conditioned system: refinement must reach the backward-error
        // target and report convergence.
        prop_assert!(quality.converged, "quality = {quality:?}");
        prop_assert!(
            quality.backward_error <= REFINE_BACKWARD_TOLERANCE,
            "backward error {} above tolerance", quality.backward_error
        );
        // The reported residual matches the recomputed one.
        let refined_res = residual_inf_real(&a, &refined, &b);
        prop_assert!(
            (quality.residual_norm - refined_res).abs()
                <= 1e-12 * (1.0 + refined_res),
            "reported {} vs recomputed {refined_res}", quality.residual_norm
        );
        // Monotonicity: the rollback rule means refinement can never leave
        // the solution with a larger residual than the plain solve.
        prop_assert!(
            refined_res <= plain_res * (1.0 + 1e-12) + f64::MIN_POSITIVE,
            "refined residual {refined_res} exceeds plain {plain_res}"
        );
    }

    #[test]
    fn complex_refined_solve_converges_and_never_beats_plain(
        n in 2usize..12,
        entries in prop::collection::vec(
            (0usize..12, 0usize..12, -3.0f64..3.0, -3.0f64..3.0), 0..60),
        bseed in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 12),
    ) {
        let a = build_complex(n, &entries);
        let b: Vec<Complex64> = bseed
            .iter()
            .take(n)
            .map(|&(re, im)| Complex64::new(re, im))
            .collect();
        let lu = SparseLu::factor(&a).expect("diagonally dominant matrix must factor");

        let plain = lu.solve(&b).expect("plain solve");
        let plain_res = residual_inf_complex(&a, &plain, &b);

        let mut refined = b.clone();
        let mut ws = RefineWorkspace::new();
        let quality = lu
            .solve_refined_into(&a, &mut refined, &mut ws)
            .expect("refined solve");

        prop_assert!(quality.converged, "quality = {quality:?}");
        prop_assert!(
            quality.backward_error <= REFINE_BACKWARD_TOLERANCE,
            "backward error {} above tolerance", quality.backward_error
        );
        let refined_res = residual_inf_complex(&a, &refined, &b);
        prop_assert!(
            refined_res <= plain_res * (1.0 + 1e-12) + f64::MIN_POSITIVE,
            "refined residual {refined_res} exceeds plain {plain_res}"
        );
    }

    #[test]
    fn refinement_workspace_is_reusable_across_systems(
        n in 2usize..10,
        entries in prop::collection::vec((0usize..10, 0usize..10, -2.0f64..2.0), 0..40),
        bseed in prop::collection::vec(-5.0f64..5.0, 10),
    ) {
        // One workspace driven across two different dimensions must produce
        // the same answers as fresh workspaces (sizing is per-call).
        let a_small = build_real(2, &entries);
        let a = build_real(n, &entries);
        let b: Vec<f64> = bseed.iter().take(n).copied().collect();

        let mut shared = RefineWorkspace::for_dim(2);
        let lu_small = SparseLu::factor(&a_small).expect("factor small");
        let mut rhs_small = vec![1.0, -1.0];
        lu_small
            .solve_refined_into(&a_small, &mut rhs_small, &mut shared)
            .expect("small refined solve");

        let lu = SparseLu::factor(&a).expect("factor");
        let mut via_shared = b.clone();
        let q_shared = lu
            .solve_refined_into(&a, &mut via_shared, &mut shared)
            .expect("shared-workspace solve");
        let mut via_fresh = b.clone();
        let q_fresh = lu
            .solve_refined_into(&a, &mut via_fresh, &mut RefineWorkspace::new())
            .expect("fresh-workspace solve");

        prop_assert_eq!(via_shared, via_fresh);
        prop_assert_eq!(q_shared.refinement_steps, q_fresh.refinement_steps);
        prop_assert_eq!(q_shared.residual_norm, q_fresh.residual_norm);
    }
}
