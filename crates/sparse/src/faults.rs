//! Deterministic numeric fault injection for robustness testing.
//!
//! Compiled only under the `fault-inject` feature, this module perturbs the
//! stored values of a [`CsrMatrix`] into the failure states the solver's
//! robustness layer must survive: NaN / ±∞ entries, a numerically dead
//! column, or a pivot degraded far below the refactorization threshold. The
//! test-suites in `loopscope-sparse` and `loopscope-spice` drive it at
//! chosen sweep points and assert that every fault surfaces as a structured
//! error — no panic, no hang, no silent garbage — identically at every
//! `LOOPSCOPE_THREADS` / `LOOPSCOPE_PANEL` setting.
//!
//! Determinism is the whole point: the injector is seeded, draws from an
//! in-process [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream and
//! touches no clock or ambient randomness, so a fault plan replays
//! bit-for-bit across runs, thread counts and panel widths.
//!
//! ```
//! use loopscope_sparse::faults::{FaultInjector, FaultKind};
//! use loopscope_sparse::{SparseLu, SolveError, TripletMatrix};
//!
//! let mut t = TripletMatrix::<f64>::new(2, 2);
//! t.push(0, 0, 2.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 0, 1.0);
//! t.push(1, 1, 3.0);
//! let mut a = t.to_csr();
//! let report = FaultInjector::new(42).inject(FaultKind::Nan, &mut a);
//! let err = SparseLu::factor(&a).unwrap_err();
//! assert_eq!(
//!     err,
//!     SolveError::NonFinite { row: report.row, col: report.col }
//! );
//! ```

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// The numeric failure modes the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrite one stored entry with NaN — must surface as
    /// [`crate::SolveError::NonFinite`] with that entry's coordinates.
    Nan,
    /// Overwrite one stored entry with +∞ — same detection path as NaN.
    PosInf,
    /// Zero every stored entry of one column — a numerically dead column
    /// that must surface as [`crate::SolveError::Singular`].
    NearSingular,
    /// Scale one diagonal entry by `1e-12` — deep below the refactorization
    /// pivot threshold, so a pattern-reusing refactorization must detect
    /// degradation and escalate (fresh pivoting, then the caller's ladder).
    DegradedPivot,
}

/// What a fault application actually did: the kind and the coordinates of
/// the perturbed entry (for [`FaultKind::NearSingular`], `row` is the first
/// stored entry's row of the zeroed column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// The injected failure mode.
    pub kind: FaultKind,
    /// Original row index of the perturbed entry.
    pub row: usize,
    /// Original column index of the perturbed entry (the zeroed column for
    /// [`FaultKind::NearSingular`]).
    pub col: usize,
}

/// A seeded, in-process fault injector over sparse matrix values.
///
/// Entry selection comes from a SplitMix64 stream seeded by the caller;
/// two injectors with the same seed make the same choices on the same
/// matrix, regardless of threads, panel widths or wall-clock.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
}

impl FaultInjector {
    /// Creates an injector with the given seed. Equal seeds replay equal
    /// fault plans.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next SplitMix64 draw.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Picks a stored entry index in `0..nnz`.
    fn pick(&mut self, nnz: usize) -> usize {
        (self.next_u64() % nnz as u64) as usize
    }

    /// Applies `kind` to `matrix`, perturbing its stored values in place
    /// (the sparsity pattern is never changed), and reports what was done.
    ///
    /// For [`FaultKind::DegradedPivot`] the perturbed entry is the first
    /// stored diagonal entry at or after a randomly chosen row (wrapping),
    /// so matrices with partly empty diagonals still degrade a real pivot.
    ///
    /// # Panics
    ///
    /// Panics if `matrix` has no stored entries, or no stored diagonal
    /// entry when `kind` is [`FaultKind::DegradedPivot`].
    pub fn inject<T: Scalar>(&mut self, kind: FaultKind, matrix: &mut CsrMatrix<T>) -> FaultReport {
        let nnz = matrix.nnz();
        assert!(nnz > 0, "cannot inject a fault into an empty matrix");
        match kind {
            FaultKind::Nan | FaultKind::PosInf => {
                let slot = self.pick(nnz);
                // `iter()` yields stored entries in row-major order — the
                // same order `values_mut()` is laid out in — so slot k of
                // the values slice has the coordinates of the k-th yield.
                let (row, col, _) = matrix
                    .iter()
                    .nth(slot)
                    .expect("slot index is bounded by nnz");
                let poison = if kind == FaultKind::Nan {
                    f64::NAN
                } else {
                    f64::INFINITY
                };
                matrix.values_mut()[slot] = T::from_f64(poison);
                FaultReport { kind, row, col }
            }
            FaultKind::NearSingular => {
                let slot = self.pick(nnz);
                let (_, col, _) = matrix
                    .iter()
                    .nth(slot)
                    .expect("slot index is bounded by nnz");
                let mut first_row = usize::MAX;
                let hits: Vec<(usize, usize)> = matrix
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, c, _))| *c == col)
                    .map(|(k, (r, _, _))| (k, r))
                    .collect();
                let vals = matrix.values_mut();
                for &(k, r) in &hits {
                    vals[k] = T::ZERO;
                    if first_row == usize::MAX {
                        first_row = r;
                    }
                }
                FaultReport {
                    kind,
                    row: first_row,
                    col,
                }
            }
            FaultKind::DegradedPivot => {
                let n = matrix.rows().min(matrix.cols());
                assert!(n > 0, "cannot degrade a pivot of an empty matrix");
                let start = (self.next_u64() % n as u64) as usize;
                for offset in 0..n {
                    let d = (start + offset) % n;
                    if let Some(slot) = matrix.find_slot(d, d) {
                        let vals = matrix.values_mut();
                        vals[slot] = vals[slot] * T::from_f64(1.0e-12);
                        return FaultReport {
                            kind,
                            row: d,
                            col: d,
                        };
                    }
                }
                panic!("matrix has no stored diagonal entry to degrade");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn sample() -> CsrMatrix<f64> {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 3.0);
        t.push(2, 2, 4.0);
        t.to_csr()
    }

    #[test]
    fn same_seed_replays_the_same_plan() {
        let mut a = sample();
        let mut b = sample();
        let ra = FaultInjector::new(7).inject(FaultKind::Nan, &mut a);
        let rb = FaultInjector::new(7).inject(FaultKind::Nan, &mut b);
        assert_eq!(ra, rb);
        for ((_, _, va), (_, _, vb)) in a.iter().zip(b.iter()) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    #[test]
    fn nan_and_inf_land_at_reported_coordinates() {
        for kind in [FaultKind::Nan, FaultKind::PosInf] {
            let mut a = sample();
            let report = FaultInjector::new(11).inject(kind, &mut a);
            let v = a
                .iter()
                .find(|&(r, c, _)| r == report.row && c == report.col)
                .map(|(_, _, v)| v)
                .unwrap();
            assert!(!v.is_finite());
            assert_eq!(v.is_nan(), kind == FaultKind::Nan);
        }
    }

    #[test]
    fn near_singular_zeroes_the_whole_column() {
        let mut a = sample();
        let report = FaultInjector::new(3).inject(FaultKind::NearSingular, &mut a);
        for (_, c, v) in a.iter() {
            if c == report.col {
                assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn degraded_pivot_scales_a_diagonal_entry() {
        let mut a = sample();
        let before = a.clone();
        let report = FaultInjector::new(5).inject(FaultKind::DegradedPivot, &mut a);
        assert_eq!(report.row, report.col);
        let old = before
            .iter()
            .find(|&(r, c, _)| r == report.row && c == report.col)
            .map(|(_, _, v)| v)
            .unwrap();
        let new = a
            .iter()
            .find(|&(r, c, _)| r == report.row && c == report.col)
            .map(|(_, _, v)| v)
            .unwrap();
        assert_eq!(new, old * 1.0e-12);
    }
}
